"""A complete coded MIMO link: conv code + soft sphere detection + Viterbi.

Real base stations never run the detector in isolation: information bits
are convolutionally encoded, interleaved over MIMO transmissions, soft-
detected and Viterbi-decoded. This example assembles the entire chain
from the library's pieces and measures the value of each stage:

* uncoded hard detection        (the paper's operating mode)
* coded + hard-decision Viterbi (slicer bits into the decoder)
* coded + soft-decision Viterbi (list-sphere LLRs into the decoder)

Run:  python examples/coded_link.py [snr_db]
"""

import sys

import numpy as np

from repro import (
    ConvolutionalCode,
    MIMOSystem,
    NoiseScaledRadius,
    SoftOutputSphereDetector,
    ViterbiDecoder,
)


def main() -> None:
    snr_db = float(sys.argv[1]) if len(sys.argv) > 1 else 10.0
    system = MIMOSystem(4, 4, "4qam")
    code = ConvolutionalCode(generators=(0o7, 0o5), constraint_length=3)
    viterbi = ViterbiDecoder(code)
    detector = SoftOutputSphereDetector(
        system.constellation, radius_policy=NoiseScaledRadius(alpha=6.0)
    )
    rng = np.random.default_rng(42)

    bits_per_frame = system.bits_per_frame  # 8
    n_messages = 60
    msg_len = 46  # -> 96 coded bits = 12 MIMO frames per message

    uncoded_err = hard_err = soft_err = 0
    uncoded_bits = coded_bits = 0
    for _ in range(n_messages):
        msg = rng.integers(0, 2, msg_len).astype(bool)
        coded = code.encode(msg)
        llrs = np.empty(coded.size)
        hard = np.empty(coded.size, dtype=int)
        for i in range(coded.size // bits_per_frame):
            chunk = coded[i * bits_per_frame : (i + 1) * bits_per_frame]
            indices = system.constellation.bits_to_indices(chunk)
            symbols = system.constellation.map_indices(indices)
            channel = system.channel_model.draw_channel(rng)
            noise_var = system.noise_var(snr_db)
            y = system.channel_model.transmit(channel, symbols, noise_var, rng)
            detector.prepare(channel, noise_var=noise_var)
            soft = detector.detect_soft(y)
            sl = slice(i * bits_per_frame, (i + 1) * bits_per_frame)
            llrs[sl] = soft.llrs
            hard[sl] = soft.hard.bits
            # Uncoded reference: raw detected bits vs transmitted bits.
            uncoded_err += int(np.count_nonzero(soft.hard.bits != chunk))
            uncoded_bits += chunk.size
        hard_err += int(np.count_nonzero(viterbi.decode_hard(hard) != msg))
        soft_err += int(np.count_nonzero(viterbi.decode_soft(llrs) != msg))
        coded_bits += msg.size

    print(f"{system!r} @ {snr_db:g} dB, K=3 (7,5) rate-1/2 code, {n_messages} messages")
    print(f"uncoded (raw detector) BER : {uncoded_err / uncoded_bits:.5f}")
    print(f"coded, hard Viterbi    BER : {hard_err / coded_bits:.5f}")
    print(f"coded, soft Viterbi    BER : {soft_err / coded_bits:.5f}")
    print(
        "\nThe soft column is why the detector exports LLRs: the channel "
        "decoder flips exactly the low-confidence bits."
    )


if __name__ == "__main__":
    main()
