"""Search-strategy shoot-out: why leaf-first beats breadth-first.

Decodes the same frames with four tree-traversal strategies and compares
the nodes each explores — the argument behind the paper's 57x win over
the GPU GEMM-BFS implementation (section IV-F and Fig. 11):

* ``best-first``  — global priority queue (this paper / Geosphere idea)
* ``dfs-sorted``  — LIFO with PD-sorted children (paper Fig. 3)
* ``babai-seeded``— dfs-sorted + SIC initial radius (our extra tweak)
* ``bfs``         — level-synchronous sweep (the GPU baseline of [1])

Run:  python examples/search_strategies.py [snr_db]
"""

import sys

import numpy as np

from repro import (
    BabaiRadius,
    GemmBfsDecoder,
    MIMOSystem,
    NoiseScaledRadius,
    SphereDecoder,
)


def main() -> None:
    snr_db = float(sys.argv[1]) if len(sys.argv) > 1 else 6.0
    system = MIMOSystem(10, 10, "4qam")
    const = system.constellation
    rng = np.random.default_rng(0)

    def make_decoders():
        return {
            "best-first": SphereDecoder(
                const, strategy="best-first", radius_policy=NoiseScaledRadius(2.0)
            ),
            "dfs-sorted": SphereDecoder(
                const, strategy="dfs", radius_policy=NoiseScaledRadius(2.0)
            ),
            "babai-seeded": SphereDecoder(
                const, strategy="dfs", radius_policy=BabaiRadius()
            ),
            "bfs (GPU [1])": GemmBfsDecoder(
                const, radius_policy=NoiseScaledRadius(4.0), max_frontier=2**19
            ),
        }

    totals = {name: 0 for name in make_decoders()}
    frames = 8
    agreement = 0
    for _ in range(frames):
        frame = system.random_frame(snr_db, rng)
        decisions = {}
        for name, decoder in make_decoders().items():
            decoder.prepare(frame.channel, noise_var=frame.noise_var)
            result = decoder.detect(frame.received)
            totals[name] += result.stats.nodes_expanded
            decisions[name] = tuple(result.indices)
        if len(set(decisions.values())) == 1:
            agreement += 1

    print(f"nodes expanded per decode, 10x10 4-QAM @ {snr_db:g} dB ({frames} frames):")
    bfs_mean = totals["bfs (GPU [1])"] / frames
    for name, total in totals.items():
        mean = total / frames
        pct = 100.0 * mean / bfs_mean
        print(f"  {name:<14} {mean:>12.1f}   ({pct:6.2f}% of BFS)")
    print(
        f"\nall strategies agreed on the decoded vector in {agreement}/{frames} "
        "frames (each is exact within its sphere)"
    )
    print(
        "The leaf-first strategies reach solutions after exploring a small "
        "fraction of what BFS sweeps — the paper's core argument for the "
        "FPGA design (section IV-F)."
    )


if __name__ == "__main__":
    main()
