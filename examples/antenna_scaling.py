"""Scaling the number of antennas: who still meets real time? (Figs 6/8/9)

Sweeps MIMO sizes at a fixed SNR, decodes with the canonical (paper
Algorithm 1) sphere decoder, and converts the measured work traces into
CPU / FPGA-baseline / FPGA-optimized decode times. Shows the paper's
core story: the CPU breaks the 10 ms real-time budget as antennas grow,
the optimised FPGA design keeps decoding in real time.

Run:  python examples/antenna_scaling.py [snr_db] [--fast]
"""

import sys

from repro.bench.harness import REAL_TIME_MS, run_workload_sweep, time_rows


def main() -> None:
    args = [a for a in sys.argv[1:] if a != "--fast"]
    fast = "--fast" in sys.argv
    snr_db = float(args[0]) if args else 8.0
    sizes = (6, 10, 15) if fast else (6, 10, 15, 20)

    print(f"Decode time vs antennas at {snr_db:g} dB (4-QAM), real-time = {REAL_TIME_MS:g} ms")
    print(
        f"{'MIMO':>6} {'nodes':>9} {'CPU(ms)':>9} {'FPGAbase(ms)':>13} "
        f"{'FPGAopt(ms)':>12} {'speedup':>8}  real-time"
    )
    for n in sizes:
        workload = run_workload_sweep(
            n,
            "4qam",
            snrs=[snr_db],
            channels=2 if fast else 3,
            frames_per_channel=2 if fast else 4,
            seed=2023,
        )
        row = time_rows(workload)[0]
        verdict = []
        for label, key in (("CPU", "cpu_ms"), ("FPGA", "fpga_optimized_ms")):
            ok = row[key] <= REAL_TIME_MS
            verdict.append(f"{label}:{'yes' if ok else 'NO'}")
        print(
            f"{n:>4}x{n:<2} {row['mean_nodes']:>9.0f} {row['cpu_ms']:>9.2f} "
            f"{row['fpga_baseline_ms']:>13.2f} {row['fpga_optimized_ms']:>12.2f} "
            f"{row['speedup_vs_cpu']:>7.1f}x  {' '.join(verdict)}"
        )
    print(
        "\nThe FPGA's advantage grows with the system size because the CPU "
        "pays per-child tree-state traffic that the prefetch unit hides."
    )


if __name__ == "__main__":
    main()
