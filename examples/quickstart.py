"""Quickstart: decode one MIMO transmission with the sphere decoder.

Builds a 10x10 4-QAM link (the paper's headline configuration),
transmits a random vector through a Rayleigh fading channel, decodes it
exactly with the GEMM-based Best-First sphere decoder, and prints what
the search did plus what the decode would cost on the paper's platforms.

Run:  python examples/quickstart.py [seed]
"""

import sys

import numpy as np

from repro import MIMOSystem, SphereDecoder
from repro.fpga import FPGAPipeline, PipelineConfig
from repro.perfmodel import CPUCostModel


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    rng = np.random.default_rng(seed)

    # 1. A 10x10 spatial-multiplexing link with Gray-mapped 4-QAM.
    system = MIMOSystem(n_tx=10, n_rx=10, modulation="4qam")
    print(f"link      : {system!r}, {system.bits_per_frame} bits/vector")

    # 2. One transmission at 12 dB aggregate receive SNR.
    frame = system.random_frame(snr_db=12.0, rng=rng)
    print(f"sent      : {frame.symbol_indices.tolist()}")

    # 3. Exact ML detection via the sphere decoder (Best-FS + GEMM).
    decoder = SphereDecoder(system.constellation)
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    result = decoder.detect(frame.received)
    correct = np.array_equal(result.indices, frame.symbol_indices)
    print(f"decoded   : {result.indices.tolist()}  ({'correct' if correct else 'errors!'})")
    print(f"ML metric : {result.metric:.4f}")

    # 4. What did the search do?
    st = result.stats
    full_tree = system.constellation.order**system.n_tx
    print(
        f"search    : {st.nodes_expanded} expansions, "
        f"{st.nodes_generated} children evaluated in {st.gemm_calls} GEMM "
        f"batches, {st.nodes_pruned} pruned "
        f"({st.nodes_generated / full_tree:.2e} of the full tree)"
    )

    # 5. Platform cost: replay the trace through the models.
    cpu_ms = CPUCostModel(n_rx=10).decode_seconds(st) * 1e3
    pipe = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
    report = pipe.decode_report(st)
    print(
        f"platforms : CPU {cpu_ms:.3f} ms | FPGA-optimized "
        f"{report.milliseconds:.3f} ms ({cpu_ms / report.milliseconds:.1f}x, "
        f"host->HBM staging {report.transfer_fraction * 100:.1f}% of cycles)"
    )


if __name__ == "__main__":
    main()
