"""A guided tour of the FPGA accelerator model (paper section III).

Decodes one frame, then walks the decode trace through the pipeline
simulator, showing:

* the per-module cycle breakdown (branch / prefetch+GEMM / NORM / prune),
* what each of the paper's optimisations buys (double buffering, II=1
  GEMM, specialised control) on the *same* trace,
* the resource bill of the design (Table I's estimator) and the MST's
  occupancy for this decode.

Run:  python examples/fpga_pipeline_walkthrough.py
"""

from dataclasses import replace

import numpy as np

from repro import MIMOSystem, NoiseScaledRadius, SphereDecoder
from repro.fpga import (
    FPGAPipeline,
    MetaStateTable,
    PipelineConfig,
    estimate_resources,
)
from repro.fpga.prefetch import PrefetchUnit
from repro.fpga.resources import mst_capacity


def main() -> None:
    system = MIMOSystem(10, 10, "4qam")
    frame = system.random_frame(6.0, np.random.default_rng(1))
    decoder = SphereDecoder(
        system.constellation,
        strategy="dfs",
        radius_policy=NoiseScaledRadius(alpha=2.0),
    )
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    stats = decoder.detect(frame.received).stats
    print(
        f"decode trace: {len(stats.batches)} expansion batches, "
        f"{stats.nodes_generated} children, {stats.radius_updates} radius updates\n"
    )

    # --- per-module cycle breakdown on the optimised pipeline ---------
    opt = PipelineConfig.optimized(4)
    pipe = FPGAPipeline(opt, n_tx=10, n_rx=10, order=4)
    report = pipe.decode_report(stats)
    print(f"optimized pipeline @ {opt.freq_mhz:g} MHz -> {report.milliseconds:.3f} ms")
    for module, cycles in sorted(report.breakdown.items(), key=lambda kv: -kv[1]):
        print(f"  {module:<10} {cycles:>10,} cycles")
    print(f"  host->HBM staging is {report.transfer_fraction * 100:.2f}% (paper: <3%)\n")

    # --- optimisation ablation on the same trace ----------------------
    variants = {
        "optimized (all on)": opt,
        "- double buffering": replace(
            opt, prefetch=PrefetchUnit(double_buffered=False, hbm_channels=4)
        ),
        "- dataflow overlap": replace(opt, dataflow_overlap=False),
        "- specialised control": replace(opt, control_overhead_cycles=96),
        "baseline (direct port)": PipelineConfig.baseline(4),
    }
    print("what each optimisation buys (same workload):")
    for name, config in variants.items():
        ms = FPGAPipeline(config, n_tx=10, n_rx=10, order=4).decode_report(
            stats
        ).milliseconds
        print(f"  {name:<24} {ms:8.3f} ms")

    # --- resource bill (Table I estimator) ----------------------------
    print("\nresource bill (10x10, % of Alveo U280):")
    for order in (4, 16):
        rep = estimate_resources(PipelineConfig.optimized(order), order=order)
        util = rep.utilization()
        cells = ", ".join(f"{k} {v * 100:.1f}%" for k, v in util.items())
        dup = "fits twice" if rep.can_duplicate() else "single pipeline only"
        print(f"  optimized {order:>2}-QAM: {cells}  ({dup})")

    # --- MST occupancy -------------------------------------------------
    capacity = mst_capacity(4, optimized=True)
    mst = MetaStateTable(n_levels=10, capacity=capacity)
    peak = max(ev.pool_size for ev in stats.batches)
    print(
        f"\nMST: provisioned {capacity} slots/level "
        f"({mst.storage_bits(10, 4) / 8 / 1024:.0f} KiB total); this decode "
        f"generated {stats.nodes_generated} nodes, peak list {stats.max_list_size}, "
        f"peak batch {peak} — comfortably within capacity."
    )


if __name__ == "__main__":
    main()
