"""Base-station energy budgeting: CPU vs FPGA deployment (Table II).

Signal detection runs in remote base stations with tight power budgets
(paper section I). This example sizes the energy cost of decoding a
stream of vectors on the CPU vs the optimised FPGA design for each of
the paper's Table II configurations, using measured work traces and the
calibrated power models.

Run:  python examples/energy_budget.py [--fast]
"""

import sys

import numpy as np

from repro.bench.harness import run_workload_sweep
from repro.fpga.power import (
    cpu_power_w,
    energy_joules,
    energy_reduction_geomean,
    fpga_power_w,
)


def main() -> None:
    fast = "--fast" in sys.argv
    configs = [(10, "4qam"), (15, "4qam"), (10, "16qam")]
    if not fast:
        configs.insert(2, (20, "4qam"))
    snr_db = 4.0
    vectors_per_second = 100  # a modest uplink decode load

    print(
        f"Energy to decode at {snr_db:g} dB "
        f"({vectors_per_second} vectors/s sustained load):\n"
    )
    print(
        f"{'config':>14} {'CPU W':>7} {'FPGA W':>7} {'CPU mJ/vec':>11} "
        f"{'FPGA mJ/vec':>12} {'reduction':>10} {'FPGA W avg':>11}"
    )
    reductions = []
    for n, modulation in configs:
        workload = run_workload_sweep(
            n,
            modulation,
            snrs=[snr_db],
            channels=2,
            frames_per_channel=2 if fast else 3,
            seed=2023,
        )
        stats = workload.sweep.points[0].frame_stats
        cpu_s = workload.cpu.mean_decode_seconds(stats)
        fpga_s = workload.fpga_optimized.mean_decode_seconds(stats)
        order = workload.system.constellation.order
        p_cpu, p_fpga = cpu_power_w(n, order), fpga_power_w(n, order)
        e_cpu = energy_joules(p_cpu, cpu_s)
        e_fpga = energy_joules(p_fpga, fpga_s)
        reductions.append(e_cpu / e_fpga)
        # Average board power at the sustained load (duty-cycled).
        duty = min(fpga_s * vectors_per_second, 1.0)
        avg_w = p_fpga * duty
        print(
            f"{n:>11}x{n} {modulation[:5]:<1} {p_cpu:>6.0f} {p_fpga:>7.1f} "
            f"{e_cpu * 1e3:>11.2f} {e_fpga * 1e3:>12.3f} "
            f"{e_cpu / e_fpga:>9.1f}x {avg_w:>10.2f}W"
        )
    print(
        f"\nenergy-reduction geomean: {energy_reduction_geomean(reductions):.1f}x "
        "(paper Table II: 38.1x)"
    )


if __name__ == "__main__":
    main()
