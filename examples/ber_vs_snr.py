"""Link-level BER curves: sphere decoder vs linear baselines (Fig. 7).

Runs a Monte Carlo sweep over SNR for a 10x10 4-QAM system and prints
BER for the exact sphere decoder (= ML), MMSE, ZF and MRC — the
accuracy/complexity trade-off that motivates the paper (section I).

Run:  python examples/ber_vs_snr.py [--fast]
"""

import sys

from repro import (
    MIMOSystem,
    MonteCarloEngine,
    MRCDetector,
    MMSEDetector,
    SphereDecoder,
    ZeroForcingDetector,
)
from repro.core.radius import NoiseScaledRadius


def main() -> None:
    fast = "--fast" in sys.argv
    system = MIMOSystem(10, 10, "4qam")
    const = system.constellation
    snrs = [4.0, 8.0, 12.0, 16.0, 20.0]
    engine = MonteCarloEngine(
        system,
        channels=4 if fast else 10,
        frames_per_channel=10 if fast else 40,
        seed=2023,
        keep_traces=False,
    )

    detectors = {
        "sphere (ML)": lambda: SphereDecoder(
            const, strategy="dfs", radius_policy=NoiseScaledRadius(alpha=2.0)
        ),
        "mmse": lambda: MMSEDetector(const),
        "zf": lambda: ZeroForcingDetector(const),
        "mrc": lambda: MRCDetector(const),
    }

    print(f"BER vs aggregate receive SNR, {system!r}")
    header = f"{'SNR(dB)':>8}" + "".join(f"{name:>14}" for name in detectors)
    print(header)
    print("-" * len(header))
    sweeps = {
        name: engine.run(factory, snrs, detector_name=name)
        for name, factory in detectors.items()
    }
    for i, snr in enumerate(snrs):
        cells = "".join(
            f"{sweeps[name].points[i].ber:>14.5f}" for name in detectors
        )
        print(f"{snr:>8.1f}{cells}")
    bits = sweeps["sphere (ML)"].points[0].errors.bits
    print(f"({bits} bits per point; the SD column is exact ML by construction)")


if __name__ == "__main__":
    main()
