"""Base-station capacity planning: vectors/second within the 10 ms budget.

The paper's real-time constraint is per-vector; a deployment cares
about *throughput under a latency SLO*. This example walks the full
capacity-planning chain on one measured workload:

1. **Analytics** — decode-time distributions (the canonical decoder's
   traces run through each platform model) feed the M/G/1 analysis of
   :mod:`repro.bench.realtime`: how many vectors/second each platform
   sustains while keeping the mean-sojourn Markov bound on 10 ms
   misses under 10%.
2. **Empirical cross-check** — the same service sample replayed through
   a seeded Lindley-recursion queue (:func:`empirical_report`), with
   arrivals synthesised by :func:`repro.serve.loadgen.arrival_times`:
   exact p95/p99 and miss fractions where the analytics only bound the
   mean, plus how much a bursty arrival process inflates the tail.
3. **Served simulation** — a multi-stream :class:`LoadGenerator` trace
   pushed through the actual :class:`DetectionService` coalescing
   scheduler in virtual time (:func:`serve_trace`): end-to-end sojourn
   with batching, the thing the queueing formulas approximate.

The sweep runs under a live metrics registry wired to a stream writer,
so it doubles as a small end-to-end demo of the telemetry path: while
it executes, cumulative snapshot lines land in
``capacity_planning.metrics.jsonl`` (same schema as a recorded run's
``metrics.stream.jsonl``), and the last line is replayed at the end
exactly as ``repro-sd obs tail`` would render it.

Run:  python examples/capacity_planning.py [snr_db]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.bench.harness import run_workload_sweep
from repro.bench.realtime import (
    empirical_report,
    max_sustainable_rate,
    mg1_report,
)
from repro.bench.serving import capacity_sweep
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.stream import (
    MetricsStreamWriter,
    format_stream_line,
    read_stream,
)


def main() -> None:
    snr_db = float(sys.argv[1]) if len(sys.argv) > 1 else 8.0
    deadline_s = 10e-3
    miss_bound = 0.10

    print(
        f"Sustainable uplink load, 10x10 4-QAM @ {snr_db:g} dB "
        f"(deadline {deadline_s * 1e3:g} ms, miss bound {miss_bound:.0%}):\n"
    )
    stream_path = (
        Path(tempfile.mkdtemp(prefix="capacity-"))
        / "capacity_planning.metrics.jsonl"
    )
    metrics = MetricsRegistry()
    # Low interval: this sweep takes seconds, and we want to show real
    # block-cadence lines, not just the forced end-of-run flush.
    metrics.stream = MetricsStreamWriter(stream_path, interval_s=0.1)
    with use_metrics(metrics):
        workload = run_workload_sweep(
            10,
            "4qam",
            snrs=[snr_db],
            channels=4,
            frames_per_channel=6,
            seed=11,
        )
    metrics.tick(force=True)
    stats = workload.sweep.points[0].frame_stats
    platforms = {
        "CPU (64-core MKL)": np.array(
            [workload.cpu.decode_seconds(st) for st in stats]
        ),
        "FPGA baseline": np.array(
            [workload.fpga_baseline.decode_report(st).seconds for st in stats]
        ),
        "FPGA optimized": np.array(
            [workload.fpga_optimized.decode_report(st).seconds for st in stats]
        ),
    }
    print(
        f"{'platform':<20} {'mean svc (ms)':>14} {'idle bound':>11} "
        f"{'max rate (vec/s)':>17} {'util @ max':>11}"
    )
    rates = {}
    for name, times in platforms.items():
        rate = max_sustainable_rate(
            times, deadline_s=deadline_s, miss_bound=miss_bound
        )
        rates[name] = rate
        idle_bound = float(np.mean(times)) / deadline_s
        if rate > 0:
            util = f"{mg1_report(times, rate).utilization:.0%}"
        else:
            util = "-"
        print(
            f"{name:<20} {np.mean(times) * 1e3:>14.3f} {idle_bound:>10.0%} "
            f"{rate:>17.0f} {util:>11}"
        )
    print(
        "\n('idle bound' = mean service / deadline: the Markov miss bound "
        "with zero queueing. A platform whose idle bound already exceeds "
        "the target cannot sustain any load at this SLO.)"
    )

    # -- 2. Empirical cross-check: Lindley replay at 70% of the analytic
    #       max rate, Poisson vs bursty arrivals on the same budget.
    name = "FPGA optimized"
    times = platforms[name]
    rate = 0.7 * rates[name]
    if rate > 0:
        print(
            f"\nEmpirical queue replay, {name} at {rate:,.0f} vec/s "
            f"(70% of the analytic max):"
        )
        print(
            f"{'arrivals':<10} {'mean (ms)':>10} {'p95 (ms)':>9} "
            f"{'p99 (ms)':>9} {'miss':>6}"
        )
        for profile in ("poisson", "bursty"):
            emp = empirical_report(
                times,
                rate,
                duration_s=5.0,
                profile=profile,
                deadline_s=deadline_s,
                seed=11,
            )
            print(
                f"{profile:<10} {emp.mean_sojourn_s * 1e3:>10.3f} "
                f"{emp.p95_sojourn_s * 1e3:>9.3f} "
                f"{emp.p99_sojourn_s * 1e3:>9.3f} "
                f"{emp.miss_fraction:>6.1%}"
            )
        analytic = mg1_report(times, rate)
        print(
            f"(P-K analytic mean sojourn: "
            f"{analytic.mean_sojourn_s * 1e3:.3f} ms — the poisson row "
            "should agree; the bursty row shows what the M/G/1 "
            "assumption hides.)"
        )

    # -- 3. Served simulation: the real scheduler, coalescing many
    #       streams into fused batches, on the deterministic FPGA model.
    print("\nServed capacity (coalescing scheduler, FPGA service model):")
    result = capacity_sweep(
        n_antennas=4,
        snr_db=snr_db,
        stream_counts=(2, 8),
        rate_hz=400.0,
        duration_s=0.05,
        slo_ms=deadline_s * 1e3,
        seed=11,
        streams_per_block=4,
        max_batch=16,
        max_delay_ms=1.0,
        service="fpga",
    )
    print(result.format())
    print(
        "\nDecode-time variance matters as much as the mean: channels that "
        "trigger deep searches inflate the queue (Pollaczek-Khinchine), "
        "which is why the FPGA's headroom translates into a much higher "
        "sustainable vector rate."
    )
    docs = read_stream(stream_path)
    print(
        f"\nLive metrics stream: {len(docs)} snapshot(s) in {stream_path}"
    )
    prev = docs[-2] if len(docs) > 1 else None
    print("last line (as `repro-sd obs tail` renders it):")
    print(f"  {format_stream_line(docs[-1], prev)}")


if __name__ == "__main__":
    main()
