"""Base-station capacity planning: vectors/second within the 10 ms budget.

The paper's real-time constraint is per-vector; a deployment cares about
*throughput under a latency SLO*. This example measures decode-time
distributions (the canonical decoder's traces run through each platform
model), feeds them into the M/G/1 analysis of
:mod:`repro.bench.realtime`, and reports how many received vectors per
second each platform sustains while keeping the mean-sojourn Markov
bound on 10 ms misses under 10%.

The measurement sweep runs under a live metrics registry wired to a
stream writer, so it doubles as a small end-to-end demo of the
telemetry path: while the sweep executes, cumulative snapshot lines
land in ``capacity_planning.metrics.jsonl`` (same schema as a recorded
run's ``metrics.stream.jsonl``), and the last line is replayed at the
end exactly as ``repro-sd obs tail`` would render it.

Run:  python examples/capacity_planning.py [snr_db]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.bench.harness import run_workload_sweep
from repro.bench.realtime import max_sustainable_rate, mg1_report
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.stream import (
    MetricsStreamWriter,
    format_stream_line,
    read_stream,
)


def main() -> None:
    snr_db = float(sys.argv[1]) if len(sys.argv) > 1 else 8.0
    deadline_s = 10e-3
    miss_bound = 0.10

    print(
        f"Sustainable uplink load, 10x10 4-QAM @ {snr_db:g} dB "
        f"(deadline {deadline_s * 1e3:g} ms, miss bound {miss_bound:.0%}):\n"
    )
    stream_path = (
        Path(tempfile.mkdtemp(prefix="capacity-"))
        / "capacity_planning.metrics.jsonl"
    )
    metrics = MetricsRegistry()
    # Low interval: this sweep takes seconds, and we want to show real
    # block-cadence lines, not just the forced end-of-run flush.
    metrics.stream = MetricsStreamWriter(stream_path, interval_s=0.1)
    with use_metrics(metrics):
        workload = run_workload_sweep(
            10,
            "4qam",
            snrs=[snr_db],
            channels=4,
            frames_per_channel=6,
            seed=11,
        )
    metrics.tick(force=True)
    stats = workload.sweep.points[0].frame_stats
    platforms = {
        "CPU (64-core MKL)": np.array(
            [workload.cpu.decode_seconds(st) for st in stats]
        ),
        "FPGA baseline": np.array(
            [workload.fpga_baseline.decode_report(st).seconds for st in stats]
        ),
        "FPGA optimized": np.array(
            [workload.fpga_optimized.decode_report(st).seconds for st in stats]
        ),
    }
    print(
        f"{'platform':<20} {'mean svc (ms)':>14} {'idle bound':>11} "
        f"{'max rate (vec/s)':>17} {'util @ max':>11}"
    )
    for name, times in platforms.items():
        rate = max_sustainable_rate(
            times, deadline_s=deadline_s, miss_bound=miss_bound
        )
        idle_bound = float(np.mean(times)) / deadline_s
        if rate > 0:
            util = f"{mg1_report(times, rate).utilization:.0%}"
        else:
            util = "-"
        print(
            f"{name:<20} {np.mean(times) * 1e3:>14.3f} {idle_bound:>10.0%} "
            f"{rate:>17.0f} {util:>11}"
        )
    print(
        "\n('idle bound' = mean service / deadline: the Markov miss bound "
        "with zero queueing. A platform whose idle bound already exceeds "
        "the target cannot sustain any load at this SLO.)"
    )
    print(
        "\nDecode-time variance matters as much as the mean: channels that "
        "trigger deep searches inflate the queue (Pollaczek-Khinchine), "
        "which is why the FPGA's headroom translates into a much higher "
        "sustainable vector rate."
    )
    docs = read_stream(stream_path)
    print(
        f"\nLive metrics stream: {len(docs)} snapshot(s) in {stream_path}"
    )
    prev = docs[-2] if len(docs) > 1 else None
    print("last line (as `repro-sd obs tail` renders it):")
    print(f"  {format_stream_line(docs[-1], prev)}")


if __name__ == "__main__":
    main()
