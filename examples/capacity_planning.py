"""Base-station capacity planning: vectors/second within the 10 ms budget.

The paper's real-time constraint is per-vector; a deployment cares about
*throughput under a latency SLO*. This example measures decode-time
distributions (the canonical decoder's traces run through each platform
model), feeds them into the M/G/1 analysis of
:mod:`repro.bench.realtime`, and reports how many received vectors per
second each platform sustains while keeping the mean-sojourn Markov
bound on 10 ms misses under 10%.

Run:  python examples/capacity_planning.py [snr_db]
"""

import sys

import numpy as np

from repro.bench.harness import run_workload_sweep
from repro.bench.realtime import max_sustainable_rate, mg1_report


def main() -> None:
    snr_db = float(sys.argv[1]) if len(sys.argv) > 1 else 8.0
    deadline_s = 10e-3
    miss_bound = 0.10

    print(
        f"Sustainable uplink load, 10x10 4-QAM @ {snr_db:g} dB "
        f"(deadline {deadline_s * 1e3:g} ms, miss bound {miss_bound:.0%}):\n"
    )
    workload = run_workload_sweep(
        10, "4qam", snrs=[snr_db], channels=4, frames_per_channel=6, seed=11
    )
    stats = workload.sweep.points[0].frame_stats
    platforms = {
        "CPU (64-core MKL)": np.array(
            [workload.cpu.decode_seconds(st) for st in stats]
        ),
        "FPGA baseline": np.array(
            [workload.fpga_baseline.decode_report(st).seconds for st in stats]
        ),
        "FPGA optimized": np.array(
            [workload.fpga_optimized.decode_report(st).seconds for st in stats]
        ),
    }
    print(
        f"{'platform':<20} {'mean svc (ms)':>14} {'idle bound':>11} "
        f"{'max rate (vec/s)':>17} {'util @ max':>11}"
    )
    for name, times in platforms.items():
        rate = max_sustainable_rate(
            times, deadline_s=deadline_s, miss_bound=miss_bound
        )
        idle_bound = float(np.mean(times)) / deadline_s
        if rate > 0:
            util = f"{mg1_report(times, rate).utilization:.0%}"
        else:
            util = "-"
        print(
            f"{name:<20} {np.mean(times) * 1e3:>14.3f} {idle_bound:>10.0%} "
            f"{rate:>17.0f} {util:>11}"
        )
    print(
        "\n('idle bound' = mean service / deadline: the Markov miss bound "
        "with zero queueing. A platform whose idle bound already exceeds "
        "the target cannot sustain any load at this SLO.)"
    )
    print(
        "\nDecode-time variance matters as much as the mean: channels that "
        "trigger deep searches inflate the queue (Pollaczek-Khinchine), "
        "which is why the FPGA's headroom translates into a much higher "
        "sustainable vector rate."
    )


if __name__ == "__main__":
    main()
