"""Soft-output detection: LLRs for a coded-system front end.

Base stations feed detector output into a channel decoder, which wants
per-bit log-likelihood ratios, not hard decisions. This example runs the
list sphere decoder and shows how LLR confidence tracks what actually
happened on the channel: bits decided incorrectly come with visibly
weaker (smaller-magnitude) LLRs — exactly the information a soft-input
channel decoder exploits.

Run:  python examples/soft_output.py [snr_db]
"""

import sys

import numpy as np

from repro import MIMOSystem, NoiseScaledRadius, SoftOutputSphereDetector


def main() -> None:
    snr_db = float(sys.argv[1]) if len(sys.argv) > 1 else 8.0
    system = MIMOSystem(8, 8, "4qam")
    rng = np.random.default_rng(7)
    detector = SoftOutputSphereDetector(
        system.constellation,
        radius_policy=NoiseScaledRadius(alpha=6.0),  # rich candidate lists
        max_list=256,
    )

    frames = 40
    good_mags, bad_mags = [], []
    bit_errors = 0
    total_bits = 0
    for _ in range(frames):
        frame = system.random_frame(snr_db, rng)
        detector.prepare(frame.channel, noise_var=frame.noise_var)
        soft = detector.detect_soft(frame.received)
        correct = soft.hard.bits == frame.bits
        good_mags.extend(np.abs(soft.llrs[correct]))
        bad_mags.extend(np.abs(soft.llrs[~correct]))
        bit_errors += int(np.count_nonzero(~correct))
        total_bits += frame.bits.size

    print(f"{system!r} @ {snr_db:g} dB, {frames} frames, list sphere decoding")
    print(f"hard BER              : {bit_errors / total_bits:.4f}")
    print(f"mean |LLR|, correct   : {np.mean(good_mags):8.2f}  ({len(good_mags)} bits)")
    if bad_mags:
        print(f"mean |LLR|, erroneous : {np.mean(bad_mags):8.2f}  ({len(bad_mags)} bits)")
        print(
            "\nErroneous bits carry much weaker confidence — a soft-input "
            "channel decoder would flip most of them."
        )
    else:
        print("no bit errors at this SNR; try a lower one, e.g. 4")


if __name__ == "__main__":
    main()
