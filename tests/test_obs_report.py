"""Tests for run rendering and diffing (repro.obs.report)."""

import pytest

from repro.obs import RunRegistry, Tracer
from repro.util.timing import WallClock
from repro.obs.report import (
    RunData,
    diff_runs,
    format_diff,
    format_report,
    format_run,
    format_run_list,
    format_table,
    load_run,
)


class StubSeries:
    experiment = "fig6"
    title = "decode time vs snr"
    notes = ""

    def __init__(self, rows):
        self.columns = list(rows[0])
        self.rows = rows


class TickClock(WallClock):
    """One second per observation — deterministic span durations."""

    def __init__(self):
        self.t = 0.0

    def now(self) -> float:
        self.t += 1.0
        return self.t


def record_run(root, rows, *, seed=1, spans=None):
    """Record one run with the given series rows and span timings."""
    recorder = RunRegistry(root).new_run("fig6", seed=seed, config={"n": 6})
    recorder.record_series(StubSeries(rows))
    tracer = Tracer(clock=TickClock())
    for name, count in spans or []:
        for _ in range(count):
            with tracer.span(name):
                pass
    recorder.record_metrics(tracer)
    return recorder.finalize()


ROWS_A = [
    {"snr_db": 8.0, "host_ms": 10.0, "ber": 0.05},
    {"snr_db": 12.0, "host_ms": 6.0, "ber": 0.0},
]
ROWS_B = [
    {"snr_db": 8.0, "host_ms": 15.0, "ber": 0.04},
    {"snr_db": 12.0, "host_ms": 6.0, "ber": 0.0},
]


class TestLoadAndRender:
    def test_load_run_round_trip(self, tmp_path):
        path = record_run(tmp_path, ROWS_A, spans=[("sd.detect", 2)])
        run = load_run(path)
        assert run.run_id == path.name
        assert run.experiment == "fig6"
        assert run.series["rows"][0]["host_ms"] == 10.0
        assert "sd.detect" in run.metrics["spans"]

    def test_load_run_rejects_non_run(self, tmp_path):
        with pytest.raises(KeyError, match="not a recorded run"):
            load_run(tmp_path)

    def test_format_run_list(self, tmp_path):
        record_run(tmp_path, ROWS_A, seed=1)
        record_run(tmp_path, ROWS_B, seed=2)
        registry = RunRegistry(tmp_path)
        runs = [load_run(p) for p in registry.run_dirs()]
        text = format_run_list(runs)
        assert "run_id" in text and "fig6" in text
        assert len(text.splitlines()) == 4  # header + rule + 2 runs
        assert format_run_list([]) == "(no runs recorded)"

    def test_format_run_text_and_markdown(self, tmp_path):
        path = record_run(tmp_path, ROWS_A, spans=[("sd.detect", 3)])
        run = load_run(path)
        text = format_run(run)
        assert "decode time vs snr" in text
        assert "sd.detect" in text
        assert "n=6" in text
        md = format_run(run, markdown=True)
        assert "| snr_db | host_ms | ber |" in md
        assert md.startswith("## run ")

    def test_format_report_is_markdown_document(self, tmp_path):
        run = load_run(record_run(tmp_path, ROWS_A))
        report = format_report(run)
        assert report.startswith(f"# Run report: {run.run_id}")
        assert "| snr_db |" in report


class TestFormatTable:
    def test_alignment_and_placeholder(self):
        text = format_table(
            ["name", "x"], [{"name": "a", "x": 1.5}, {"name": "bb", "x": None}]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[2].startswith("a ")
        assert "-" in lines[3]  # None placeholder

    def test_markdown_header_rule(self):
        md = format_table(["a"], [{"a": 1}], markdown=True)
        assert md.splitlines()[1] == "|---|"


class TestDiff:
    def diff(self, tmp_path):
        a = load_run(record_run(tmp_path, ROWS_A, seed=1, spans=[("sd.detect", 2)]))
        b = load_run(record_run(tmp_path, ROWS_B, seed=2, spans=[("sd.detect", 2)]))
        return diff_runs(a, b)

    def test_per_snr_deltas(self, tmp_path):
        diff = self.diff(tmp_path)
        assert diff.key_column == "snr_db"
        assert [row["snr_db"] for row in diff.series_rows] == [8.0, 12.0]
        row = diff.series_rows[0]
        assert row["host_ms_a"] == 10.0
        assert row["host_ms_b"] == 15.0
        assert row["host_ms_delta"] == pytest.approx(5.0)
        assert row["host_ms_pct"] == pytest.approx(50.0)
        assert row["ber_delta"] == pytest.approx(-0.01)

    def test_zero_base_pct_is_none(self, tmp_path):
        diff = self.diff(tmp_path)
        row = diff.series_rows[1]  # ber 0 -> 0 at 12 dB
        assert row["ber_pct"] is None

    def test_span_shifts(self, tmp_path):
        diff = self.diff(tmp_path)
        assert [row["span"] for row in diff.span_rows] == ["sd.detect"]
        row = diff.span_rows[0]
        assert {"p50_a_ms", "p50_b_ms", "p50_pct", "p95_pct", "p99_pct"} <= set(row)

    def test_format_diff_renders_tables(self, tmp_path):
        diff = self.diff(tmp_path)
        text = format_diff(diff)
        assert "per-snr_db series" in text
        assert "span shifts" in text
        md = format_diff(diff, markdown=True)
        assert "| snr_db |" in md

    def test_diff_without_common_table(self, tmp_path):
        a = RunData(path=tmp_path, manifest={"run_id": "a"})
        b = RunData(path=tmp_path, manifest={"run_id": "b"})
        diff = diff_runs(a, b)
        assert diff.series_rows == [] and diff.span_rows == []
        assert "no alignable series" in format_diff(diff)
