"""Tests for repro.obs.tracer: spans, counters, the ambient tracer."""

import numpy as np
import pytest

from repro.obs import (
    NULL_TRACER,
    PHASE_COUNTER,
    PHASE_INSTANT,
    PHASE_SPAN,
    Tracer,
    current_tracer,
    reset_tracer,
    set_tracer,
    use_tracer,
)
from repro.util.timing import WallClock


class FakeClock(WallClock):
    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


class TestSpans:
    def test_records_duration(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work"):
            clock.t += 2.5
        (span,) = tracer.spans("work")
        assert span.phase == PHASE_SPAN
        assert span.dur == pytest.approx(2.5)
        assert span.ts == pytest.approx(0.0)

    def test_nesting_depth(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (inner,) = tracer.spans("inner")
        (outer,) = tracer.spans("outer")
        assert inner.depth == outer.depth + 1

    def test_sibling_spans_same_depth(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans()
        assert a.depth == b.depth

    def test_depth_restored_after_exception(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        with tracer.span("after"):
            pass
        assert tracer.spans("boom")[0].depth == tracer.spans("after")[0].depth

    def test_span_args_kept(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("decode", n_tx=10, strategy="dfs"):
            pass
        (span,) = tracer.spans("decode")
        assert span.args == {"n_tx": 10, "strategy": "dfs"}

    def test_span_durations_grouped(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for dt in (1.0, 3.0):
            with tracer.span("step"):
                clock.t += dt
        assert tracer.span_durations()["step"] == pytest.approx([1.0, 3.0])


class TestDisabled:
    def test_no_events_recorded(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work", detail=1):
            pass
        tracer.instant("tick")
        tracer.count("n", 5)
        tracer.counter("m").add(2)
        assert tracer.events == []
        assert tracer.counters == {}

    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_null_tracer_disabled(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.events == []


class TestCounters:
    def test_count_accumulates(self):
        tracer = Tracer(clock=FakeClock())
        tracer.count("nodes", 3)
        tracer.count("nodes", 4)
        assert tracer.counters["nodes"] == 7
        events = [e for e in tracer.events if e.phase == PHASE_COUNTER]
        assert [e.value for e in events] == [3, 7]

    def test_bound_counter_handle(self):
        tracer = Tracer(clock=FakeClock())
        nodes = tracer.counter("nodes")
        nodes.add()
        nodes.add(9)
        assert nodes.value == 10

    def test_instant(self):
        tracer = Tracer(clock=FakeClock())
        tracer.instant("batch", level=3)
        (event,) = tracer.events
        assert event.phase == PHASE_INSTANT
        assert event.args == {"level": 3}

    def test_clear(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        tracer.count("n")
        clock.t += 5.0
        tracer.clear()
        assert tracer.events == []
        assert tracer.counters == {}
        tracer.instant("after")
        assert tracer.events[0].ts == pytest.approx(0.0)  # epoch restarted


class TestAmbientTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_scopes(self):
        tracer = Tracer()
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_set_reset_token(self):
        tracer = Tracer()
        token = set_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            reset_tracer(token)
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_exception(self):
        with pytest.raises(ValueError):
            with use_tracer(Tracer()):
                raise ValueError("x")
        assert current_tracer() is NULL_TRACER


class TestMarkSampling:
    def test_mark_bindings_none_when_disabled(self):
        assert Tracer(enabled=False).mark_bindings() is None

    def test_mark_bindings_append_lands_as_instant(self):
        tracer = Tracer(clock=FakeClock())
        append, now, epoch, tid = tracer.mark_bindings()
        append(("sd.batch", now() - epoch, tid, 3, 8))
        (event,) = tracer.events
        assert event.phase == PHASE_INSTANT
        assert event.name == "sd.batch"
        assert event.args == {"level": 3, "pool": 8}
        assert event.tid == tid

    def test_mark_stride_validated(self):
        with pytest.raises(ValueError):
            Tracer(mark_stride=0)
        with pytest.raises(TypeError):
            Tracer(mark_stride=2.5)

    def test_dfs_marks_stride_sampled(self):
        """stride=1 records one mark per expansion; stride=s samples
        every s-th (first always records), never losing exact counts."""
        from repro.detectors.sphere import SphereDecoder
        from repro.mimo.system import MIMOSystem

        system = MIMOSystem(6, 6, "4qam")
        frame = system.random_frame(8.0, np.random.default_rng(3))

        def decode(stride):
            decoder = SphereDecoder(system.constellation, strategy="dfs")
            decoder.prepare(frame.channel, noise_var=frame.noise_var)
            with use_tracer(Tracer(mark_stride=stride)) as tracer:
                result = decoder.detect(frame.received)
            marks = [
                e
                for e in tracer.events
                if e.phase == PHASE_INSTANT and e.name == "sd.batch"
            ]
            return marks, result.stats

        full, stats = decode(1)
        assert len(full) == stats.gemm_calls  # every expansion marked
        assert stats.gemm_calls > 16
        sampled, stats2 = decode(16)
        # DFS expands single nodes, one solve per detect: exactly
        # ceil(n / stride) marks survive sampling.
        assert len(sampled) == -(-stats.gemm_calls // 16)
        # Sampling never perturbs the search or its exact statistics.
        assert stats2.nodes_expanded == stats.nodes_expanded


class TestDecoderIntegration:
    def make_frame(self, seed=0):
        from repro.mimo.system import MIMOSystem

        system = MIMOSystem(6, 6, "4qam")
        frame = system.random_frame(8.0, np.random.default_rng(seed))
        return system, frame

    def test_decode_emits_spans_and_counters(self):
        from repro.core.sphere_decoder import SphereDecoder

        system, frame = self.make_frame()
        decoder = SphereDecoder(system.constellation)
        decoder.prepare(frame.channel, noise_var=frame.noise_var)
        with use_tracer(Tracer()) as tracer:
            result = decoder.detect(frame.received)
        assert tracer.spans("sd.detect")
        assert tracer.spans("sd.solve")
        assert tracer.counters["sd.nodes_expanded"] == result.stats.nodes_expanded
        assert tracer.counters["sd.gemm_calls"] == result.stats.gemm_calls

    def test_decode_without_tracer_emits_nothing(self):
        from repro.core.sphere_decoder import SphereDecoder

        system, frame = self.make_frame()
        decoder = SphereDecoder(system.constellation)
        decoder.prepare(frame.channel, noise_var=frame.noise_var)
        result = decoder.detect(frame.received)  # no ambient tracer
        assert result.stats.nodes_expanded > 0
        assert NULL_TRACER.events == []

    def test_bfs_decoder_instrumented(self):
        from repro.detectors.sd_bfs import GemmBfsDecoder

        system, frame = self.make_frame()
        decoder = GemmBfsDecoder(system.constellation)
        decoder.prepare(frame.channel, noise_var=frame.noise_var)
        with use_tracer(Tracer()) as tracer:
            decoder.detect(frame.received)
        assert tracer.spans("bfs.detect")
        assert tracer.spans("bfs.level")
        assert tracer.counters["bfs.nodes_expanded"] > 0

    def test_montecarlo_instrumented(self):
        from repro.core.radius import NoiseScaledRadius
        from repro.core.sphere_decoder import SphereDecoder
        from repro.mimo.montecarlo import MonteCarloEngine
        from repro.mimo.system import MIMOSystem

        system = MIMOSystem(4, 4, "4qam")
        engine = MonteCarloEngine(
            system, channels=1, frames_per_channel=2, seed=1
        )
        with use_tracer(Tracer()) as tracer:
            engine.run(
                lambda: SphereDecoder(
                    system.constellation,
                    radius_policy=NoiseScaledRadius(alpha=2.0),
                ),
                [8.0],
            )
        assert len(tracer.spans("mc.point")) == 1
        assert len(tracer.spans("mc.frame")) == 2
        assert tracer.counters["mc.frames"] == 2
