"""Tests for the convolutional code + Viterbi decoder."""

import numpy as np
import pytest

from repro.coding import ConvolutionalCode, ViterbiDecoder


@pytest.fixture
def k3():
    """The textbook K=3 (7, 5) code."""
    return ConvolutionalCode(generators=(0o7, 0o5), constraint_length=3)


@pytest.fixture
def k7():
    """The industry-standard K=7 (133, 171) code."""
    return ConvolutionalCode()


class TestEncoder:
    def test_known_vector_k3(self, k3):
        """Standard (7,5) test vector: input 1 0 1 from state 0."""
        coded = k3.encode(np.array([1, 0, 1]))
        # step1: reg=100 -> g7(111)=1, g5(101)=1 -> 11
        # step2: reg=010 -> g7=1, g5=0       -> 10
        # step3: reg=101 -> g7=0, g5=0       -> 00
        # flush 0: reg=010 -> 10 ; flush 0: reg=001 -> 11
        expected = np.array([1, 1, 1, 0, 0, 0, 1, 0, 1, 1], dtype=bool)
        assert np.array_equal(coded, expected)

    def test_coded_length(self, k3, k7):
        assert k3.coded_length(10) == (10 + 2) * 2
        assert k7.coded_length(100) == (100 + 6) * 2

    def test_rate(self, k3):
        assert k3.rate == 0.5

    def test_linear_over_gf2(self, k3, rng):
        """Encoding is linear: enc(a xor b) == enc(a) xor enc(b)."""
        a = rng.integers(0, 2, 16)
        b = rng.integers(0, 2, 16)
        lhs = k3.encode(a ^ b)
        rhs = k3.encode(a) ^ k3.encode(b)
        assert np.array_equal(lhs, rhs)

    def test_all_zero_input(self, k3):
        assert not k3.encode(np.zeros(8, dtype=int)).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(generators=(0o7,))
        with pytest.raises(ValueError):
            ConvolutionalCode(generators=(0, 5))
        with pytest.raises(ValueError):
            ConvolutionalCode(generators=(0o7, 0o5), constraint_length=2)
        code = ConvolutionalCode(generators=(0o7, 0o5))
        with pytest.raises(ValueError):
            code.encode(np.zeros(0, dtype=int))


class TestFreeDistance:
    def test_known_k3(self, k3):
        """(7,5) K=3 has d_free = 5 (standard result)."""
        assert k3.free_distance() == 5

    def test_known_k7(self, k7):
        """(133,171) K=7 has d_free = 10 (standard result)."""
        assert k7.free_distance() == 10

    def test_guaranteed_correction_radius(self, k3, rng):
        """Any floor((d_free-1)/2) errors in one frame are corrected."""
        from itertools import combinations

        dec = ViterbiDecoder(k3)
        t = (k3.free_distance() - 1) // 2  # = 2
        msg = rng.integers(0, 2, 8).astype(bool)
        cw = k3.encode(msg).astype(int)
        # Exhaustively try every 2-error pattern on this codeword.
        for positions in combinations(range(cw.size), t):
            corrupted = cw.copy()
            corrupted[list(positions)] ^= 1
            assert np.array_equal(dec.decode_hard(corrupted), msg), positions


class TestHardViterbi:
    def test_noiseless_roundtrip(self, k7, rng):
        msg = rng.integers(0, 2, 64).astype(bool)
        dec = ViterbiDecoder(k7)
        assert np.array_equal(dec.decode_hard(k7.encode(msg).astype(int)), msg)

    def test_corrects_scattered_errors(self, k7, rng):
        """K=7 free distance 10: corrects several well-spaced errors."""
        dec = ViterbiDecoder(k7)
        for trial in range(10):
            msg = rng.integers(0, 2, 60).astype(bool)
            cw = k7.encode(msg).astype(int)
            pos = rng.choice(cw.size, size=5, replace=False)
            cw[pos] ^= 1
            assert np.array_equal(dec.decode_hard(cw), msg), f"trial {trial}"

    def test_k3_corrects_single_error(self, k3, rng):
        dec = ViterbiDecoder(k3)
        msg = rng.integers(0, 2, 20).astype(bool)
        cw = k3.encode(msg).astype(int)
        for pos in range(0, cw.size, 7):
            corrupted = cw.copy()
            corrupted[pos] ^= 1
            assert np.array_equal(dec.decode_hard(corrupted), msg)

    def test_length_validated(self, k3):
        with pytest.raises(ValueError):
            ViterbiDecoder(k3).decode_hard(np.zeros(5, dtype=int))


class TestSoftViterbi:
    def test_strong_llrs_roundtrip(self, k7, rng):
        msg = rng.integers(0, 2, 48).astype(bool)
        cw = k7.encode(msg)
        llrs = (2.0 * cw - 1.0) * 8.0
        assert np.array_equal(ViterbiDecoder(k7).decode_soft(llrs), msg)

    def test_soft_beats_hard_on_awgn(self, k7, rng):
        """The canonical ~2 dB soft-decision gain, verified as a bit-count
        win over many noisy frames at matched SNR."""
        dec = ViterbiDecoder(k7)
        sigma = 0.9
        hard_errors = soft_errors = 0
        for _ in range(30):
            msg = rng.integers(0, 2, 64).astype(bool)
            cw = k7.encode(msg)
            tx = 2.0 * cw - 1.0
            rx = tx + sigma * rng.standard_normal(tx.size)
            llrs = 2.0 * rx / sigma**2
            hard_in = (rx > 0).astype(int)
            hard_errors += int(np.count_nonzero(dec.decode_hard(hard_in) != msg))
            soft_errors += int(np.count_nonzero(dec.decode_soft(llrs) != msg))
        assert soft_errors < hard_errors

    def test_zero_llrs_still_decode_something(self, k3):
        out = ViterbiDecoder(k3).decode_soft(np.zeros(k3.coded_length(5)))
        assert out.shape == (5,)

    def test_length_validated(self, k3):
        with pytest.raises(ValueError):
            ViterbiDecoder(k3).decode_soft(np.zeros(5))


class TestCodedMimoIntegration:
    def test_soft_mimo_llrs_feed_viterbi(self, rng):
        """Full coded link: conv-encode, transmit over MIMO frames,
        list-sphere soft detection, soft Viterbi decode."""
        from repro.detectors.soft import SoftOutputSphereDetector
        from repro.core.radius import NoiseScaledRadius
        from repro.mimo.system import MIMOSystem

        system = MIMOSystem(4, 4, "4qam")
        code = ConvolutionalCode(generators=(0o7, 0o5), constraint_length=3)
        dec = ViterbiDecoder(code)
        bits_per_frame = system.bits_per_frame
        msg = rng.integers(0, 2, 46).astype(bool)
        coded = code.encode(msg)  # 96 bits = 12 frames of 8
        assert coded.size % bits_per_frame == 0
        detector = SoftOutputSphereDetector(
            system.constellation, radius_policy=NoiseScaledRadius(alpha=6.0)
        )
        llrs = np.empty(coded.size)
        for i in range(coded.size // bits_per_frame):
            chunk = coded[i * bits_per_frame : (i + 1) * bits_per_frame]
            indices = system.constellation.bits_to_indices(chunk)
            symbols = system.constellation.map_indices(indices)
            channel = system.channel_model.draw_channel(rng)
            noise_var = system.noise_var(14.0)
            y = system.channel_model.transmit(channel, symbols, noise_var, rng)
            detector.prepare(channel, noise_var=noise_var)
            soft = detector.detect_soft(y)
            llrs[i * bits_per_frame : (i + 1) * bits_per_frame] = soft.llrs
        decoded = dec.decode_soft(llrs)
        # At 14 dB with rate-1/2 coding the message comes back clean.
        assert np.array_equal(decoded, msg)
