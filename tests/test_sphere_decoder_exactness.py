"""Exactness of the sphere decoder: it must return the ML answer.

These are the load-bearing correctness tests of the whole reproduction:
every traversal strategy, radius policy, column ordering and pool size
must return a vector whose ML metric equals the brute-force minimum
(ties in metric are allowed; index equality is checked when the minimum
is unique, which it is with probability 1 for continuous channels).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.radius import (
    BabaiRadius,
    FixedRadius,
    InfiniteRadius,
    NoiseScaledRadius,
)
from repro.core.sphere_decoder import SphereDecoder
from repro.detectors.ml import MLDetector
from repro.mimo.system import MIMOSystem


def assert_ml_equal(sd_result, ml_result):
    assert sd_result.metric == pytest.approx(ml_result.metric, rel=1e-9, abs=1e-12)
    assert np.array_equal(sd_result.indices, ml_result.indices)


def run_pair(system, decoder, snr_db, seed):
    rng = np.random.default_rng(seed)
    frame = system.random_frame(snr_db, rng)
    ml = MLDetector(system.constellation)
    ml.prepare(frame.channel)
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    return decoder.detect(frame.received), ml.detect(frame.received)


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["best-first", "dfs"])
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_ml_4qam(self, strategy, seed):
        system = MIMOSystem(5, 5, "4qam")
        decoder = SphereDecoder(system.constellation, strategy=strategy)
        sd, ml = run_pair(system, decoder, 8.0, seed)
        assert_ml_equal(sd, ml)

    @pytest.mark.parametrize("strategy", ["best-first", "dfs"])
    def test_matches_ml_16qam(self, strategy):
        system = MIMOSystem(3, 3, "16qam")
        decoder = SphereDecoder(system.constellation, strategy=strategy)
        sd, ml = run_pair(system, decoder, 10.0, 1)
        assert_ml_equal(sd, ml)

    @pytest.mark.parametrize("strategy", ["best-first", "dfs"])
    def test_matches_ml_bpsk(self, strategy):
        system = MIMOSystem(6, 6, "bpsk")
        decoder = SphereDecoder(system.constellation, strategy=strategy)
        sd, ml = run_pair(system, decoder, 6.0, 2)
        assert_ml_equal(sd, ml)

    def test_low_snr_stress(self):
        """Very noisy: the search has to work hard and stay exact."""
        system = MIMOSystem(4, 4, "4qam")
        for seed in range(10):
            decoder = SphereDecoder(system.constellation, strategy="dfs")
            sd, ml = run_pair(system, decoder, 0.0, seed)
            assert_ml_equal(sd, ml)


class TestRadiusPolicies:
    @pytest.mark.parametrize(
        "policy",
        [
            InfiniteRadius(),
            BabaiRadius(),
            NoiseScaledRadius(alpha=2.0),
            NoiseScaledRadius(alpha=0.5),  # frequently erases -> escalation path
            FixedRadius(radius_sq=0.05),  # almost always erases
        ],
        ids=["inf", "babai", "noise2", "noise0.5", "fixed-tiny"],
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_all_policies_exact(self, policy, seed):
        system = MIMOSystem(4, 4, "4qam")
        decoder = SphereDecoder(system.constellation, radius_policy=policy)
        sd, ml = run_pair(system, decoder, 6.0, seed)
        assert_ml_equal(sd, ml)

    def test_escalation_counted_in_trace(self):
        system = MIMOSystem(4, 4, "4qam")
        decoder = SphereDecoder(
            system.constellation,
            strategy="dfs",
            radius_policy=FixedRadius(radius_sq=1e-6),
        )
        sd, ml = run_pair(system, decoder, 6.0, 0)
        assert_ml_equal(sd, ml)
        # The radius trace must show at least one escalation step.
        assert len(sd.stats.radius_trace) >= 2


class TestOrderingsAndPools:
    @pytest.mark.parametrize("ordering", ["natural", "sqrd"])
    @pytest.mark.parametrize("seed", range(3))
    def test_column_orderings_exact(self, ordering, seed):
        system = MIMOSystem(5, 5, "4qam")
        decoder = SphereDecoder(system.constellation, ordering=ordering)
        sd, ml = run_pair(system, decoder, 8.0, seed)
        assert_ml_equal(sd, ml)

    @pytest.mark.parametrize("pool_size", [1, 2, 8, 64])
    def test_pool_sizes_exact(self, pool_size):
        system = MIMOSystem(5, 5, "4qam")
        decoder = SphereDecoder(system.constellation, pool_size=pool_size)
        sd, ml = run_pair(system, decoder, 4.0, 3)
        assert_ml_equal(sd, ml)

    @pytest.mark.parametrize("child_ordering", ["natural", "sorted"])
    def test_child_orderings_exact(self, child_ordering):
        system = MIMOSystem(5, 5, "4qam")
        decoder = SphereDecoder(
            system.constellation, strategy="dfs", child_ordering=child_ordering
        )
        sd, ml = run_pair(system, decoder, 6.0, 4)
        assert_ml_equal(sd, ml)


class TestNonSquareSystems:
    @pytest.mark.parametrize("n_rx", [5, 7, 9])
    def test_overdetermined_exact(self, n_rx):
        system = MIMOSystem(4, n_rx, "4qam")
        decoder = SphereDecoder(system.constellation)
        sd, ml = run_pair(system, decoder, 6.0, 0)
        assert_ml_equal(sd, ml)

    def test_single_stream(self):
        system = MIMOSystem(1, 4, "16qam")
        decoder = SphereDecoder(system.constellation)
        sd, ml = run_pair(system, decoder, 5.0, 0)
        assert_ml_equal(sd, ml)


@given(
    n=st.integers(min_value=1, max_value=5),
    extra=st.integers(min_value=0, max_value=2),
    order=st.sampled_from(["bpsk", "4qam"]),
    strategy=st.sampled_from(["best-first", "dfs"]),
    snr_db=st.floats(min_value=-2.0, max_value=25.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_sphere_decoder_is_ml(n, extra, order, strategy, snr_db, seed):
    """For random systems and any strategy, SD metric == brute-force ML."""
    system = MIMOSystem(n, n + extra, order)
    decoder = SphereDecoder(system.constellation, strategy=strategy)
    rng = np.random.default_rng(seed)
    frame = system.random_frame(snr_db, rng)
    ml = MLDetector(system.constellation)
    ml.prepare(frame.channel)
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    sd_result = decoder.detect(frame.received)
    ml_result = ml.detect(frame.received)
    assert sd_result.metric == pytest.approx(
        ml_result.metric, rel=1e-9, abs=1e-12
    )
