"""Tests for the block interleaver and the exact BER confidence interval."""

import numpy as np
import pytest

from repro.coding import BlockInterleaver
from repro.mimo.metrics import ErrorCounter


class TestBlockInterleaver:
    def test_roundtrip(self, rng):
        il = BlockInterleaver(4, 6)
        data = rng.integers(0, 2, 24)
        assert np.array_equal(il.deinterleave(il.interleave(data)), data)

    def test_roundtrip_other_order(self, rng):
        il = BlockInterleaver(4, 6)
        data = rng.integers(0, 2, 24)
        assert np.array_equal(il.interleave(il.deinterleave(data)), data)

    def test_is_permutation(self):
        il = BlockInterleaver(3, 5)
        out = il.interleave(np.arange(15))
        assert sorted(out.tolist()) == list(range(15))

    def test_known_small_case(self):
        # rows=2, cols=3: [0 1 2; 3 4 5] read column-wise -> 0 3 1 4 2 5
        il = BlockInterleaver(2, 3)
        assert np.array_equal(il.interleave(np.arange(6)), [0, 3, 1, 4, 2, 5])

    def test_burst_spreading(self):
        """A burst of `rows` adjacent output symbols maps to inputs that
        are at least `rows` apart."""
        il = BlockInterleaver(4, 8)
        out_positions = il.interleave(np.arange(32))
        for start in range(0, 32 - 4):
            burst_inputs = sorted(out_positions[start : start + 4].tolist())
            gaps = np.diff(burst_inputs)
            assert np.all(gaps >= il.spread() - 1)

    def test_burst_correction_with_viterbi(self, rng):
        """Interleaving turns an uncorrectable burst into a correctable
        scatter for the K=3 code."""
        from repro.coding import ConvolutionalCode, ViterbiDecoder

        code = ConvolutionalCode(generators=(0o7, 0o5), constraint_length=3)
        dec = ViterbiDecoder(code)
        il = BlockInterleaver(8, 8)
        msg = rng.integers(0, 2, 30).astype(bool)  # -> 64 coded bits
        coded = code.encode(msg).astype(int)
        assert coded.size == il.block_size
        tx = il.interleave(coded)
        # Burst of 5 consecutive channel errors.
        tx_corrupted = tx.copy()
        tx_corrupted[10:15] ^= 1
        rx = il.deinterleave(tx_corrupted)
        assert np.array_equal(dec.decode_hard(rx), msg)

    def test_length_enforced(self):
        il = BlockInterleaver(2, 3)
        with pytest.raises(ValueError):
            il.interleave(np.arange(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockInterleaver(0, 4)


class TestExactConfidence:
    def test_brackets_estimate(self):
        counter = ErrorCounter(bit_errors=30, bits=1000)
        lo, hi = counter.ber_confidence_exact()
        assert lo <= counter.ber <= hi

    def test_zero_errors_nonzero_upper(self):
        """The rule-of-three regime: zero observed errors still leaves a
        positive upper bound (~3/n), unlike the normal approximation."""
        counter = ErrorCounter(bit_errors=0, bits=1000)
        lo, hi = counter.ber_confidence_exact()
        assert lo == 0.0
        assert 0.002 < hi < 0.005  # ~3/1000
        # Normal approximation collapses to a point here.
        n_lo, n_hi = counter.ber_confidence()
        assert n_lo == n_hi == 0.0

    def test_all_errors_lower_bound(self):
        counter = ErrorCounter(bit_errors=50, bits=50)
        lo, hi = counter.ber_confidence_exact()
        assert hi == 1.0
        assert lo > 0.9

    def test_narrower_with_more_data(self):
        small = ErrorCounter(bit_errors=5, bits=100)
        large = ErrorCounter(bit_errors=500, bits=10_000)
        w_small = np.diff(small.ber_confidence_exact())[0]
        w_large = np.diff(large.ber_confidence_exact())[0]
        assert w_large < w_small

    def test_agrees_with_normal_at_scale(self):
        counter = ErrorCounter(bit_errors=5000, bits=100_000)
        e_lo, e_hi = counter.ber_confidence_exact()
        n_lo, n_hi = counter.ber_confidence()
        assert e_lo == pytest.approx(n_lo, abs=5e-4)
        assert e_hi == pytest.approx(n_hi, abs=5e-4)

    def test_empty(self):
        lo, hi = ErrorCounter().ber_confidence_exact()
        assert np.isnan(lo) and np.isnan(hi)

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorCounter(bit_errors=1, bits=10).ber_confidence_exact(confidence=1.5)
