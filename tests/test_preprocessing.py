"""Tests for repro.mimo.preprocessing: QR, SQRD, real decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mimo.channel import ChannelModel
from repro.mimo.preprocessing import (
    effective_receive,
    qr_decompose,
    real_decomposition,
    sorted_qr,
)


def random_channel(n_rx, n_tx, seed):
    model = ChannelModel(n_tx=n_tx, n_rx=n_rx)
    return model.draw_channel(np.random.default_rng(seed))


class TestQrDecompose:
    def test_reconstruction(self):
        h = random_channel(6, 4, 0)
        qr = qr_decompose(h)
        assert np.allclose(qr.q @ qr.r, h)

    def test_q_orthonormal(self):
        h = random_channel(6, 4, 1)
        qr = qr_decompose(h)
        assert np.allclose(np.conj(qr.q.T) @ qr.q, np.eye(4), atol=1e-12)

    def test_r_upper_triangular(self):
        h = random_channel(5, 5, 2)
        qr = qr_decompose(h)
        assert np.allclose(np.tril(qr.r, -1), 0.0)

    def test_r_diagonal_real_positive(self):
        h = random_channel(5, 5, 3)
        qr = qr_decompose(h)
        diag = np.diagonal(qr.r)
        assert np.allclose(diag.imag, 0.0, atol=1e-12)
        assert np.all(diag.real > 0)

    def test_identity_permutation(self):
        h = random_channel(4, 4, 4)
        qr = qr_decompose(h)
        assert np.array_equal(qr.permutation, np.arange(4))

    def test_rejects_underdetermined(self):
        h = random_channel(3, 5, 5)
        with pytest.raises(ValueError, match="n_rx >= n_tx"):
            qr_decompose(h)

    def test_deterministic(self):
        h = random_channel(4, 4, 6)
        a = qr_decompose(h)
        b = qr_decompose(h)
        assert np.array_equal(a.r, b.r)


class TestSortedQr:
    def test_reconstruction_with_permutation(self):
        h = random_channel(6, 5, 7)
        qr = sorted_qr(h)
        assert np.allclose(qr.q @ qr.r, h[:, qr.permutation], atol=1e-10)

    def test_q_orthonormal(self):
        h = random_channel(6, 5, 8)
        qr = sorted_qr(h)
        assert np.allclose(np.conj(qr.q.T) @ qr.q, np.eye(5), atol=1e-10)

    def test_r_upper_triangular(self):
        h = random_channel(6, 5, 9)
        qr = sorted_qr(h)
        assert np.allclose(np.tril(qr.r, -1), 0.0, atol=1e-12)

    def test_permutation_is_permutation(self):
        h = random_channel(8, 8, 10)
        qr = sorted_qr(h)
        assert sorted(qr.permutation.tolist()) == list(range(8))

    def test_diag_real_positive(self):
        h = random_channel(6, 6, 11)
        qr = sorted_qr(h)
        diag = np.diagonal(qr.r)
        assert np.allclose(diag.imag, 0.0, atol=1e-12)
        assert np.all(diag.real > 0)

    def test_rejects_underdetermined(self):
        with pytest.raises(ValueError):
            sorted_qr(random_channel(3, 4, 12))

    def test_rank_deficient_raises(self):
        h = np.ones((4, 3), dtype=complex)  # rank 1
        with pytest.raises(np.linalg.LinAlgError):
            sorted_qr(h)

    def test_unpermute_roundtrip(self):
        h = random_channel(5, 5, 13)
        qr = sorted_qr(h)
        original = np.arange(5)
        assert np.array_equal(qr.unpermute(qr.permute(original)), original)

    def test_preserves_lattice_distances(self):
        """||y - H s|| is invariant under the (permuted) QR rotation."""
        rng = np.random.default_rng(14)
        h = random_channel(5, 5, 14)
        qr = sorted_qr(h)
        s = rng.standard_normal(5) + 1j * rng.standard_normal(5)
        y = rng.standard_normal(5) + 1j * rng.standard_normal(5)
        lhs = np.linalg.norm(y - h[:, qr.permutation] @ s) ** 2
        ybar = effective_receive(qr, y)
        rhs = np.linalg.norm(ybar - qr.r @ s) ** 2
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestEffectiveReceive:
    def test_matches_manual(self):
        h = random_channel(5, 4, 15)
        qr = qr_decompose(h)
        y = np.arange(5) + 1j * np.arange(5)
        assert np.allclose(effective_receive(qr, y), np.conj(qr.q.T) @ y)

    def test_length_validated(self):
        h = random_channel(5, 4, 16)
        qr = qr_decompose(h)
        with pytest.raises(ValueError):
            effective_receive(qr, np.zeros(4, dtype=complex))

    def test_metric_equivalence_square(self):
        """For square systems the reduced metric equals the full metric."""
        rng = np.random.default_rng(17)
        h = random_channel(4, 4, 17)
        qr = qr_decompose(h)
        s = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        y = h @ s + 0.1 * rng.standard_normal(4)
        full = np.linalg.norm(y - h @ s) ** 2
        reduced = np.linalg.norm(effective_receive(qr, y) - qr.r @ s) ** 2
        assert full == pytest.approx(reduced, rel=1e-9)

    def test_metric_offset_constant_thin(self):
        """For N > M the two metrics differ by a constant independent of s."""
        rng = np.random.default_rng(18)
        h = random_channel(6, 4, 18)
        qr = qr_decompose(h)
        y = rng.standard_normal(6) + 1j * rng.standard_normal(6)
        ybar = effective_receive(qr, y)
        offsets = []
        for _ in range(5):
            s = rng.standard_normal(4) + 1j * rng.standard_normal(4)
            full = np.linalg.norm(y - h @ s) ** 2
            reduced = np.linalg.norm(ybar - qr.r @ s) ** 2
            offsets.append(full - reduced)
        assert np.allclose(offsets, offsets[0], atol=1e-9)


class TestRealDecomposition:
    def test_shapes(self):
        h = random_channel(5, 3, 19)
        y = np.zeros(5, dtype=complex)
        hr, yr = real_decomposition(h, y)
        assert hr.shape == (10, 6)
        assert yr.shape == (10,)

    def test_equivalence(self):
        rng = np.random.default_rng(20)
        h = random_channel(4, 4, 20)
        s = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        y = h @ s
        hr, yr = real_decomposition(h, y)
        sr = np.concatenate([s.real, s.imag])
        assert np.allclose(hr @ sr, yr)

    def test_norm_preserved(self):
        rng = np.random.default_rng(21)
        h = random_channel(4, 4, 21)
        s = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        y = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        hr, yr = real_decomposition(h, y)
        sr = np.concatenate([s.real, s.imag])
        assert np.linalg.norm(y - h @ s) ** 2 == pytest.approx(
            np.linalg.norm(yr - hr @ sr) ** 2
        )


@given(
    n=st.integers(min_value=2, max_value=8),
    extra=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_property_sqrd_equals_plain_qr_objective(n, extra, seed):
    """SQRD and plain QR yield identical lattice metrics for any s."""
    rng = np.random.default_rng(seed)
    h = random_channel(n + extra, n, seed)
    plain = qr_decompose(h)
    srt = sorted_qr(h)
    s = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    y = rng.standard_normal(n + extra) + 1j * rng.standard_normal(n + extra)
    # Apply the SQRD ordering to s so both describe the same candidate.
    m_plain = np.linalg.norm(effective_receive(plain, y) - plain.r @ s) ** 2
    s_perm = s[srt.permutation]
    m_sqrd = np.linalg.norm(effective_receive(srt, y) - srt.r @ s_perm) ** 2
    assert m_plain == pytest.approx(m_sqrd, rel=1e-7, abs=1e-9)
