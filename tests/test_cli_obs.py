"""The ``obs`` subcommand and the ``--from-jsonl`` replay paths.

Exit-code contract: happy paths exit 0; empty/truncated telemetry files
and unknown run references exit 2 with a single ``error: ...`` line.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs import Tracer, use_tracer, write_jsonl
from repro.obs.registry import MANIFEST_FILE, STREAM_FILE


def _make_run(
    tmp_path,
    run_id="20260808T000000-fig6",
    *,
    docs=None,
    status="complete",
    stream=True,
):
    runs = tmp_path / "runs"
    run_dir = runs / run_id
    run_dir.mkdir(parents=True)
    if docs is None:
        docs = [
            {"t": 100.0, "counters": {"mc.frames": 10, "mc.nodes_expanded": 1000}},
            {"t": 102.0, "counters": {"mc.frames": 30, "mc.nodes_expanded": 5000}},
        ]
    if stream:
        (run_dir / STREAM_FILE).write_text(
            "".join(json.dumps(d) + "\n" for d in docs)
        )
    if status is not None:
        (run_dir / MANIFEST_FILE).write_text(
            json.dumps({"run_id": run_id, "status": status})
        )
    return runs, run_id


class TestObsTail:
    def test_tail_prints_one_line_per_snapshot(self, tmp_path, capsys):
        runs, run_id = _make_run(tmp_path)
        assert main(["obs", "--dir", str(runs), "tail", run_id]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2
        assert "frames" in out[0]
        assert "fr/s" in out[1]  # rates appear from the second line on

    def test_tail_resolves_latest(self, tmp_path, capsys):
        runs, _ = _make_run(tmp_path)
        assert main(["obs", "--dir", str(runs), "tail", "latest"]) == 0
        assert capsys.readouterr().out.strip()

    def test_follow_drains_then_stops_on_finished_run(self, tmp_path, capsys):
        runs, run_id = _make_run(tmp_path, status="failed")
        code = main(
            ["obs", "--dir", str(runs), "tail", run_id, "-f", "--poll", "0.01"]
        )
        assert code == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2

    def test_empty_stream_exits_2(self, tmp_path, capsys):
        runs, run_id = _make_run(tmp_path, docs=[])
        assert main(["obs", "--dir", str(runs), "tail", run_id]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "empty" in err

    def test_truncated_stream_exits_2(self, tmp_path, capsys):
        runs, run_id = _make_run(tmp_path, stream=False)
        (runs / run_id / STREAM_FILE).write_text('{"t": 1.0}\n{"t": 2.')
        assert main(["obs", "--dir", str(runs), "tail", run_id]) == 2
        assert "line 2" in capsys.readouterr().err

    def test_missing_stream_exits_2(self, tmp_path, capsys):
        runs, run_id = _make_run(tmp_path, stream=False)
        assert main(["obs", "--dir", str(runs), "tail", run_id]) == 2
        assert "no metrics stream" in capsys.readouterr().err

    def test_unknown_run_exits_2(self, tmp_path, capsys):
        runs, _ = _make_run(tmp_path)
        assert main(["obs", "--dir", str(runs), "tail", "nope"]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestObsTop:
    def test_top_renders_snapshot_table(self, tmp_path, capsys):
        runs, run_id = _make_run(tmp_path)
        assert main(["obs", "--dir", str(runs), "top", run_id]) == 0
        out = capsys.readouterr().out
        assert f"run {run_id}" in out
        assert "2 snapshot(s)" in out
        assert "frames" in out

    def test_top_on_empty_stream_exits_2(self, tmp_path, capsys):
        runs, run_id = _make_run(tmp_path, docs=[])
        assert main(["obs", "--dir", str(runs), "top", run_id]) == 2
        assert "empty" in capsys.readouterr().err


def _event_log(tmp_path):
    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("mc.block", snr_db=8.0):
            tracer.instant("mc.heartbeat", blocks_done=1)
        tracer.count("mc.frames", 3)
    return write_jsonl(tracer, tmp_path / "events.jsonl")


class TestFromJsonl:
    def test_trace_rerenders_saved_log(self, tmp_path, capsys):
        log = _event_log(tmp_path)
        out_path = tmp_path / "trace.json"
        code = main(
            ["trace", "--from-jsonl", str(log), "--out", str(out_path)]
        )
        assert code == 0
        assert "Chrome trace written" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert any(
            ev.get("name") == "mc.block" for ev in doc["traceEvents"]
        )

    def test_stats_summarises_saved_log(self, tmp_path, capsys):
        log = _event_log(tmp_path)
        assert main(["stats", "--from-jsonl", str(log)]) == 0
        out = capsys.readouterr().out
        assert str(log) in out
        assert "mc.block" in out

    def test_empty_log_exits_2(self, tmp_path, capsys):
        log = tmp_path / "empty.jsonl"
        log.write_text("")
        assert main(["trace", "--from-jsonl", str(log)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_truncated_log_exits_2(self, tmp_path, capsys):
        good = _event_log(tmp_path)
        clipped = tmp_path / "clipped.jsonl"
        clipped.write_text(good.read_text()[:-10])
        assert main(["stats", "--from-jsonl", str(clipped)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_log_exits_2(self, tmp_path, capsys):
        assert (
            main(["trace", "--from-jsonl", str(tmp_path / "absent.jsonl")])
            == 2
        )
        assert "no JSONL event log" in capsys.readouterr().err
