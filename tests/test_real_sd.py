"""Tests for the real-valued-decomposition sphere decoder."""

import numpy as np
import pytest

from repro.core.sphere_decoder import SphereDecoder
from repro.detectors.ml import MLDetector
from repro.detectors.real_sd import RealSphereDecoder, pam_component
from repro.mimo.constellation import Constellation
from repro.mimo.system import MIMOSystem


class TestPamComponent:
    def test_4qam_gives_2pam(self):
        pam = pam_component(Constellation.qam(4))
        assert pam.order == 2
        assert np.allclose(pam.points.imag, 0.0)

    def test_16qam_gives_4pam(self):
        pam = pam_component(Constellation.qam(16))
        assert pam.order == 4
        levels = np.sort(pam.points.real)
        assert np.all(np.diff(levels) > 0)

    def test_levels_match_qam_grid(self):
        qam = Constellation.qam(16)
        pam = pam_component(qam)
        # QAM point index = i*4 + q must decompose onto the PAM levels.
        for idx in range(16):
            i_idx, q_idx = divmod(idx, 4)
            point = qam.points[idx]
            assert point.real == pytest.approx(float(pam.points[i_idx].real))
            assert point.imag == pytest.approx(float(pam.points[q_idx].real))

    def test_labels_match_qam_per_dimension(self):
        qam = Constellation.qam(16)
        pam = pam_component(qam)
        for idx in range(16):
            i_idx, q_idx = divmod(idx, 4)
            expected = np.concatenate([pam.labels[i_idx], pam.labels[q_idx]])
            assert np.array_equal(qam.labels[idx], expected)

    def test_rejects_bpsk(self):
        with pytest.raises(ValueError):
            pam_component(Constellation.bpsk())


class TestExactness:
    @pytest.mark.parametrize("modulation", ["4qam", "16qam"])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_ml(self, modulation, seed):
        system = MIMOSystem(4, 4, modulation)
        rng = np.random.default_rng(seed)
        frame = system.random_frame(8.0, rng)
        ml = MLDetector(system.constellation)
        ml.prepare(frame.channel)
        real_sd = RealSphereDecoder(system.constellation)
        real_sd.prepare(frame.channel, noise_var=frame.noise_var)
        a = real_sd.detect(frame.received)
        b = ml.detect(frame.received)
        assert a.metric == pytest.approx(b.metric, rel=1e-9)
        assert np.array_equal(a.indices, b.indices)

    def test_matches_complex_domain_decoder(self):
        system = MIMOSystem(6, 6, "4qam")
        rng = np.random.default_rng(7)
        frame = system.random_frame(6.0, rng)
        complex_sd = SphereDecoder(system.constellation)
        real_sd = RealSphereDecoder(system.constellation)
        complex_sd.prepare(frame.channel, noise_var=frame.noise_var)
        real_sd.prepare(frame.channel, noise_var=frame.noise_var)
        a = complex_sd.detect(frame.received)
        b = real_sd.detect(frame.received)
        assert np.array_equal(a.indices, b.indices)
        assert a.metric == pytest.approx(b.metric, rel=1e-9)

    def test_high_snr_recovers(self):
        system = MIMOSystem(8, 8, "16qam")
        frame = system.random_frame(60.0, np.random.default_rng(0))
        det = RealSphereDecoder(system.constellation)
        det.prepare(frame.channel, noise_var=frame.noise_var)
        assert np.array_equal(det.detect(frame.received).indices, frame.symbol_indices)


class TestDomainTradeoff:
    def test_tree_is_twice_as_deep_with_narrower_branching(self):
        """Real domain: 2M levels, sqrt(P) children per expansion."""
        system = MIMOSystem(5, 5, "16qam")
        frame = system.random_frame(10.0, np.random.default_rng(1))
        det = RealSphereDecoder(system.constellation)
        det.prepare(frame.channel, noise_var=frame.noise_var)
        result = det.detect(frame.received)
        st = result.stats
        levels = {ev.level for ev in st.batches}
        assert max(levels) == 9  # 2M - 1
        # Children per expansion = sqrt(16) = 4.
        assert st.nodes_generated == st.nodes_expanded * 4

    def test_real_domain_generates_fewer_children_for_16qam(self):
        """At this configuration (5x5 16-QAM, 10 dB) the PAM tree's
        finer-grained pruning evaluates fewer children. (The trade-off is
        configuration-dependent — see the ablation-domain experiment —
        so this pins one known-favourable point, deterministically.)"""
        system = MIMOSystem(5, 5, "16qam")
        rng = np.random.default_rng(3)
        complex_children = real_children = 0
        for _ in range(5):
            frame = system.random_frame(10.0, rng)
            c = SphereDecoder(system.constellation, strategy="dfs")
            r = RealSphereDecoder(system.constellation, strategy="dfs")
            c.prepare(frame.channel, noise_var=frame.noise_var)
            r.prepare(frame.channel, noise_var=frame.noise_var)
            complex_children += c.detect(frame.received).stats.nodes_generated
            real_children += r.detect(frame.received).stats.nodes_generated
        assert real_children < complex_children

    def test_contract(self):
        system = MIMOSystem(4, 4, "16qam")
        frame = system.random_frame(12.0, np.random.default_rng(2))
        det = RealSphereDecoder(system.constellation)
        det.prepare(frame.channel, noise_var=frame.noise_var)
        result = det.detect(frame.received)
        assert result.indices.shape == (4,)
        assert np.array_equal(
            result.symbols, system.constellation.points[result.indices]
        )
        assert np.array_equal(
            result.bits, system.constellation.indices_to_bits(result.indices)
        )

    def test_requires_prepare_and_square_qam(self):
        with pytest.raises(RuntimeError):
            RealSphereDecoder(Constellation.qam(4)).detect(np.zeros(4, complex))
        with pytest.raises(ValueError):
            RealSphereDecoder(Constellation.bpsk())
