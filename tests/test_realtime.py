"""Tests for the M/G/1 real-time analysis."""

import numpy as np
import pytest

from repro.bench.realtime import (
    QueueReport,
    empirical_report,
    lindley_waits,
    max_sustainable_rate,
    mg1_report,
)


class TestMg1Report:
    def test_deterministic_service_matches_md1(self):
        """Constant service: W = rho * S / (2 (1-rho)) (M/D/1)."""
        service = np.full(1000, 2e-3)
        rate = 100.0  # rho = 0.2
        report = mg1_report(service, rate)
        assert report.utilization == pytest.approx(0.2)
        expected_wait = 0.2 * 2e-3 / (2 * 0.8)
        assert report.mean_wait_s == pytest.approx(expected_wait, rel=1e-9)
        assert report.service_scv == pytest.approx(0.0, abs=1e-12)

    def test_sojourn_is_wait_plus_service(self):
        service = np.full(10, 1e-3)
        report = mg1_report(service, 100.0)
        assert report.mean_sojourn_s == pytest.approx(
            report.mean_wait_s + 1e-3
        )

    def test_variance_increases_waiting(self):
        """Same mean, higher variance => longer queues (P-K formula)."""
        constant = np.full(1000, 1e-3)
        bursty = np.concatenate([np.full(900, 0.5e-3), np.full(100, 5.5e-3)])
        assert np.mean(bursty) == pytest.approx(1e-3)
        rate = 500.0
        assert (
            mg1_report(bursty, rate).mean_wait_s
            > mg1_report(constant, rate).mean_wait_s
        )

    def test_saturation(self):
        service = np.full(10, 1e-3)
        report = mg1_report(service, 2000.0)  # rho = 2
        assert not report.stable
        assert report.mean_wait_s == np.inf
        assert report.deadline_miss_bound(10e-3) == 1.0

    def test_miss_bound_monotone_in_deadline(self):
        service = np.full(100, 1e-3)
        report = mg1_report(service, 400.0)
        assert report.deadline_miss_bound(5e-3) >= report.deadline_miss_bound(
            20e-3
        )

    def test_miss_bound_capped_at_one(self):
        report = mg1_report(np.full(10, 1e-3), 100.0)
        assert report.deadline_miss_bound(1e-9) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mg1_report(np.array([]), 1.0)
        with pytest.raises(ValueError):
            mg1_report(np.array([1e-3, -1e-3]), 1.0)
        with pytest.raises(ValueError):
            mg1_report(np.array([1e-3]), 0.0)
        with pytest.raises(ValueError):
            mg1_report(np.array([1e-3]), 10.0).deadline_miss_bound(0.0)


class TestMaxSustainableRate:
    def test_faster_service_sustains_more(self):
        fast = np.full(200, 0.2e-3)
        slow = np.full(200, 2e-3)
        assert max_sustainable_rate(fast) > max_sustainable_rate(slow)

    def test_rate_below_stability_limit(self):
        service = np.full(100, 1e-3)
        rate = max_sustainable_rate(service, miss_bound=0.5)
        assert 0 < rate < 1000.0  # never exceeds the rho < 1 limit

    def test_bound_respected_at_returned_rate(self):
        service = np.full(100, 0.5e-3)
        rate = max_sustainable_rate(service, deadline_s=10e-3, miss_bound=0.1)
        report = mg1_report(service, rate * 0.999)
        assert report.deadline_miss_bound(10e-3) <= 0.1 + 1e-6

    def test_impossible_deadline_gives_zero(self):
        service = np.full(10, 50e-3)  # mean service alone busts 10 ms
        assert max_sustainable_rate(service, deadline_s=10e-3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            max_sustainable_rate(np.full(5, 1e-3), deadline_s=0.0)
        with pytest.raises(ValueError):
            max_sustainable_rate(np.full(5, 1e-3), miss_bound=0.0)


class TestEndToEndCapacity:
    def test_fpga_sustains_more_load_than_cpu(self):
        """The deployment punchline: same traces, FPGA supports a far
        higher vector arrival rate within the 10 ms budget."""
        from repro.bench.harness import run_workload_sweep

        workload = run_workload_sweep(
            10, "4qam", snrs=[8.0], channels=3, frames_per_channel=4, seed=0
        )
        stats = workload.sweep.points[0].frame_stats
        cpu_times = np.array(
            [workload.cpu.decode_seconds(st) for st in stats]
        )
        fpga_times = np.array(
            [workload.fpga_optimized.decode_report(st).seconds for st in stats]
        )
        cpu_rate = max_sustainable_rate(cpu_times)
        fpga_rate = max_sustainable_rate(fpga_times)
        assert fpga_rate > 3 * cpu_rate


class TestLindleyWaits:
    def test_no_queueing_when_gaps_exceed_service(self):
        arrivals = np.arange(10) * 1.0
        service = np.full(10, 0.1)
        assert np.all(lindley_waits(arrivals, service) == 0.0)

    def test_back_to_back_arrivals_queue_linearly(self):
        """Simultaneous arrivals: the n-th waits for n-1 services."""
        arrivals = np.zeros(5)
        service = np.full(5, 2.0)
        np.testing.assert_allclose(
            lindley_waits(arrivals, service), [0, 2, 4, 6, 8]
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="align"):
            lindley_waits(np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError, match="non-decreasing"):
            lindley_waits(np.array([1.0, 0.5]), np.ones(2))


class TestEmpiricalReport:
    def test_deterministic_for_seed(self):
        service = np.full(50, 1e-3)
        a = empirical_report(service, 300.0, duration_s=2.0, seed=4)
        b = empirical_report(service, 300.0, duration_s=2.0, seed=4)
        assert a == b

    def test_poisson_mean_matches_pollaczek_khinchine(self):
        """M/M/1 cross-check: empirical mean sojourn ~ P-K analytic."""
        rng = np.random.default_rng(8)
        service = rng.exponential(1e-3, 4000)
        rate = 600.0
        analytic = mg1_report(service, rate)
        emp = empirical_report(service, rate, duration_s=60.0, seed=8)
        assert emp.mean_sojourn_s == pytest.approx(
            analytic.mean_sojourn_s, rel=0.3
        )
        assert emp.utilization == pytest.approx(analytic.utilization)

    def test_bursty_arrivals_inflate_the_tail(self):
        """What the M/G/1 assumption hides: same mean rate, worse p99."""
        rng = np.random.default_rng(9)
        service = rng.exponential(1e-3, 2000)
        poisson = empirical_report(
            service, 500.0, duration_s=40.0, profile="poisson", seed=2
        )
        bursty = empirical_report(
            service, 500.0, duration_s=40.0, profile="bursty", seed=2
        )
        assert bursty.p99_sojourn_s > poisson.p99_sojourn_s

    def test_percentiles_ordered_and_miss_fraction_consistent(self):
        rng = np.random.default_rng(10)
        service = rng.exponential(0.8e-3, 1000)
        emp = empirical_report(
            service, 700.0, duration_s=20.0, deadline_s=5e-3, seed=1
        )
        assert emp.p50_sojourn_s <= emp.p95_sojourn_s <= emp.p99_sojourn_s
        assert 0.0 <= emp.miss_fraction <= 1.0
        assert emp.stable

    def test_validation(self):
        with pytest.raises(ValueError):
            empirical_report(np.array([]), 100.0)
        with pytest.raises(ValueError, match="too few arrivals"):
            empirical_report(np.full(5, 1e-3), 0.1, duration_s=0.1)
