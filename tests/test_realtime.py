"""Tests for the M/G/1 real-time analysis."""

import numpy as np
import pytest

from repro.bench.realtime import QueueReport, max_sustainable_rate, mg1_report


class TestMg1Report:
    def test_deterministic_service_matches_md1(self):
        """Constant service: W = rho * S / (2 (1-rho)) (M/D/1)."""
        service = np.full(1000, 2e-3)
        rate = 100.0  # rho = 0.2
        report = mg1_report(service, rate)
        assert report.utilization == pytest.approx(0.2)
        expected_wait = 0.2 * 2e-3 / (2 * 0.8)
        assert report.mean_wait_s == pytest.approx(expected_wait, rel=1e-9)
        assert report.service_scv == pytest.approx(0.0, abs=1e-12)

    def test_sojourn_is_wait_plus_service(self):
        service = np.full(10, 1e-3)
        report = mg1_report(service, 100.0)
        assert report.mean_sojourn_s == pytest.approx(
            report.mean_wait_s + 1e-3
        )

    def test_variance_increases_waiting(self):
        """Same mean, higher variance => longer queues (P-K formula)."""
        constant = np.full(1000, 1e-3)
        bursty = np.concatenate([np.full(900, 0.5e-3), np.full(100, 5.5e-3)])
        assert np.mean(bursty) == pytest.approx(1e-3)
        rate = 500.0
        assert (
            mg1_report(bursty, rate).mean_wait_s
            > mg1_report(constant, rate).mean_wait_s
        )

    def test_saturation(self):
        service = np.full(10, 1e-3)
        report = mg1_report(service, 2000.0)  # rho = 2
        assert not report.stable
        assert report.mean_wait_s == np.inf
        assert report.deadline_miss_bound(10e-3) == 1.0

    def test_miss_bound_monotone_in_deadline(self):
        service = np.full(100, 1e-3)
        report = mg1_report(service, 400.0)
        assert report.deadline_miss_bound(5e-3) >= report.deadline_miss_bound(
            20e-3
        )

    def test_miss_bound_capped_at_one(self):
        report = mg1_report(np.full(10, 1e-3), 100.0)
        assert report.deadline_miss_bound(1e-9) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mg1_report(np.array([]), 1.0)
        with pytest.raises(ValueError):
            mg1_report(np.array([1e-3, -1e-3]), 1.0)
        with pytest.raises(ValueError):
            mg1_report(np.array([1e-3]), 0.0)
        with pytest.raises(ValueError):
            mg1_report(np.array([1e-3]), 10.0).deadline_miss_bound(0.0)


class TestMaxSustainableRate:
    def test_faster_service_sustains_more(self):
        fast = np.full(200, 0.2e-3)
        slow = np.full(200, 2e-3)
        assert max_sustainable_rate(fast) > max_sustainable_rate(slow)

    def test_rate_below_stability_limit(self):
        service = np.full(100, 1e-3)
        rate = max_sustainable_rate(service, miss_bound=0.5)
        assert 0 < rate < 1000.0  # never exceeds the rho < 1 limit

    def test_bound_respected_at_returned_rate(self):
        service = np.full(100, 0.5e-3)
        rate = max_sustainable_rate(service, deadline_s=10e-3, miss_bound=0.1)
        report = mg1_report(service, rate * 0.999)
        assert report.deadline_miss_bound(10e-3) <= 0.1 + 1e-6

    def test_impossible_deadline_gives_zero(self):
        service = np.full(10, 50e-3)  # mean service alone busts 10 ms
        assert max_sustainable_rate(service, deadline_s=10e-3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            max_sustainable_rate(np.full(5, 1e-3), deadline_s=0.0)
        with pytest.raises(ValueError):
            max_sustainable_rate(np.full(5, 1e-3), miss_bound=0.0)


class TestEndToEndCapacity:
    def test_fpga_sustains_more_load_than_cpu(self):
        """The deployment punchline: same traces, FPGA supports a far
        higher vector arrival rate within the 10 ms budget."""
        from repro.bench.harness import run_workload_sweep

        workload = run_workload_sweep(
            10, "4qam", snrs=[8.0], channels=3, frames_per_channel=4, seed=0
        )
        stats = workload.sweep.points[0].frame_stats
        cpu_times = np.array(
            [workload.cpu.decode_seconds(st) for st in stats]
        )
        fpga_times = np.array(
            [workload.fpga_optimized.decode_report(st).seconds for st in stats]
        )
        cpu_rate = max_sustainable_rate(cpu_times)
        fpga_rate = max_sustainable_rate(fpga_times)
        assert fpga_rate > 3 * cpu_rate
