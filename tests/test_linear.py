"""Tests for the linear detectors (MRC / ZF / MMSE)."""

import numpy as np
import pytest

from repro.detectors.linear import MMSEDetector, MRCDetector, ZeroForcingDetector
from repro.mimo.constellation import Constellation
from repro.mimo.system import MIMOSystem


@pytest.fixture
def qam4():
    return Constellation.qam(4)


def noiseless_frame(system, seed):
    rng = np.random.default_rng(seed)
    return system.random_frame(300.0, rng)  # effectively noiseless


class TestZeroForcing:
    def test_noiseless_exact(self, qam4):
        system = MIMOSystem(4, 4, qam4)
        det = ZeroForcingDetector(qam4)
        for seed in range(5):
            frame = noiseless_frame(system, seed)
            det.prepare(frame.channel)
            result = det.detect(frame.received)
            assert np.array_equal(result.indices, frame.symbol_indices)

    def test_overdetermined_noiseless_exact(self, qam4):
        system = MIMOSystem(3, 6, qam4)
        det = ZeroForcingDetector(qam4)
        frame = noiseless_frame(system, 1)
        det.prepare(frame.channel)
        assert np.array_equal(det.detect(frame.received).indices, frame.symbol_indices)

    def test_metric_is_residual(self, qam4, rng):
        system = MIMOSystem(4, 4, qam4)
        frame = system.random_frame(10.0, rng)
        det = ZeroForcingDetector(qam4)
        det.prepare(frame.channel)
        result = det.detect(frame.received)
        expected = np.linalg.norm(frame.received - frame.channel @ result.symbols) ** 2
        assert result.metric == pytest.approx(expected)

    def test_no_stats(self, qam4, rng):
        system = MIMOSystem(4, 4, qam4)
        frame = system.random_frame(10.0, rng)
        det = ZeroForcingDetector(qam4)
        det.prepare(frame.channel)
        assert det.detect(frame.received).stats is None

    def test_requires_prepare(self, qam4):
        with pytest.raises(RuntimeError):
            ZeroForcingDetector(qam4).detect(np.zeros(4, complex))

    def test_received_length_checked(self, qam4, rng):
        system = MIMOSystem(4, 4, qam4)
        frame = system.random_frame(10.0, rng)
        det = ZeroForcingDetector(qam4)
        det.prepare(frame.channel)
        with pytest.raises(ValueError):
            det.detect(np.zeros(5, complex))


class TestMMSE:
    def test_noiseless_matches_zf(self, qam4):
        system = MIMOSystem(4, 4, qam4)
        zf = ZeroForcingDetector(qam4)
        mmse = MMSEDetector(qam4)
        frame = noiseless_frame(system, 3)
        zf.prepare(frame.channel, noise_var=0.0)
        mmse.prepare(frame.channel, noise_var=0.0)
        assert np.array_equal(
            zf.detect(frame.received).indices, mmse.detect(frame.received).indices
        )

    def test_mmse_beats_zf_at_low_snr(self, qam4):
        """Average over many frames: MMSE's regularisation helps."""
        system = MIMOSystem(8, 8, qam4)
        rng = np.random.default_rng(0)
        zf_err = mmse_err = 0
        for _ in range(60):
            frame = system.random_frame(6.0, rng)
            zf = ZeroForcingDetector(qam4)
            mmse = MMSEDetector(qam4)
            zf.prepare(frame.channel, noise_var=frame.noise_var)
            mmse.prepare(frame.channel, noise_var=frame.noise_var)
            zf_err += int(
                np.count_nonzero(
                    zf.detect(frame.received).indices != frame.symbol_indices
                )
            )
            mmse_err += int(
                np.count_nonzero(
                    mmse.detect(frame.received).indices != frame.symbol_indices
                )
            )
        assert mmse_err <= zf_err

    def test_rejects_bad_es(self, qam4):
        with pytest.raises(ValueError):
            MMSEDetector(qam4, es=0.0)

    def test_negative_noise_var_rejected(self, qam4, rng):
        det = MMSEDetector(qam4)
        with pytest.raises(ValueError):
            det.prepare(np.eye(4, dtype=complex), noise_var=-1.0)


class TestMRC:
    def test_single_stream_noiseless_exact(self, qam4):
        """With one transmitter there is no interference: MRC is optimal."""
        system = MIMOSystem(1, 8, qam4)
        det = MRCDetector(qam4)
        for seed in range(5):
            frame = noiseless_frame(system, seed)
            det.prepare(frame.channel)
            assert np.array_equal(
                det.detect(frame.received).indices, frame.symbol_indices
            )

    def test_worse_than_zf_with_interference(self, qam4):
        system = MIMOSystem(8, 8, qam4)
        rng = np.random.default_rng(1)
        zf_err = mrc_err = 0
        for _ in range(40):
            frame = system.random_frame(25.0, rng)
            zf = ZeroForcingDetector(qam4)
            mrc = MRCDetector(qam4)
            zf.prepare(frame.channel)
            mrc.prepare(frame.channel)
            zf_err += int(
                np.count_nonzero(
                    zf.detect(frame.received).indices != frame.symbol_indices
                )
            )
            mrc_err += int(
                np.count_nonzero(
                    mrc.detect(frame.received).indices != frame.symbol_indices
                )
            )
        assert mrc_err > zf_err

    def test_zero_column_rejected(self, qam4):
        h = np.eye(4, dtype=complex)
        h[:, 2] = 0
        det = MRCDetector(qam4)
        with pytest.raises(np.linalg.LinAlgError):
            det.prepare(h)


class TestBatchDetection:
    @pytest.mark.parametrize(
        "detector_cls", [ZeroForcingDetector, MMSEDetector, MRCDetector]
    )
    def test_batch_matches_sequential(self, detector_cls, qam4, rng):
        """The single-GEMM block path equals per-vector detection."""
        system = MIMOSystem(4, 4, qam4)
        frame0 = system.random_frame(12.0, rng)
        det = detector_cls(qam4)
        det.prepare(frame0.channel, noise_var=frame0.noise_var)
        block = np.stack(
            [
                system.random_frame(12.0, rng, channel=frame0.channel).received
                for _ in range(6)
            ]
        )
        batched = det.detect_batch(block)
        for i, row in enumerate(block):
            single = det.detect(row)
            assert np.array_equal(batched[i].indices, single.indices)
            assert batched[i].metric == pytest.approx(single.metric, rel=1e-9)
            assert np.array_equal(batched[i].bits, single.bits)

    def test_batch_shape_validated(self, qam4, rng):
        system = MIMOSystem(4, 4, qam4)
        frame = system.random_frame(10.0, rng)
        det = ZeroForcingDetector(qam4)
        det.prepare(frame.channel)
        with pytest.raises(ValueError):
            det.detect_batch(np.zeros((3, 5), complex))
        with pytest.raises(ValueError):
            det.detect_batch(np.zeros(4, complex))

    def test_batch_requires_prepare(self, qam4):
        with pytest.raises(RuntimeError):
            ZeroForcingDetector(qam4).detect_batch(np.zeros((2, 4), complex))


class TestResultContract:
    @pytest.mark.parametrize(
        "detector_cls", [ZeroForcingDetector, MMSEDetector, MRCDetector]
    )
    def test_result_fields_consistent(self, detector_cls, qam4, rng):
        system = MIMOSystem(4, 4, qam4)
        frame = system.random_frame(15.0, rng)
        det = detector_cls(qam4)
        det.prepare(frame.channel, noise_var=frame.noise_var)
        result = det.detect(frame.received)
        assert result.indices.shape == (4,)
        assert result.symbols.shape == (4,)
        assert result.bits.shape == (8,)
        assert np.array_equal(result.symbols, qam4.points[result.indices])
        assert np.array_equal(result.bits, qam4.indices_to_bits(result.indices))
        assert result.metric >= 0.0
