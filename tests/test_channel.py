"""Tests for repro.mimo.channel: fading statistics and SNR bookkeeping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mimo.channel import (
    ChannelModel,
    db_to_linear,
    linear_to_db,
    noise_var_to_snr_db,
    snr_db_to_noise_var,
)


class TestDbConversions:
    def test_zero_db_is_one(self):
        assert db_to_linear(0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10) == pytest.approx(10.0)

    def test_three_db_doubles(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-3)

    def test_linear_to_db_inverse(self):
        assert linear_to_db(db_to_linear(7.3)) == pytest.approx(7.3)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)

    @given(st.floats(min_value=-40, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, db):
        assert float(linear_to_db(db_to_linear(db))) == pytest.approx(db, abs=1e-9)


class TestSnrConversions:
    def test_per_stream(self):
        # sigma^2 = Es / rho
        assert snr_db_to_noise_var(10, 8, convention="per-stream") == pytest.approx(0.1)

    def test_per_antenna(self):
        # sigma^2 = M Es / rho
        assert snr_db_to_noise_var(10, 8, convention="per-antenna") == pytest.approx(0.8)

    def test_default_is_per_antenna(self):
        assert snr_db_to_noise_var(10, 8) == snr_db_to_noise_var(
            10, 8, convention="per-antenna"
        )

    def test_es_scaling(self):
        assert snr_db_to_noise_var(0, 4, es=2.0, convention="per-stream") == pytest.approx(2.0)

    def test_inverse(self):
        var = snr_db_to_noise_var(13.0, 10)
        assert noise_var_to_snr_db(var, 10) == pytest.approx(13.0)

    def test_inverse_per_stream(self):
        var = snr_db_to_noise_var(6.0, 10, convention="per-stream")
        assert noise_var_to_snr_db(var, 10, convention="per-stream") == pytest.approx(6.0)

    def test_rejects_unknown_convention(self):
        with pytest.raises(ValueError):
            snr_db_to_noise_var(10, 4, convention="bogus")

    def test_rejects_nonpositive_var(self):
        with pytest.raises(ValueError):
            noise_var_to_snr_db(0.0, 4)

    def test_higher_snr_lower_noise(self):
        assert snr_db_to_noise_var(20, 4) < snr_db_to_noise_var(4, 4)


class TestChannelModel:
    def test_channel_shape(self, rng):
        model = ChannelModel(n_tx=3, n_rx=5)
        h = model.draw_channel(rng)
        assert h.shape == (5, 3)
        assert np.iscomplexobj(h)

    def test_channel_unit_variance(self, rng):
        model = ChannelModel(n_tx=40, n_rx=40)
        h = model.draw_channel(rng)
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_channel_zero_mean(self, rng):
        model = ChannelModel(n_tx=50, n_rx=50)
        h = model.draw_channel(rng)
        assert abs(np.mean(h)) < 0.05

    def test_noise_variance(self, rng):
        model = ChannelModel(n_tx=4, n_rx=4)
        samples = np.concatenate(
            [model.draw_noise(0.25, rng) for _ in range(500)]
        )
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(0.25, rel=0.1)

    def test_noise_circularly_symmetric(self, rng):
        model = ChannelModel(n_tx=4, n_rx=4)
        samples = np.concatenate(
            [model.draw_noise(1.0, rng) for _ in range(500)]
        )
        # Real/imag parts each carry half the power.
        assert np.var(samples.real) == pytest.approx(0.5, rel=0.15)
        assert np.var(samples.imag) == pytest.approx(0.5, rel=0.15)

    def test_zero_noise_var(self, rng):
        model = ChannelModel(n_tx=2, n_rx=2)
        assert np.allclose(model.draw_noise(0.0, rng), 0.0)

    def test_negative_noise_var_rejected(self, rng):
        model = ChannelModel(n_tx=2, n_rx=2)
        with pytest.raises(ValueError):
            model.draw_noise(-1.0, rng)

    def test_transmit_is_hs_plus_n(self, rng):
        model = ChannelModel(n_tx=3, n_rx=4)
        h = model.draw_channel(rng)
        s = np.ones(3, dtype=complex)
        y = model.transmit(h, s, 0.0, rng)
        assert np.allclose(y, h @ s)

    def test_transmit_shape_checks(self, rng):
        model = ChannelModel(n_tx=3, n_rx=4)
        h = model.draw_channel(rng)
        with pytest.raises(ValueError):
            model.transmit(h, np.ones(4, dtype=complex), 0.0, rng)
        with pytest.raises(ValueError):
            model.transmit(h.T, np.ones(3, dtype=complex), 0.0, rng)

    def test_noise_var_uses_convention(self):
        a = ChannelModel(n_tx=10, n_rx=10, snr_convention="per-antenna")
        s = ChannelModel(n_tx=10, n_rx=10, snr_convention="per-stream")
        assert a.noise_var(10.0) == pytest.approx(10 * s.noise_var(10.0))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ChannelModel(n_tx=0, n_rx=4)
        with pytest.raises(ValueError):
            ChannelModel(n_tx=4, n_rx=4, es=-1.0)
        with pytest.raises(ValueError):
            ChannelModel(n_tx=4, n_rx=4, snr_convention="weird")

    def test_received_power_matches_convention(self, rng):
        """Per-antenna receive SNR should match the requested rho."""
        model = ChannelModel(n_tx=8, n_rx=8, snr_convention="per-antenna")
        snr_db = 10.0
        var = model.noise_var(snr_db)
        # E||H s||^2 per antenna = M Es = 8; sigma^2 = 8/10 = 0.8.
        assert var == pytest.approx(0.8)
