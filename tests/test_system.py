"""Tests for repro.mimo.system."""

import numpy as np
import pytest

from repro.mimo.constellation import Constellation
from repro.mimo.system import MIMOSystem


class TestConstruction:
    def test_by_name(self):
        system = MIMOSystem(4, 6, "16qam")
        assert system.constellation.order == 16
        assert system.n_tx == 4 and system.n_rx == 6

    def test_by_object(self):
        const = Constellation.qam(4)
        system = MIMOSystem(2, 2, const)
        assert system.constellation is const

    def test_bits_per_frame(self):
        assert MIMOSystem(10, 10, "4qam").bits_per_frame == 20
        assert MIMOSystem(10, 10, "16qam").bits_per_frame == 40

    def test_invalid_antennas(self):
        with pytest.raises(ValueError):
            MIMOSystem(0, 4)

    def test_repr(self):
        assert "10x10" in repr(MIMOSystem(10, 10)).replace(", ", "x").replace(
            "MIMOSystem(", ""
        ) or "10" in repr(MIMOSystem(10, 10))


class TestRandomFrame:
    def test_shapes(self, rng):
        system = MIMOSystem(3, 5, "4qam")
        frame = system.random_frame(10.0, rng)
        assert frame.bits.shape == (6,)
        assert frame.symbol_indices.shape == (3,)
        assert frame.symbols.shape == (3,)
        assert frame.channel.shape == (5, 3)
        assert frame.received.shape == (5,)
        assert frame.n_tx == 3 and frame.n_rx == 5

    def test_bits_match_indices(self, rng):
        system = MIMOSystem(6, 6, "16qam")
        frame = system.random_frame(10.0, rng)
        assert np.array_equal(
            frame.bits, system.constellation.indices_to_bits(frame.symbol_indices)
        )

    def test_symbols_match_indices(self, rng):
        system = MIMOSystem(6, 6, "16qam")
        frame = system.random_frame(10.0, rng)
        assert np.array_equal(
            frame.symbols, system.constellation.map_indices(frame.symbol_indices)
        )

    def test_received_consistent_noiseless_limit(self, rng):
        system = MIMOSystem(4, 4, "4qam")
        frame = system.random_frame(200.0, rng)  # essentially noiseless
        assert np.allclose(frame.received, frame.channel @ frame.symbols, atol=1e-6)

    def test_noise_var_recorded(self, rng):
        system = MIMOSystem(4, 4, "4qam")
        frame = system.random_frame(10.0, rng)
        assert frame.noise_var == pytest.approx(system.noise_var(10.0))
        assert frame.snr_db == 10.0

    def test_fixed_channel_reused(self, rng):
        system = MIMOSystem(4, 4, "4qam")
        h = system.channel_model.draw_channel(rng)
        f1 = system.random_frame(10.0, rng, channel=h)
        f2 = system.random_frame(10.0, rng, channel=h)
        assert f1.channel is f2.channel or np.array_equal(f1.channel, f2.channel)
        # but the payloads differ
        assert not np.array_equal(f1.symbol_indices, f2.symbol_indices) or not np.array_equal(
            f1.received, f2.received
        )

    def test_channel_shape_validated(self, rng):
        system = MIMOSystem(4, 4, "4qam")
        with pytest.raises(ValueError):
            system.random_frame(10.0, rng, channel=np.zeros((3, 4), complex))

    def test_reproducible_from_seed(self):
        system = MIMOSystem(4, 4, "4qam")
        f1 = system.random_frame(8.0, 123)
        f2 = system.random_frame(8.0, 123)
        assert np.array_equal(f1.received, f2.received)
        assert np.array_equal(f1.bits, f2.bits)
