"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mimo.constellation import Constellation
from repro.mimo.system import MIMOSystem


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture(params=["numpy", "compiled"])
def traversal_engine(request, monkeypatch) -> str:
    """Both traversal engines, for bit-identity parameterization.

    On hosts without Numba the ``compiled`` leg runs the same kernels
    interpreted (via ``REPRO_COMPILED_INTERPRET``) — slower, but it
    executes the exact fused-kernel control flow the jitted build runs,
    so the bit-identity contract is still exercised.
    """
    if request.param == "compiled":
        from repro.core import compiled

        if not compiled.NUMBA_AVAILABLE:
            monkeypatch.setenv(compiled.INTERPRET_ENV, "1")
    return request.param


@pytest.fixture(params=["bpsk", "4qam", "16qam"])
def constellation(request) -> Constellation:
    """The three alphabets the paper discusses."""
    return Constellation.from_name(request.param)


@pytest.fixture
def qam4() -> Constellation:
    return Constellation.qam(4)


@pytest.fixture
def qam16() -> Constellation:
    return Constellation.qam(16)


@pytest.fixture
def small_system() -> MIMOSystem:
    """A 4x4 4-QAM link, small enough for brute-force ML checks."""
    return MIMOSystem(4, 4, "4qam")


def random_frame_with_detectors(system, snr_db, seed):
    """Helper used by several test modules: one frame plus prepared ML."""
    from repro.detectors.ml import MLDetector

    rng = np.random.default_rng(seed)
    frame = system.random_frame(snr_db, rng)
    ml = MLDetector(system.constellation)
    ml.prepare(frame.channel)
    return frame, ml
