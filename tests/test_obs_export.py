"""Tests for repro.obs.export and repro.obs.metrics."""

import json

import pytest

from repro.obs import (
    Tracer,
    chrome_trace,
    chrome_trace_events,
    counter_totals,
    format_metrics,
    jsonl_lines,
    span_metrics,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.log import configure, get_logger, verbosity_level
from repro.util.timing import WallClock


class FakeClock(WallClock):
    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


def sample_tracer() -> Tracer:
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("decode", n_tx=10):
        clock.t += 0.002
        with tracer.span("search"):
            clock.t += 0.001
        tracer.instant("batch", level=3)
        tracer.count("nodes", 7)
    tracer.count("nodes", 3)
    return tracer


class TestChromeTrace:
    def test_valid_json_document(self, tmp_path):
        path = write_chrome_trace(sample_tracer(), tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"]

    def test_timestamps_monotonic_nondecreasing(self):
        events = chrome_trace_events(sample_tracer())
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)

    def test_span_becomes_complete_event(self):
        events = chrome_trace_events(sample_tracer())
        decode = next(e for e in events if e["name"] == "decode")
        assert decode["ph"] == "X"
        assert decode["dur"] == pytest.approx(3000.0)  # 3 ms in µs
        assert decode["args"] == {"n_tx": 10}

    def test_nested_span_contained_in_parent(self):
        events = chrome_trace_events(sample_tracer())
        decode = next(e for e in events if e["name"] == "decode")
        search = next(e for e in events if e["name"] == "search")
        assert decode["ts"] <= search["ts"]
        assert search["ts"] + search["dur"] <= decode["ts"] + decode["dur"]

    def test_instant_and_counter_phases(self):
        events = chrome_trace_events(sample_tracer())
        instant = next(e for e in events if e["name"] == "batch")
        assert instant["ph"] == "i"
        counters = [e for e in events if e["name"] == "nodes"]
        assert all(e["ph"] == "C" for e in counters)
        assert counters[-1]["args"] == {"nodes": 10.0}

    def test_all_events_share_pid(self):
        events = chrome_trace_events(sample_tracer())
        assert len({e["pid"] for e in events}) == 1

    def test_creates_parent_dirs(self, tmp_path):
        path = write_chrome_trace(sample_tracer(), tmp_path / "a" / "b" / "t.json")
        assert path.exists()

    def test_empty_tracer_exports_empty_list(self):
        doc = chrome_trace(Tracer(clock=FakeClock()))
        assert doc["traceEvents"] == []


class TestJsonl:
    def test_one_json_object_per_event(self, tmp_path):
        tracer = sample_tracer()
        path = write_jsonl(tracer, tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(tracer.events)
        rows = [json.loads(line) for line in lines]
        assert {r["phase"] for r in rows} == {"span", "instant", "counter"}

    def test_span_rows_have_dur_and_depth(self):
        rows = [json.loads(line) for line in jsonl_lines(sample_tracer())]
        span = next(r for r in rows if r["name"] == "search")
        assert "dur" in span and "depth" in span

    def test_empty_tracer_writes_empty_file(self, tmp_path):
        path = write_jsonl(Tracer(clock=FakeClock()), tmp_path / "e.jsonl")
        assert path.read_text() == ""

    def test_creates_parent_dirs(self, tmp_path):
        """Regression: a nested --jsonl path must not require mkdir -p."""
        path = write_jsonl(sample_tracer(), tmp_path / "a" / "b" / "events.jsonl")
        assert path.exists()
        assert path.read_text().splitlines()


class TestMetrics:
    def test_span_metrics_percentiles(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for dt in (0.001, 0.003, 0.002):
            with tracer.span("step"):
                clock.t += dt
        summary = span_metrics(tracer)["step"]
        assert summary.count == 3
        assert summary.p50 == pytest.approx(0.002)

    def test_counter_totals(self):
        tracer = sample_tracer()
        assert counter_totals(tracer) == {"nodes": 10.0}

    def test_format_metrics_table(self):
        text = format_metrics(sample_tracer(), title="unit test")
        assert "== unit test ==" in text
        assert "p95_ms" in text
        assert "decode" in text
        assert "counters:" in text
        assert "nodes" in text

    def test_format_metrics_no_spans(self):
        tracer = Tracer(clock=FakeClock())
        assert "(no spans recorded)" in format_metrics(tracer)


class TestLogging:
    def test_verbosity_mapping(self):
        import logging

        assert verbosity_level(-1) == logging.ERROR
        assert verbosity_level(0) == logging.WARNING
        assert verbosity_level(1) == logging.INFO
        assert verbosity_level(2) == logging.DEBUG

    def test_configure_idempotent(self):
        import logging

        configure(1)
        configure(2)
        root = logging.getLogger("repro")
        marked = [
            h for h in root.handlers if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(marked) == 1
        assert root.level == logging.DEBUG

    def test_get_logger_namespaced(self):
        assert get_logger("repro.fpga.pipeline").name == "repro.fpga.pipeline"
        assert get_logger("custom").name == "repro.custom"
