"""Property tests for the coalescing batch scheduler (fake clock).

The scheduler is a pure discrete-event state machine, so these tests
drive it with randomized arrival/deadline/size schedules on a simulated
clock and assert its contracts exactly:

* conservation — no admitted frame is lost or duplicated;
* per-stream FIFO — frames enter batches in submission order;
* flush-by-deadline — no frame waits past ``arrival + max_delay_s``
  when the driver polls at ``next_deadline_s``;
* capped batches — never more than ``max_batch`` frames, dynamic
  sizing included;
* bounded queues — per-stream depth never exceeds ``max_queue``, and
  backpressure cannot deadlock the driver (``max_queue=1`` still makes
  progress);
* monotone time — regressions of the clock are rejected loudly.
"""

import numpy as np
import pytest

from repro.serve.scheduler import (
    BackpressureError,
    BatchScheduler,
    SchedulerConfig,
    conservation_check,
)


def random_schedule(rng, n_arrivals=120, n_streams=6, n_channels=3):
    """A randomized arrival schedule: (time, stream, channel) tuples.

    Streams stick to one channel each (the load-generator topology), so
    per-stream FIFO is observable in the flushed batch order.
    """
    stream_channel = {
        f"s{i}": f"ch{rng.integers(0, n_channels)}" for i in range(n_streams)
    }
    gaps = rng.exponential(2e-4, n_arrivals)
    # Occasional bursts: zero gaps glue arrivals to one instant.
    gaps[rng.random(n_arrivals) < 0.3] = 0.0
    times = np.cumsum(gaps)
    streams = [f"s{rng.integers(0, n_streams)}" for _ in range(n_arrivals)]
    return [
        (float(t), s, stream_channel[s]) for t, s in zip(times, streams)
    ]


def drive(scheduler, schedule, observe=None, rng=None):
    """Run a schedule through the scheduler, honouring the driver
    contract (poll after submits and at every ``next_deadline_s``).

    Returns ``(admitted, rejected, batches)``.
    """
    admitted, rejected, batches = [], [], []

    def collect(new):
        batches.extend(new)
        if observe is not None:
            for batch in new:
                observe(batch)

    for now, stream_id, channel_id in schedule:
        # Deadline polls due strictly before this arrival.
        while True:
            deadline = scheduler.next_deadline_s()
            if deadline is None or deadline >= now:
                break
            collect(scheduler.poll(deadline))
        frame = np.zeros(2) if rng is None else rng.standard_normal(2)
        try:
            admitted.append(
                scheduler.submit(
                    stream_id, frame, channel_id=channel_id, now=now
                )
            )
        except BackpressureError:
            rejected.append((now, stream_id))
        collect(scheduler.poll(now))
    # Let the remaining deadlines fire.
    while scheduler.pending:
        deadline = scheduler.next_deadline_s()
        assert deadline is not None, "pending frames but no deadline"
        collect(scheduler.poll(deadline))
    return admitted, rejected, batches


@pytest.mark.parametrize("seed", range(8))
def test_conservation_and_order_random_schedules(seed):
    """No loss, no duplication, per-stream FIFO — random schedules."""
    rng = np.random.default_rng(seed)
    config = SchedulerConfig(
        max_batch=int(rng.integers(1, 9)),
        max_delay_s=float(rng.uniform(1e-4, 2e-3)),
        max_queue=int(rng.integers(2, 12)),
    )
    scheduler = BatchScheduler(config)
    admitted, _rejected, batches = drive(
        scheduler, random_schedule(rng), rng=rng
    )
    conservation_check(admitted, batches)
    # Per-stream FIFO: flushed seqs strictly increase per stream.
    last_seq = {}
    for batch in batches:
        for frame in batch.frames:
            prev = last_seq.get(frame.stream_id, -1)
            assert frame.seq == prev + 1, (
                f"stream {frame.stream_id} flushed seq {frame.seq} "
                f"after {prev}"
            )
            last_seq[frame.stream_id] = frame.seq


@pytest.mark.parametrize("seed", range(8))
def test_flush_by_deadline_and_size_cap(seed):
    """Every frame flushes by its deadline; batches respect the cap."""
    rng = np.random.default_rng(100 + seed)
    config = SchedulerConfig(
        max_batch=int(rng.integers(2, 7)),
        max_delay_s=float(rng.uniform(2e-4, 1e-3)),
        max_queue=64,
    )
    scheduler = BatchScheduler(config)
    _admitted, _rejected, batches = drive(scheduler, random_schedule(rng))
    assert batches, "schedule produced no batches"
    for batch in batches:
        assert 1 <= len(batch) <= config.max_batch
        assert batch.reason in ("size", "deadline")
        for frame in batch.frames:
            assert batch.created_s <= frame.deadline_s + 1e-12, (
                f"frame {frame.key} flushed at {batch.created_s} past "
                f"deadline {frame.deadline_s}"
            )
    # Size triggers really fire: a full queue flushes immediately.
    full = [b for b in batches if b.reason == "size"]
    for batch in full:
        assert len(batch) == config.max_batch


def test_size_trigger_flushes_at_submit_time():
    scheduler = BatchScheduler(SchedulerConfig(max_batch=3, max_delay_s=1.0))
    for i in range(3):
        scheduler.submit("s0", np.zeros(2), channel_id="ch0", now=0.1 * i)
    batches = scheduler.poll(0.2)
    assert len(batches) == 1
    assert batches[0].reason == "size"
    assert len(batches[0]) == 3
    assert scheduler.pending == 0


def test_deadline_trigger_without_size():
    scheduler = BatchScheduler(
        SchedulerConfig(max_batch=100, max_delay_s=1e-3)
    )
    scheduler.submit("s0", np.zeros(2), channel_id="ch0", now=0.0)
    assert scheduler.next_deadline_s() == pytest.approx(1e-3)
    assert scheduler.poll(0.5e-3) == []  # not due yet
    batches = scheduler.poll(1e-3)
    assert [b.reason for b in batches] == ["deadline"]


@pytest.mark.parametrize("max_queue", [1, 2, 5])
def test_backpressure_bounds_depth_and_never_deadlocks(max_queue):
    """Depth never exceeds the bound; the driver always terminates."""
    rng = np.random.default_rng(7)
    config = SchedulerConfig(
        max_batch=4, max_delay_s=5e-4, max_queue=max_queue
    )
    scheduler = BatchScheduler(config)
    schedule = random_schedule(rng, n_arrivals=200, n_streams=2)

    def check_depths(_batch):
        for sid in ("s0", "s1"):
            assert scheduler.stream_depth(sid) <= max_queue

    admitted, rejected, batches = drive(
        scheduler, schedule, observe=check_depths
    )
    conservation_check(admitted, batches)
    assert scheduler.pending == 0
    assert len(admitted) + len(rejected) == len(schedule)
    assert scheduler.stats.rejected == len(rejected)


def test_rejected_frames_consume_no_seq():
    """Backpressure must not burn sequence numbers, or delivery stalls."""
    scheduler = BatchScheduler(
        SchedulerConfig(max_batch=8, max_delay_s=1.0, max_queue=1)
    )
    first = scheduler.submit("s0", np.zeros(2), channel_id="ch0", now=0.0)
    with pytest.raises(BackpressureError):
        scheduler.submit("s0", np.zeros(2), channel_id="ch0", now=0.1)
    scheduler.drain(0.2)
    second = scheduler.submit("s0", np.zeros(2), channel_id="ch0", now=0.3)
    assert (first.seq, second.seq) == (0, 1)


def test_monotone_time_enforced():
    scheduler = BatchScheduler()
    scheduler.submit("s0", np.zeros(2), channel_id="ch0", now=1.0)
    with pytest.raises(ValueError, match="non-decreasing"):
        scheduler.submit("s0", np.zeros(2), channel_id="ch0", now=0.5)
    with pytest.raises(ValueError, match="non-decreasing"):
        scheduler.poll(0.9)
    # Equal timestamps are fine (bursts).
    scheduler.submit("s1", np.zeros(2), channel_id="ch0", now=1.0)


def test_coalesces_across_streams_within_channel():
    scheduler = BatchScheduler(SchedulerConfig(max_batch=4, max_delay_s=1e-3))
    for i, sid in enumerate(["s0", "s1", "s2"]):
        scheduler.submit(sid, np.zeros(2), channel_id="shared", now=1e-5 * i)
    batches = scheduler.poll(1e-3 + 1e-5 * 2)
    assert len(batches) == 1
    assert {f.stream_id for f in batches[0].frames} == {"s0", "s1", "s2"}


def test_channels_never_mix():
    rng = np.random.default_rng(21)
    scheduler = BatchScheduler(SchedulerConfig(max_batch=6, max_delay_s=5e-4))
    _admitted, _rejected, batches = drive(
        scheduler, random_schedule(rng, n_channels=4)
    )
    for batch in batches:
        assert {f.channel_id for f in batch.frames} == {batch.channel_id}


def test_drain_flushes_everything():
    scheduler = BatchScheduler(SchedulerConfig(max_batch=4, max_delay_s=10.0))
    admitted = [
        scheduler.submit(
            f"s{i % 3}", np.zeros(2), channel_id=f"ch{i % 2}", now=0.0
        )
        for i in range(7)
    ]
    batches = scheduler.drain(1.0)
    conservation_check(admitted, batches)
    assert all(b.reason == "drain" for b in batches)
    assert scheduler.pending == 0
    assert scheduler.next_deadline_s() is None


class TestDynamicSizing:
    def test_cap_stays_within_bounds_under_random_feedback(self):
        rng = np.random.default_rng(3)
        config = SchedulerConfig(
            max_batch=32, max_delay_s=2e-3, dynamic=True, min_batch=2
        )
        scheduler = BatchScheduler(config)
        for _ in range(200):
            scheduler.observe_service(
                int(rng.integers(1, 33)), float(rng.uniform(0, 5e-3))
            )
            cap = scheduler.effective_max_batch()
            assert config.min_batch <= cap <= config.max_batch

    def test_expensive_frames_shrink_batches(self):
        config = SchedulerConfig(
            max_batch=32, max_delay_s=2e-3, dynamic=True, service_slack=0.5
        )
        scheduler = BatchScheduler(config)
        assert scheduler.effective_max_batch() == 32  # no estimate yet
        # 0.5 ms per frame: only 2 fit in the 1 ms service budget.
        for _ in range(50):
            scheduler.observe_service(1, 0.5e-3)
        assert scheduler.effective_max_batch() == 2

    def test_cheap_frames_restore_full_batches(self):
        config = SchedulerConfig(max_batch=16, max_delay_s=2e-3, dynamic=True)
        scheduler = BatchScheduler(config)
        for _ in range(50):
            scheduler.observe_service(1, 1e-6)
        assert scheduler.effective_max_batch() == 16

    def test_dynamic_batches_respect_hard_cap_end_to_end(self):
        rng = np.random.default_rng(11)
        config = SchedulerConfig(
            max_batch=6, max_delay_s=1e-3, dynamic=True, min_batch=1
        )
        scheduler = BatchScheduler(config)

        def feed(batch):
            scheduler.observe_service(
                len(batch), float(rng.uniform(1e-5, 2e-3))
            )

        admitted, _rejected, batches = drive(
            scheduler, random_schedule(rng, n_arrivals=150), observe=feed
        )
        conservation_check(admitted, batches)
        assert max(len(b) for b in batches) <= config.max_batch


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay_s": 0.0},
            {"max_queue": 0},
            {"min_batch": 0},
            {"min_batch": 9, "max_batch": 8},
            {"service_slack": 0.0},
            {"service_slack": 1.5},
            {"ewma_alpha": 0.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SchedulerConfig(**kwargs)


class TestConservationCheckHelper:
    def test_detects_loss(self):
        scheduler = BatchScheduler(SchedulerConfig(max_delay_s=1.0))
        admitted = [
            scheduler.submit("s0", np.zeros(2), channel_id="ch0", now=0.0)
        ]
        with pytest.raises(AssertionError, match="lost"):
            conservation_check(admitted, [])

    def test_detects_duplication(self):
        scheduler = BatchScheduler(SchedulerConfig(max_delay_s=1.0))
        admitted = [
            scheduler.submit("s0", np.zeros(2), channel_id="ch0", now=0.0)
        ]
        batches = scheduler.drain(0.0)
        with pytest.raises(AssertionError, match="twice"):
            conservation_check(admitted, batches + batches)
