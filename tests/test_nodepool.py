"""NodePool invariants and registry-wide bit-identity regression.

Two layers of protection for the structure-of-arrays frontier refactor:

* Unit tests of :class:`repro.core.nodepool.NodePool` itself — growth
  must preserve live rows, paths must round-trip against the legacy
  tuple-path helpers, blocks must alias correctly.
* A golden-output sweep: every FPGA-replayable detector kind in the
  registry decodes fixed deterministic frames (per-frame ``detect`` and,
  where supported, fused ``decode_batch``) and the decisions, exact
  float-hex metrics, batch schedules, radius traces and search counters
  must match ``tests/data/golden_decodes.json``, which was recorded by
  the pre-refactor per-node implementation (``tools/record_golden.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.nodepool import NodePool, extend_paths
from repro.core.tree import path_to_level_indices

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_decodes.json"


class TestNodePoolGrowth:
    def test_initial_capacity_and_empty(self):
        pool = NodePool(4, capacity=8)
        assert pool.capacity == 8
        assert len(pool) == 0
        assert pool.next_seq == 0

    def test_append_root(self):
        pool = NodePool(4)
        row = pool.append_root()
        assert row == 0
        assert pool.pd[0] == 0.0
        assert pool.seq[0] == 0
        assert pool.level[0] == 3
        assert len(pool) == 1

    def test_growth_preserves_live_rows(self):
        pool = NodePool(3, capacity=2)
        root = pool.append_root()
        # Admit enough children to force several doublings.
        rows = pool.append_children(
            np.full(5, root), np.arange(5), np.arange(5, dtype=float), level=1
        )
        assert pool.capacity >= 6
        more = pool.append_children(
            rows, rows % 4, pool.pd[rows] + 1.0, level=0
        )
        assert pool.capacity >= 11
        # Earlier rows intact after two growth events.
        assert pool.pd[root] == 0.0
        np.testing.assert_array_equal(pool.pd[rows], np.arange(5, dtype=float))
        np.testing.assert_array_equal(pool.path[rows, 0], np.arange(5))
        np.testing.assert_array_equal(pool.path[more, 0], np.arange(5))
        np.testing.assert_array_equal(pool.path[more, 1], rows % 4)
        # Sequence numbers are admission-ordered and dense.
        np.testing.assert_array_equal(pool.seq[: len(pool)], np.arange(11))

    def test_scalar_parent_broadcast(self):
        pool = NodePool(3)
        root = pool.append_root()
        a = pool.append_children(
            root, np.array([2]), np.array([1.5]), level=1
        )
        kids = pool.append_children(
            int(a[0]), np.array([0, 1, 3]), np.array([2.0, 3.0, 4.0]), level=0
        )
        np.testing.assert_array_equal(pool.path[kids, 0], [2, 2, 2])
        np.testing.assert_array_equal(pool.path[kids, 1], [0, 1, 3])

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            NodePool(0)
        with pytest.raises(ValueError):
            NodePool(4, capacity=0)


class TestNodePoolReads:
    def _three_level_pool(self):
        pool = NodePool(3)
        root = pool.append_root()
        l1 = pool.append_children(
            root, np.array([1, 3]), np.array([0.5, 0.7]), level=1
        )
        l0 = pool.append_children(
            np.array([l1[0], l1[0], l1[1]]),
            np.array([2, 0, 1]),
            np.array([1.0, 1.1, 1.2]),
            level=0,
        )
        return pool, root, l1, l0

    def test_path_block_contiguous_is_view(self):
        pool, _root, _l1, l0 = self._three_level_pool()
        block = pool.path_block(l0, 2)
        assert block.base is pool.path
        np.testing.assert_array_equal(block, [[1, 2], [1, 0], [3, 1]])

    def test_path_block_gather(self):
        pool, _root, _l1, l0 = self._three_level_pool()
        rows = l0[[2, 0]]  # non-monotone -> gather path
        block = pool.path_block(rows, 2)
        np.testing.assert_array_equal(block, [[3, 1], [1, 2]])

    def test_pd_block_contiguous_and_gather(self):
        pool, _root, _l1, l0 = self._three_level_pool()
        np.testing.assert_array_equal(pool.pd_block(l0), [1.0, 1.1, 1.2])
        np.testing.assert_array_equal(
            pool.pd_block(l0[[2, 0]]), [1.2, 1.0]
        )

    def test_path_round_trip_vs_tuple_helpers(self):
        """leaf_indices == path_to_level_indices of the tuple path."""
        pool, _root, _l1, l0 = self._three_level_pool()
        for row in l0:
            tuple_path = tuple(int(v) for v in pool.path[row, :2]) + (5,)
            expected = path_to_level_indices(tuple_path, 3)
            got = pool.leaf_indices(int(row), 5)
            np.testing.assert_array_equal(got, expected)
            assert got.dtype == np.int64

    def test_leaf_indices_single_level_tree(self):
        pool = NodePool(1)
        root = pool.append_root()
        np.testing.assert_array_equal(pool.leaf_indices(root, 3), [3])


class TestExtendPaths:
    def test_matches_concatenate(self):
        rng = np.random.default_rng(0)
        paths = rng.integers(0, 4, size=(6, 2)).astype(np.int64)
        keep_n = np.array([5, 0, 0, 3], dtype=np.int64)
        keep_c = np.array([1, 2, 3, 0], dtype=np.int64)
        legacy = np.concatenate(
            [paths[keep_n], keep_c[:, None]], axis=1
        ).astype(np.int64)
        np.testing.assert_array_equal(
            extend_paths(paths, keep_n, keep_c), legacy
        )

    def test_root_expansion_zero_depth(self):
        paths = np.empty((1, 0), dtype=np.int64)
        out = extend_paths(
            paths, np.zeros(3, dtype=np.int64), np.array([2, 0, 1])
        )
        np.testing.assert_array_equal(out, [[2], [0], [1]])
        assert out.dtype == np.int64


# ----------------------------------------------------------------------
# Registry-wide bit-identity against pre-refactor golden outputs
# ----------------------------------------------------------------------

COUNTER_FIELDS = (
    "nodes_expanded",
    "nodes_generated",
    "nodes_pruned",
    "leaves_reached",
    "radius_updates",
    "gemm_calls",
    "gemm_flops",
    "max_list_size",
    "truncated",
)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def _assert_matches_golden(result, rec, ctx: str) -> None:
    stats = result.stats
    assert [int(i) for i in result.indices] == rec["indices"], ctx
    assert float(result.metric).hex() == rec["metric_hex"], ctx
    got_batches = [[int(ev.level), int(ev.pool_size)] for ev in stats.batches]
    assert got_batches == rec["batches"], ctx
    got_radius = [float(v).hex() for v in stats.radius_trace]
    assert got_radius == rec["radius_trace_hex"], ctx
    for name in COUNTER_FIELDS:
        assert int(getattr(stats, name)) == rec[name], f"{ctx}: {name}"


def _scenario_frames(scenario):
    from repro.mimo.system import MIMOSystem

    system = MIMOSystem(
        scenario["n_antennas"], scenario["n_antennas"], scenario["modulation"]
    )
    rng = np.random.default_rng(scenario["seed"])
    frames = [
        system.random_frame(scenario["snr_db"], rng)
        for _ in range(scenario["frames"])
    ]
    return system, frames


def test_golden_covers_every_replayable_kind(golden):
    from repro.detectors.registry import detector_entries

    replayable = {e.kind for e in detector_entries() if e.fpga_replayable}
    for label, scenario in golden["scenarios"].items():
        assert set(scenario["detectors"]) == replayable, label


def test_registry_bit_identity_vs_golden(golden, traversal_engine):
    """Every replayable kind reproduces pre-refactor decodes exactly.

    Parameterized over both traversal engines: the compiled engine must
    reproduce the very same golden records — paths, metrics, radius
    traces and all nine counters — bit for bit.
    """
    from repro.detectors.registry import detector_entries, spec

    entries = {e.kind: e for e in detector_entries() if e.fpga_replayable}
    for label, scenario in golden["scenarios"].items():
        system, frames = _scenario_frames(scenario)
        for kind, rec in scenario["detectors"].items():
            if traversal_engine not in entries[kind].engines:
                continue  # e.g. partitioned has no compiled path
            params = (
                {"engine": traversal_engine}
                if "engine" in entries[kind].defaults
                else {}
            )
            detector = spec(kind, system.constellation, **params)()
            detector.prepare(
                frames[0].channel, noise_var=frames[0].noise_var
            )
            for i, frame in enumerate(frames):
                _assert_matches_golden(
                    detector.detect(frame.received),
                    rec["per_frame"][i],
                    f"{label}/{kind}/detect[{i}]",
                )
            if entries[kind].batch:
                assert "batch" in rec, f"{label}/{kind}"
                received = np.stack([f.received for f in frames])
                results = detector.decode_batch(received)
                for i, result in enumerate(results):
                    _assert_matches_golden(
                        result,
                        rec["batch"][i],
                        f"{label}/{kind}/batch[{i}]",
                    )


def test_golden_batch_traces_replayable(golden):
    """Recorded batch schedules still drive the FPGA pipeline model."""
    from repro.core.stats import BatchEvent, DecodeStats
    from repro.fpga.pipeline import FPGAPipeline, PipelineConfig

    for label, scenario in golden["scenarios"].items():
        n = scenario["n_antennas"]
        rec = scenario["detectors"]["sd"]["per_frame"][0]
        stats = DecodeStats(
            batches=[
                BatchEvent(level=lv, pool_size=ps) for lv, ps in rec["batches"]
            ]
        )
        pipe = FPGAPipeline(
            PipelineConfig.optimized(4), n_tx=n, n_rx=n, order=4
        )
        report = pipe.decode_report(stats)
        assert report.total_cycles > 0, label
        # Stage attribution must account for every cycle of the total.
        assert sum(report.attributed.values()) == report.total_cycles, label
