"""Tests for the Kronecker correlated-channel model."""

import numpy as np
import pytest

from repro.mimo.correlation import (
    KroneckerChannelModel,
    exponential_correlation,
    matrix_sqrt,
)


class TestExponentialCorrelation:
    def test_structure(self):
        r = exponential_correlation(4, 0.5)
        assert r.shape == (4, 4)
        assert np.allclose(np.diag(r), 1.0)
        assert r[0, 1] == pytest.approx(0.5)
        assert r[0, 3] == pytest.approx(0.125)

    def test_symmetric(self):
        r = exponential_correlation(5, 0.7)
        assert np.allclose(r, r.T)

    def test_zero_rho_is_identity(self):
        assert np.allclose(exponential_correlation(4, 0.0), np.eye(4))

    def test_positive_definite(self):
        for rho in (0.3, 0.7, 0.95):
            vals = np.linalg.eigvalsh(exponential_correlation(6, rho))
            assert vals.min() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_correlation(4, 1.0)
        with pytest.raises(ValueError):
            exponential_correlation(4, -0.1)


class TestMatrixSqrt:
    def test_square_of_sqrt(self):
        r = exponential_correlation(5, 0.6)
        s = matrix_sqrt(r)
        assert np.allclose(s @ np.conj(s.T), r, atol=1e-10)

    def test_identity(self):
        assert np.allclose(matrix_sqrt(np.eye(3)), np.eye(3))

    def test_rejects_non_hermitian(self):
        with pytest.raises(ValueError):
            matrix_sqrt(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_rejects_indefinite(self):
        with pytest.raises(ValueError):
            matrix_sqrt(np.diag([1.0, -1.0]))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            matrix_sqrt(np.zeros((2, 3)))


class TestKroneckerModel:
    def test_zero_rho_matches_iid_statistics(self, rng):
        model = KroneckerChannelModel(n_tx=8, n_rx=8, rho_tx=0.0, rho_rx=0.0)
        h = np.stack([model.draw_channel(rng) for _ in range(100)])
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_unit_entry_variance_with_correlation(self, rng):
        model = KroneckerChannelModel(n_tx=6, n_rx=6, rho_tx=0.7, rho_rx=0.7)
        h = np.stack([model.draw_channel(rng) for _ in range(400)])
        per_entry = np.mean(np.abs(h) ** 2, axis=0)
        assert np.allclose(per_entry, 1.0, atol=0.25)

    def test_induced_receive_correlation(self, rng):
        """Empirical E[H H^H]/n_tx must approximate R_rx."""
        model = KroneckerChannelModel(n_tx=8, n_rx=4, rho_tx=0.0, rho_rx=0.8)
        acc = np.zeros((4, 4), dtype=complex)
        trials = 600
        for _ in range(trials):
            h = model.draw_channel(rng)
            acc += h @ np.conj(h.T)
        empirical = acc / (trials * 8)
        expected = exponential_correlation(4, 0.8)
        assert np.allclose(empirical.real, expected, atol=0.12)

    def test_correlation_hurts_conditioning(self, rng):
        """Correlated channels are worse conditioned on average —
        the mechanism behind their higher decode complexity."""
        iid = KroneckerChannelModel(n_tx=6, n_rx=6, rho_tx=0.0, rho_rx=0.0)
        corr = KroneckerChannelModel(n_tx=6, n_rx=6, rho_tx=0.9, rho_rx=0.9)
        conds_iid = [np.linalg.cond(iid.draw_channel(rng)) for _ in range(50)]
        conds_corr = [np.linalg.cond(corr.draw_channel(rng)) for _ in range(50)]
        assert np.median(conds_corr) > np.median(conds_iid)

    def test_validation(self):
        with pytest.raises(ValueError):
            KroneckerChannelModel(n_tx=4, n_rx=4, rho_tx=1.0)
        with pytest.raises(ValueError):
            KroneckerChannelModel(n_tx=4, n_rx=4, rho_rx=-0.2)

    def test_sphere_decoder_still_exact_on_correlated_channel(self, rng):
        from repro.core.sphere_decoder import SphereDecoder
        from repro.detectors.ml import MLDetector
        from repro.mimo.constellation import Constellation

        const = Constellation.qam(4)
        model = KroneckerChannelModel(n_tx=4, n_rx=4, rho_tx=0.8, rho_rx=0.8)
        h = model.draw_channel(rng)
        s = const.points[rng.integers(0, 4, 4)]
        y = h @ s + 0.3 * (rng.standard_normal(4) + 1j * rng.standard_normal(4))
        sd = SphereDecoder(const)
        ml = MLDetector(const)
        sd.prepare(h, noise_var=0.18)
        ml.prepare(h)
        assert sd.detect(y).metric == pytest.approx(ml.detect(y).metric, rel=1e-9)
