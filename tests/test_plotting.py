"""Tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.bench.harness import SeriesResult
from repro.bench.plotting import MARKERS, AsciiChart, plot_series_result


class TestAsciiChart:
    def test_renders_markers_and_legend(self):
        chart = AsciiChart(title="t", x_label="snr", y_label="ms")
        chart.add_series("cpu", np.array([0, 1, 2]), np.array([1.0, 2.0, 4.0]))
        text = chart.render()
        assert "t" in text.splitlines()[0]
        assert MARKERS[0] in text
        assert "cpu" in text
        assert "log scale" in text

    def test_multiple_series_distinct_markers(self):
        chart = AsciiChart()
        chart.add_series("a", np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        chart.add_series("b", np.array([0.0, 1.0]), np.array([2.0, 1.0]))
        text = chart.render()
        assert MARKERS[0] in text and MARKERS[1] in text

    def test_y_extents_labelled(self):
        chart = AsciiChart(log_y=False)
        chart.add_series("s", np.array([0.0, 1.0]), np.array([5.0, 10.0]))
        text = chart.render()
        assert "10" in text and "5" in text

    def test_log_filters_nonpositive(self):
        chart = AsciiChart(log_y=True)
        chart.add_series("s", np.array([0.0, 1.0, 2.0]), np.array([0.0, 1.0, 2.0]))
        assert chart.render()  # zero point silently dropped

    def test_all_nonpositive_rejected_in_log(self):
        chart = AsciiChart(log_y=True)
        with pytest.raises(ValueError):
            chart.add_series("s", np.array([0.0]), np.array([0.0]))

    def test_flat_series_ok(self):
        chart = AsciiChart(log_y=False)
        chart.add_series("s", np.array([0.0, 1.0]), np.array([3.0, 3.0]))
        assert chart.render()

    def test_single_point_ok(self):
        chart = AsciiChart()
        chart.add_series("s", np.array([1.0]), np.array([1.0]))
        assert chart.render()

    def test_dimension_bounds(self):
        with pytest.raises(ValueError):
            AsciiChart(width=5)
        with pytest.raises(ValueError):
            AsciiChart(height=2)

    def test_mismatched_arrays(self):
        chart = AsciiChart()
        with pytest.raises(ValueError):
            chart.add_series("s", np.zeros(2), np.zeros(3))

    def test_render_requires_series(self):
        with pytest.raises(ValueError):
            AsciiChart().render()

    def test_line_width_consistent(self):
        chart = AsciiChart(width=40, height=10, title="")
        chart.add_series("s", np.arange(5.0), np.arange(1.0, 6.0))
        rows = [l for l in chart.render().splitlines() if l.endswith("|")]
        assert len(rows) == 10
        assert len({len(r) for r in rows}) == 1


class TestPlotSeriesResult:
    def make_result(self):
        return SeriesResult(
            experiment="demo",
            title="demo",
            columns=["snr_db", "cpu_ms", "fpga_ms"],
            rows=[
                {"snr_db": 4.0, "cpu_ms": 8.0, "fpga_ms": 1.5},
                {"snr_db": 12.0, "cpu_ms": 1.2, "fpga_ms": 0.3},
                {"snr_db": 20.0, "cpu_ms": 1.0, "fpga_ms": 0.2},
            ],
        )

    def test_plots_selected_columns(self):
        text = plot_series_result(
            self.make_result(), "snr_db", ["cpu_ms", "fpga_ms"]
        )
        assert "cpu_ms" in text and "fpga_ms" in text

    def test_none_values_skipped(self):
        result = self.make_result()
        result.rows[1]["cpu_ms"] = None
        assert plot_series_result(result, "snr_db", ["cpu_ms"])

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            plot_series_result(self.make_result(), "snr_db", ["nope"])


class TestCliPlotSpecs:
    def test_specs_reference_real_columns(self):
        """Every CLI plot spec must chart columns its experiment emits."""
        from repro.bench.experiments import table1_resources
        from repro.cli import _PLOT_SPECS

        # Structural check on a cheap experiment's columns only; the
        # expensive ones share the columns asserted in test_experiments.
        assert "table1" not in _PLOT_SPECS  # tables are not charts
        for name, (x, ys, log_y) in _PLOT_SPECS.items():
            assert isinstance(x, str) and ys and isinstance(log_y, bool)

    def test_cli_plot_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "experiment",
                "fig6",
                "--channels",
                "1",
                "--frames",
                "1",
                "--plot",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "log scale" in out
