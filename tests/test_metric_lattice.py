"""Edge cases of the metric / lattice evaluation-layer axes.

The partial-distance metric (:mod:`repro.core.metric`) and the lattice
representation (:mod:`repro.core.lattice`) are first-class axes of the
evaluation layer. This suite covers their contracts at the seams:
kernel validation, kernel/evaluator metric agreement, ℓ∞ semantics
(monotone accumulation, exactness *in the ℓ∞ sense*, node-count
reduction), and the interleaved (reordered) real lattice's table
geometry and index fold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gemm import BatchedGemmEvaluator, ChannelKernel, GemmEvaluator
from repro.core.lattice import (
    COMPLEX_LATTICE,
    REAL_LATTICE,
    REORDERED_REAL_LATTICE,
    resolve_lattice,
)
from repro.core.metric import L2, LINF, resolve_metric
from repro.core.radius import NoiseScaledRadius
from repro.detectors.sphere import SphereDecoder
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import real_layout_permutation
from repro.mimo.system import MIMOSystem


def _frame(n=4, modulation="16qam", snr_db=14.0, seed=5):
    system = MIMOSystem(n, n, modulation)
    return system, system.random_frame(snr_db, np.random.default_rng(seed))


class TestChannelKernelValidation:
    def test_rejects_non_square(self):
        const = Constellation.qam(4)
        with pytest.raises(ValueError, match="square"):
            ChannelKernel(np.ones((3, 4), dtype=complex), const)

    def test_rejects_non_triangular(self):
        const = Constellation.qam(4)
        rng = np.random.default_rng(0)
        full = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        with pytest.raises(ValueError, match="upper triangular"):
            ChannelKernel(full, const)

    def test_pins_resolved_metric(self):
        const = Constellation.qam(4)
        r = np.triu(np.ones((3, 3), dtype=complex))
        assert ChannelKernel(r, const).metric is L2
        assert ChannelKernel(r, const, metric="linf").metric is LINF

    @pytest.mark.parametrize("evaluator_cls", [GemmEvaluator, BatchedGemmEvaluator])
    def test_evaluator_metric_mismatch_raises(self, evaluator_cls):
        const = Constellation.qam(4)
        r = np.triu(np.ones((3, 3), dtype=complex))
        kernel = ChannelKernel(r, const, metric="l2")
        ybar = np.zeros(3, dtype=complex)
        if evaluator_cls is BatchedGemmEvaluator:
            args = (r, np.zeros((2, 3), dtype=complex), const)
        else:
            args = (r, ybar, const)
        with pytest.raises(ValueError, match="metric mismatch"):
            evaluator_cls(*args, kernel=kernel, metric="linf")

    @pytest.mark.parametrize("evaluator_cls", [GemmEvaluator, BatchedGemmEvaluator])
    def test_evaluator_inherits_kernel_metric(self, evaluator_cls):
        const = Constellation.qam(4)
        r = np.triu(np.ones((3, 3), dtype=complex))
        kernel = ChannelKernel(r, const, metric="linf")
        if evaluator_cls is BatchedGemmEvaluator:
            ev = evaluator_cls(r, np.zeros((2, 3), dtype=complex), const, kernel=kernel)
        else:
            ev = evaluator_cls(r, np.zeros(3, dtype=complex), const, kernel=kernel)
        assert ev.metric is LINF


class TestResolvers:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown partial-distance metric"):
            resolve_metric("l7")

    def test_unknown_lattice_rejected(self):
        with pytest.raises(ValueError, match="unknown lattice"):
            resolve_lattice("hexagonal")

    def test_none_defaults(self):
        assert resolve_metric(None) is L2
        assert resolve_lattice(None) is COMPLEX_LATTICE

    def test_instances_pass_through(self):
        assert resolve_metric(LINF) is LINF
        assert resolve_lattice(REAL_LATTICE) is REAL_LATTICE

    def test_real_lattice_needs_square_qam(self):
        bpsk = Constellation.bpsk()
        with pytest.raises(ValueError):
            SphereDecoder(bpsk, lattice="real-reordered")


class TestLinfMetric:
    def test_increment_and_accumulate_semantics(self):
        error = np.array([[0.3 + 0.4j, -1.0 + 0.25j]])
        inc = LINF.increments(error)
        assert np.allclose(inc, [[0.4, 1.0]])
        acc = LINF.accumulate(np.array([0.7]), inc)
        # max-accumulation: keeps the running max, never a sum.
        assert np.allclose(acc, [[0.7, 1.0]])

    def test_accumulate_is_monotone(self):
        # PDs must never decrease along a path or pruning is unsound.
        rng = np.random.default_rng(3)
        parents = rng.uniform(0, 2, 16)
        errors = rng.standard_normal((16, 4)) + 1j * rng.standard_normal((16, 4))
        child = LINF.accumulate(parents, LINF.increments(errors))
        assert np.all(child >= parents[:, None])

    @pytest.mark.parametrize("seed", [9, 21, 33])
    def test_sd_linf_is_exact_in_linf(self, seed):
        """The ℓ∞ search decision achieves the true ℓ∞ minimum.

        (``result.metric`` itself stays the uniform ℓ₂-squared
        antenna-domain residual every detector reports — the search
        objective lives in the QR-rotated domain, where ℓ∞ is *not*
        unitarily invariant.)
        """
        from repro.mimo.preprocessing import effective_receive

        system, frame = _frame(n=3, modulation="4qam", seed=seed)
        const = system.constellation
        decoder = SphereDecoder(
            const,
            strategy="dfs",
            radius_policy=NoiseScaledRadius(alpha=2.0),
            metric="linf",
        )
        decoder.prepare(frame.channel, noise_var=frame.noise_var)
        result = decoder.detect(frame.received)
        # Brute-force the same triangular system the decoder searched
        # (natural ordering: no column permutation).
        r = decoder._qr.r
        ybar = effective_receive(decoder._qr, frame.received)

        def linf(idx):
            e = ybar - r @ const.points[np.asarray(idx)]
            return float(np.max(np.maximum(abs(e.real), abs(e.imag))))

        best = min(
            linf([(flat // const.order**k) % const.order for k in range(3)])
            for flat in range(const.order**3)
        )
        assert linf(result.indices) == pytest.approx(best, rel=1e-12)
        # The reported metric is the decision's l2-squared residual.
        res = frame.received - frame.channel @ const.points[result.indices]
        assert result.metric == pytest.approx(
            float(np.real(np.vdot(res, res))), rel=1e-12
        )

    def test_linf_prunes_no_worse_than_l2(self):
        """|e|_inf <= |e|_2 tightens every bound: fewer (or equal) nodes."""
        totals = {"l2": 0, "linf": 0}
        for seed in range(8):
            system, frame = _frame(n=4, modulation="16qam", seed=seed)
            for name in totals:
                decoder = SphereDecoder(
                    system.constellation,
                    strategy="dfs",
                    radius_policy=NoiseScaledRadius(alpha=2.0),
                    metric=name,
                )
                decoder.prepare(frame.channel, noise_var=frame.noise_var)
                totals[name] += decoder.detect(frame.received).stats.nodes_expanded
        assert totals["linf"] < totals["l2"]


class TestReorderedRealLattice:
    def test_permutation_interleaves(self):
        perm = real_layout_permutation(3, "interleaved")
        assert perm.tolist() == [0, 3, 1, 4, 2, 5]
        assert real_layout_permutation(3, "stacked").tolist() == list(range(6))

    def test_kernel_tables_have_real_tree_geometry(self):
        system, frame = _frame(n=4, modulation="16qam")
        decoder = SphereDecoder(system.constellation, lattice="real-reordered")
        decoder.prepare(frame.channel, noise_var=frame.noise_var)
        kernel = decoder._kernel
        side = 4  # sqrt(16): the per-dimension PAM alphabet
        n_levels = 2 * 4
        assert kernel.n_tx == n_levels
        assert kernel.diag_points.shape == (n_levels, side)
        for k in range(n_levels):
            assert kernel.rows[k].shape == (n_levels - 1 - k,)

    def test_fold_indices_round_trip(self):
        const = Constellation.qam(16)
        side = 4
        rng = np.random.default_rng(11)
        indices = rng.integers(0, const.order, size=6)
        i_part, q_part = indices // side, indices % side
        for rep in (REAL_LATTICE, REORDERED_REAL_LATTICE):
            perm = real_layout_permutation(
                6, "interleaved" if rep is REORDERED_REAL_LATTICE else "stacked"
            )
            stacked = np.concatenate([i_part, q_part])
            level_indices = stacked[perm]
            folded = rep.fold_indices(level_indices, 6, const)
            assert folded.tolist() == indices.tolist()

    def test_reordered_matches_stacked_decisions(self):
        """Both real layouts are exact ML — identical metrics everywhere."""
        system, frame = _frame(n=4, modulation="16qam", seed=2)
        results = {}
        for lattice in ("real", "real-reordered"):
            decoder = SphereDecoder(system.constellation, lattice=lattice)
            decoder.prepare(frame.channel, noise_var=frame.noise_var)
            results[lattice] = decoder.detect(frame.received)
        assert results["real"].metric == pytest.approx(
            results["real-reordered"].metric, rel=1e-12
        )
        assert np.array_equal(
            results["real"].indices, results["real-reordered"].indices
        )

    def test_depth_doubles_branching_narrows(self):
        system, frame = _frame(n=4, modulation="16qam")
        decoder = SphereDecoder(system.constellation, lattice="real-reordered")
        decoder.prepare(frame.channel, noise_var=frame.noise_var)
        stats = decoder.detect(frame.received).stats
        assert max(ev.level for ev in stats.batches) == 2 * 4 - 1
        # sqrt(P) children per expansion.
        assert stats.nodes_generated == 4 * stats.nodes_expanded
