"""Tests for repro.mimo.constellation, incl. Gray-mapping properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mimo.constellation import Constellation, gray_code


class TestFactories:
    def test_bpsk_points(self):
        c = Constellation.bpsk()
        assert np.allclose(sorted(c.points.real), [-1.0, 1.0])
        assert np.allclose(c.points.imag, 0.0)

    def test_bpsk_order_and_bits(self):
        c = Constellation.bpsk()
        assert c.order == 2
        assert c.bits_per_symbol == 1

    @pytest.mark.parametrize("order", [4, 16, 64, 256])
    def test_qam_orders(self, order):
        c = Constellation.qam(order)
        assert c.order == order
        assert c.bits_per_symbol == int(np.log2(order))

    @pytest.mark.parametrize("order", [4, 16, 64])
    def test_qam_unit_energy(self, order):
        c = Constellation.qam(order)
        assert c.average_energy == pytest.approx(1.0)

    @pytest.mark.parametrize("bad", [2, 8, 32, 5, 0, -4])
    def test_qam_rejects_non_square_orders(self, bad):
        with pytest.raises((ValueError, TypeError)):
            Constellation.qam(bad)

    @pytest.mark.parametrize(
        "name,order",
        [
            ("bpsk", 2),
            ("qpsk", 4),
            ("4qam", 4),
            ("4-QAM", 4),
            ("16qam", 16),
            ("16-qam", 16),
            ("64QAM", 64),
        ],
    )
    def test_from_name_aliases(self, name, order):
        assert Constellation.from_name(name).order == order

    def test_from_name_unknown(self):
        with pytest.raises(ValueError, match="unknown constellation"):
            Constellation.from_name("8psk")

    def test_qpsk_equals_4qam(self):
        assert Constellation.from_name("qpsk") == Constellation.qam(4)


class TestStructure:
    def test_points_read_only(self, qam4):
        with pytest.raises(ValueError):
            qam4.points[0] = 0

    def test_labels_read_only(self, qam4):
        with pytest.raises(ValueError):
            qam4.labels[0, 0] = True

    def test_labels_bijective(self, qam16):
        packed = {tuple(row) for row in qam16.labels}
        assert len(packed) == 16

    def test_len(self, qam16):
        assert len(qam16) == 16

    def test_repr_contains_name(self, qam4):
        assert "4-QAM" in repr(qam4)

    def test_min_distance_qam4(self, qam4):
        # 4-QAM levels are +-1/sqrt(2): min distance = 2/sqrt(2) = sqrt(2).
        assert qam4.min_distance == pytest.approx(np.sqrt(2.0))

    def test_min_distance_shrinks_with_order(self):
        assert Constellation.qam(16).min_distance < Constellation.qam(4).min_distance

    def test_hash_and_eq(self):
        assert Constellation.qam(4) == Constellation.qam(4)
        assert Constellation.qam(4) != Constellation.qam(16)
        assert hash(Constellation.qam(4)) == hash(Constellation.qam(4))

    def test_eq_not_implemented_for_other_types(self, qam4):
        assert (qam4 == 42) is False

    def test_constructor_validates_label_shape(self):
        with pytest.raises(ValueError, match="labels"):
            Constellation("bad", np.array([1 + 0j, -1 + 0j]), np.zeros((2, 2), bool))

    def test_constructor_rejects_duplicate_labels(self):
        labels = np.array([[False], [False]])
        with pytest.raises(ValueError, match="distinct"):
            Constellation("bad", np.array([1 + 0j, -1 + 0j]), labels)

    def test_constructor_rejects_non_power_of_two(self):
        pts = np.array([1 + 0j, -1 + 0j, 1j])
        with pytest.raises(ValueError, match="power of two"):
            Constellation("bad", pts, np.zeros((3, 1), bool))


class TestGrayMapping:
    def test_gray_code_values(self):
        assert [int(gray_code(i)) for i in range(4)] == [0, 1, 3, 2]

    @pytest.mark.parametrize("order", [4, 16, 64])
    def test_neighbours_differ_in_one_bit(self, order):
        """The defining Gray property: adjacent grid points differ by 1 bit."""
        c = Constellation.qam(order)
        side = int(np.sqrt(order))
        labels = c.labels
        for i in range(order):
            ii, qq = divmod(i, side)
            for di, dq in ((1, 0), (0, 1)):
                ni, nq = ii + di, qq + dq
                if ni < side and nq < side:
                    j = ni * side + nq
                    hamming = int(np.count_nonzero(labels[i] ^ labels[j]))
                    assert hamming == 1, f"points {i},{j} differ in {hamming} bits"

    def test_bits_roundtrip_all_points(self, constellation):
        idx = np.arange(constellation.order)
        bits = constellation.indices_to_bits(idx)
        back = constellation.bits_to_indices(bits)
        assert np.array_equal(back, idx)

    def test_bits_to_indices_rejects_ragged(self, qam16):
        with pytest.raises(ValueError):
            qam16.bits_to_indices(np.zeros(5, dtype=bool))  # 4 bits/symbol


class TestMapping:
    def test_map_indices(self, qam4):
        assert qam4.map_indices(np.array([0, 3]))[0] == qam4.points[0]

    def test_map_indices_out_of_range(self, qam4):
        with pytest.raises(ValueError):
            qam4.map_indices(np.array([4]))

    def test_map_indices_negative(self, qam4):
        with pytest.raises(ValueError):
            qam4.map_indices(np.array([-1]))


class TestSlicing:
    def test_exact_points_recovered(self, constellation):
        idx = np.arange(constellation.order)
        assert np.array_equal(
            constellation.nearest_indices(constellation.points), idx
        )

    def test_small_noise_recovered(self, constellation, rng):
        idx = rng.integers(0, constellation.order, 64)
        noisy = constellation.points[idx] + 0.01 * (
            rng.standard_normal(64) + 1j * rng.standard_normal(64)
        )
        assert np.array_equal(constellation.nearest_indices(noisy), idx)

    def test_slicing_clips_outside_grid(self, qam16):
        # Far outside the grid: must clip to the nearest corner.
        far = np.array([100 + 100j])
        idx = qam16.nearest_indices(far)[0]
        corner = qam16.points[idx]
        assert corner.real == qam16.points.real.max()
        assert corner.imag == qam16.points.imag.max()

    def test_matches_exhaustive_argmin(self, qam16, rng):
        values = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        fast = qam16.nearest_indices(values)
        exact = np.argmin(np.abs(values[:, None] - qam16.points[None, :]), axis=1)
        dist_fast = np.abs(values - qam16.points[fast])
        dist_exact = np.abs(values - qam16.points[exact])
        assert np.allclose(dist_fast, dist_exact)

    def test_nearest_points_consistent(self, qam4, rng):
        values = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        pts = qam4.nearest_points(values)
        idx = qam4.nearest_indices(values)
        assert np.array_equal(pts, qam4.points[idx])

    def test_bpsk_slices_on_real_axis(self):
        c = Constellation.bpsk()
        got = c.nearest_indices(np.array([-0.3 + 5j, 0.3 - 5j]))
        assert np.array_equal(c.points[got].real > 0, [False, True])

    def test_preserves_shape(self, qam4, rng):
        values = rng.standard_normal((3, 5)) + 1j * rng.standard_normal((3, 5))
        assert qam4.nearest_indices(values).shape == (3, 5)


@given(
    order=st.sampled_from([4, 16, 64]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_property_slicing_is_true_nearest(order, seed):
    """Fast per-dimension slicing always returns a true nearest point."""
    c = Constellation.qam(order)
    rng = np.random.default_rng(seed)
    values = 2 * (rng.standard_normal(32) + 1j * rng.standard_normal(32))
    idx = c.nearest_indices(values)
    best = np.min(np.abs(values[:, None] - c.points[None, :]), axis=1)
    got = np.abs(values - c.points[idx])
    assert np.allclose(got, best, atol=1e-12)


@given(
    order=st.sampled_from([4, 16]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_property_bits_symbols_roundtrip(order, seed):
    """bits -> symbols -> slice -> bits is the identity (no noise)."""
    c = Constellation.qam(order)
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, 8 * c.bits_per_symbol).astype(bool)
    idx = c.bits_to_indices(bits)
    recovered = c.indices_to_bits(c.nearest_indices(c.points[idx]))
    assert np.array_equal(recovered, bits)
