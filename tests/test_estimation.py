"""Tests for pilot-based channel estimation."""

import numpy as np
import pytest

from repro.mimo.channel import ChannelModel
from repro.mimo.estimation import (
    EstimatedChannelLink,
    lmmse_estimate,
    ls_estimate,
    orthogonal_pilots,
)


class TestPilots:
    def test_orthogonality(self):
        p = orthogonal_pilots(4, 8)
        gram = p @ np.conj(p.T)
        assert np.allclose(gram, 8 * np.eye(4), atol=1e-9)

    def test_square_block(self):
        p = orthogonal_pilots(5, 5)
        assert p.shape == (5, 5)
        assert np.allclose(p @ np.conj(p.T), 5 * np.eye(5), atol=1e-9)

    def test_energy_scaling(self):
        p = orthogonal_pilots(3, 6, es=2.0)
        assert np.allclose(np.abs(p) ** 2, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            orthogonal_pilots(4, 3)
        with pytest.raises(ValueError):
            orthogonal_pilots(4, 8, es=0.0)


class TestLsEstimate:
    def test_noiseless_exact(self, rng):
        model = ChannelModel(n_tx=4, n_rx=6)
        h = model.draw_channel(rng)
        p = orthogonal_pilots(4, 8)
        estimate = ls_estimate(h @ p, p)
        assert np.allclose(estimate, h, atol=1e-9)

    def test_unbiased_under_noise(self, rng):
        model = ChannelModel(n_tx=3, n_rx=3)
        h = model.draw_channel(rng)
        p = orthogonal_pilots(3, 6)
        acc = np.zeros_like(h)
        trials = 300
        for _ in range(trials):
            noise = 0.3 * (
                rng.standard_normal((3, 6)) + 1j * rng.standard_normal((3, 6))
            )
            acc += ls_estimate(h @ p + noise, p)
        assert np.allclose(acc / trials, h, atol=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            ls_estimate(np.zeros((2, 4), complex), np.zeros((3, 5), complex))
        with pytest.raises(ValueError):
            ls_estimate(np.zeros((2, 2), complex), np.zeros((3, 2), complex))


class TestLmmseEstimate:
    def test_noiseless_matches_ls(self, rng):
        model = ChannelModel(n_tx=4, n_rx=4)
        h = model.draw_channel(rng)
        p = orthogonal_pilots(4, 8)
        y = h @ p
        assert np.allclose(
            lmmse_estimate(y, p, 0.0), ls_estimate(y, p), atol=1e-9
        )

    def test_shrinks_with_noise(self, rng):
        """High pilot noise => estimate pulled towards zero vs LS."""
        model = ChannelModel(n_tx=3, n_rx=3)
        h = model.draw_channel(rng)
        p = orthogonal_pilots(3, 3)
        noise = 2.0 * (rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3)))
        y = h @ p + noise
        ls = ls_estimate(y, p)
        mmse = lmmse_estimate(y, p, noise_var=8.0)
        assert np.linalg.norm(mmse) < np.linalg.norm(ls)

    def test_better_mse_than_ls(self, rng):
        """LMMSE dominates LS in MSE at low pilot SNR (averaged)."""
        model = ChannelModel(n_tx=3, n_rx=3)
        p = orthogonal_pilots(3, 3)
        noise_var = 3.0
        err_ls = err_mmse = 0.0
        for _ in range(200):
            h = model.draw_channel(rng)
            noise = np.sqrt(noise_var / 2) * (
                rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3))
            )
            y = h @ p + noise
            err_ls += np.mean(np.abs(ls_estimate(y, p) - h) ** 2)
            err_mmse += np.mean(np.abs(lmmse_estimate(y, p, noise_var) - h) ** 2)
        assert err_mmse < err_ls

    def test_validation(self):
        p = orthogonal_pilots(2, 2)
        with pytest.raises(ValueError):
            lmmse_estimate(np.zeros((2, 2), complex), p, -1.0)
        with pytest.raises(ValueError):
            lmmse_estimate(np.zeros((2, 2), complex), p, 1.0, channel_var=0.0)


class TestEstimatedChannelLink:
    def test_report_fields(self, rng):
        link = EstimatedChannelLink(ChannelModel(n_tx=4, n_rx=4))
        report = link.run_pilot_phase(15.0, rng)
        assert report.estimate.shape == (4, 4)
        assert report.mse >= 0.0

    def test_mse_falls_with_snr(self, rng):
        link = EstimatedChannelLink(ChannelModel(n_tx=4, n_rx=4))
        low = np.mean([link.run_pilot_phase(0.0, rng).mse for _ in range(30)])
        high = np.mean([link.run_pilot_phase(25.0, rng).mse for _ in range(30)])
        assert high < low

    def test_longer_pilots_help(self, rng):
        short = EstimatedChannelLink(
            ChannelModel(n_tx=4, n_rx=4), pilot_length=4
        )
        long = EstimatedChannelLink(
            ChannelModel(n_tx=4, n_rx=4), pilot_length=16
        )
        mse_short = np.mean([short.run_pilot_phase(5.0, rng).mse for _ in range(30)])
        mse_long = np.mean([long.run_pilot_phase(5.0, rng).mse for _ in range(30)])
        assert mse_long < mse_short

    def test_validation(self):
        model = ChannelModel(n_tx=4, n_rx=4)
        with pytest.raises(ValueError):
            EstimatedChannelLink(model, pilot_length=2)
        with pytest.raises(ValueError):
            EstimatedChannelLink(model, estimator="kalman")

    def test_imperfect_csi_detection_end_to_end(self, rng):
        """Detect with the *estimate*: exactness w.r.t. the estimate's ML
        holds, and high pilot SNR recovers the true transmission."""
        from repro.core.sphere_decoder import SphereDecoder
        from repro.mimo.constellation import Constellation

        const = Constellation.qam(4)
        model = ChannelModel(n_tx=4, n_rx=4)
        link = EstimatedChannelLink(model, pilot_length=16)
        report = link.run_pilot_phase(30.0, rng)
        s = const.points[rng.integers(0, 4, 4)]
        y = report.true_channel @ s + model.draw_noise(
            model.noise_var(30.0), rng
        )
        sd = SphereDecoder(const)
        sd.prepare(report.estimate, noise_var=model.noise_var(30.0))
        result = sd.detect(y)
        assert np.array_equal(result.symbols, s)
