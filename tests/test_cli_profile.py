"""The ``profile`` subcommand and ``stats --json``.

Exit-code contract: happy paths exit 0, ``profile diff --check`` exits
1 on a threshold-crossing regression, unknown runs/experiments and
missing files exit 2 with a single ``error: ...`` line.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import Tracer, use_tracer, write_jsonl
from repro.obs.profile import SPEEDSCOPE_SCHEMA, build_profile_tree
from repro.obs.registry import MANIFEST_FILE, PROFILE_FILE
from repro.obs.tracer import PHASE_SPAN, TraceEvent


def _profile_run(tmp_path, run_id, spans, *, experiment="smoke"):
    """A handcrafted finalized run directory holding a profile.json."""
    run_dir = tmp_path / "runs" / run_id
    run_dir.mkdir(parents=True)
    tree = build_profile_tree(
        [
            TraceEvent(phase=PHASE_SPAN, name=n, ts=ts, dur=d)
            for n, ts, d in spans
        ]
    )
    (run_dir / PROFILE_FILE).write_text(json.dumps(tree.to_dict()))
    (run_dir / MANIFEST_FILE).write_text(
        json.dumps(
            {"run_id": run_id, "experiment": experiment, "status": "complete",
             "artifacts": [PROFILE_FILE]}
        )
    )
    return tmp_path / "runs", run_id


BASE_SPANS = [("mc.point", 0.0, 0.010), ("sd.detect", 0.0, 0.004)]
SLOW_SPANS = [("mc.point", 0.0, 0.012), ("sd.detect", 0.0, 0.007)]


class TestProfileDiffCli:
    def test_diff_ranks_regressed_span_first(self, tmp_path, capsys):
        runs, a = _profile_run(tmp_path, "20260808T000000-smoke-aa", BASE_SPANS)
        _, b = _profile_run(tmp_path, "20260808T000001-smoke-bb", SLOW_SPANS)
        assert main(["profile", "--dir", str(runs), "diff", a, b]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith(("sd.", "mc."))]
        assert lines[0].startswith("sd.detect")  # biggest Δself first
        assert "+3.000" in lines[0]  # 4 ms -> 7 ms
        assert "1 span(s) regressed, 1 improved" in out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        runs, a = _profile_run(tmp_path, "20260808T000000-smoke-aa", BASE_SPANS)
        _, b = _profile_run(tmp_path, "20260808T000001-smoke-bb", SLOW_SPANS)
        code = main(["profile", "--dir", str(runs), "diff", a, b, "--check"])
        assert code == 1
        assert "CHECK FAILED" in capsys.readouterr().err

    def test_check_thresholds_absorb_noise(self, tmp_path, capsys):
        runs, a = _profile_run(tmp_path, "20260808T000000-smoke-aa", BASE_SPANS)
        _, b = _profile_run(tmp_path, "20260808T000001-smoke-bb", SLOW_SPANS)
        code = main(
            ["profile", "--dir", str(runs), "diff", a, b, "--check",
             "--min-delta-ms", "5"]
        )
        assert code == 0
        assert "check OK" in capsys.readouterr().out

    def test_self_diff_reports_zero_regressions(self, tmp_path, capsys):
        runs, a = _profile_run(tmp_path, "20260808T000000-smoke-aa", BASE_SPANS)
        code = main(
            ["profile", "--dir", str(runs), "diff", "latest", "latest",
             "--check"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 span(s) regressed" in out
        assert "check OK" in out

    def test_unknown_run_exits_2(self, tmp_path, capsys):
        runs, a = _profile_run(tmp_path, "20260808T000000-smoke-aa", BASE_SPANS)
        assert main(["profile", "--dir", str(runs), "diff", a, "nope"]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestProfileFlameCli:
    def test_flame_writes_both_formats(self, tmp_path, capsys):
        runs, a = _profile_run(tmp_path, "20260808T000000-smoke-aa", BASE_SPANS)
        base = tmp_path / "flame" / "out"
        code = main(
            ["profile", "--dir", str(runs), "flame", a, "--out", str(base)]
        )
        assert code == 0
        collapsed = base.with_suffix(".collapsed.txt").read_text()
        assert "mc.point;sd.detect 4000" in collapsed
        doc = json.loads(base.with_suffix(".speedscope.json").read_text())
        assert doc["$schema"] == SPEEDSCOPE_SCHEMA
        profile = doc["profiles"][0]
        assert profile["endValue"] == pytest.approx(10_000)  # µs
        assert len(capsys.readouterr().out.splitlines()) == 2

    def test_flame_single_format(self, tmp_path):
        runs, a = _profile_run(tmp_path, "20260808T000000-smoke-aa", BASE_SPANS)
        base = tmp_path / "flame" / "only"
        code = main(
            ["profile", "--dir", str(runs), "flame", a, "--out", str(base),
             "--format", "collapsed"]
        )
        assert code == 0
        assert base.with_suffix(".collapsed.txt").is_file()
        assert not base.with_suffix(".speedscope.json").exists()


class TestProfileRunCli:
    def test_run_records_and_writes_artifacts(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        base = tmp_path / "artifacts" / "smoke"
        code = main(
            ["profile", "--dir", str(runs), "run", "smoke",
             "--channels", "1", "--frames", "1", "--out", str(base),
             "--record"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "span-covered wall" in out
        assert "top functions by internal time" in out
        # artifact trio next to --out
        profile_doc = json.loads(
            base.with_suffix(".profile.json").read_text()
        )
        assert profile_doc["tree"], "profile artifact recorded no spans"
        assert base.with_suffix(".collapsed.txt").is_file()
        assert base.with_suffix(".speedscope.json").is_file()
        # recorded registry run carries the profile + manifest entry
        run_dirs = [p for p in runs.iterdir() if (p / MANIFEST_FILE).is_file()]
        assert len(run_dirs) == 1
        manifest = json.loads((run_dirs[0] / MANIFEST_FILE).read_text())
        assert PROFILE_FILE in manifest["artifacts"]
        recorded = json.loads((run_dirs[0] / PROFILE_FILE).read_text())
        assert recorded["tree"] == profile_doc["tree"]
        # acceptance: recorded self-times sum to the recorded wall

        def _self_sum(rows):
            return sum(
                r["self_s"] + _self_sum(r.get("children", [])) for r in rows
            )

        assert _self_sum(recorded["tree"]) == pytest.approx(
            recorded["wall_s"], rel=1e-6
        )

    def test_run_by_snr_splits_subtrees(self, capsys):
        code = main(
            ["profile", "run", "smoke", "--channels", "1", "--frames", "1",
             "--by", "snr_db", "--top", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mc.point[snr_db=8]" in out
        assert "mc.point[snr_db=12]" in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["profile", "run", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "unknown experiment" in err


def _event_log(tmp_path):
    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("mc.block", snr_db=8.0):
            with tracer.span("sd.detect"):
                pass
        tracer.count("mc.frames", 3)
    return write_jsonl(tracer, tmp_path / "events.jsonl")


class TestStatsJson:
    def test_stdout_json_is_machine_readable(self, tmp_path, capsys):
        log = _event_log(tmp_path)
        code = main(["stats", "--from-jsonl", str(log), "--json", "-"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)  # nothing but the JSON
        assert doc["schema"] == 1
        assert doc["source"] == str(log)
        assert {"mc.block", "sd.detect"} <= set(doc["spans"])
        assert doc["spans"]["mc.block"]["count"] == 1
        assert doc["counters"]["mc.frames"] == 3
        assert "rates" in doc

    def test_json_to_file_keeps_human_tables(self, tmp_path, capsys):
        log = _event_log(tmp_path)
        out = tmp_path / "stats.json"
        code = main(["stats", "--from-jsonl", str(log), "--json", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "metrics:" in printed  # human tables still render
        assert json.loads(out.read_text())["schema"] == 1

    def test_missing_jsonl_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        code = main(["stats", "--from-jsonl", str(missing), "--json", "-"])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_experiment_stats_json(self, capsys):
        code = main(
            ["stats", "smoke", "--channels", "1", "--frames", "1",
             "--json", "-"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["source"] == "smoke"
        assert any(name.startswith("sd.") for name in doc["spans"])
