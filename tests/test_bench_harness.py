"""Tests for the experiment harness utilities."""

import numpy as np
import pytest

from repro.bench.harness import (
    CANONICAL_SNRS,
    REAL_TIME_MS,
    SeriesResult,
    bfs_gpu_decoder_factory,
    canonical_decoder_factory,
    run_workload_sweep,
    time_rows,
)
from repro.core.radius import NoiseScaledRadius
from repro.core.sphere_decoder import SphereDecoder
from repro.detectors.sd_bfs import GemmBfsDecoder
from repro.mimo.constellation import Constellation


class TestFactories:
    def test_canonical_decoder_configuration(self):
        const = Constellation.qam(4)
        decoder = canonical_decoder_factory(const)()
        assert isinstance(decoder, SphereDecoder)
        assert decoder.strategy == "dfs"
        assert isinstance(decoder.radius_policy, NoiseScaledRadius)
        assert decoder.child_ordering == "sorted"

    def test_canonical_fresh_instance_per_call(self):
        factory = canonical_decoder_factory(Constellation.qam(4))
        assert factory() is not factory()

    def test_bfs_factory_configuration(self):
        const = Constellation.qam(4)
        decoder = bfs_gpu_decoder_factory(const)()
        assert isinstance(decoder, GemmBfsDecoder)
        assert decoder.radius_policy.alpha == 4.0
        assert decoder.max_frontier == 2**19

    def test_canonical_snrs(self):
        assert CANONICAL_SNRS == (4.0, 8.0, 12.0, 16.0, 20.0)
        assert REAL_TIME_MS == 10.0


class TestSeriesResult:
    def make(self):
        return SeriesResult(
            experiment="demo",
            title="a demo",
            columns=["x", "y"],
            rows=[{"x": 1, "y": 2.5}, {"x": 2, "y": None}],
            notes="note",
        )

    def test_column_access(self):
        sr = self.make()
        assert sr.column("x") == [1, 2]
        assert sr.column("y") == [2.5, None]

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            self.make().column("z")

    def test_format_contains_everything(self):
        text = self.make().format()
        assert "demo" in text
        assert "2.5" in text
        assert "-" in text  # None rendered as dash
        assert "note" in text

    def test_format_aligns_header(self):
        text = self.make().format()
        lines = text.splitlines()
        # title + header + separator + 2 rows + note
        assert len(lines) == 6

    def test_format_small_and_large_floats(self):
        sr = SeriesResult(
            experiment="e",
            title="t",
            columns=["v"],
            rows=[{"v": 1e-6}, {"v": 123456.0}, {"v": 0.0}],
        )
        text = sr.format()
        assert "1e-06" in text
        assert "0" in text


class TestWorkloadSweep:
    def test_sweep_structure(self):
        workload = run_workload_sweep(
            4, "4qam", snrs=[8.0, 16.0], channels=2, frames_per_channel=2, seed=0
        )
        assert len(workload.sweep.points) == 2
        assert workload.cpu.n_rx == 4
        assert workload.fpga_optimized.config.name == "fpga-optimized"

    def test_traces_kept(self):
        workload = run_workload_sweep(
            4, "4qam", snrs=[8.0], channels=1, frames_per_channel=2, seed=0
        )
        for st in workload.sweep.points[0].frame_stats:
            assert st.batches

    def test_time_rows_columns(self):
        workload = run_workload_sweep(
            4, "4qam", snrs=[8.0, 16.0], channels=2, frames_per_channel=2, seed=0
        )
        rows = time_rows(workload)
        assert len(rows) == 2
        for row in rows:
            assert row["cpu_ms"] > 0
            assert row["fpga_optimized_ms"] > 0
            assert row["fpga_baseline_ms"] > row["fpga_optimized_ms"]
            assert row["speedup_vs_cpu"] == pytest.approx(
                row["cpu_ms"] / row["fpga_optimized_ms"]
            )
            assert isinstance(row["real_time_fpga"], bool)

    def test_decode_time_falls_with_snr(self):
        """The headline shape of Figs. 6/8/9/10 on a small system."""
        workload = run_workload_sweep(
            6, "4qam", snrs=[4.0, 20.0], channels=3, frames_per_channel=4, seed=1
        )
        rows = time_rows(workload)
        assert rows[0]["cpu_ms"] > rows[1]["cpu_ms"]
        assert rows[0]["fpga_optimized_ms"] > rows[1]["fpga_optimized_ms"]
