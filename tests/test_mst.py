"""Tests for the Meta State Table, including a decode replay."""

import numpy as np
import pytest

from repro.core.sphere_decoder import SphereDecoder
from repro.fpga.mst import ROOT_PARENT, MetaStateTable, MstCapacityError
from repro.mimo.system import MIMOSystem


class TestAllocation:
    def test_alloc_and_read_back(self):
        mst = MetaStateTable(n_levels=3, capacity=8)
        nid = mst.alloc(1, ROOT_PARENT, symbol_index=2, pd=0.5)
        assert mst.pd(nid) == 0.5
        assert mst.path(nid) == (2,)

    def test_parent_chain_path(self):
        mst = MetaStateTable(n_levels=3, capacity=8)
        a = mst.alloc(1, ROOT_PARENT, 3, 0.1)
        b = mst.alloc(2, a, 1, 0.4)
        c = mst.alloc(3, b, 0, 0.9)
        assert mst.path(c) == (3, 1, 0)

    def test_ids_encode_partition(self):
        mst = MetaStateTable(n_levels=3, capacity=8)
        a = mst.alloc(1, ROOT_PARENT, 0, 0.0)
        b = mst.alloc(2, a, 0, 0.0)
        assert mst.depth_of(a) == 1
        assert mst.depth_of(b) == 2

    def test_capacity_error(self):
        mst = MetaStateTable(n_levels=2, capacity=2)
        mst.alloc(1, ROOT_PARENT, 0, 0.0)
        mst.alloc(1, ROOT_PARENT, 1, 0.0)
        with pytest.raises(MstCapacityError):
            mst.alloc(1, ROOT_PARENT, 2, 0.0)

    def test_occupancy_and_high_water(self):
        mst = MetaStateTable(n_levels=2, capacity=4)
        mst.alloc(1, ROOT_PARENT, 0, 0.0)
        mst.alloc(1, ROOT_PARENT, 1, 0.0)
        assert mst.occupancy(1) == 2
        assert mst.occupancy(2) == 0
        assert mst.high_water == 2
        assert mst.total_allocated() == 2

    def test_reset(self):
        mst = MetaStateTable(n_levels=2, capacity=4)
        nid = mst.alloc(1, ROOT_PARENT, 0, 0.0)
        mst.reset()
        assert mst.total_allocated() == 0
        with pytest.raises(KeyError):
            mst.path(nid)

    def test_validation(self):
        mst = MetaStateTable(n_levels=2, capacity=4)
        with pytest.raises(ValueError):
            mst.alloc(1, 5, 0, 0.0)  # depth-1 must have ROOT_PARENT
        with pytest.raises(ValueError):
            mst.alloc(0, ROOT_PARENT, 0, 0.0)
        a = mst.alloc(1, ROOT_PARENT, 0, 0.0)
        with pytest.raises(ValueError):
            mst.alloc(3, a, 0, 0.0)  # parent must be at depth-1
        with pytest.raises(ValueError):
            mst.alloc(2, a, -1, 0.0)
        with pytest.raises(ValueError):
            mst.alloc(2, a, 0, -1.0)

    def test_unallocated_lookup_fails(self):
        mst = MetaStateTable(n_levels=2, capacity=4)
        with pytest.raises(KeyError):
            mst.pd(0)
        with pytest.raises(KeyError):
            mst.path(100)


class TestStorageSizing:
    def test_entry_bits_formula(self):
        mst = MetaStateTable(n_levels=10, capacity=16)
        # 4N + 3 words of 32 bits
        assert mst.entry_bits(n_rx=10, order=4) == (4 * 10 + 3) * 32

    def test_storage_scales_with_capacity(self):
        small = MetaStateTable(n_levels=10, capacity=16)
        large = MetaStateTable(n_levels=10, capacity=32)
        assert large.storage_bits(10, 4) == 2 * small.storage_bits(10, 4)

    def test_storage_scales_with_rx(self):
        mst = MetaStateTable(n_levels=10, capacity=16)
        assert mst.storage_bits(20, 4) > mst.storage_bits(10, 4)


class TestDecodeReplay:
    def test_replay_decoder_trace_through_mst(self):
        """Mirror a real decode in the MST and verify path reconstruction.

        This is the functional argument that the MST can hold the search
        tree the decoder builds: every expansion's children are allocated
        with parent links, and the winning leaf's path must reconstruct
        the decoder's answer.
        """
        system = MIMOSystem(5, 5, "4qam")
        frame = system.random_frame(8.0, np.random.default_rng(0))
        decoder = SphereDecoder(system.constellation, strategy="dfs")
        decoder.prepare(frame.channel, noise_var=frame.noise_var)
        result = decoder.detect(frame.received)

        # Re-run the same search manually, mirroring into the MST.
        from repro.core.gemm import GemmEvaluator
        from repro.mimo.preprocessing import effective_receive, qr_decompose

        qr = qr_decompose(frame.channel)
        ybar = effective_receive(qr, frame.received)
        ev = GemmEvaluator(qr.r, ybar, system.constellation)
        mst = MetaStateTable(n_levels=5, capacity=4096)
        best_pd = np.inf
        best_id = None
        # stack holds (mst_id or ROOT_PARENT, level, pd, path)
        stack = [(ROOT_PARENT, 4, 0.0, ())]
        while stack:
            parent_id, level, pd, path = stack.pop()
            if pd >= best_pd:
                continue
            arr = np.array([path], dtype=np.int64).reshape(1, len(path))
            pds = ev.expand(level, arr, np.array([pd]))[0]
            order = np.argsort(pds, kind="stable")
            depth = 5 - level
            for c in order[::-1]:
                if pds[c] >= best_pd:
                    continue
                nid = mst.alloc(depth, parent_id, int(c), float(pds[c]))
                if level == 0:
                    if pds[c] < best_pd:
                        best_pd = float(pds[c])
                        best_id = nid
                else:
                    stack.append((nid, level - 1, float(pds[c]), path + (int(c),)))
        assert best_id is not None
        # MST path is root-first; decoder indices are ascending-level.
        recovered = np.array(mst.path(best_id)[::-1])
        assert np.array_equal(qr.unpermute(recovered), result.indices)
        assert best_pd == pytest.approx(
            np.linalg.norm(ybar - qr.r @ system.constellation.points[recovered]) ** 2,
            rel=1e-9,
        )
