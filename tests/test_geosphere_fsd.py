"""Tests for the Geosphere wrapper and the fixed-complexity decoder."""

import numpy as np
import pytest

from repro.detectors.fsd import FixedComplexityDecoder
from repro.detectors.geosphere import GeosphereDecoder
from repro.detectors.ml import MLDetector
from repro.mimo.system import MIMOSystem


def run_pair(system, decoder, snr_db, seed):
    rng = np.random.default_rng(seed)
    frame = system.random_frame(snr_db, rng)
    ml = MLDetector(system.constellation)
    ml.prepare(frame.channel)
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    return frame, decoder.detect(frame.received), ml.detect(frame.received)


class TestGeosphere:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_ml(self, seed):
        system = MIMOSystem(5, 5, "4qam")
        decoder = GeosphereDecoder(system.constellation)
        _, geo, ml = run_pair(system, decoder, 6.0, seed)
        assert geo.metric == pytest.approx(ml.metric, rel=1e-9)
        assert np.array_equal(geo.indices, ml.indices)

    def test_is_dfs_single_node(self):
        system = MIMOSystem(5, 5, "4qam")
        decoder = GeosphereDecoder(system.constellation)
        _, geo, _ = run_pair(system, decoder, 6.0, 0)
        assert all(ev.pool_size == 1 for ev in geo.stats.batches)

    def test_name(self):
        assert GeosphereDecoder(MIMOSystem(2, 2).constellation).name == "geosphere"

    def test_max_nodes_passthrough(self):
        system = MIMOSystem(6, 6, "4qam")
        decoder = GeosphereDecoder(system.constellation, max_nodes=3)
        _, geo, _ = run_pair(system, decoder, 0.0, 0)
        assert geo.stats.truncated >= 1


class TestFixedComplexity:
    def test_workload_is_data_independent(self):
        """The defining FSD property: node counts don't depend on SNR."""
        system = MIMOSystem(5, 5, "4qam")
        counts = []
        for snr in (0.0, 10.0, 30.0):
            decoder = FixedComplexityDecoder(system.constellation, rho=1)
            _, fsd, _ = run_pair(system, decoder, snr, 0)
            counts.append(fsd.stats.nodes_expanded)
        assert counts[0] == counts[1] == counts[2]

    def test_workload_formula_rho1(self):
        """rho=1: level widths are 1, P, P, ..., P."""
        system = MIMOSystem(5, 5, "4qam")
        decoder = FixedComplexityDecoder(system.constellation, rho=1)
        _, fsd, _ = run_pair(system, decoder, 10.0, 0)
        pools = [ev.pool_size for ev in fsd.stats.batches]
        assert pools == [1, 4, 4, 4, 4]
        assert fsd.stats.leaves_reached == 4

    def test_workload_formula_rho2(self):
        system = MIMOSystem(4, 4, "4qam")
        decoder = FixedComplexityDecoder(system.constellation, rho=2)
        _, fsd, _ = run_pair(system, decoder, 10.0, 0)
        pools = [ev.pool_size for ev in fsd.stats.batches]
        assert pools == [1, 4, 16, 16]

    def test_metric_at_least_ml(self):
        """FSD is sub-optimal: its metric can never beat ML."""
        system = MIMOSystem(5, 5, "4qam")
        for seed in range(8):
            decoder = FixedComplexityDecoder(system.constellation, rho=1)
            _, fsd, ml = run_pair(system, decoder, 5.0, seed)
            assert fsd.metric >= ml.metric - 1e-9

    def test_full_rho_is_exhaustive(self):
        """rho = M enumerates everything -> exact ML."""
        system = MIMOSystem(3, 3, "4qam")
        for seed in range(5):
            decoder = FixedComplexityDecoder(system.constellation, rho=3)
            _, fsd, ml = run_pair(system, decoder, 3.0, seed)
            assert fsd.metric == pytest.approx(ml.metric, rel=1e-9)

    def test_high_snr_recovers(self):
        system = MIMOSystem(6, 6, "4qam")
        decoder = FixedComplexityDecoder(system.constellation)
        frame, fsd, _ = run_pair(system, decoder, 60.0, 0)
        assert np.array_equal(fsd.indices, frame.symbol_indices)

    def test_rho_validation(self):
        const = MIMOSystem(3, 3).constellation
        with pytest.raises(ValueError):
            FixedComplexityDecoder(const, rho=0)
        decoder = FixedComplexityDecoder(const, rho=4)
        with pytest.raises(ValueError, match="rho"):
            decoder.prepare(np.eye(3, dtype=complex))

    def test_requires_prepare(self):
        decoder = FixedComplexityDecoder(MIMOSystem(3, 3).constellation)
        with pytest.raises(RuntimeError):
            decoder.detect(np.zeros(3, complex))

    def test_metric_is_true_residual(self):
        system = MIMOSystem(4, 4, "16qam")
        decoder = FixedComplexityDecoder(system.constellation)
        frame, fsd, _ = run_pair(system, decoder, 10.0, 0)
        expected = (
            np.linalg.norm(frame.received - frame.channel @ fsd.symbols) ** 2
        )
        assert fsd.metric == pytest.approx(expected, rel=1e-9)
