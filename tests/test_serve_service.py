"""DetectionService behaviour: reports, telemetry, backpressure, the
threaded front end and the `repro-sd serve` CLI surface."""

import numpy as np
import pytest

from repro.bench.serving import (
    capacity_sweep,
    check_conformance,
    resolve_service_model,
)
from repro.cli import main
from repro.detectors.registry import spec
from repro.mimo.system import MIMOSystem
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.serve import (
    BackpressureError,
    DetectionService,
    LoadGenerator,
    SchedulerConfig,
    ThreadedDetectionService,
    fixed_service_model,
    serve_trace,
)


@pytest.fixture(scope="module")
def system():
    return MIMOSystem(4, 4, "4qam")


def _trace(system, **overrides):
    kwargs = dict(
        n_streams=4,
        rate_hz=400.0,
        duration_s=0.04,
        seed=17,
        channel_blocks=2,
    )
    kwargs.update(overrides)
    return LoadGenerator(system, **kwargs).trace()


class TestServeTrace:
    def test_report_accounting(self, system):
        trace = _trace(system)
        service = DetectionService(
            spec("sd", system.constellation),
            config=SchedulerConfig(max_batch=8, max_delay_s=1e-3),
            service_model=fixed_service_model(50e-6),
        )
        report = serve_trace(service, trace, slo_s=10e-3)
        assert report.accepted == trace.n_events
        assert report.rejected == 0
        assert report.offered == trace.n_events
        assert len(report.latencies_s) == report.accepted
        assert all(lat > 0 for lat in report.latencies_s)
        # Queue wait is part of the sojourn.
        for fr in report.results:
            assert 0 <= fr.queue_wait_s <= fr.latency_s
        assert report.throughput_hz > 0
        assert report.mean_batch_fill >= 1.0
        assert 0 <= report.slo_attainment() <= 1

    def test_deadline_bounds_queue_wait(self, system):
        """No frame waits in the scheduler past max_delay_s."""
        trace = _trace(system)
        max_delay = 5e-4
        service = DetectionService(
            spec("zf", system.constellation),
            config=SchedulerConfig(max_batch=64, max_delay_s=max_delay),
            service_model=fixed_service_model(1e-6),
        )
        report = serve_trace(service, trace)
        for fr in report.results:
            assert fr.queue_wait_s <= max_delay + 1e-12

    def test_symbol_errors_counted_against_ground_truth(self, system):
        trace = _trace(system, duration_s=0.02)
        service = DetectionService(spec("sd", system.constellation))
        report = serve_trace(service, trace)
        errors = report.symbol_errors()
        assert errors >= 0
        # Recompute by hand from payload ground truth.
        expected = sum(
            int(np.sum(fr.result.indices != fr.request.payload.sent_indices))
            for fr in report.results
        )
        assert errors == expected

    def test_backpressure_rejects_and_reports(self, system):
        """A saturated stream sheds load instead of queueing unboundedly."""
        trace = _trace(system, n_streams=2, rate_hz=3000.0)
        service = DetectionService(
            spec("sd", system.constellation),
            config=SchedulerConfig(
                max_batch=8, max_delay_s=50e-3, max_queue=2
            ),
            service_model=fixed_service_model(5e-3),  # slow server
        )
        report = serve_trace(service, trace)
        assert report.rejected > 0
        assert report.accepted + report.rejected == trace.n_events
        assert service.undelivered == 0

    def test_unknown_channel_rejected(self, system):
        service = DetectionService(spec("sd", system.constellation))
        with pytest.raises(KeyError, match="unknown channel"):
            service.submit(
                "s0", np.zeros(4), channel_id="nope", now=0.0
            )

    def test_serve_metrics_emitted(self, system):
        trace = _trace(system, duration_s=0.02)
        service = DetectionService(
            spec("sd", system.constellation),
            config=SchedulerConfig(max_batch=8, max_delay_s=1e-3),
        )
        metrics = MetricsRegistry()
        with use_metrics(metrics):
            report = serve_trace(service, trace)
        snap = metrics.snapshot()
        assert snap.counter_total("serve.frames") == report.accepted
        assert snap.counter_total("serve.batches") >= 1
        fills = [
            h for (name, _key), h in snap.histograms.items()
            if name == "serve.batch_fill"
        ]
        assert fills and sum(h.count for h in fills) == report.n_batches


class TestServiceModels:
    def test_fixed_model_validates(self):
        with pytest.raises(ValueError):
            fixed_service_model(0.0)

    def test_resolve_names(self, system):
        assert resolve_service_model("measured", system) is None
        assert resolve_service_model("fpga", system) is not None
        model = resolve_service_model("fixed:100", system)
        assert model is not None
        with pytest.raises(ValueError, match="unknown service model"):
            resolve_service_model("quantum", system)
        with pytest.raises(ValueError, match="fixed"):
            resolve_service_model("fixed:abc", system)

    def test_fpga_model_is_deterministic(self, system):
        trace = _trace(system, duration_s=0.02)

        def run():
            service = DetectionService(
                spec("sd", system.constellation),
                config=SchedulerConfig(max_batch=8, max_delay_s=1e-3),
                service_model=resolve_service_model("fpga", system),
            )
            return serve_trace(service, trace).latencies_s

        assert run() == run()


class TestThreadedService:
    def test_futures_resolve_in_stream_order(self, system):
        trace = _trace(system, duration_s=0.02)
        service = DetectionService(
            spec("sd", system.constellation),
            config=SchedulerConfig(max_batch=8, max_delay_s=2e-3),
        )
        service.register_trace_channels(trace)
        with ThreadedDetectionService(service) as srv:
            futures = [
                (ev.stream_id, ev.seq, srv.submit(
                    ev.stream_id,
                    ev.received,
                    channel_id=ev.channel_id,
                    payload=ev,
                ))
                for ev in trace.events
            ]
            results = [
                (sid, seq, f.result(timeout=10.0))
                for sid, seq, f in futures
            ]
        # Every future resolved to its own frame, in stream order.
        per_stream = {}
        for sid, seq, fr in results:
            assert fr.stream_id == sid
            assert fr.seq == per_stream.get(sid, -1) + 1
            per_stream[sid] = fr.seq
        assert service.undelivered == 0

    def test_close_is_idempotent_and_rejects_new_work(self, system):
        trace = _trace(system, duration_s=0.01)
        service = DetectionService(spec("zf", system.constellation))
        service.register_trace_channels(trace)
        srv = ThreadedDetectionService(service)
        srv.close()
        srv.close()
        with pytest.raises(RuntimeError, match="closed"):
            srv.submit("s0", np.zeros(4), channel_id="ch000")

    def test_served_results_match_direct(self, system):
        """Threaded path conformance (wall-clock scheduling, same bits)."""
        from repro.serve import conformance_mismatches, direct_results

        trace = _trace(system, duration_s=0.02)
        detector_spec = spec("sd", system.constellation)
        service = DetectionService(
            detector_spec,
            config=SchedulerConfig(max_batch=8, max_delay_s=1e-3),
        )
        service.register_trace_channels(trace)
        results = []
        with ThreadedDetectionService(service) as srv:
            futures = [
                srv.submit(
                    ev.stream_id,
                    ev.received,
                    channel_id=ev.channel_id,
                    payload=ev,
                )
                for ev in trace.events
            ]
            results = [f.result(timeout=10.0) for f in futures]
        report_like = type("R", (), {"results": results})()
        oracle = direct_results(detector_spec, trace)
        assert conformance_mismatches(report_like, oracle) == []


class TestCapacitySweep:
    def test_sweep_rows_and_conformance(self, system):
        result = capacity_sweep(
            n_antennas=4,
            stream_counts=(2, 4),
            rate_hz=300.0,
            duration_s=0.03,
            seed=3,
            service="fpga",
            max_batch=8,
            max_delay_ms=1.0,
        )
        assert [row["streams"] for row in result.series.rows] == [2, 4]
        assert result.series.columns[0] == "streams"  # runs-diff key
        for row in result.series.rows:
            assert row["offered"] == row["accepted"] + row["rejected"]
        assert check_conformance(result.points[0], result.kind, result.system) == []

    def test_sweep_validation(self):
        with pytest.raises(ValueError):
            capacity_sweep(stream_counts=())
        with pytest.raises(ValueError):
            capacity_sweep(slo_ms=0.0)


class TestServeCli:
    ARGS = [
        "serve",
        "--mimo", "4x4",
        "--streams", "2",
        "--rate", "300",
        "--duration", "0.03",
        "--seed", "5",
        "--service", "fpga",
        "--max-delay-ms", "1.0",
    ]

    def test_serve_prints_capacity_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "serve-capacity" in out
        assert "p95_ms" in out

    def test_serve_check_passes_within_slo(self, capsys):
        assert main(self.ARGS + ["--check", "--slo-ms", "1000"]) == 0
        assert "serve check OK" in capsys.readouterr().out

    def test_serve_check_fails_on_impossible_slo(self, capsys):
        assert main(self.ARGS + ["--check", "--slo-ms", "0.0001"]) == 1
        assert "CHECK FAILED" in capsys.readouterr().err

    def test_serve_record_and_diff(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        for _ in range(2):
            assert main(self.ARGS + ["--record", "--runs-dir", runs]) == 0
        assert main(["runs", "--dir", runs, "diff", "latest~1", "latest"]) == 0
        out = capsys.readouterr().out
        assert "per-streams series" in out

    def test_unknown_detector_exits_2(self, capsys):
        assert main(["serve", "--detector", "nope"]) == 2
        assert "error" in capsys.readouterr().err


def test_capacity_planning_example_smoke():
    """The example runs end to end and tells the whole chain's story."""
    import os
    import subprocess
    import sys
    from pathlib import Path

    root = Path(__file__).resolve().parents[1]
    env = dict(os.environ, PYTHONPATH=str(root / "src"))
    proc = subprocess.run(
        [sys.executable, str(root / "examples" / "capacity_planning.py")],
        capture_output=True,
        text=True,
        env=env,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Empirical queue replay" in proc.stdout
    assert "serve-capacity" in proc.stdout
    assert "Live metrics stream" in proc.stdout
