"""Tests for the SIC, K-best and LR-ZF detectors."""

import numpy as np
import pytest

from repro.core.radius import BabaiRadius
from repro.core.sphere_decoder import SphereDecoder
from repro.detectors.kbest import KBestDecoder
from repro.detectors.linear import ZeroForcingDetector
from repro.detectors.lr import LRZFDetector
from repro.detectors.ml import MLDetector
from repro.detectors.sic import SICDetector
from repro.mimo.constellation import Constellation
from repro.mimo.system import MIMOSystem


def run_pair(system, detector, snr_db, seed):
    rng = np.random.default_rng(seed)
    frame = system.random_frame(snr_db, rng)
    ml = MLDetector(system.constellation)
    ml.prepare(frame.channel)
    detector.prepare(frame.channel, noise_var=frame.noise_var)
    return frame, detector.detect(frame.received), ml.detect(frame.received)


class TestSIC:
    def test_noiseless_exact(self):
        system = MIMOSystem(5, 5, "4qam")
        det = SICDetector(system.constellation)
        for seed in range(5):
            frame, res, _ = run_pair(system, det, 300.0, seed)
            assert np.array_equal(res.indices, frame.symbol_indices)

    def test_never_beats_ml(self):
        system = MIMOSystem(4, 4, "4qam")
        for seed in range(8):
            det = SICDetector(system.constellation)
            _, res, ml = run_pair(system, det, 6.0, seed)
            assert res.metric >= ml.metric - 1e-9

    def test_matches_babai_seeded_sd_start(self):
        """SIC(natural) equals the Babai point the SD seeds with."""
        system = MIMOSystem(5, 5, "4qam")
        rng = np.random.default_rng(1)
        frame = system.random_frame(6.0, rng)
        sic = SICDetector(system.constellation, ordering="natural")
        sic.prepare(frame.channel)
        sic_res = sic.detect(frame.received)
        sd = SphereDecoder(
            system.constellation, radius_policy=BabaiRadius()
        )
        sd.prepare(frame.channel, noise_var=frame.noise_var)
        sd_res = sd.detect(frame.received)
        # The SD starts at the SIC point, so its first radius equals the
        # SIC residual in the reduced domain.
        assert sd_res.stats.radius_trace[0] <= sic_res.metric + 1e-9

    def test_sqrd_ordering_beats_natural_on_average(self):
        system = MIMOSystem(8, 8, "4qam")
        rng = np.random.default_rng(2)
        nat_err = srt_err = 0
        for _ in range(80):
            frame = system.random_frame(14.0, rng)
            nat = SICDetector(system.constellation, ordering="natural")
            srt = SICDetector(system.constellation, ordering="sqrd")
            nat.prepare(frame.channel)
            srt.prepare(frame.channel)
            nat_err += int(
                np.count_nonzero(nat.detect(frame.received).bits != frame.bits)
            )
            srt_err += int(
                np.count_nonzero(srt.detect(frame.received).bits != frame.bits)
            )
        assert srt_err <= nat_err

    def test_validation(self):
        with pytest.raises(ValueError):
            SICDetector(Constellation.qam(4), ordering="random")
        with pytest.raises(RuntimeError):
            SICDetector(Constellation.qam(4)).detect(np.zeros(4, complex))


class TestKBest:
    def test_large_k_is_exact_ml(self):
        """K >= P^M keeps everything: identical to brute force."""
        system = MIMOSystem(3, 3, "4qam")
        for seed in range(5):
            det = KBestDecoder(system.constellation, k=64)
            _, res, ml = run_pair(system, det, 4.0, seed)
            assert res.metric == pytest.approx(ml.metric, rel=1e-9)

    def test_fixed_workload(self):
        """Same node counts regardless of SNR (the hardware property)."""
        system = MIMOSystem(5, 5, "4qam")
        counts = set()
        for snr in (0.0, 10.0, 30.0):
            det = KBestDecoder(system.constellation, k=8)
            _, res, _ = run_pair(system, det, snr, 0)
            counts.add(res.stats.nodes_expanded)
        assert len(counts) == 1

    def test_frontier_capped_at_k(self):
        system = MIMOSystem(6, 6, "4qam")
        det = KBestDecoder(system.constellation, k=8)
        _, res, _ = run_pair(system, det, 10.0, 0)
        assert res.stats.max_list_size <= 8

    def test_never_beats_ml(self):
        system = MIMOSystem(4, 4, "4qam")
        for seed in range(8):
            det = KBestDecoder(system.constellation, k=4)
            _, res, ml = run_pair(system, det, 5.0, seed)
            assert res.metric >= ml.metric - 1e-9

    def test_bigger_k_never_worse_metric(self):
        system = MIMOSystem(5, 5, "4qam")
        rng = np.random.default_rng(3)
        frame = system.random_frame(5.0, rng)
        metrics = []
        for k in (2, 8, 64):
            det = KBestDecoder(system.constellation, k=k)
            det.prepare(frame.channel)
            metrics.append(det.detect(frame.received).metric)
        assert metrics[1] <= metrics[0] + 1e-9
        assert metrics[2] <= metrics[1] + 1e-9

    def test_high_snr_recovers(self):
        system = MIMOSystem(6, 6, "16qam")
        det = KBestDecoder(system.constellation, k=16)
        frame = system.random_frame(60.0, np.random.default_rng(0))
        det.prepare(frame.channel)
        res = det.detect(frame.received)
        assert np.array_equal(res.indices, frame.symbol_indices)

    def test_trace_one_batch_per_level(self):
        system = MIMOSystem(5, 5, "4qam")
        det = KBestDecoder(system.constellation, k=8)
        _, res, _ = run_pair(system, det, 10.0, 0)
        assert [ev.level for ev in res.stats.batches] == [4, 3, 2, 1, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            KBestDecoder(Constellation.qam(4), k=0)


class TestLRZF:
    def test_noiseless_exact(self):
        for mod in ("4qam", "16qam"):
            system = MIMOSystem(5, 5, mod)
            det = LRZFDetector(system.constellation)
            for seed in range(4):
                frame, res, _ = run_pair(system, det, 300.0, seed)
                assert np.array_equal(res.indices, frame.symbol_indices)

    def test_beats_plain_zf_at_high_snr(self):
        """LR restores diversity: clear win once noise is small."""
        system = MIMOSystem(6, 6, "4qam")
        rng = np.random.default_rng(4)
        zf_err = lr_err = 0
        for _ in range(120):
            frame = system.random_frame(22.0, rng)
            zf = ZeroForcingDetector(system.constellation)
            lr = LRZFDetector(system.constellation)
            zf.prepare(frame.channel)
            lr.prepare(frame.channel)
            zf_err += int(
                np.count_nonzero(zf.detect(frame.received).bits != frame.bits)
            )
            lr_err += int(
                np.count_nonzero(lr.detect(frame.received).bits != frame.bits)
            )
        assert lr_err < zf_err

    def test_never_beats_ml(self):
        system = MIMOSystem(4, 4, "4qam")
        for seed in range(6):
            det = LRZFDetector(system.constellation)
            _, res, ml = run_pair(system, det, 8.0, seed)
            assert res.metric >= ml.metric - 1e-9

    def test_rejects_non_square_qam(self):
        from repro.mimo.constellation import Constellation

        with pytest.raises(ValueError):
            LRZFDetector(Constellation.bpsk())

    def test_rejects_underdetermined(self):
        det = LRZFDetector(Constellation.qam(4))
        with pytest.raises(ValueError):
            det.prepare(np.zeros((3, 4), complex))

    def test_result_contract(self):
        system = MIMOSystem(4, 4, "16qam")
        det = LRZFDetector(system.constellation)
        frame, res, _ = run_pair(system, det, 15.0, 0)
        assert res.indices.shape == (4,)
        assert np.array_equal(res.symbols, system.constellation.points[res.indices])
        assert res.metric >= 0
