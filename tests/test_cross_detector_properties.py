"""Cross-detector invariants (property-based).

These tests pin down the *relationships* between detectors that the
theory demands, over randomly drawn systems: metric orderings, BER
dominance, workload orderings. They are the guard rails that keep the
detector zoo mutually consistent as the library evolves.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.radius import FixedRadius, NoiseScaledRadius
from repro.core.sphere_decoder import SphereDecoder
from repro.detectors.fsd import FixedComplexityDecoder
from repro.detectors.kbest import KBestDecoder
from repro.detectors.linear import MMSEDetector, MRCDetector, ZeroForcingDetector
from repro.detectors.lr import LRZFDetector
from repro.detectors.ml import MLDetector
from repro.detectors.sd_bfs import GemmBfsDecoder
from repro.detectors.sic import SICDetector
from repro.mimo.system import MIMOSystem


def one_frame(n, modulation, snr_db, seed):
    system = MIMOSystem(n, n, modulation)
    return system, system.random_frame(snr_db, np.random.default_rng(seed))


@given(
    n=st.integers(min_value=2, max_value=5),
    snr_db=st.floats(min_value=-2, max_value=25),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_property_ml_metric_is_global_floor(n, snr_db, seed):
    """No detector's residual metric ever beats brute-force ML."""
    system, frame = one_frame(n, "4qam", snr_db, seed)
    const = system.constellation
    ml = MLDetector(const)
    ml.prepare(frame.channel)
    floor = ml.detect(frame.received).metric
    detectors = [
        ZeroForcingDetector(const),
        MMSEDetector(const),
        MRCDetector(const),
        SICDetector(const),
        LRZFDetector(const),
        FixedComplexityDecoder(const),
        KBestDecoder(const, k=4),
        SphereDecoder(const),
        GemmBfsDecoder(const),
    ]
    for det in detectors:
        det.prepare(frame.channel, noise_var=frame.noise_var)
        metric = det.detect(frame.received).metric
        assert metric >= floor - 1e-9, type(det).__name__


@given(
    n=st.integers(min_value=2, max_value=5),
    snr_db=st.floats(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_property_all_detectors_return_valid_decisions(n, snr_db, seed):
    """Contract: indices in range, bits/symbols consistent, metric ≥ 0."""
    system, frame = one_frame(n, "16qam", snr_db, seed)
    const = system.constellation
    detectors = [
        ZeroForcingDetector(const),
        MMSEDetector(const),
        SICDetector(const),
        LRZFDetector(const),
        KBestDecoder(const, k=8),
        SphereDecoder(const),
    ]
    for det in detectors:
        det.prepare(frame.channel, noise_var=frame.noise_var)
        result = det.detect(frame.received)
        assert result.indices.shape == (n,)
        assert np.all((result.indices >= 0) & (result.indices < const.order))
        assert np.array_equal(result.symbols, const.points[result.indices])
        assert np.array_equal(result.bits, const.indices_to_bits(result.indices))
        assert result.metric >= 0.0


@given(
    n=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_property_noiseless_consensus(n, seed):
    """With no noise every sensible detector returns the transmission."""
    system, frame = one_frame(n, "4qam", 300.0, seed)
    const = system.constellation
    detectors = [
        ZeroForcingDetector(const),
        MMSEDetector(const),
        SICDetector(const),
        LRZFDetector(const),
        SphereDecoder(const),
        FixedComplexityDecoder(const),
        KBestDecoder(const, k=8),
    ]
    for det in detectors:
        det.prepare(frame.channel, noise_var=0.0)
        result = det.detect(frame.received)
        assert np.array_equal(result.indices, frame.symbol_indices), (
            type(det).__name__
        )


@given(
    n=st.integers(min_value=3, max_value=6),
    snr_db=st.floats(min_value=2, max_value=15),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_property_leaf_first_needs_fewer_nodes_than_bfs(n, snr_db, seed):
    """The paper's IV-F ordering holds for arbitrary random instances."""
    system, frame = one_frame(n, "4qam", snr_db, seed)
    const = system.constellation
    leaf_first = SphereDecoder(
        const, strategy="dfs", radius_policy=NoiseScaledRadius(alpha=2.0)
    )
    bfs = GemmBfsDecoder(const, radius_policy=NoiseScaledRadius(alpha=2.0))
    leaf_first.prepare(frame.channel, noise_var=frame.noise_var)
    bfs.prepare(frame.channel, noise_var=frame.noise_var)
    r_lf = leaf_first.detect(frame.received)
    r_bfs = bfs.detect(frame.received)
    # Identical spheres: BFS can never explore fewer nodes.
    assert r_bfs.stats.nodes_expanded >= r_lf.stats.nodes_expanded
    # And both land on the same answer (both exact within the sphere,
    # with identical escalation schedules).
    assert r_bfs.metric == pytest.approx(r_lf.metric, rel=1e-9)


@given(
    n=st.integers(min_value=2, max_value=5),
    snr_db=st.floats(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_property_kbest_full_width_dominates(n, snr_db, seed):
    """Untruncated K-best is exact ML, so no finite K beats it.

    Note K-best is *not* monotone in K in general: K=1 follows the
    greedy SIC path, whose prefix can fall outside a wider beam's
    globally-ranked survivors yet finish at a better leaf (hypothesis
    found ``n=5, snr_db=0, seed=32973498``). Only the full-width beam —
    which never truncates and is therefore exhaustive — dominates every
    narrower configuration.
    """
    system, frame = one_frame(n, "4qam", snr_db, seed)
    const = system.constellation
    metrics = []
    for k in (1, 4, 4**n):
        det = KBestDecoder(const, k=k)
        det.prepare(frame.channel)
        metrics.append(det.detect(frame.received).metric)
    assert metrics[2] <= metrics[0] + 1e-9
    assert metrics[2] <= metrics[1] + 1e-9


@given(
    n=st.integers(min_value=2, max_value=5),
    snr_db=st.floats(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_property_kbest1_equals_sic_natural_ordering_free(n, snr_db, seed):
    """K=1 K-best is successive interference cancellation (same ordering)."""
    system, frame = one_frame(n, "4qam", snr_db, seed)
    const = system.constellation
    kbest = KBestDecoder(const, k=1)  # uses SQRD internally
    sic = SICDetector(const, ordering="sqrd")
    kbest.prepare(frame.channel)
    sic.prepare(frame.channel)
    a = kbest.detect(frame.received)
    b = sic.detect(frame.received)
    assert np.array_equal(a.indices, b.indices)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_property_sphere_radius_contains_ml_iff_found(seed):
    """A finite sphere either contains the ML point (and SD finds it) or
    the decoder escalates/falls back — but it never silently returns a
    worse point while claiming the sphere was adequate."""
    system, frame = one_frame(4, "4qam", 6.0, seed)
    const = system.constellation
    ml = MLDetector(const)
    ml.prepare(frame.channel)
    ml_metric = ml.detect(frame.received).metric
    decoder = SphereDecoder(
        const, strategy="dfs", radius_policy=FixedRadius(radius_sq=1e-3)
    )
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    result = decoder.detect(frame.received)
    # Escalation guarantees the ML point is eventually inside.
    assert result.metric == pytest.approx(ml_metric, rel=1e-9, abs=1e-12)
