"""Tests for the Table I resource estimator and Table II power models."""

import numpy as np
import pytest

from repro.fpga.pipeline import PipelineConfig
from repro.fpga.power import (
    CPU_POWER_ANCHORS_W,
    FPGA_POWER_ANCHORS_W,
    cpu_power_w,
    energy_joules,
    energy_reduction_geomean,
    fpga_power_w,
)
from repro.fpga.resources import estimate_resources, mst_capacity, table1

#: Paper Table I, utilisation percentages.
PAPER_TABLE1 = {
    "baseline-4qam": {"luts": 29, "ffs": 20, "dsps": 8, "brams": 11, "urams": 14},
    "baseline-16qam": {"luts": 50, "ffs": 27, "dsps": 15, "brams": 14, "urams": 60},
    "optimized-4qam": {"luts": 11, "ffs": 7, "dsps": 3, "brams": 8, "urams": 7},
    "optimized-16qam": {"luts": 23, "ffs": 11, "dsps": 7, "brams": 10, "urams": 30},
}


class TestTable1:
    def test_all_designs_present(self):
        reports = table1()
        assert set(reports) == set(PAPER_TABLE1)

    @pytest.mark.parametrize("design", sorted(PAPER_TABLE1))
    def test_matches_paper_within_tolerance(self, design):
        """Every cell within 3 percentage points of the paper's Table I."""
        report = table1()[design]
        util = report.utilization()
        for resource, paper_pct in PAPER_TABLE1[design].items():
            got_pct = util[resource] * 100
            assert got_pct == pytest.approx(paper_pct, abs=3.0), (
                f"{design}.{resource}: model {got_pct:.1f}% vs paper {paper_pct}%"
            )

    def test_frequencies(self):
        reports = table1()
        assert reports["baseline-4qam"].freq_mhz == 253.0
        assert reports["optimized-4qam"].freq_mhz == 300.0

    def test_optimized_fits_duplication(self):
        """Section III-C4: the optimised designs leave room for a second
        pipeline (<50% everywhere); the 16-QAM baseline does not."""
        reports = table1()
        assert reports["optimized-4qam"].can_duplicate()
        assert reports["optimized-16qam"].can_duplicate()
        assert not reports["baseline-16qam"].can_duplicate()

    def test_everything_fits_device(self):
        for report in table1().values():
            assert report.fits()

    def test_optimization_reduces_every_resource(self):
        reports = table1()
        for order in (4, 16):
            base = reports[f"baseline-{order}qam"]
            opt = reports[f"optimized-{order}qam"]
            assert opt.luts < base.luts
            assert opt.ffs < base.ffs
            assert opt.dsps < base.dsps
            assert opt.brams < base.brams
            assert opt.urams < base.urams

    def test_modulation_increases_resources(self):
        reports = table1()
        for label in ("baseline", "optimized"):
            small = reports[f"{label}-4qam"]
            big = reports[f"{label}-16qam"]
            assert big.luts > small.luts
            assert big.urams > small.urams


class TestEstimator:
    def test_uram_grows_with_rx(self):
        cfg = PipelineConfig.optimized(4)
        small = estimate_resources(cfg, order=4, n_tx=10, n_rx=10)
        big = estimate_resources(cfg, order=4, n_tx=10, n_rx=20)
        assert big.urams > small.urams

    def test_mst_capacity_scales(self):
        assert mst_capacity(16, optimized=True) == 4 * mst_capacity(4, optimized=True)
        assert mst_capacity(4, optimized=False) > mst_capacity(4, optimized=True)

    def test_validation(self):
        cfg = PipelineConfig.optimized(4)
        with pytest.raises(ValueError):
            estimate_resources(cfg, order=0)


class TestPowerModels:
    def test_cpu_anchors_exact(self):
        for (n, order), watts in CPU_POWER_ANCHORS_W.items():
            assert cpu_power_w(n, order) == watts

    def test_fpga_anchors_exact(self):
        for (n, order), watts in FPGA_POWER_ANCHORS_W.items():
            assert fpga_power_w(n, order) == watts

    def test_power_law_interpolation_monotone(self):
        assert cpu_power_w(12, 4) > cpu_power_w(10, 4)
        assert fpga_power_w(12, 4) > fpga_power_w(10, 4)
        assert cpu_power_w(12, 16) > cpu_power_w(12, 4)

    def test_fpga_order_of_magnitude_below_cpu(self):
        for n in (8, 10, 12, 16, 20):
            assert fpga_power_w(n, 4) < cpu_power_w(n, 4) / 5

    def test_validation(self):
        with pytest.raises(ValueError):
            cpu_power_w(0, 4)


class TestEnergy:
    def test_energy_product(self):
        assert energy_joules(82.0, 7e-3) == pytest.approx(0.574)

    def test_paper_energy_rows(self):
        """Power x time reproduces Table II's energy column."""
        cpu_ms = {(10, 4): 7.0, (15, 4): 44.3, (20, 4): 350.6, (10, 16): 176.6}
        paper_energy = {(10, 4): 0.574, (15, 4): 4.11, (20, 4): 47.3, (10, 16): 25.1}
        for key, ms in cpu_ms.items():
            e = energy_joules(CPU_POWER_ANCHORS_W[key], ms * 1e-3)
            assert e == pytest.approx(paper_energy[key], rel=0.02)

    def test_paper_geomean(self):
        """The paper's reduction factors geomean to 38.1x."""
        got = energy_reduction_geomean([35.8, 36.8, 38.4, 41.8])
        assert got == pytest.approx(38.1, abs=0.15)

    def test_energy_validation(self):
        with pytest.raises(ValueError):
            energy_joules(-1.0, 1.0)
        with pytest.raises(ValueError):
            energy_reduction_geomean([])
        with pytest.raises(ValueError):
            energy_reduction_geomean([1.0, -2.0])
