"""Tests for repro.mimo.metrics."""

import numpy as np
import pytest

from repro.mimo.metrics import ErrorCounter, bit_errors, symbol_errors


class TestBitErrors:
    def test_no_errors(self):
        bits = np.array([1, 0, 1], dtype=bool)
        assert bit_errors(bits, bits) == 0

    def test_counts_flips(self):
        a = np.array([1, 0, 1, 0], dtype=bool)
        b = np.array([0, 0, 1, 1], dtype=bool)
        assert bit_errors(a, b) == 2

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bit_errors(np.zeros(3, bool), np.zeros(4, bool))

    def test_accepts_int_arrays(self):
        assert bit_errors(np.array([1, 1]), np.array([0, 1])) == 1


class TestSymbolErrors:
    def test_counts_differences(self):
        assert symbol_errors(np.array([1, 2, 3]), np.array([1, 9, 3])) == 1

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            symbol_errors(np.zeros(2), np.zeros(3))


class TestErrorCounter:
    def make(self):
        counter = ErrorCounter()
        sent_bits = np.array([1, 0, 1, 0], dtype=bool)
        dec_bits = np.array([1, 1, 1, 0], dtype=bool)  # 1 bit error
        sent_idx = np.array([2, 1])
        dec_idx = np.array([2, 3])  # 1 symbol error
        counter.update(sent_bits, dec_bits, sent_idx, dec_idx)
        return counter

    def test_update_counts(self):
        c = self.make()
        assert c.bit_errors == 1
        assert c.bits == 4
        assert c.symbol_errors == 1
        assert c.symbols == 2
        assert c.frame_errors == 1
        assert c.frames == 1

    def test_rates(self):
        c = self.make()
        assert c.ber == pytest.approx(0.25)
        assert c.ser == pytest.approx(0.5)
        assert c.fer == pytest.approx(1.0)

    def test_clean_frame_not_frame_error(self):
        c = ErrorCounter()
        bits = np.ones(4, dtype=bool)
        idx = np.arange(2)
        c.update(bits, bits, idx, idx)
        assert c.frame_errors == 0
        assert c.fer == 0.0

    def test_empty_rates_nan(self):
        c = ErrorCounter()
        assert np.isnan(c.ber)
        assert np.isnan(c.ser)
        assert np.isnan(c.fer)

    def test_merge(self):
        a = self.make()
        b = self.make()
        merged = a.merge(b)
        assert merged.bits == 8
        assert merged.bit_errors == 2
        assert merged.frames == 2
        # merge does not mutate the operands
        assert a.bits == 4 and b.bits == 4

    def test_confidence_interval_brackets_estimate(self):
        c = ErrorCounter(bit_errors=50, bits=10_000)
        lo, hi = c.ber_confidence()
        assert lo <= c.ber <= hi
        assert 0.0 <= lo and hi <= 1.0

    def test_confidence_shrinks_with_samples(self):
        small = ErrorCounter(bit_errors=5, bits=100)
        large = ErrorCounter(bit_errors=500, bits=10_000)
        w_small = np.diff(small.ber_confidence())[0]
        w_large = np.diff(large.ber_confidence())[0]
        assert w_large < w_small

    def test_confidence_empty(self):
        lo, hi = ErrorCounter().ber_confidence()
        assert np.isnan(lo) and np.isnan(hi)
