"""Tests for the batched GEMM evaluator — the paper's central refactor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gemm import GemmEvaluator
from repro.mimo.channel import ChannelModel
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import effective_receive, qr_decompose


def make_evaluator(n=4, order=4, seed=0):
    const = Constellation.qam(order)
    model = ChannelModel(n_tx=n, n_rx=n)
    rng = np.random.default_rng(seed)
    h = model.draw_channel(rng)
    y = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    qr = qr_decompose(h)
    ybar = effective_receive(qr, y)
    return GemmEvaluator(qr.r, ybar, const), qr.r, ybar, const


def naive_pd(r, ybar, const, path, level):
    """Scalar reference: PD of assigning each omega at `level` given path.

    ``path[i]`` is the index chosen at level ``M-1-i``.
    """
    n = r.shape[0]
    out = np.empty(const.order)
    for c in range(const.order):
        total = 0.0
        assigned = {n - 1 - i: const.points[p] for i, p in enumerate(path)}
        assigned[level] = const.points[c]
        for k in range(level, n):
            acc = ybar[k]
            for j in range(k, n):
                if j in assigned:
                    acc -= r[k, j] * assigned[j]
            total += abs(acc) ** 2
        out[c] = total
    return out


class TestExpandCorrectness:
    def test_root_expansion_matches_naive(self):
        ev, r, ybar, const = make_evaluator()
        pds = ev.expand(3, np.empty((1, 0), dtype=np.int64), np.zeros(1))
        ref = naive_pd(r, ybar, const, (), 3)
        assert np.allclose(pds[0], ref)

    def test_deep_expansion_matches_naive(self):
        ev, r, ybar, const = make_evaluator()
        path = (2, 1)  # levels 3, 2 assigned
        parent_pd = naive_pd(r, ybar, const, (2,), 2)[1]
        pds = ev.expand(
            1, np.array([[2, 1]], dtype=np.int64), np.array([parent_pd])
        )
        ref = naive_pd(r, ybar, const, path, 1)
        assert np.allclose(pds[0], ref)

    def test_leaf_expansion_matches_leaf_metric(self):
        ev, r, ybar, const = make_evaluator()
        # Walk a full path accumulating PDs through expand().
        path = []
        pd = 0.0
        for level in range(3, -1, -1):
            arr = np.array([path], dtype=np.int64).reshape(1, len(path))
            pds = ev.expand(level, arr, np.array([pd]))
            c = int(np.argmin(pds[0]))
            path.append(c)
            pd = float(pds[0, c])
        indices_by_level = np.array(path[::-1])
        assert pd == pytest.approx(ev.leaf_metric(indices_by_level), rel=1e-9)

    def test_pool_matches_individual(self):
        """Batch expansion of B nodes == B separate expansions."""
        ev, r, ybar, const = make_evaluator()
        pool = np.array([[0, 1], [3, 2], [1, 1]], dtype=np.int64)
        pds_parent = np.array([0.5, 1.0, 2.0])
        batched = ev.expand(1, pool, pds_parent)
        for i in range(3):
            single = ev.expand(1, pool[i : i + 1], pds_parent[i : i + 1])
            assert np.allclose(batched[i], single[0])

    def test_increments_nonnegative(self):
        ev, *_ = make_evaluator(seed=5)
        pds = ev.expand(3, np.empty((1, 0), dtype=np.int64), np.zeros(1))
        assert np.all(pds >= 0)

    def test_parent_pd_added(self):
        ev, *_ = make_evaluator()
        base = ev.expand(3, np.empty((1, 0), dtype=np.int64), np.zeros(1))
        shifted = ev.expand(3, np.empty((1, 0), dtype=np.int64), np.array([10.0]))
        assert np.allclose(shifted, base + 10.0)


class TestAccounting:
    def test_gemm_calls_counted(self):
        ev, *_ = make_evaluator()
        assert ev.gemm_calls == 0
        ev.expand(3, np.empty((1, 0), dtype=np.int64), np.zeros(1))
        ev.expand(3, np.empty((1, 0), dtype=np.int64), np.zeros(1))
        assert ev.gemm_calls == 2

    def test_flops_scale_with_pool_and_depth(self):
        ev, *_ = make_evaluator(n=6)
        ev.expand(4, np.zeros((3, 1), dtype=np.int64), np.zeros(3))
        flops_1 = ev.gemm_flops
        ev.expand(2, np.zeros((3, 3), dtype=np.int64), np.zeros(3))
        flops_2 = ev.gemm_flops - flops_1
        assert flops_2 == 3 * flops_1  # depth 3 vs depth 1, same pool

    def test_root_expansion_no_gemm_flops(self):
        ev, *_ = make_evaluator()
        ev.expand(3, np.empty((1, 0), dtype=np.int64), np.zeros(1))
        assert ev.gemm_flops == 0  # no interference term at the root
        assert ev.norm_flops > 0


class TestValidation:
    def test_level_range(self):
        ev, *_ = make_evaluator()
        with pytest.raises(ValueError):
            ev.expand(4, np.empty((1, 0), dtype=np.int64), np.zeros(1))
        with pytest.raises(ValueError):
            ev.expand(-1, np.empty((1, 0), dtype=np.int64), np.zeros(1))

    def test_parent_shape_enforced(self):
        ev, *_ = make_evaluator()
        with pytest.raises(ValueError, match="parent_indices"):
            ev.expand(2, np.zeros((2, 3), dtype=np.int64), np.zeros(2))

    def test_pd_shape_enforced(self):
        ev, *_ = make_evaluator()
        with pytest.raises(ValueError, match="parent_pds"):
            ev.expand(3, np.empty((2, 0), dtype=np.int64), np.zeros(3))

    def test_requires_upper_triangular(self):
        const = Constellation.qam(4)
        r = np.ones((3, 3), dtype=complex)
        with pytest.raises(ValueError, match="triangular"):
            GemmEvaluator(r, np.zeros(3, complex), const)

    def test_requires_square(self):
        const = Constellation.qam(4)
        with pytest.raises(ValueError):
            GemmEvaluator(np.triu(np.ones((3, 4))), np.zeros(3), const)

    def test_leaf_metric_shape(self):
        ev, *_ = make_evaluator()
        with pytest.raises(ValueError):
            ev.leaf_metric(np.zeros(3, dtype=int))


@given(
    n=st.integers(min_value=1, max_value=6),
    order=st.sampled_from([4, 16]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_property_expand_matches_naive(n, order, seed):
    """Batched expansion equals the scalar textbook PD at a random node."""
    ev, r, ybar, const = make_evaluator(n=n, order=order, seed=seed)
    rng = np.random.default_rng(seed)
    depth = int(rng.integers(0, n))
    level = n - 1 - depth
    path = tuple(int(x) for x in rng.integers(0, order, depth))
    parent_pd = float(rng.uniform(0, 5))
    got = ev.expand(
        level,
        np.array([path], dtype=np.int64).reshape(1, depth),
        np.array([parent_pd]),
    )[0]
    # naive_pd computes the *full* PD from scratch for a zero parent; the
    # increment is its value minus the parent's own naive PD.
    full = naive_pd(r, ybar, const, path, level)
    if depth:
        parent_full = naive_pd(r, ybar, const, path[:-1], level + 1)[path[-1]]
    else:
        parent_full = 0.0
    expected = parent_pd + (full - parent_full)
    assert np.allclose(got, expected, rtol=1e-8, atol=1e-9)


class TestUncheckedFastPath:
    """The engine's hot path must agree with the validated public API."""

    def test_expand_unchecked_bit_identical(self):
        ev, r, ybar, const = make_evaluator(n=5)
        rng = np.random.default_rng(3)
        for depth in range(5):
            level = 5 - 1 - depth
            b = int(rng.integers(1, 6))
            parents = rng.integers(0, const.order, size=(b, depth)).astype(
                np.int64
            )
            pds = rng.uniform(0, 4, size=b)
            checked = ev.expand(level, parents, pds)
            unchecked = ev.expand_unchecked(level, parents, pds)
            # Bit-identical, not just close: same code path after checks.
            np.testing.assert_array_equal(checked, unchecked)

    def test_expand_still_rejects_bad_input(self):
        """Routing the engine through the fast path must not weaken
        the public contract — ``expand`` keeps validating."""
        ev, *_ = make_evaluator(n=4)
        with pytest.raises(ValueError):
            ev.expand(5, np.empty((1, 0), dtype=np.int64), np.zeros(1))
        with pytest.raises(ValueError):
            ev.expand(2, np.zeros((1, 3), dtype=np.int64), np.zeros(1))
        with pytest.raises(ValueError):
            ev.expand(3, np.empty((2, 0), dtype=np.int64), np.zeros(3))

    def test_unchecked_accumulates_gemm_time(self):
        ev, *_ = make_evaluator(n=4)
        assert ev.gemm_time_s == 0.0
        ev.expand_unchecked(3, np.empty((1, 0), dtype=np.int64), np.zeros(1))
        after_one = ev.gemm_time_s
        assert after_one > 0.0
        ev.expand_unchecked(3, np.empty((1, 0), dtype=np.int64), np.zeros(1))
        assert ev.gemm_time_s > after_one

    def test_shared_kernel_reuse_is_bit_identical(self):
        """A prepare-time ChannelKernel gives the same results as
        per-frame construction (the per-channel cache tentpole)."""
        from repro.core.gemm import ChannelKernel

        _, r, ybar, const = make_evaluator(n=4)
        kernel = ChannelKernel(r, const)
        fresh = GemmEvaluator(r, ybar, const)
        cached = GemmEvaluator(r, ybar, const, kernel=kernel)
        parents = np.array([[1, 3]], dtype=np.int64)
        pds = np.array([0.25])
        np.testing.assert_array_equal(
            fresh.expand(1, parents, pds), cached.expand(1, parents, pds)
        )

    def test_kernel_validates_triangularity(self):
        from repro.core.gemm import ChannelKernel

        const = Constellation.qam(4)
        with pytest.raises(ValueError):
            ChannelKernel(np.ones((3, 3)), const)
