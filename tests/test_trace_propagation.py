"""Cross-process telemetry: shard workers feed the parent's timeline.

The tentpole contract of the sharded sweep's observability path: worker
tracers (parent epoch, worker pid) and metrics registries flush through
the manager queue as :class:`ShardTelemetry`, the parent absorbs them
live, and the merged Chrome trace renders one lane per worker process —
including the partial trace of a shard that dies mid-block-range.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.mimo.montecarlo import MonteCarloEngine
from repro.mimo.parallel_mc import (
    ShardTelemetry,
    _run_shard,
    _ShardConfig,
    plan_shards,
)
from repro.mimo.system import MIMOSystem
from repro.obs.export import TRACE_PID, chrome_trace, write_chrome_trace
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.tracer import TraceContext, Tracer, use_tracer
from tests.test_parallel_mc import CrashingFactory, SdFactory


def _engine(**overrides):
    system = MIMOSystem(4, 4, "4qam")
    defaults = dict(channels=6, frames_per_channel=3, seed=1234)
    defaults.update(overrides)
    return MonteCarloEngine(system, **defaults)


def _observed_sweep(tmp_path, **overrides):
    """Run a workers=2 sweep with tracer + metrics ambient; return both."""
    tracer = Tracer()
    metrics = MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        sweep = _engine(workers=2, **overrides).run(SdFactory(4), [8.0])
    return tracer, metrics, sweep


class TestWorkerLanes:
    def test_worker_events_land_on_parent_timeline_with_their_pid(
        self, tmp_path
    ):
        tracer, metrics, sweep = _observed_sweep(tmp_path)
        worker_pids = {e.pid for e in tracer.events if e.pid != 0}
        assert worker_pids, "no worker telemetry absorbed"
        assert os.getpid() not in worker_pids
        # Worker decode spans are present, not just parent bookkeeping.
        worker_spans = [
            e for e in tracer.events if e.pid != 0 and e.phase == "span"
        ]
        assert {"mc.block", "mc.frame"} <= {e.name for e in worker_spans}
        assert worker_spans
        # Shared epoch: worker timestamps are on the parent clock, i.e.
        # non-negative offsets comparable to the parent's own events.
        assert all(e.ts >= 0 for e in worker_spans)

    def test_chrome_trace_has_one_lane_per_worker_process(self, tmp_path):
        tracer, _, _ = _observed_sweep(tmp_path)
        doc = chrome_trace(tracer)
        events = doc["traceEvents"]
        meta = [
            ev
            for ev in events
            if ev.get("ph") == "M" and ev.get("name") == "process_name"
        ]
        names = {ev["args"]["name"] for ev in meta}
        assert "repro (main)" in names
        worker_names = {n for n in names if n.startswith("shard worker")}
        assert worker_names, "no worker lanes in the merged trace"
        # Every event lane is declared in the process metadata.
        declared = {ev["pid"] for ev in meta}
        assert {ev["pid"] for ev in events} <= declared
        # Parent events render on the reserved lane, never a raw 0.
        assert TRACE_PID in declared

    def test_written_trace_is_one_valid_json_document(self, tmp_path):
        tracer, _, _ = _observed_sweep(tmp_path)
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_worker_counters_merge_into_parent_totals(self, tmp_path):
        tracer, metrics, sweep = _observed_sweep(tmp_path)
        point = sweep.points[0]
        assert tracer.counters["mc.frames"] == point.frames
        assert tracer.counters["mc.bit_errors"] == point.errors.bit_errors
        snap = metrics.snapshot()
        assert snap.counter_total("mc.frames") == point.frames
        assert snap.counter_total("mc.bits") == point.errors.bits

    def test_shard_progress_gauges_reach_their_totals(self, tmp_path):
        _, metrics, _ = _observed_sweep(tmp_path)
        snap = metrics.snapshot()
        done = snap.gauge_series("mc.shard.blocks_done")
        total = snap.gauge_series("mc.shard.blocks_total")
        assert set(done) == set(total)
        assert done == total  # every shard finished every block


class ExplodingDetector:
    """Decodes one frame, then explodes — leaves a partial block trace."""

    def __init__(self) -> None:
        from repro.detectors.sphere import SphereDecoder
        from repro.mimo.constellation import Constellation

        self._inner = SphereDecoder(Constellation.qam(4))
        self._detects = 0

    @property
    def name(self):
        return self._inner.name

    def prepare(self, channel, **kwargs):
        return self._inner.prepare(channel, **kwargs)

    def detect(self, received):
        self._detects += 1
        if self._detects > 1:
            raise RuntimeError("injected worker failure (mid-block)")
        return self._inner.detect(received)


class ExplodingFactory:
    def __call__(self):
        return ExplodingDetector()


class FakeQueue:
    """In-process stand-in for the manager queue (records puts)."""

    def __init__(self) -> None:
        self.messages = []

    def put(self, msg) -> None:
        self.messages.append(msg)


class TestCrashPartialFlush:
    def _spec_and_config(self, factory, *, telemetry):
        spec = plan_shards([8.0], 1234, 2, workers=1)[0]
        if telemetry is not None:
            from dataclasses import replace

            spec = replace(spec, telemetry=telemetry)
        config = _ShardConfig(
            system=MIMOSystem(4, 4, "4qam"),
            factory=factory,
            frames_per_channel=2,
            keep_traces=False,
            batch_frames=False,
            crash_dir=None,
        )
        return spec, config

    def test_dying_shard_flushes_partial_telemetry(self):
        ctx = TraceContext(trace_enabled=True, metrics_enabled=True, epoch=0.0)
        spec, config = self._spec_and_config(
            ExplodingFactory(), telemetry=ctx
        )
        queue = FakeQueue()
        with pytest.raises(RuntimeError, match="injected worker failure"):
            _run_shard(spec, config, queue)
        flushes = [
            m for m in queue.messages if isinstance(m, ShardTelemetry)
        ]
        assert flushes, "crash path did not flush telemetry"
        assert flushes[-1].pid == os.getpid()
        # The block never finished, so every event here came from the
        # crash path: the one frame decoded before the detector died.
        names = {e.name for m in flushes for e in m.events}
        assert "mc.frame" in names

    def test_instant_crash_ships_nothing_but_still_raises(self):
        ctx = TraceContext(trace_enabled=True, metrics_enabled=True, epoch=0.0)
        spec, config = self._spec_and_config(
            CrashingFactory(), telemetry=ctx
        )
        queue = FakeQueue()
        with pytest.raises(RuntimeError, match="injected worker failure"):
            _run_shard(spec, config, queue)
        # Nothing was observed before the factory blew up: the flush is
        # skipped rather than shipping an empty message.
        assert not any(
            isinstance(m, ShardTelemetry) for m in queue.messages
        )

    def test_unobserved_shard_ships_no_telemetry(self):
        spec, config = self._spec_and_config(SdFactory(4), telemetry=None)
        queue = FakeQueue()
        _run_shard(spec, config, queue)
        assert not any(
            isinstance(m, ShardTelemetry) for m in queue.messages
        )

    def test_observed_shard_flushes_after_every_block(self):
        ctx = TraceContext(trace_enabled=True, metrics_enabled=True, epoch=0.0)
        spec, config = self._spec_and_config(SdFactory(4), telemetry=ctx)
        queue = FakeQueue()
        _run_shard(spec, config, queue)
        flushes = [
            m for m in queue.messages if isinstance(m, ShardTelemetry)
        ]
        assert len(flushes) == spec.n_blocks
        # Metrics ride as registry deltas that merge to exact totals.
        parent = MetricsRegistry()
        for flush in flushes:
            assert flush.metrics is not None
            parent.merge_snapshot(flush.metrics)
        frames = spec.n_blocks * config.frames_per_channel
        assert parent.snapshot().counter_total("mc.frames") == frames
