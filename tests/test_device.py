"""Tests for the FPGA device spec."""

import pytest

from repro.fpga.device import AlveoU280, DeviceSpec


class TestAlveoU280:
    def test_paper_figures(self):
        """Sanity against the data sheet the paper cites."""
        assert AlveoU280.bram_blocks == 4032
        assert AlveoU280.uram_blocks == 960
        assert AlveoU280.hbm_bytes == 8 * 1024**3
        assert AlveoU280.ddr_bytes == 32 * 1024**3
        assert AlveoU280.hbm_channels == 32
        assert AlveoU280.max_freq_mhz == 300.0

    def test_memory_bits(self):
        assert AlveoU280.bram_bits() == 4032 * 18 * 1024
        assert AlveoU280.uram_bits() == 960 * 288 * 1024

    def test_uram_larger_than_bram_total(self):
        assert AlveoU280.uram_bits() > AlveoU280.bram_bits()


class TestUtilization:
    def test_fractions(self):
        util = AlveoU280.utilization({"dsps": 9024 // 2, "luts": 0})
        assert util["dsps"] == pytest.approx(0.5)
        assert util["luts"] == 0.0

    def test_unknown_resource(self):
        with pytest.raises(KeyError):
            AlveoU280.utilization({"gpus": 1})

    def test_negative_count(self):
        with pytest.raises(ValueError):
            AlveoU280.utilization({"dsps": -1})


class TestValidation:
    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad",
                luts=0,
                ffs=1,
                dsps=1,
                bram_blocks=1,
                uram_blocks=1,
                hbm_bytes=1,
                ddr_bytes=1,
                hbm_channels=1,
                max_freq_mhz=100.0,
            )

    def test_rejects_zero_freq(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad",
                luts=1,
                ffs=1,
                dsps=1,
                bram_blocks=1,
                uram_blocks=1,
                hbm_bytes=1,
                ddr_bytes=1,
                hbm_channels=1,
                max_freq_mhz=0.0,
            )
