"""Serving conformance: served results == direct per-frame decoding.

The batch scheduler may coalesce a stream's frames with other streams,
split them across batches, or defer them to a deadline flush — none of
which may change a single bit of the decode. For every *exact*,
FPGA-replayable registry kind, results served through
:class:`DetectionService` must match the direct ``prepare``/``detect``
path bit-for-bit (decided indices, hard bits, exact float metric),
regardless of scheduler configuration.
"""

import numpy as np
import pytest

from repro.detectors.registry import detector_entries, spec
from repro.mimo.system import MIMOSystem
from repro.serve import (
    DetectionService,
    LoadGenerator,
    SchedulerConfig,
    conformance_mismatches,
    direct_results,
    serve_trace,
)

#: Every registry kind whose results are exact and FPGA-replayable —
#: the kinds a deployment would actually serve.
CONFORMANT_KINDS = [
    entry.kind
    for entry in detector_entries()
    if entry.exact and entry.fpga_replayable
]

#: Scheduler shapes that exercise distinct coalescing behaviour:
#: tiny deadline-dominated batches, size-triggered fused batches, and
#: a single-frame degenerate config (sequential path).
SCHEDULER_CONFIGS = {
    "deadline": SchedulerConfig(max_batch=64, max_delay_s=2e-3),
    "size": SchedulerConfig(max_batch=3, max_delay_s=10.0),
    "unbatched": SchedulerConfig(max_batch=1, max_delay_s=1e-3),
    "dynamic": SchedulerConfig(max_batch=16, max_delay_s=2e-3, dynamic=True),
}


def _trace(system, seed=5, n_streams=6):
    return LoadGenerator(
        system,
        n_streams=n_streams,
        rate_hz=300.0,
        duration_s=0.04,
        snr_db=6.0,  # low enough that searches actually branch
        seed=seed,
        channel_blocks=2,
    ).trace()


@pytest.fixture(scope="module")
def small_trace():
    system = MIMOSystem(4, 4, "4qam")
    return system, _trace(system)


def test_expected_kinds_are_covered():
    """The registry's serveable set contains the tree-search family."""
    assert {"sd", "sd-bestfs", "sd-dfs", "bfs"} <= set(CONFORMANT_KINDS)


@pytest.mark.parametrize("kind", CONFORMANT_KINDS)
def test_served_results_bit_identical(kind, small_trace):
    system, trace = small_trace
    detector_spec = spec(kind, system.constellation)
    service = DetectionService(
        detector_spec,
        config=SchedulerConfig(max_batch=8, max_delay_s=1e-3),
    )
    report = serve_trace(service, trace)
    assert report.accepted == trace.n_events
    oracle = direct_results(detector_spec, trace)
    assert conformance_mismatches(report, oracle) == []


@pytest.mark.parametrize("name", sorted(SCHEDULER_CONFIGS))
def test_conformance_independent_of_scheduling(name, small_trace):
    """Coalescing policy must not leak into the results (kind: sd)."""
    system, trace = small_trace
    detector_spec = spec("sd", system.constellation)
    service = DetectionService(
        detector_spec, config=SCHEDULER_CONFIGS[name]
    )
    report = serve_trace(service, trace)
    oracle = direct_results(detector_spec, trace)
    assert conformance_mismatches(report, oracle) == []


def test_per_stream_delivery_order(small_trace):
    """Results arrive in submission order within every stream."""
    system, trace = small_trace
    service = DetectionService(
        spec("sd", system.constellation),
        config=SchedulerConfig(max_batch=4, max_delay_s=5e-4),
    )
    report = serve_trace(service, trace)
    seen = {}
    for fr in report.results:
        prev = seen.get(fr.stream_id, -1)
        assert fr.seq == prev + 1
        seen[fr.stream_id] = fr.seq
    assert service.undelivered == 0


def test_batched_and_sequential_paths_agree(small_trace):
    """Fused decode_batch and the max_batch=1 path give the same bits."""
    system, trace = small_trace
    detector_spec = spec("sd", system.constellation)
    fused = serve_trace(
        DetectionService(
            detector_spec, config=SchedulerConfig(max_batch=16, max_delay_s=2e-3)
        ),
        trace,
    )
    sequential = serve_trace(
        DetectionService(
            detector_spec, config=SchedulerConfig(max_batch=1, max_delay_s=2e-3)
        ),
        trace,
    )
    by_key_fused = {(fr.stream_id, fr.seq): fr for fr in fused.results}
    by_key_seq = {(fr.stream_id, fr.seq): fr for fr in sequential.results}
    assert by_key_fused.keys() == by_key_seq.keys()
    for key, fr in by_key_fused.items():
        other = by_key_seq[key]
        assert np.array_equal(fr.result.indices, other.result.indices), key
        assert fr.result.metric == other.result.metric, key
    # The fused run actually coalesced (otherwise this test is vacuous).
    assert fused.mean_batch_fill > 1.0


def test_conformance_detects_corruption(small_trace):
    """The checker itself fails loudly when results are perturbed."""
    system, trace = small_trace
    detector_spec = spec("zf", system.constellation)
    service = DetectionService(detector_spec)
    report = serve_trace(service, trace)
    oracle = direct_results(detector_spec, trace)
    assert conformance_mismatches(report, oracle) == []
    # Corrupt one oracle entry: the mismatch must surface.
    key = next(iter(oracle))
    corrupted = dict(oracle)
    victim = corrupted[key]
    corrupted[key] = type(victim)(
        indices=victim.indices ^ 1,
        symbols=victim.symbols,
        bits=victim.bits,
        metric=victim.metric,
        stats=victim.stats,
    )
    assert len(conformance_mismatches(report, corrupted)) == 1
