"""Tests for the multi-PE partitioned sphere decoder (section V extension)."""

import numpy as np
import pytest

from repro.core.parallel import PartitionedSphereDecoder
from repro.core.radius import InfiniteRadius, NoiseScaledRadius
from repro.detectors.ml import MLDetector
from repro.mimo.system import MIMOSystem


def run_pair(system, decoder, snr_db, seed):
    rng = np.random.default_rng(seed)
    frame = system.random_frame(snr_db, rng)
    ml = MLDetector(system.constellation)
    ml.prepare(frame.channel)
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    return frame, decoder.detect(frame.received), ml.detect(frame.received)


class TestExactness:
    @pytest.mark.parametrize("n_pes", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_ml(self, n_pes, seed):
        system = MIMOSystem(5, 5, "4qam")
        decoder = PartitionedSphereDecoder(system.constellation, n_pes=n_pes)
        _, par, ml = run_pair(system, decoder, 6.0, seed)
        assert par.metric == pytest.approx(ml.metric, rel=1e-9)
        assert np.array_equal(par.indices, ml.indices)

    def test_matches_ml_16qam(self):
        system = MIMOSystem(3, 3, "16qam")
        decoder = PartitionedSphereDecoder(system.constellation, n_pes=4)
        _, par, ml = run_pair(system, decoder, 8.0, 0)
        assert np.array_equal(par.indices, ml.indices)

    def test_matches_ml_with_noise_radius(self):
        system = MIMOSystem(4, 4, "4qam")
        decoder = PartitionedSphereDecoder(
            system.constellation,
            n_pes=4,
            radius_policy=NoiseScaledRadius(alpha=2.0),
        )
        for seed in range(3):
            _, par, ml = run_pair(system, decoder, 6.0, seed)
            # Noise-scaled radius may erase; the decoder falls back to
            # Babai then. With alpha=2 erasure is rare; accept ML or a
            # metric no better than ML.
            assert par.metric >= ml.metric - 1e-9

    def test_single_level_system(self):
        system = MIMOSystem(1, 3, "4qam")
        decoder = PartitionedSphereDecoder(system.constellation, n_pes=4)
        _, par, ml = run_pair(system, decoder, 8.0, 0)
        assert np.array_equal(par.indices, ml.indices)


class TestParallelism:
    def test_pe_counts_recorded(self):
        system = MIMOSystem(6, 6, "4qam")
        decoder = PartitionedSphereDecoder(
            system.constellation, n_pes=4, radius_policy=InfiniteRadius()
        )
        _, par, _ = run_pair(system, decoder, 4.0, 1)
        assert len(decoder.last_pe_expansions) == 4
        # +1 for the shared root expansion.
        assert sum(decoder.last_pe_expansions) + 1 == par.stats.nodes_expanded

    def test_makespan_below_sequential_total(self):
        system = MIMOSystem(6, 6, "4qam")
        decoder = PartitionedSphereDecoder(
            system.constellation, n_pes=4, radius_policy=InfiniteRadius()
        )
        _, par, _ = run_pair(system, decoder, 4.0, 2)
        makespan = decoder.makespan_expansions()
        assert makespan < par.stats.nodes_expanded
        assert makespan >= par.stats.nodes_expanded / 4 - 1

    def test_makespan_requires_decode(self):
        decoder = PartitionedSphereDecoder(MIMOSystem(3, 3).constellation)
        with pytest.raises(RuntimeError):
            decoder.makespan_expansions()

    def test_sync_events_counted(self):
        system = MIMOSystem(5, 5, "4qam")
        decoder = PartitionedSphereDecoder(
            system.constellation, n_pes=2, radius_policy=InfiniteRadius()
        )
        _, par, _ = run_pair(system, decoder, 4.0, 3)
        assert decoder.last_sync_events == par.stats.radius_updates
        assert decoder.last_sync_events >= 1

    def test_more_pes_never_increase_makespan_much(self):
        """Makespan is non-increasing in PEs up to work-stealing losses."""
        system = MIMOSystem(6, 6, "4qam")
        rng = np.random.default_rng(4)
        frame = system.random_frame(4.0, rng)
        makespans = {}
        for n_pes in (1, 2, 4):
            decoder = PartitionedSphereDecoder(
                system.constellation,
                n_pes=n_pes,
                radius_policy=InfiniteRadius(),
            )
            decoder.prepare(frame.channel, noise_var=frame.noise_var)
            decoder.detect(frame.received)
            makespans[n_pes] = decoder.makespan_expansions()
        assert makespans[2] <= makespans[1]
        assert makespans[4] <= makespans[2] * 1.1

    def test_max_rounds_truncates(self):
        system = MIMOSystem(8, 8, "4qam")
        decoder = PartitionedSphereDecoder(
            system.constellation,
            n_pes=2,
            radius_policy=InfiniteRadius(),
            max_rounds=2,
        )
        _, par, _ = run_pair(system, decoder, 0.0, 0)
        assert par.stats.truncated >= 1
        assert par.indices.shape == (8,)


class TestContract:
    def test_requires_prepare(self):
        decoder = PartitionedSphereDecoder(MIMOSystem(3, 3).constellation)
        with pytest.raises(RuntimeError):
            decoder.detect(np.zeros(3, complex))

    def test_invalid_npes(self):
        with pytest.raises(ValueError):
            PartitionedSphereDecoder(MIMOSystem(3, 3).constellation, n_pes=0)

    def test_trace_recorded(self):
        system = MIMOSystem(4, 4, "4qam")
        decoder = PartitionedSphereDecoder(system.constellation, n_pes=2)
        _, par, _ = run_pair(system, decoder, 8.0, 0)
        assert par.stats.batches
        assert sum(ev.pool_size for ev in par.stats.batches) == (
            par.stats.nodes_expanded
        )
