"""Tests for the systolic GEMM engine cycle model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.gemm_engine import DSPS_PER_FP32_MAC, SystolicGemmEngine


class TestStructure:
    def test_macs_and_dsps(self):
        engine = SystolicGemmEngine(rows=8, cols=8)
        assert engine.macs == 64
        assert engine.dsp_usage == 64 * DSPS_PER_FP32_MAC

    def test_custom_dsps_per_mac(self):
        engine = SystolicGemmEngine(rows=4, cols=4, dsps_per_mac=4)
        assert engine.dsp_usage == 64

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SystolicGemmEngine(rows=0)
        with pytest.raises(ValueError):
            SystolicGemmEngine(initiation_interval=0)


class TestTiles:
    def test_exact_fit(self):
        engine = SystolicGemmEngine(rows=8, cols=8)
        assert engine.tile_count(8, 8) == 1
        assert engine.tile_count(16, 8) == 2
        assert engine.tile_count(16, 16) == 4

    def test_partial_tiles_round_up(self):
        engine = SystolicGemmEngine(rows=8, cols=8)
        assert engine.tile_count(9, 1) == 2
        assert engine.tile_count(1, 9) == 2

    def test_rejects_nonpositive_dims(self):
        engine = SystolicGemmEngine()
        with pytest.raises(ValueError):
            engine.tile_count(0, 4)


class TestCycles:
    def test_single_tile_formula(self):
        engine = SystolicGemmEngine(
            rows=8, cols=8, pipeline_depth=10, initiation_interval=1
        )
        # complex: 4 real MACs per complex MAC along k
        assert engine.cycles(4, 4, 5) == 4 * 5 * 1 + 10

    def test_real_data(self):
        engine = SystolicGemmEngine(
            rows=8, cols=8, pipeline_depth=10, initiation_interval=1
        )
        assert engine.cycles(4, 4, 5, complex_data=False) == 5 + 10

    def test_ii_scales_reduction(self):
        fast = SystolicGemmEngine(initiation_interval=1)
        slow = SystolicGemmEngine(initiation_interval=4)
        k = 16
        assert slow.cycles(4, 4, k) > fast.cycles(4, 4, k)

    def test_zero_k_is_fill_only(self):
        engine = SystolicGemmEngine(pipeline_depth=12)
        assert engine.cycles(4, 4, 0) == 12

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            SystolicGemmEngine().cycles(4, 4, -1)

    def test_batching_amortises(self):
        """One (64, P) GEMM costs fewer cycles than 64 (1, P) GEMMs —
        the motivation for the paper's GEMM batching."""
        engine = SystolicGemmEngine(rows=8, cols=8, pipeline_depth=12)
        one_big = engine.cycles(64, 4, 10)
        many_small = 64 * engine.cycles(1, 4, 10)
        assert one_big < many_small

    def test_sustained_throughput_improves_with_size(self):
        engine = SystolicGemmEngine(rows=8, cols=8)
        small = engine.sustained_macs_per_cycle(1, 1, 4)
        large = engine.sustained_macs_per_cycle(64, 64, 64)
        assert large > small


@given(
    m=st.integers(min_value=1, max_value=64),
    n=st.integers(min_value=1, max_value=64),
    k=st.integers(min_value=0, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_property_cycles_monotone(m, n, k):
    """More work never takes fewer cycles."""
    engine = SystolicGemmEngine(rows=8, cols=8)
    base = engine.cycles(m, n, k)
    assert engine.cycles(m + 1, n, k) >= base
    assert engine.cycles(m, n + 1, k) >= base
    assert engine.cycles(m, n, k + 1) >= base
