"""Tests for the CPU / GPU / WARP execution-time models."""

import numpy as np
import pytest

from repro.detectors.base import BatchEvent, DecodeStats
from repro.perfmodel import (
    CPU_DEFAULTS,
    GPU_DEFAULTS,
    WARP_DEFAULTS,
    CPUCostModel,
    GPUCostModel,
    WARPCostModel,
    CpuParams,
    GpuParams,
    WarpParams,
)
from repro.perfmodel.cpu import linear_detector_seconds


def stats_with(batches=10, generated=40, flops=1000):
    return DecodeStats(
        nodes_expanded=batches,
        nodes_generated=generated,
        gemm_calls=batches,
        gemm_flops=flops,
        batches=[BatchEvent(0, 1)] * batches,
    )


class TestCpuModel:
    def test_more_work_more_time(self):
        cpu = CPUCostModel(n_rx=10)
        light = stats_with(batches=10, generated=40)
        heavy = stats_with(batches=100, generated=400)
        assert cpu.decode_seconds(heavy) > cpu.decode_seconds(light)

    def test_setup_floor(self):
        cpu = CPUCostModel(n_rx=10)
        assert cpu.decode_seconds(stats_with(1, 0, 0)) >= CPU_DEFAULTS.setup_s

    def test_n_rx_scaling(self):
        """Bigger systems pay more per generated child (tree-state rows)."""
        small = CPUCostModel(n_rx=10)
        big = CPUCostModel(n_rx=20)
        st = stats_with(batches=10, generated=10_000, flops=0)
        assert big.decode_seconds(st) > small.decode_seconds(st)

    def test_words_per_child(self):
        assert CPUCostModel(n_rx=10).words_per_child == 22

    def test_falls_back_to_gemm_calls_without_trace(self):
        cpu = CPUCostModel(n_rx=10)
        st = DecodeStats(nodes_generated=40, gemm_calls=10)
        with_trace = stats_with(batches=10, generated=40, flops=0)
        st.gemm_flops = 0
        assert cpu.decode_seconds(st) == pytest.approx(
            cpu.decode_seconds(with_trace)
        )

    def test_mean(self):
        cpu = CPUCostModel(n_rx=10)
        sts = [stats_with(10, 40), stats_with(20, 80)]
        mean = cpu.mean_decode_seconds(sts)
        assert mean == pytest.approx(
            np.mean([cpu.decode_seconds(s) for s in sts])
        )
        with pytest.raises(ValueError):
            cpu.mean_decode_seconds([])

    def test_anchor_ballpark(self):
        """~530 batches / ~2100 children (the 4 dB canonical trace) => ~7 ms."""
        cpu = CPUCostModel(n_rx=10)
        st = stats_with(batches=528, generated=2114, flops=200_000)
        assert cpu.decode_seconds(st) == pytest.approx(7e-3, rel=0.15)

    def test_params_validated(self):
        with pytest.raises(ValueError):
            CpuParams(setup_s=-1.0)


class TestGpuModel:
    def test_sync_dominates_small_problems(self):
        """The paper's point: per-level sync overhead floors GPU time."""
        gpu = GPUCostModel()
        tiny = stats_with(batches=10, generated=40, flops=100)
        assert gpu.decode_seconds(tiny) >= 10 * GPU_DEFAULTS.sync_per_level_s

    def test_node_cost_matters_at_scale(self):
        gpu = GPUCostModel()
        small = stats_with(batches=10, generated=1_000)
        huge = stats_with(batches=10, generated=1_000_000)
        assert gpu.decode_seconds(huge) > 2 * gpu.decode_seconds(small)

    def test_mean_and_validation(self):
        gpu = GPUCostModel()
        with pytest.raises(ValueError):
            gpu.mean_decode_seconds([])
        with pytest.raises(ValueError):
            GpuParams(sync_per_level_s=0.0)


class TestWarpModel:
    def test_linear_in_nodes(self):
        warp = WARPCostModel()
        a = DecodeStats(nodes_expanded=10)
        b = DecodeStats(nodes_expanded=20)
        da = warp.decode_seconds(a) - WARP_DEFAULTS.setup_s
        db = warp.decode_seconds(b) - WARP_DEFAULTS.setup_s
        assert db == pytest.approx(2 * da)

    def test_anchor_ballpark(self):
        """~14 expansions (20 dB trace) => ~11 ms (paper Fig. 12)."""
        warp = WARPCostModel()
        st = DecodeStats(nodes_expanded=14)
        assert warp.decode_seconds(st) == pytest.approx(11e-3, rel=0.15)

    def test_params_validated(self):
        with pytest.raises(ValueError):
            WarpParams(clock_hz=0.0)


class TestLinearDetectorModel:
    def test_faster_with_amortisation(self):
        once = linear_detector_seconds(10, 10, vectors_per_block=1)
        amortised = linear_detector_seconds(10, 10, vectors_per_block=100)
        assert amortised < once

    def test_grows_with_size(self):
        assert linear_detector_seconds(20, 20) > linear_detector_seconds(10, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_detector_seconds(0, 10)
        with pytest.raises(ValueError):
            linear_detector_seconds(10, 10, vectors_per_block=0)

    def test_linear_far_faster_than_sd_at_low_snr(self):
        """ZF/MMSE time << SD time on a heavy trace (Fig. 12's contrast)."""
        cpu = CPUCostModel(n_rx=10)
        heavy = stats_with(batches=528, generated=2114, flops=200_000)
        assert linear_detector_seconds(10, 10, vectors_per_block=10) < 0.2 * (
            cpu.decode_seconds(heavy)
        )
