"""Compiled traversal engine: selection axis, fallback, timing semantics.

Bit-identity of the fused kernels against the NumPy reference engine is
covered by the parameterized golden-decode suite (``test_nodepool.py``)
and the ML-oracle conformance suite (``test_ml_oracle.py``). This module
tests the machinery *around* the kernels: the ``engine`` axis through
the registry/CLI, graceful degradation without Numba (single warning,
numpy fallback), the hard-failure contract for explicit requests, and
the documented ``gemm_time_s`` semantics under the fused kernels.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
import warnings

import numpy as np
import pytest

from repro.core import compiled
from repro.core.compiled import (
    ENGINES,
    CompiledTraversalEngine,
    compiled_available,
    default_engine,
    require_compiled,
    reset_fallback_warning,
    resolve_engine,
    use_engine,
    warmup_kernels,
)
from repro.core.traversal import TraversalEngine, build_engine
from repro.detectors.registry import detector_entries, spec
from repro.mimo.constellation import Constellation
from repro.mimo.system import MIMOSystem

#: Kinds expected to offer the compiled engine (every EngineDetector
#: shell kind; ``partitioned`` orchestrates its own PEs and stays numpy).
COMPILED_KINDS = {
    "sd", "sd-bestfs", "sd-dfs", "bfs", "geosphere", "kbest", "fsd",
    "sphere-real", "sd-linf", "kbest-linf", "sd-real-reordered",
}


def _frame(seed=0, n=4, snr_db=8.0, modulation="4qam"):
    system = MIMOSystem(n, n, modulation)
    return system, system.random_frame(snr_db, np.random.default_rng(seed))


class TestEngineSelection:
    def test_engines_constant(self):
        assert ENGINES == ("numpy", "compiled")

    def test_default_engine_is_numpy(self):
        assert default_engine() == "numpy"

    def test_use_engine_sets_and_restores(self):
        with use_engine("compiled"):
            assert default_engine() == "compiled"
            with use_engine("numpy"):
                assert default_engine() == "numpy"
            assert default_engine() == "compiled"
        assert default_engine() == "numpy"

    def test_use_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="engine"):
            with use_engine("fpga"):
                pass

    def test_resolve_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="engine"):
            resolve_engine("cuda")

    def test_resolve_none_follows_ambient(self):
        assert resolve_engine(None) == "numpy"
        if compiled_available():
            with use_engine("compiled"):
                assert resolve_engine(None) == "compiled"

    def test_build_engine_rejects_unknown(self):
        from repro.core.traversal import BestFirstPolicy

        const = Constellation.qam(4)
        with pytest.raises(ValueError, match="engine"):
            build_engine("bogus", const, BestFirstPolicy())

    def test_build_engine_types(self):
        from repro.core.traversal import BestFirstPolicy

        const = Constellation.qam(4)
        numpy_engine = build_engine("numpy", const, BestFirstPolicy())
        assert type(numpy_engine) is TraversalEngine
        compiled_engine = build_engine("compiled", const, BestFirstPolicy())
        assert isinstance(compiled_engine, CompiledTraversalEngine)

    def test_detector_constructor_rejects_unknown_engine(self):
        from repro.detectors.sphere import SphereDecoder

        with pytest.raises(ValueError, match="engine"):
            SphereDecoder(Constellation.qam(4), engine="gpu")

    def test_prepare_engine_override(self, traversal_engine):
        from repro.detectors.sphere import SphereDecoder

        system, frame = _frame()
        decoder = SphereDecoder(system.constellation)
        decoder.prepare(
            frame.channel, noise_var=frame.noise_var, engine=traversal_engine
        )
        assert decoder.engine == traversal_engine
        assert decoder.engine_name == traversal_engine

    def test_prepare_rejects_unknown_engine(self):
        from repro.detectors.sphere import SphereDecoder

        system, frame = _frame()
        decoder = SphereDecoder(system.constellation)
        with pytest.raises(ValueError, match="engine"):
            decoder.prepare(frame.channel, engine="asic")


class TestRegistryAxis:
    def test_engine_capable_kinds(self):
        kinds = {
            e.kind for e in detector_entries() if "compiled" in e.engines
        }
        assert kinds == COMPILED_KINDS

    def test_every_kind_supports_numpy(self):
        for entry in detector_entries():
            assert "numpy" in entry.engines, entry.kind

    def test_engine_param_present_iff_compiled_capable(self):
        for entry in detector_entries():
            has_param = "engine" in entry.defaults
            assert has_param == ("compiled" in entry.engines), entry.kind

    def test_spec_engine_roundtrip(self):
        const = Constellation.qam(4)
        detector = spec("sd", const, engine="numpy")()
        assert detector.engine == "numpy"
        detector = spec("sd", const)()
        assert detector.engine is None  # defers to ambient default


class TestFallback:
    def test_require_compiled_contract(self):
        if compiled_available():
            require_compiled()  # must not raise
        else:
            with pytest.raises(ValueError, match="(?i)numba"):
                require_compiled()

    def test_single_warning_then_silent_fallback(self, monkeypatch):
        """Unavailable compiled engine warns once, then degrades silently."""
        monkeypatch.setattr(compiled, "NUMBA_AVAILABLE", False)
        monkeypatch.delenv(compiled.INTERPRET_ENV, raising=False)
        reset_fallback_warning()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert resolve_engine("compiled") == "numpy"
                assert resolve_engine("compiled") == "numpy"
            runtime = [
                w for w in caught if issubclass(w.category, RuntimeWarning)
            ]
            assert len(runtime) == 1
            assert "numba" in str(runtime[0].message).lower()
        finally:
            reset_fallback_warning()

    def test_fallback_decode_still_works(self, monkeypatch):
        """A detector pinned to compiled decodes fine without Numba."""
        monkeypatch.setattr(compiled, "NUMBA_AVAILABLE", False)
        monkeypatch.delenv(compiled.INTERPRET_ENV, raising=False)
        reset_fallback_warning()
        try:
            system, frame = _frame()
            reference = spec("sd", system.constellation)()
            reference.prepare(frame.channel, noise_var=frame.noise_var)
            expected = reference.detect(frame.received)

            with warnings.catch_warnings(record=True):
                warnings.simplefilter("always")
                detector = spec("sd", system.constellation, engine="compiled")()
                assert detector.engine_name == "numpy"
                detector.prepare(frame.channel, noise_var=frame.noise_var)
                result = detector.detect(frame.received)
            np.testing.assert_array_equal(result.indices, expected.indices)
            assert result.metric == expected.metric
        finally:
            reset_fallback_warning()

    def test_import_without_numba_subprocess(self):
        """The whole package imports and decodes with numba blocked."""
        script = textwrap.dedent(
            """
            import sys
            import warnings

            sys.modules["numba"] = None  # any import attempt raises

            import numpy as np

            from repro.core.compiled import (
                NUMBA_AVAILABLE, compiled_available, resolve_engine,
            )

            assert not NUMBA_AVAILABLE
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert resolve_engine("compiled") == "numpy"
                assert resolve_engine("compiled") == "numpy"
            runtime = [
                w for w in caught if issubclass(w.category, RuntimeWarning)
            ]
            assert len(runtime) == 1, [str(w.message) for w in caught]

            from repro.detectors.registry import spec
            from repro.mimo.system import MIMOSystem

            system = MIMOSystem(3, 3, "4qam")
            frame = system.random_frame(8.0, np.random.default_rng(0))
            det = spec("sd", system.constellation, engine="compiled")()
            det.prepare(frame.channel, noise_var=frame.noise_var)
            result = det.detect(frame.received)
            assert result.stats.nodes_expanded > 0
            print("OK")
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": "src",
                "PATH": "/usr/bin:/bin",
                "REPRO_COMPILED_INTERPRET": "",
            },
            cwd=str(__import__("pathlib").Path(__file__).parent.parent),
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout


class TestFusedKernelPath:
    """These force interpret mode so the fused path runs everywhere."""

    @pytest.fixture(autouse=True)
    def _interpret(self, monkeypatch):
        if not compiled.NUMBA_AVAILABLE:
            monkeypatch.setenv(compiled.INTERPRET_ENV, "1")

    def test_fused_kernel_actually_invoked(self, monkeypatch):
        """Guard against a silent fall-through to the numpy reference."""
        calls = {"n": 0}
        real = compiled._best_first_kernel

        def spy(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(compiled, "_best_first_kernel", spy)
        system, frame = _frame()
        detector = spec("sd-bestfs", system.constellation, engine="compiled")()
        detector.prepare(frame.channel, noise_var=frame.noise_var)
        detector.detect(frame.received)
        assert calls["n"] > 0

    def test_dfs_kernel_actually_invoked(self, monkeypatch):
        calls = {"n": 0}
        real = compiled._dfs_kernel

        def spy(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(compiled, "_dfs_kernel", spy)
        system, frame = _frame()
        detector = spec("sd", system.constellation, engine="compiled")()
        detector.prepare(frame.channel, noise_var=frame.noise_var)
        detector.detect(frame.received)
        assert calls["n"] > 0

    def test_sweep_policies_fall_back_to_reference_solve(self):
        """BFS/K-best/FSD have no fused kernel; compiled delegates."""
        system, frame = _frame()
        for kind in ("bfs", "kbest", "fsd"):
            detector = spec(kind, system.constellation, engine="compiled")()
            detector.prepare(frame.channel, noise_var=frame.noise_var)
            result = detector.detect(frame.received)
            assert result.stats.nodes_expanded > 0, kind

    def test_gemm_time_semantics(self):
        """Fused decodes time the whole kernel region into gemm_time_s."""
        system, frame = _frame(n=6)
        detector = spec("sd", system.constellation, engine="compiled")()
        detector.prepare(frame.channel, noise_var=frame.noise_var)
        stats = detector.detect(frame.received).stats
        assert stats.gemm_time_s > 0.0
        assert stats.gemm_time_s <= stats.wall_time_s
        assert 0.0 < stats.gemm_fraction <= 1.0
        assert stats.host_overhead_s >= 0.0

    def test_warmup_idempotent(self):
        warmup_kernels()
        warmup_kernels()  # second call is a no-op

    def test_max_nodes_truncation_matches_numpy(self):
        """The cumulative max_nodes cap behaves identically when fused."""
        system, frame = _frame(n=6, snr_db=4.0, modulation="16qam")

        def run(engine):
            detector = spec(
                "sd", system.constellation, max_nodes=25, engine=engine
            )()
            detector.prepare(frame.channel, noise_var=frame.noise_var)
            result = detector.detect(frame.received)
            return (
                tuple(int(i) for i in result.indices),
                float(result.metric),
                result.stats.nodes_expanded,
                result.stats.truncated,
            )

        assert run("numpy") == run("compiled")
        assert run("compiled")[3] >= 1  # the cap actually bit


class TestCLI:
    def test_detectors_listing_has_engines_column(self, capsys):
        from repro.cli import main

        assert main(["detectors"]) == 0
        out = capsys.readouterr().out
        assert "engines      : numpy, compiled" in out
        assert "partitioned" in out

    def test_decode_engine_numpy(self, capsys):
        from repro.cli import main

        assert main(
            ["decode", "--mimo", "3x3", "--engine", "numpy"]
        ) == 0
        assert "engine        : numpy" in capsys.readouterr().out

    @pytest.mark.skipif(
        compiled_available(), reason="needs a host without the compiled engine"
    )
    def test_decode_compiled_unavailable_exits_2(self, capsys):
        from repro.cli import main

        assert main(
            ["decode", "--mimo", "3x3", "--engine", "compiled"]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "numba" in err.lower()
        assert "\n" == err[err.index("\n"):]  # single line

    @pytest.mark.skipif(
        compiled_available(), reason="needs a host without the compiled engine"
    )
    def test_experiment_compiled_unavailable_exits_2(self, capsys):
        from repro.cli import main

        assert main(
            ["experiment", "smoke", "--channels", "1", "--frames", "1",
             "--engine", "compiled"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_decode_compiled_interpret_mode(self, capsys, monkeypatch):
        monkeypatch.setenv(compiled.INTERPRET_ENV, "1")
        from repro.cli import main

        assert main(
            ["decode", "--mimo", "3x3", "--engine", "compiled"]
        ) == 0
        assert "engine        : compiled" in capsys.readouterr().out


class TestBenchReport:
    def test_traversal_report_compiled_rows(self, monkeypatch):
        monkeypatch.setenv(compiled.INTERPRET_ENV, "1")
        sys.path.insert(0, "benchmarks")
        try:
            import bench_kernels
        finally:
            sys.path.pop(0)
        report = bench_kernels.traversal_report(
            repeats=1, engines=("numpy", "compiled")
        )
        assert "compiled/dfs" in report["entries"]
        assert "compiled/best-first/pool8" in report["entries"]
        assert report["mean_nodes_per_sec_compiled"] > 0
        assert report["compiled_speedup"] > 0
        # Node counts are bit-identical across engines by contract.
        for name, entry in report["entries"].items():
            if name.startswith("compiled/"):
                twin = report["entries"][name[len("compiled/"):]]
                assert entry["nodes_expanded"] == twin["nodes_expanded"], name
