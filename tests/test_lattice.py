"""Tests for the LLL lattice-reduction algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lattice import (
    LLLResult,
    is_size_reduced,
    lll_reduce,
    orthogonality_defect,
)


def random_basis(m, n, seed):
    rng = np.random.default_rng(seed)
    while True:
        b = rng.standard_normal((m, n))
        if np.linalg.matrix_rank(b) == n:
            return b


class TestLLLInvariants:
    @pytest.mark.parametrize("seed", range(6))
    def test_reduction_identity(self, seed):
        """reduced == basis @ transform, exactly."""
        b = random_basis(6, 6, seed)
        res = lll_reduce(b)
        assert np.allclose(res.reduced, b @ res.transform, atol=1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_transform_unimodular(self, seed):
        b = random_basis(6, 6, seed)
        res = lll_reduce(b)
        det = np.linalg.det(res.transform.astype(float))
        assert abs(abs(det) - 1.0) < 1e-6
        assert res.transform.dtype == np.int64

    @pytest.mark.parametrize("seed", range(6))
    def test_size_reduced(self, seed):
        b = random_basis(7, 5, seed)
        res = lll_reduce(b)
        assert is_size_reduced(res.reduced)

    @pytest.mark.parametrize("seed", range(6))
    def test_defect_never_increases(self, seed):
        b = random_basis(6, 6, seed)
        res = lll_reduce(b)
        assert orthogonality_defect(res.reduced) <= orthogonality_defect(b) + 1e-9

    def test_inverse_transform_integral(self):
        b = random_basis(5, 5, 0)
        res = lll_reduce(b)
        inv = res.inverse_transform
        assert np.array_equal(
            res.transform @ inv, np.eye(5, dtype=np.int64)
        )

    def test_orthogonal_basis_fixed_point(self):
        res = lll_reduce(np.eye(4))
        assert np.allclose(np.abs(res.reduced), np.eye(4))

    def test_helps_bad_basis(self):
        """A classic nearly-parallel basis gets dramatically better."""
        b = np.array([[1.0, 1.0], [0.0, 1e-3]])
        res = lll_reduce(b)
        assert orthogonality_defect(res.reduced) < 0.01 * orthogonality_defect(b)

    def test_tall_basis(self):
        b = random_basis(10, 4, 1)
        res = lll_reduce(b)
        assert res.reduced.shape == (10, 4)
        assert is_size_reduced(res.reduced)


class TestValidation:
    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            lll_reduce(np.zeros((2, 3)))

    def test_rejects_rank_deficient(self):
        b = np.ones((4, 2))
        with pytest.raises(ValueError):
            lll_reduce(b)

    def test_rejects_bad_delta(self):
        b = random_basis(3, 3, 0)
        with pytest.raises(ValueError):
            lll_reduce(b, delta=0.2)
        with pytest.raises(ValueError):
            lll_reduce(b, delta=1.1)

    def test_defect_rejects_singular(self):
        with pytest.raises(ValueError):
            orthogonality_defect(np.ones((3, 2)))


@given(
    n=st.integers(min_value=2, max_value=6),
    extra=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    delta=st.sampled_from([0.6, 0.75, 0.99]),
)
@settings(max_examples=30, deadline=None)
def test_property_lll_contract(n, extra, seed, delta):
    """For random bases: identity holds, T unimodular, size-reduced."""
    b = random_basis(n + extra, n, seed)
    res = lll_reduce(b, delta=delta)
    assert np.allclose(res.reduced, b @ res.transform, atol=1e-8)
    assert abs(abs(np.linalg.det(res.transform.astype(float))) - 1.0) < 1e-6
    assert is_size_reduced(res.reduced, tol=1e-7)
