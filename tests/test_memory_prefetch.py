"""Tests for the on-chip memory plan, HBM model and prefetch unit."""

import pytest

from repro.fpga.device import AlveoU280
from repro.fpga.memory import (
    HBM_LATENCY_CYCLES,
    MemoryRequirement,
    OnChipMemoryPlan,
    hbm_stream_cycles,
)
from repro.fpga.prefetch import PrefetchUnit


class TestHbmStream:
    def test_zero_words_free(self):
        assert hbm_stream_cycles(0) == 0

    def test_latency_dominates_small(self):
        assert hbm_stream_cycles(1) == HBM_LATENCY_CYCLES + 1

    def test_bandwidth_term(self):
        # 8 words/cycle/channel
        assert hbm_stream_cycles(800, channels=1) == HBM_LATENCY_CYCLES + 100

    def test_channels_parallelise(self):
        assert hbm_stream_cycles(800, channels=4) < hbm_stream_cycles(800, channels=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            hbm_stream_cycles(-1)
        with pytest.raises(ValueError):
            hbm_stream_cycles(10, channels=0)


class TestMemoryRequirement:
    def test_valid(self):
        req = MemoryRequirement("buf", 1024, "bram")
        assert req.bits == 1024

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            MemoryRequirement("buf", 1024, "dram")

    def test_negative_bits(self):
        with pytest.raises(ValueError):
            MemoryRequirement("buf", -1, "bram")


class TestOnChipMemoryPlan:
    def test_block_rounding_per_buffer(self):
        plan = OnChipMemoryPlan(AlveoU280)
        plan.add("a", AlveoU280.BRAM_BITS + 1, "bram")  # 2 blocks
        plan.add("b", 10, "bram")  # 1 block
        assert plan.bram_blocks() == 3

    def test_uram_accounting(self):
        plan = OnChipMemoryPlan(AlveoU280)
        plan.add("mst", AlveoU280.URAM_BITS * 5, "uram")
        assert plan.uram_blocks() == 5
        assert plan.bram_blocks() == 0

    def test_zero_bit_buffer_free(self):
        plan = OnChipMemoryPlan(AlveoU280)
        plan.add("empty", 0, "bram")
        assert plan.bram_blocks() == 0

    def test_fits(self):
        plan = OnChipMemoryPlan(AlveoU280)
        plan.add("ok", AlveoU280.BRAM_BITS * 100, "bram")
        assert plan.fits()
        plan.add("huge", AlveoU280.URAM_BITS * 2000, "uram")
        assert not plan.fits()

    def test_report_fractions(self):
        plan = OnChipMemoryPlan(AlveoU280)
        plan.add("half", AlveoU280.URAM_BITS * 480, "uram")
        assert plan.report()["urams"] == pytest.approx(0.5)


class TestPrefetchUnit:
    def test_fetch_includes_setup_and_latency(self):
        unit = PrefetchUnit(double_buffered=True, address_setup_cycles=4, hbm_channels=1)
        assert unit.fetch_cycles(8) == 4 + HBM_LATENCY_CYCLES + 1

    def test_zero_words_free(self):
        assert PrefetchUnit().fetch_cycles(0) == 0

    def test_double_buffered_overlaps(self):
        unit = PrefetchUnit(double_buffered=True)
        fetch = unit.fetch_cycles(64)
        assert unit.effective_cycles(10, 64) == max(10, fetch)
        assert unit.effective_cycles(10_000, 64) == 10_000

    def test_sequential_sums(self):
        unit = PrefetchUnit(double_buffered=False)
        fetch = unit.fetch_cycles(64)
        assert unit.effective_cycles(100, 64) == 100 + fetch

    def test_double_buffering_never_slower(self):
        dbuf = PrefetchUnit(double_buffered=True)
        seq = PrefetchUnit(double_buffered=False)
        for compute in (0, 10, 1000):
            for words in (0, 8, 512):
                assert dbuf.effective_cycles(compute, words) <= seq.effective_cycles(
                    compute, words
                )

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefetchUnit(address_setup_cycles=-1)
        with pytest.raises(ValueError):
            PrefetchUnit(hbm_channels=0)
        with pytest.raises(ValueError):
            PrefetchUnit().fetch_cycles(-5)
        with pytest.raises(ValueError):
            PrefetchUnit().effective_cycles(-1, 0)
