"""End-to-end integration tests spanning the whole stack.

These exercise the full pipeline the way the paper's evaluation does:
Monte Carlo link simulation -> decoder -> work traces -> platform time
models, asserting the qualitative claims of the paper hold in this
implementation.
"""

import numpy as np
import pytest

from repro import (
    BabaiRadius,
    FixedRadius,
    GemmBfsDecoder,
    GeosphereDecoder,
    MIMOSystem,
    MLDetector,
    MMSEDetector,
    MonteCarloEngine,
    NoiseScaledRadius,
    SphereDecoder,
    ZeroForcingDetector,
)
from repro.fpga import FPGAPipeline, PipelineConfig
from repro.perfmodel import CPUCostModel


class TestBerHierarchy:
    """SD (exact ML) must dominate the suboptimal detectors in BER."""

    def test_sd_beats_linear_detectors(self):
        system = MIMOSystem(8, 8, "4qam")
        const = system.constellation
        engine = MonteCarloEngine(
            system, channels=6, frames_per_channel=15, seed=5, keep_traces=False
        )
        snrs = [8.0]
        sd = engine.run(lambda: SphereDecoder(const), snrs)
        zf = engine.run(lambda: ZeroForcingDetector(const), snrs)
        mmse = engine.run(lambda: MMSEDetector(const), snrs)
        assert sd.points[0].ber < zf.points[0].ber
        assert sd.points[0].ber <= mmse.points[0].ber

    def test_sd_ber_decreases_with_snr(self):
        system = MIMOSystem(6, 6, "4qam")
        const = system.constellation
        engine = MonteCarloEngine(
            system, channels=6, frames_per_channel=15, seed=6, keep_traces=False
        )
        sweep = engine.run(lambda: SphereDecoder(const), [2.0, 10.0, 18.0])
        bers = sweep.bers
        assert bers[0] > bers[2]
        assert bers[1] >= bers[2]

    def test_all_exact_decoders_same_ber(self):
        """Best-FS, sorted-DFS, Geosphere and generously-provisioned BFS
        are all exact: identical decisions frame by frame."""
        system = MIMOSystem(5, 5, "4qam")
        const = system.constellation
        rng = np.random.default_rng(9)
        frame = system.random_frame(5.0, rng)
        decoders = [
            SphereDecoder(const, strategy="best-first"),
            SphereDecoder(const, strategy="dfs"),
            GeosphereDecoder(const),
            GemmBfsDecoder(const, radius_policy=FixedRadius(radius_sq=1e9)),
        ]
        decisions = []
        for d in decoders:
            d.prepare(frame.channel, noise_var=frame.noise_var)
            decisions.append(d.detect(frame.received).indices)
        for other in decisions[1:]:
            assert np.array_equal(decisions[0], other)


class TestWorkloadShapes:
    def test_nodes_fall_with_snr(self):
        system = MIMOSystem(8, 8, "4qam")
        const = system.constellation
        engine = MonteCarloEngine(system, channels=4, frames_per_channel=5, seed=2)
        sweep = engine.run(
            lambda: SphereDecoder(
                const, strategy="dfs", radius_policy=NoiseScaledRadius(alpha=2.0)
            ),
            [4.0, 20.0],
        )
        assert (
            sweep.points[0].mean_nodes_expanded()
            > sweep.points[1].mean_nodes_expanded()
        )

    def test_nodes_grow_with_antennas(self):
        counts = {}
        for n in (4, 8):
            system = MIMOSystem(n, n, "4qam")
            const = system.constellation
            engine = MonteCarloEngine(
                system, channels=4, frames_per_channel=5, seed=3
            )
            sweep = engine.run(
                lambda: SphereDecoder(
                    const, strategy="dfs", radius_policy=NoiseScaledRadius(alpha=2.0)
                ),
                [6.0],
            )
            counts[n] = sweep.points[0].mean_nodes_expanded()
        assert counts[8] > counts[4]

    def test_modulation_scaling_dominates(self):
        """Paper section IV-E: modulation factor hits harder than antennas."""
        base = self._mean_nodes(MIMOSystem(6, 6, "4qam"), seed=4)
        wider = self._mean_nodes(MIMOSystem(8, 8, "4qam"), seed=4)
        denser = self._mean_nodes(MIMOSystem(6, 6, "16qam"), seed=4)
        assert denser > base
        assert denser > wider

    @staticmethod
    def _mean_nodes(system, seed):
        const = system.constellation
        engine = MonteCarloEngine(system, channels=3, frames_per_channel=4, seed=seed)
        sweep = engine.run(
            lambda: SphereDecoder(
                const, strategy="dfs", radius_policy=NoiseScaledRadius(alpha=2.0)
            ),
            [8.0],
        )
        return sweep.points[0].mean_nodes_expanded()


class TestPlatformStory:
    def test_fpga_opt_beats_cpu_beats_baseline_ordering(self):
        """On identical traces: FPGA-opt < FPGA-baseline < CPU decode time."""
        system = MIMOSystem(8, 8, "4qam")
        const = system.constellation
        engine = MonteCarloEngine(system, channels=3, frames_per_channel=4, seed=1)
        sweep = engine.run(
            lambda: SphereDecoder(
                const, strategy="dfs", radius_policy=NoiseScaledRadius(alpha=2.0)
            ),
            [6.0],
        )
        stats = sweep.points[0].frame_stats
        cpu = CPUCostModel(n_rx=8).mean_decode_seconds(stats)
        opt = FPGAPipeline(
            PipelineConfig.optimized(4), n_tx=8, n_rx=8, order=4
        ).mean_decode_seconds(stats)
        base = FPGAPipeline(
            PipelineConfig.baseline(4), n_tx=8, n_rx=8, order=4
        ).mean_decode_seconds(stats)
        assert opt < base < cpu

    def test_babai_seeding_reduces_work_without_changing_answer(self):
        """Our added optimisation must be work-reducing and exact."""
        system = MIMOSystem(6, 6, "4qam")
        const = system.constellation
        rng = np.random.default_rng(4)
        frame = system.random_frame(6.0, rng)
        plain = SphereDecoder(
            const, strategy="dfs", radius_policy=NoiseScaledRadius(alpha=2.0)
        )
        seeded = SphereDecoder(const, strategy="dfs", radius_policy=BabaiRadius())
        plain.prepare(frame.channel, noise_var=frame.noise_var)
        seeded.prepare(frame.channel, noise_var=frame.noise_var)
        r_plain = plain.detect(frame.received)
        r_seeded = seeded.detect(frame.received)
        assert np.array_equal(r_plain.indices, r_seeded.indices)
        assert (
            r_seeded.stats.nodes_expanded <= r_plain.stats.nodes_expanded
        )

    def test_ml_detector_agrees_with_full_stack(self):
        """The whole chain (system/QR/decoder) matches brute force."""
        system = MIMOSystem(4, 4, "16qam")
        const = system.constellation
        rng = np.random.default_rng(8)
        ok = 0
        for _ in range(5):
            frame = system.random_frame(10.0, rng)
            ml = MLDetector(const)
            ml.prepare(frame.channel)
            sd = SphereDecoder(const)
            sd.prepare(frame.channel, noise_var=frame.noise_var)
            if np.array_equal(
                ml.detect(frame.received).indices,
                sd.detect(frame.received).indices,
            ):
                ok += 1
        assert ok == 5
