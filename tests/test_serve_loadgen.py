"""Load-generator determinism and arrival-profile statistics.

The capacity experiments are only diffable because the load generator
is bit-deterministic: the same seed must reproduce the identical trace
(arrival times, channels, payload frames), and latency percentiles
reported through :func:`repro.util.timing.summarize` must agree with a
brute-force recomputation.
"""

import numpy as np
import pytest

from repro.bench.serving import capacity_sweep
from repro.mimo.system import MIMOSystem
from repro.serve.loadgen import LoadGenerator, arrival_times
from repro.util.timing import summarize


@pytest.fixture(scope="module")
def system():
    return MIMOSystem(4, 4, "4qam")


def _generator(system, **overrides):
    kwargs = dict(
        n_streams=5,
        rate_hz=500.0,
        duration_s=0.05,
        seed=42,
        channel_blocks=2,
    )
    kwargs.update(overrides)
    return LoadGenerator(system, **kwargs)


class TestDeterminism:
    def test_same_seed_identical_trace(self, system):
        a = _generator(system).trace()
        b = _generator(system).trace()
        assert a.n_events == b.n_events
        np.testing.assert_array_equal(a.arrival_array(), b.arrival_array())
        for ea, eb in zip(a.events, b.events):
            assert (ea.stream_id, ea.seq, ea.channel_id) == (
                eb.stream_id,
                eb.seq,
                eb.channel_id,
            )
            np.testing.assert_array_equal(ea.received, eb.received)
            np.testing.assert_array_equal(ea.sent_indices, eb.sent_indices)
        assert a.channels.keys() == b.channels.keys()
        for cid in a.channels:
            np.testing.assert_array_equal(
                a.channels[cid][0], b.channels[cid][0]
            )
            assert a.channels[cid][1] == b.channels[cid][1]

    def test_different_seed_different_trace(self, system):
        a = _generator(system).trace()
        b = _generator(system, seed=43).trace()
        assert a.n_events != b.n_events or not np.array_equal(
            a.arrival_array(), b.arrival_array()
        )

    def test_adding_streams_preserves_existing(self, system):
        """The SeedSequence tree makes stream i independent of n_streams
        only when the channel-block count is fixed too."""
        small = _generator(system, n_streams=3, channel_blocks=2).trace()
        large = _generator(system, n_streams=5, channel_blocks=2).trace()

        def stream_arrivals(trace, sid):
            return [ev.arrival_s for ev in trace.events if ev.stream_id == sid]

        for sid in ("s0000", "s0001", "s0002"):
            assert stream_arrivals(small, sid) == stream_arrivals(large, sid)

    def test_served_latency_count_deterministic(self, system):
        """Same seed => identical latency-sample count and percentiles
        end to end (the property the CI gate's runs-diff relies on)."""
        kwargs = dict(
            n_antennas=4,
            stream_counts=(3,),
            rate_hz=300.0,
            duration_s=0.04,
            seed=9,
            service="fpga",
            max_delay_ms=1.0,
        )
        a = capacity_sweep(**kwargs)
        b = capacity_sweep(**kwargs)
        la = a.points[0].report.latencies_s
        lb = b.points[0].report.latencies_s
        assert len(la) == len(lb) and la == lb
        assert a.series.rows == b.series.rows


class TestTraceShape:
    def test_events_time_ordered(self, system):
        trace = _generator(system).trace()
        arrivals = trace.arrival_array()
        assert np.all(np.diff(arrivals) >= 0)
        assert trace.n_events > 0
        assert all(0 <= t < trace.duration_s for t in arrivals)

    def test_per_stream_seqs_contiguous(self, system):
        trace = _generator(system).trace()
        seqs = {}
        for ev in sorted(trace.events, key=lambda e: (e.stream_id, e.seq)):
            assert ev.seq == seqs.get(ev.stream_id, 0)
            seqs[ev.stream_id] = ev.seq + 1
        assert sum(seqs.values()) == trace.n_events
        assert trace.stream_counts() == {
            f"s{i:04d}": seqs.get(f"s{i:04d}", 0) for i in range(5)
        }

    def test_round_robin_channel_blocks(self, system):
        trace = _generator(system, n_streams=4, channel_blocks=2).trace()
        for ev in trace.events:
            block = int(ev.stream_id[1:]) % 2
            assert ev.channel_id == f"ch{block:03d}"
        assert set(trace.channels) == {"ch000", "ch001"}

    def test_validation(self, system):
        with pytest.raises(ValueError, match="n_streams"):
            _generator(system, n_streams=0)
        with pytest.raises(ValueError, match="profile"):
            _generator(system, profile="weibull")
        with pytest.raises(ValueError, match="channel_blocks"):
            _generator(system, n_streams=2, channel_blocks=3)


class TestArrivalProfiles:
    def test_poisson_rate(self):
        rng = np.random.default_rng(0)
        times = arrival_times("poisson", 1000.0, 20.0, rng)
        assert times.size == pytest.approx(20_000, rel=0.05)
        assert np.all(np.diff(times) >= 0)

    def test_uniform_is_periodic(self):
        rng = np.random.default_rng(1)
        times = arrival_times("uniform", 100.0, 1.0, rng)
        gaps = np.diff(times)
        np.testing.assert_allclose(gaps, 1e-2, rtol=1e-9)
        assert times.size in (99, 100)

    def test_bursty_preserves_mean_rate(self):
        rng = np.random.default_rng(2)
        times = arrival_times("bursty", 1000.0, 30.0, rng, on_fraction=0.25)
        assert times.size == pytest.approx(30_000, rel=0.15)
        # Burstier than Poisson: inter-arrival SCV well above 1.
        gaps = np.diff(times)
        scv = np.var(gaps) / np.mean(gaps) ** 2
        assert scv > 1.5

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            arrival_times("poisson", 0.0, 1.0, rng)
        with pytest.raises(ValueError):
            arrival_times("poisson", 10.0, 0.0, rng)
        with pytest.raises(ValueError):
            arrival_times("nope", 10.0, 1.0, rng)
        with pytest.raises(ValueError):
            arrival_times("bursty", 10.0, 1.0, rng, on_fraction=1.5)


class TestPercentiles:
    def test_summarize_matches_bruteforce(self, system):
        """The reported p50/p95/p99 equal numpy's on the same samples."""
        result = capacity_sweep(
            n_antennas=4,
            stream_counts=(4,),
            rate_hz=400.0,
            duration_s=0.04,
            seed=13,
            service="fpga",
            max_delay_ms=1.0,
        )
        latencies = result.points[0].report.latencies_s
        assert len(latencies) >= 10
        summary = summarize(latencies)
        assert summary.count == len(latencies)
        assert summary.p50 == pytest.approx(np.percentile(latencies, 50))
        assert summary.p95 == pytest.approx(np.percentile(latencies, 95))
        assert summary.p99 == pytest.approx(np.percentile(latencies, 99))
        row = result.series.rows[0]
        assert row["p95_ms"] == pytest.approx(
            np.percentile(latencies, 95) * 1e3
        )
