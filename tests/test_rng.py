"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).integers(0, 1000, 10)
        b = as_generator(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 2**31, 16)
        b = as_generator(2).integers(0, 2**31, 16)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)

    def test_numpy_integer_seed(self):
        gen = as_generator(np.int64(5))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            as_generator("seed")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            as_generator(1.5)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(5, 0)
        assert len(gens) == 5

    def test_streams_independent(self):
        gens = spawn_generators(3, 0)
        draws = [g.integers(0, 2**31, 8) for g in gens]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_reproducible_from_seed(self):
        a = [g.integers(0, 2**31, 4) for g in spawn_generators(3, 9)]
        b = [g.integers(0, 2**31, 4) for g in spawn_generators(3, 9)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_seed_sequence_source(self):
        seq = np.random.SeedSequence(11)
        gens = spawn_generators(2, seq)
        assert len(gens) == 2

    def test_generator_source_varies_between_calls(self):
        gen = np.random.default_rng(0)
        a = spawn_generators(1, gen)[0].integers(0, 2**31, 4)
        b = spawn_generators(1, gen)[0].integers(0, 2**31, 4)
        assert not np.array_equal(a, b)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            spawn_generators(0, 0)

    def test_rejects_bad_source(self):
        with pytest.raises(TypeError):
            spawn_generators(2, "nope")
