"""Smoke + shape tests for every paper experiment (tiny Monte Carlo).

Each experiment is run at reduced scale: the assertions target structure
and qualitative shape (orderings, monotonicity), not absolute numbers —
those are exercised at full scale by the benchmark harness.
"""

import numpy as np
import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    ablation_fpga_optimizations,
    ablation_precision,
    ablation_search_strategy,
    fig6_time_10x10_4qam,
    fig7_ber_10x10_4qam,
    fig11_gpu_comparison,
    fig12_detector_comparison,
    table1_resources,
    table2_power,
)

TINY = dict(channels=1, frames_per_channel=2, seed=7)


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {
            "smoke",
            "table1",
            "table2",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "ablation-search",
            "ablation-fpga",
            "ablation-precision",
            "ablation-parallel",
            "ablation-csi",
            "ablation-correlation",
            "ablation-domain",
            "ablation-metric",
            "profile",
            "scaling-modulation",
        }
        assert set(EXPERIMENTS) == expected

    def test_registry_entries_documented(self):
        for name, (fn, description) in EXPERIMENTS.items():
            assert callable(fn)
            assert description


class TestTimeFigures:
    def test_fig6_structure_and_shape(self):
        result = fig6_time_10x10_4qam(snrs=[4.0, 20.0], **TINY)
        assert result.experiment == "fig6"
        assert len(result.rows) == 2
        low, high = result.rows
        # decode time falls with SNR; FPGA-opt fastest platform
        assert low["cpu_ms"] > high["cpu_ms"]
        assert low["fpga_optimized_ms"] < low["fpga_baseline_ms"] < low["cpu_ms"]
        assert 2.0 < low["speedup_vs_cpu"] < 10.0

    def test_fig6_format_renders(self):
        result = fig6_time_10x10_4qam(snrs=[8.0], **TINY)
        assert "fig6" in result.format()


class TestBerFigure:
    def test_fig7_monotone_and_ordered(self):
        result = fig7_ber_10x10_4qam(
            snrs=[4.0, 12.0, 20.0], channels=3, frames_per_channel=10, seed=7
        )
        sd = result.column("sd_ber")
        zf = result.column("zf_ber")
        # SD BER non-increasing with SNR.
        assert sd[0] >= sd[-1]
        # SD (= ML) never worse than ZF at any point.
        for s, z in zip(sd, zf):
            assert s <= z + 1e-12


class TestGpuFigure:
    def test_fig11_fpga_wins_everywhere(self):
        result = fig11_gpu_comparison(snrs=[8.0, 16.0], **TINY)
        for row in result.rows:
            assert row["gpu_bfs_ms"] > row["fpga_opt_ms"]
            assert row["speedup"] > 1.0
            assert 0 < row["node_fraction"] <= 1.0

    def test_fig11_node_fraction_small_at_low_snr(self):
        result = fig11_gpu_comparison(
            snrs=[4.0], channels=2, frames_per_channel=2, seed=3
        )
        # the paper's IV-F claim: leaf-first visits a tiny fraction
        assert result.rows[0]["node_fraction"] < 0.10


class TestDetectorFigure:
    def test_fig12_columns_and_orderings(self):
        result = fig12_detector_comparison(snrs=[8.0, 20.0], **TINY)
        for row in result.rows:
            # linear detectors fastest, but BER-worst.
            assert row["zf_ms"] < row["fpga_opt_ms"]
            assert row["sd_ber"] <= row["zf_ber"] + 1e-12
        # Geosphere on WARP is the slowest decoder in the comparison.
        assert result.rows[0]["geosphere_warp_ms"] > result.rows[0]["fpga_opt_ms"]


class TestTables:
    def test_table1_has_four_designs(self):
        result = table1_resources()
        assert len(result.rows) == 4
        for row in result.rows:
            assert abs(row["luts_pct"] - row["luts_paper"]) < 3.0

    def test_table2_energy_reduction(self):
        result = table2_power(channels=1, frames_per_channel=2, seed=7)
        assert len(result.rows) == 4
        for row in result.rows:
            assert row["fpga_power_w"] < row["cpu_power_w"]
            assert row["energy_reduction"] > 1.0
        assert "geomean" in result.notes


class TestAblations:
    def test_search_ablation_orderings(self):
        result = ablation_search_strategy(
            snrs=[4.0], channels=2, frames_per_channel=2, seed=7
        )
        row = result.rows[0]
        # BFS explores the most; Babai seeding the least (or near it).
        assert row["bfs_nodes"] > row["dfs_sorted_nodes"]
        assert row["babai_seeded_nodes"] <= row["dfs_sorted_nodes"] * 1.5
        assert row["bestfs_vs_bfs_pct"] < 50.0

    def test_fpga_ablation_every_feature_matters(self):
        result = ablation_fpga_optimizations(
            snr_db=8.0, channels=1, frames_per_channel=2, seed=7
        )
        by_name = {row["variant"]: row for row in result.rows}
        opt = by_name["optimized (all on)"]["decode_ms"]
        base = by_name["baseline (all off)"]["decode_ms"]
        assert base > opt
        for name, row in by_name.items():
            if name != "optimized (all on)":
                assert row["decode_ms"] >= opt

    def test_precision_ablation_fp32_neutral(self):
        result = ablation_precision(
            snrs=[8.0], channels=2, frames_per_channel=4, seed=7
        )
        row = result.rows[0]
        assert row["fp32_ber"] == pytest.approx(row["fp64_ber"], abs=0.02)
        assert 0.0 <= row["fp16_ber"] <= 1.0

    def test_parallel_ablation_shape(self):
        from repro.bench.experiments import ablation_parallel_pes

        result = ablation_parallel_pes(
            snr_db=6.0,
            pe_counts=(1, 4),
            channels=2,
            frames_per_channel=2,
            seed=7,
        )
        rows = {row["n_pes"]: row for row in result.rows}
        assert rows[1]["latency_speedup"] == 1.0
        assert rows[4]["latency_speedup"] >= 1.0
        assert rows[4]["mean_makespan"] <= rows[1]["mean_makespan"]
