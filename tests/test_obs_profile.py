"""repro.obs.profile — call-tree folding, flamegraphs, run diffing.

The synthetic-trace tests pin the attribution semantics exactly (known
self/total times, overlap and recursion policies, the self-sum == wall
invariant); the exporter tests validate the collapsed-stack line format
and the speedscope JSON schema by round trip.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.obs import Tracer, use_tracer, write_jsonl
from repro.obs.export import chrome_trace, read_jsonl
from repro.obs.profile import (
    PATH_SEP,
    PROFILE_SCHEMA,
    SPEEDSCOPE_SCHEMA,
    ProfileTree,
    SpanProfiler,
    build_profile_tree,
    collapsed_stack_lines,
    diff_profiles,
    format_profile,
    format_profile_diff,
    load_profile,
    parse_collapsed,
    self_by_name,
    speedscope_document,
    write_collapsed,
    write_speedscope,
)
from repro.obs.tracer import PHASE_SPAN, TraceEvent


def _span(name, ts, dur, *, tid=0, pid=0):
    return TraceEvent(
        phase=PHASE_SPAN, name=name, ts=ts, dur=dur, tid=tid, pid=pid
    )


#: mc.point [0, 10] containing sd.detect [1, 4] (which contains
#: sd.solve [1.5, 2.5]) and a second sd.detect [5, 7]. Events are
#: listed children-first, the order a tracer's exit-recorded buffer
#: actually has them in.
NESTED = [
    _span("sd.solve", 1.5, 1.0),
    _span("sd.detect", 1.0, 3.0),
    _span("sd.detect", 5.0, 2.0),
    _span("mc.point", 0.0, 10.0),
]


class TestBuildProfileTree:
    def test_nested_known_self_and_total(self):
        tree = build_profile_tree(NESTED)
        assert set(tree.roots) == {"mc.point"}
        point = tree.roots["mc.point"]
        assert point.count == 1
        assert point.total_s == pytest.approx(10.0)
        # 10 - (3 + 2) covered by the two detect calls
        assert point.self_s == pytest.approx(5.0)
        detect = point.children["sd.detect"]
        # two calls under the same parent aggregate into one node
        assert detect.count == 2
        assert detect.total_s == pytest.approx(5.0)
        assert detect.self_s == pytest.approx(4.0)  # 5 - solve's 1
        solve = detect.children["sd.solve"]
        assert (solve.count, solve.total_s, solve.self_s) == (1, 1.0, 1.0)
        assert tree.wall_s == pytest.approx(10.0)

    def test_self_times_sum_to_wall(self):
        tree = build_profile_tree(NESTED)
        assert tree.self_total_s == pytest.approx(tree.wall_s)

    def test_overlapping_spans_become_siblings(self):
        # B starts inside A but ends after it: not contained, so it must
        # not become A's child (totals would double-count the overlap).
        tree = build_profile_tree([_span("A", 0.0, 10.0), _span("B", 5.0, 10.0)])
        assert set(tree.roots) == {"A", "B"}
        assert tree.roots["A"].children == {}
        assert tree.wall_s == pytest.approx(20.0)
        assert tree.self_total_s == pytest.approx(20.0)

    def test_recursive_spans_stay_distinct_per_depth(self):
        tree = build_profile_tree([_span("a", 2.0, 4.0), _span("a", 0.0, 10.0)])
        outer = tree.roots["a"]
        inner = outer.children["a"]
        assert outer.self_s == pytest.approx(6.0)
        assert inner.self_s == pytest.approx(4.0)
        flat = self_by_name(tree)
        # self-times add exactly once per name; totals over-count under
        # recursion (10 + 4), which is why ranking/diffing uses self.
        assert flat["a"]["self_s"] == pytest.approx(10.0)
        assert flat["a"]["total_s"] == pytest.approx(14.0)
        assert flat["a"]["count"] == 2

    def test_lanes_nest_independently_and_roots_merge(self):
        # Identical (name, ts, dur) in two lanes: nesting is per
        # (pid, tid), aggregation merges roots by name across lanes.
        events = [
            _span("mc.shard", 0.0, 5.0, pid=1),
            _span("mc.shard", 0.0, 5.0, pid=2),
        ]
        tree = build_profile_tree(events)
        shard = tree.roots["mc.shard"]
        assert shard.count == 2
        assert shard.children == {}  # NOT nested despite containment
        assert tree.wall_s == pytest.approx(10.0)

    def test_non_span_events_ignored(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("mc.block"):
                tracer.instant("mc.heartbeat")
                tracer.count("mc.frames", 3)
        tree = build_profile_tree(tracer.events)
        assert set(tree.roots) == {"mc.block"}
        assert tree.roots["mc.block"].children == {}

    def test_label_args_split_per_snr(self):
        events = [
            TraceEvent(
                phase=PHASE_SPAN, name="mc.point", ts=0.0, dur=4.0,
                args={"snr_db": 8.0},
            ),
            TraceEvent(phase=PHASE_SPAN, name="sd.detect", ts=0.5, dur=1.0),
            TraceEvent(
                phase=PHASE_SPAN, name="mc.point", ts=5.0, dur=2.0,
                args={"snr_db": 12.0},
            ),
        ]
        plain = build_profile_tree(events)
        assert plain.roots["mc.point"].count == 2  # merged without labels
        by_snr = build_profile_tree(events, label_args=("snr_db",))
        assert set(by_snr.roots) == {"mc.point[snr_db=8]", "mc.point[snr_db=12]"}
        low = by_snr.roots["mc.point[snr_db=8]"]
        assert low.self_s == pytest.approx(3.0)  # 4 - detect's 1
        assert set(low.children) == {"sd.detect"}  # unlabelled spans merge
        assert by_snr.wall_s == pytest.approx(plain.wall_s)
        assert by_snr.self_total_s == pytest.approx(by_snr.wall_s)

    def test_label_args_without_matching_arg_is_identity(self):
        tree = build_profile_tree(NESTED, label_args=("snr_db",))
        assert tree.to_dict() == build_profile_tree(NESTED).to_dict()

    def test_empty_tree(self):
        tree = build_profile_tree([])
        assert tree.roots == {} and tree.wall_s == 0.0
        assert "no spans" in format_profile(tree)

    def test_jsonl_round_trip_preserves_tree(self, tmp_path):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("mc.point"):
                with tracer.span("sd.detect"):
                    pass
                with tracer.span("sd.detect"):
                    pass
        direct = build_profile_tree(tracer.events)
        replayed = build_profile_tree(
            read_jsonl(write_jsonl(tracer, tmp_path / "events.jsonl"))
        )
        assert replayed.to_dict() == direct.to_dict()
        assert replayed.roots["mc.point"].children["sd.detect"].count == 2


class TestSerialization:
    def test_tree_dict_round_trip(self):
        tree = build_profile_tree(NESTED)
        tree.functions = {
            "mc.point": [
                {"function": "f.py:1(g)", "calls": 2, "tottime_s": 0.5,
                 "cumtime_s": 0.6}
            ]
        }
        doc = tree.to_dict()
        assert doc["schema"] == PROFILE_SCHEMA
        clone = ProfileTree.from_dict(json.loads(json.dumps(doc)))
        assert clone.to_dict() == doc
        assert [p for p, _n in clone.walk()] == [p for p, _n in tree.walk()]
        assert clone.wall_s == tree.wall_s
        assert clone.functions == tree.functions


class TestCollapsedStacks:
    def test_line_format_and_round_trip(self):
        lines = collapsed_stack_lines(build_profile_tree(NESTED))
        # `frame(;frame)* <integer microseconds>` — flamegraph.pl input
        for line in lines:
            assert re.fullmatch(r"[^ ]+(?:;[^ ]+)* \d+", line), line
        parsed = parse_collapsed(lines)
        assert parsed == {
            "mc.point": 5_000_000,
            PATH_SEP.join(["mc.point", "sd.detect"]): 4_000_000,
            PATH_SEP.join(["mc.point", "sd.detect", "sd.solve"]): 1_000_000,
        }

    def test_sub_microsecond_rows_omitted(self):
        tree = build_profile_tree(
            [_span("tiny", 0.0, 4e-7), _span("big", 1.0, 1.0)]
        )
        assert parse_collapsed(collapsed_stack_lines(tree)) == {"big": 1_000_000}

    def test_parse_rejects_malformed_line(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_collapsed(["ok 12", "no-weight-here"])

    def test_write_round_trip(self, tmp_path):
        tree = build_profile_tree(NESTED)
        path = write_collapsed(tree, tmp_path / "flame" / "x.collapsed.txt")
        assert parse_collapsed(path.read_text().splitlines()) == parse_collapsed(
            collapsed_stack_lines(tree)
        )


class TestSpeedscope:
    def test_document_schema(self):
        doc = speedscope_document(build_profile_tree(NESTED), name="t")
        assert doc["$schema"] == SPEEDSCOPE_SCHEMA
        profile = doc["profiles"][doc["activeProfileIndex"]]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "microseconds"
        frames = doc["shared"]["frames"]
        assert all(set(f) == {"name"} for f in frames)
        assert len(profile["samples"]) == len(profile["weights"]) == 3
        # every sample is a stack of valid frame indices, leaf last
        names = [f["name"] for f in frames]
        stacks = {
            tuple(names[i] for i in stack) for stack in profile["samples"]
        }
        assert ("mc.point", "sd.detect", "sd.solve") in stacks
        assert profile["startValue"] == 0
        assert profile["endValue"] == pytest.approx(sum(profile["weights"]))
        assert sum(profile["weights"]) == pytest.approx(10e6)

    def test_written_file_is_loadable_json(self, tmp_path):
        path = write_speedscope(
            build_profile_tree(NESTED), tmp_path / "x.speedscope.json"
        )
        doc = json.loads(path.read_text())
        assert doc["$schema"] == SPEEDSCOPE_SCHEMA
        assert doc["profiles"][0]["endValue"] == pytest.approx(10e6)


class TestLoadProfile:
    def test_prefers_profile_json(self, tmp_path):
        from repro.obs.registry import PROFILE_FILE

        tree = build_profile_tree(NESTED)
        (tmp_path / PROFILE_FILE).write_text(json.dumps(tree.to_dict()))
        assert load_profile(tmp_path).to_dict() == tree.to_dict()

    def test_falls_back_to_chrome_trace(self, tmp_path):
        from repro.obs.registry import TRACE_FILE

        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("mc.point"):
                with tracer.span("sd.detect"):
                    pass
        (tmp_path / TRACE_FILE).write_text(json.dumps(chrome_trace(tracer)))
        tree = load_profile(tmp_path)
        assert set(tree.roots) == {"mc.point"}
        assert set(tree.roots["mc.point"].children) == {"sd.detect"}

    def test_neither_artifact_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError, match="recorded neither"):
            load_profile(tmp_path)


def _tree(spans):
    """A ProfileTree from flat ``(name, ts, dur)`` rows."""
    return build_profile_tree([_span(n, ts, d) for n, ts, d in spans])


class TestDiffProfiles:
    # Base: detect self 4, point self 6. Compared: detect self 7 (+3),
    # point self 5 (-1).
    A = _tree([("mc.point", 0.0, 10.0), ("sd.detect", 0.0, 4.0)])
    B = _tree([("mc.point", 0.0, 12.0), ("sd.detect", 0.0, 7.0)])

    def test_sign_and_ranking(self):
        diff = diff_profiles(self.A, self.B)
        assert [r.span for r in diff.rows] == ["sd.detect", "mc.point"]
        detect, point = diff.rows
        assert detect.delta_s == pytest.approx(3.0)
        assert point.delta_s == pytest.approx(-1.0)
        assert diff.wall_a_s == pytest.approx(10.0)
        assert diff.wall_b_s == pytest.approx(12.0)
        assert diff.wall_delta_s == pytest.approx(2.0)
        assert diff.pct_of_wall(detect) == pytest.approx(30.0)

    def test_reversed_diff_negates(self):
        fwd = diff_profiles(self.A, self.B)
        rev = diff_profiles(self.B, self.A)
        by_span = {r.span: r for r in rev.rows}
        for row in fwd.rows:
            assert by_span[row.span].delta_s == pytest.approx(-row.delta_s)
        # ranking flips with the sign
        assert [r.span for r in rev.rows] == ["mc.point", "sd.detect"]

    def test_span_missing_from_one_side(self):
        only_a = _tree([("old.span", 0.0, 2.0)])
        only_b = _tree([("new.span", 0.0, 3.0)])
        diff = diff_profiles(only_a, only_b)
        rows = {r.span: r for r in diff.rows}
        assert rows["old.span"].self_b_s == 0.0
        assert rows["old.span"].count_b == 0
        assert rows["old.span"].delta_s == pytest.approx(-2.0)
        assert rows["new.span"].delta_s == pytest.approx(3.0)

    def test_self_diff_has_no_regressions(self):
        diff = diff_profiles(self.A, self.A)
        assert diff.regressions() == []
        assert "0 span(s) regressed" in format_profile_diff(diff)

    def test_regression_thresholds(self):
        diff = diff_profiles(self.A, self.B)
        assert [r.span for r in diff.regressions()] == ["sd.detect"]
        assert diff.regressions(min_delta_s=5.0) == []
        assert diff.regressions(min_pct=50.0) == []
        assert [
            r.span for r in diff.regressions(min_delta_s=1.0, min_pct=10.0)
        ] == ["sd.detect"]

    def test_format_mentions_both_walls(self):
        text = format_profile_diff(diff_profiles(self.A, self.B), top=5)
        assert "10000.000 -> 12000.000 ms" in text  # durations are seconds
        assert "+3000.000" in text and "sd.detect" in text


def _busy_outer(n=40_000):
    total = 0
    for i in range(n):
        total += i * i
    return total


def _busy_inner(n=40_000):
    total = 0
    for i in range(n):
        total += i ^ (i >> 3)
    return total


class TestSpanProfiler:
    def test_function_hotspots_attribute_to_innermost_span(self):
        tracer = Tracer()
        profiler = SpanProfiler()
        with profiler.attach(tracer), use_tracer(tracer):
            with tracer.span("outer"):
                _busy_outer()
                with tracer.span("inner"):
                    _busy_inner()
                _busy_outer()
        tables = profiler.function_tables(top=50)
        outer_fns = {row["function"] for row in tables["outer"]}
        inner_fns = {row["function"] for row in tables["inner"]}
        assert any("_busy_outer" in f for f in outer_fns)
        assert any("_busy_inner" in f for f in inner_fns)
        # the suspend/resume discipline keeps inner work out of outer
        assert not any("_busy_inner" in f for f in outer_fns)
        assert not any("_busy_outer" in f for f in inner_fns)

    def test_attach_restores_hooks_and_unwinds(self):
        tracer = Tracer()
        profiler = SpanProfiler()
        with pytest.raises(RuntimeError):
            with profiler.attach(tracer), use_tracer(tracer):
                with tracer.span("boom"):
                    raise RuntimeError("mid-span")
        assert tracer.on_span_enter is None
        assert tracer.on_span_exit is None
        assert profiler._stack == []  # nothing left enabled

    def test_combined_stats_merges_all_spans(self):
        tracer = Tracer()
        profiler = SpanProfiler()
        with profiler.attach(tracer), use_tracer(tracer):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    _busy_inner()
        stats = profiler.combined_stats()
        merged = {fn for (_f, _l, fn) in stats.stats}
        assert "_busy_inner" in merged


class TestProfiledExperiment:
    def test_smoke_profile_self_times_sum_to_wall(self):
        from repro.obs.profile import profile_experiment

        result = profile_experiment(
            "smoke", channels=1, frames_per_channel=1, functions_top=5
        )
        tree = result.tree
        assert tree.roots, "smoke experiment recorded no spans"
        # the acceptance invariant: exact attribution, not correlation
        assert tree.self_total_s == pytest.approx(tree.wall_s, rel=1e-6)
        assert tree.functions  # SpanProfiler tables came along
        flat = self_by_name(tree)
        assert any(name.startswith("sd.") for name in flat)

    def test_unknown_experiment_raises_keyerror(self):
        from repro.obs.profile import profile_experiment

        with pytest.raises(KeyError, match="unknown experiment"):
            profile_experiment("nope")
