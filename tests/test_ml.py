"""Tests for the brute-force ML detector."""

import numpy as np
import pytest

from repro.detectors.ml import MLDetector
from repro.mimo.constellation import Constellation
from repro.mimo.system import MIMOSystem


class TestEnumeration:
    def test_candidate_indices_cover_lattice(self):
        const = Constellation.qam(4)
        det = MLDetector(const)
        idx = det._candidate_indices(3, 0, 4**3)
        assert idx.shape == (64, 3)
        assert len({tuple(row) for row in idx}) == 64

    def test_candidate_indices_chunked_consistent(self):
        const = Constellation.qam(4)
        det = MLDetector(const)
        full = det._candidate_indices(2, 0, 16)
        parts = np.concatenate(
            [det._candidate_indices(2, s, 4) for s in range(0, 16, 4)]
        )
        assert np.array_equal(full, parts)


class TestDetection:
    def test_noiseless_recovers_transmit(self):
        system = MIMOSystem(3, 3, "4qam")
        det = MLDetector(system.constellation)
        for seed in range(5):
            frame = system.random_frame(300.0, np.random.default_rng(seed))
            det.prepare(frame.channel)
            result = det.detect(frame.received)
            assert np.array_equal(result.indices, frame.symbol_indices)

    def test_metric_is_global_minimum(self, rng):
        """No candidate vector beats the returned metric (exhaustive check)."""
        system = MIMOSystem(2, 2, "4qam")
        frame = system.random_frame(5.0, rng)
        det = MLDetector(system.constellation)
        det.prepare(frame.channel)
        result = det.detect(frame.received)
        points = system.constellation.points
        best = np.inf
        for a in range(4):
            for b in range(4):
                s = np.array([points[a], points[b]])
                best = min(best, np.linalg.norm(frame.received - frame.channel @ s) ** 2)
        assert result.metric == pytest.approx(best)

    def test_chunking_gives_same_answer(self, rng):
        system = MIMOSystem(4, 4, "4qam")
        frame = system.random_frame(8.0, rng)
        big = MLDetector(system.constellation, chunk_size=100_000)
        small = MLDetector(system.constellation, chunk_size=7)
        big.prepare(frame.channel)
        small.prepare(frame.channel)
        a = big.detect(frame.received)
        b = small.detect(frame.received)
        assert np.array_equal(a.indices, b.indices)
        assert a.metric == pytest.approx(b.metric)

    def test_16qam_small_system(self, rng):
        system = MIMOSystem(2, 2, "16qam")
        frame = system.random_frame(300.0, rng)
        det = MLDetector(system.constellation)
        det.prepare(frame.channel)
        assert np.array_equal(det.detect(frame.received).indices, frame.symbol_indices)

    def test_overdetermined(self, rng):
        system = MIMOSystem(2, 5, "4qam")
        frame = system.random_frame(300.0, rng)
        det = MLDetector(system.constellation)
        det.prepare(frame.channel)
        assert np.array_equal(det.detect(frame.received).indices, frame.symbol_indices)


class TestGuards:
    def test_max_candidates_guard(self):
        const = Constellation.qam(16)
        det = MLDetector(const, max_candidates=1000)
        with pytest.raises(ValueError, match="candidates"):
            det.prepare(np.eye(10, dtype=complex))

    def test_requires_prepare(self):
        det = MLDetector(Constellation.qam(4))
        with pytest.raises(RuntimeError):
            det.detect(np.zeros(2, complex))

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            MLDetector(Constellation.qam(4), chunk_size=0)
