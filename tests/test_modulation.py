"""Tests for repro.mimo.modulation."""

import numpy as np
import pytest

from repro.mimo.constellation import Constellation
from repro.mimo.modulation import Demodulator, Modulator


@pytest.fixture
def mod16():
    return Modulator(Constellation.qam(16))


@pytest.fixture
def demod16():
    return Demodulator(Constellation.qam(16))


class TestModulator:
    def test_bits_to_symbols_shape(self, mod16, rng):
        bits = rng.integers(0, 2, 4 * 6).astype(bool)
        symbols = mod16.bits_to_symbols(bits)
        assert symbols.shape == (6,)

    def test_bits_to_symbols_are_constellation_points(self, mod16, rng):
        bits = rng.integers(0, 2, 4 * 8).astype(bool)
        symbols = mod16.bits_to_symbols(bits)
        dists = np.abs(symbols[:, None] - mod16.constellation.points[None, :])
        assert np.allclose(dists.min(axis=1), 0.0)

    def test_random_indices_range(self, mod16, rng):
        idx = mod16.random_indices(1000, rng)
        assert idx.min() >= 0 and idx.max() < 16

    def test_random_indices_cover_alphabet(self, mod16, rng):
        idx = mod16.random_indices(4000, rng)
        assert len(np.unique(idx)) == 16

    def test_random_indices_reproducible(self, mod16):
        a = mod16.random_indices(32, 5)
        b = mod16.random_indices(32, 5)
        assert np.array_equal(a, b)

    def test_random_bits_shape(self, mod16, rng):
        bits = mod16.random_bits(7, rng)
        assert bits.shape == (28,)
        assert bits.dtype == bool

    def test_rejects_nonpositive_streams(self, mod16):
        with pytest.raises(ValueError):
            mod16.random_indices(0)


class TestDemodulator:
    def test_roundtrip_noiseless(self, mod16, demod16, rng):
        bits = rng.integers(0, 2, 4 * 10).astype(bool)
        symbols = mod16.bits_to_symbols(bits)
        assert np.array_equal(demod16.symbols_to_bits(symbols), bits)

    def test_roundtrip_small_noise(self, mod16, demod16, rng):
        bits = rng.integers(0, 2, 4 * 10).astype(bool)
        symbols = mod16.bits_to_symbols(bits)
        noisy = symbols + 0.02 * (
            rng.standard_normal(10) + 1j * rng.standard_normal(10)
        )
        assert np.array_equal(demod16.symbols_to_bits(noisy), bits)

    def test_indices_to_bits_no_slicing(self, demod16):
        idx = np.array([0, 15, 7])
        bits = demod16.indices_to_bits(idx)
        assert bits.shape == (12,)
        assert np.array_equal(
            bits, demod16.constellation.indices_to_bits(idx)
        )

    def test_gray_property_noise_flip(self, rng):
        """A decision error to an adjacent point flips exactly one bit.

        This is *why* the BER stays low relative to SER with Gray maps.
        """
        c = Constellation.qam(16)
        demod = Demodulator(c)
        # Push a point slightly toward its horizontal neighbour.
        side = 4
        idx = 5  # interior point
        neighbour = idx + side
        midpoint = (c.points[idx] + c.points[neighbour]) / 2
        off = midpoint + 1e-6 * (c.points[neighbour] - c.points[idx])
        decided = demod.symbols_to_bits(np.array([off]))
        sent = c.indices_to_bits(np.array([idx]))
        assert int(np.count_nonzero(decided ^ sent)) == 1
