"""Tests for the persistent run registry (repro.obs.registry)."""

import json

import pytest

from repro.mimo.metrics import ErrorCounter
from repro.mimo.montecarlo import SnrPoint, SweepResult
from repro.obs import NULL_RECORDER, RunRegistry, Tracer
from repro.obs.registry import (
    MANIFEST_FILE,
    METRICS_FILE,
    SERIES_FILE,
    SWEEP_FILE,
    TRACE_FILE,
    capture_environment,
    make_run_id,
    metrics_to_dict,
    sweep_to_dict,
)


def tiny_sweep() -> SweepResult:
    counter = ErrorCounter()
    counter.bit_errors, counter.bits = 3, 120
    return SweepResult(
        detector_name="sd",
        system_label="4x4 4qam",
        points=[
            SnrPoint(
                snr_db=8.0, errors=counter, decode_time_s=0.25, frames=10
            )
        ],
    )


class FakeSeries:
    experiment = "fake"
    title = "fake series"
    columns = ["snr_db", "ber"]
    rows = [{"snr_db": 8.0, "ber": 0.01}]
    notes = "n"


class TestRecorder:
    def test_round_trip_writes_all_artifacts(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        recorder = registry.new_run("fig6", seed=7, config={"channels": 2})
        tracer = Tracer()
        with tracer.span("sd.detect"):
            tracer.count("nodes", 5)
        recorder.record_series(FakeSeries())
        recorder.record_sweep(tiny_sweep())
        recorder.record_metrics(tracer)
        recorder.record_trace(tracer)
        path = recorder.finalize()
        assert path is not None and path.is_dir()
        for name in (MANIFEST_FILE, SERIES_FILE, SWEEP_FILE, METRICS_FILE, TRACE_FILE):
            assert (path / name).is_file(), name
        manifest = json.loads((path / MANIFEST_FILE).read_text())
        assert manifest["experiment"] == "fig6"
        assert manifest["seed"] == 7
        assert manifest["config"] == {"channels": 2}
        assert manifest["status"] == "complete"
        assert manifest["elapsed_s"] >= 0.0
        assert manifest["environment"]["python"]

    def test_failed_status(self, tmp_path):
        recorder = RunRegistry(tmp_path).new_run("x")
        path = recorder.finalize("failed")
        manifest = json.loads((path / MANIFEST_FILE).read_text())
        assert manifest["status"] == "failed"

    def test_disabled_registry_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        registry = RunRegistry(None)
        assert not registry.enabled
        recorder = registry.new_run("fig6")
        assert recorder is NULL_RECORDER
        recorder.record_series(FakeSeries())
        recorder.record_sweep(tiny_sweep())
        recorder.record_metrics(Tracer())
        recorder.record_trace(Tracer())
        assert recorder.finalize() is None
        assert list(tmp_path.iterdir()) == []  # nothing created anywhere

    def test_run_ids_unique_within_second(self):
        ids = {make_run_id("fig6") for _ in range(32)}
        assert len(ids) == 32


class TestSerialisation:
    def test_sweep_to_dict(self):
        doc = sweep_to_dict(tiny_sweep())
        assert doc["detector"] == "sd"
        point = doc["points"][0]
        assert point["snr_db"] == 8.0
        assert point["ber"] == pytest.approx(3 / 120)
        assert point["decode_time_s"] == pytest.approx(0.25)
        assert point["mean_nodes"] is None  # NaN -> null
        json.dumps(doc)  # round-trippable

    def test_metrics_to_dict(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.count("n", 2)
        doc = metrics_to_dict(tracer)
        assert doc["spans"]["a"]["count"] == 1
        assert set(doc["spans"]["a"]) >= {"p50_s", "p95_s", "p99_s", "total_s"}
        assert doc["counters"] == {"n": 2.0}

    def test_environment_fields(self):
        env = capture_environment()
        assert set(env) >= {"git_sha", "python", "numpy", "platform", "hostname"}


class TestResolve:
    def make_runs(self, tmp_path, n=3):
        registry = RunRegistry(tmp_path)
        paths = []
        for i in range(n):
            rec = registry.new_run(f"exp{i}")
            paths.append(rec.finalize())
        return registry, paths

    def test_exact_and_prefix(self, tmp_path):
        registry, paths = self.make_runs(tmp_path)
        assert registry.resolve(paths[0].name) == paths[0]
        # unique prefix: full name minus last char is still unique
        assert registry.resolve(paths[1].name[:-1]) == paths[1]

    def test_latest_and_back_references(self, tmp_path):
        registry, paths = self.make_runs(tmp_path)
        runs = registry.run_dirs()
        assert registry.resolve("latest") == runs[-1]
        assert registry.resolve("latest~1") == runs[-2]
        with pytest.raises(KeyError, match="out of range"):
            registry.resolve("latest~9")

    def test_path_reference(self, tmp_path):
        registry, paths = self.make_runs(tmp_path, n=1)
        assert registry.resolve(str(paths[0])) == paths[0]

    def test_missing_and_ambiguous(self, tmp_path):
        registry, _ = self.make_runs(tmp_path)
        with pytest.raises(KeyError, match="no run matching"):
            registry.resolve("zzz")
        # every id shares the timestamp-ish prefix "2" (year 2xxx)
        with pytest.raises(KeyError, match="ambiguous"):
            registry.resolve("2")

    def test_run_dirs_skips_manifestless_dirs(self, tmp_path):
        registry, paths = self.make_runs(tmp_path, n=1)
        (tmp_path / "not-a-run").mkdir()
        assert registry.run_dirs() == paths
