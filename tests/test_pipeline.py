"""Tests for the FPGA dataflow pipeline simulator."""

import numpy as np
import pytest

from repro.core.radius import NoiseScaledRadius
from repro.core.sphere_decoder import SphereDecoder
from repro.detectors.base import BatchEvent, DecodeStats
from repro.fpga.device import AlveoU280
from repro.fpga.pipeline import FPGAPipeline, PipelineConfig
from repro.mimo.system import MIMOSystem


def realistic_stats(snr_db=8.0, seed=0, n=10):
    system = MIMOSystem(n, n, "4qam")
    frame = system.random_frame(snr_db, np.random.default_rng(seed))
    decoder = SphereDecoder(
        system.constellation,
        strategy="dfs",
        radius_policy=NoiseScaledRadius(alpha=2.0),
    )
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    return decoder.detect(frame.received).stats


class TestConfigs:
    def test_presets_valid(self):
        base = PipelineConfig.baseline(4)
        opt = PipelineConfig.optimized(4)
        assert base.freq_mhz == 253.0
        assert opt.freq_mhz == 300.0
        assert not base.prefetch.double_buffered
        assert opt.prefetch.double_buffered
        assert opt.gemm.initiation_interval == 1

    def test_mesh_scales_with_order(self):
        assert PipelineConfig.optimized(16).gemm.cols > PipelineConfig.optimized(
            4
        ).gemm.cols

    def test_negative_field_rejected(self):
        opt = PipelineConfig.optimized(4)
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(opt, control_overhead_cycles=-1)
        with pytest.raises(ValueError):
            replace(opt, freq_mhz=0.0)

    def test_clock_above_device_limit_rejected(self):
        from dataclasses import replace

        fast = replace(PipelineConfig.optimized(4), freq_mhz=500.0)
        with pytest.raises(ValueError, match="exceeds device limit"):
            FPGAPipeline(fast, n_tx=10, n_rx=10, order=4)


class TestBatchCycles:
    def make(self, config=None):
        return FPGAPipeline(
            config or PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4
        )

    def test_breakdown_keys(self):
        pipe = self.make()
        cycles = pipe.batch_cycles(BatchEvent(level=5, pool_size=2))
        assert set(cycles) == {
            "branch",
            "prefetch",
            "gemm",
            "evaluate",
            "norm",
            "prune",
            "control",
            "total",
        }
        assert cycles["total"] > 0

    def test_attribution_sums_to_batch_total(self):
        """Per-stage attribution of one batch sums exactly to its total."""
        pipe = self.make()
        for ev in (BatchEvent(5, 2), BatchEvent(0, 32), BatchEvent(9, 1)):
            cycles = pipe.batch_cycles(ev)
            attributed = pipe.batch_attribution(ev)
            assert sum(attributed.values()) == cycles["total"]

    def test_attribution_sums_without_overlap(self):
        """Same invariant on the baseline (no dataflow overlap)."""
        pipe = self.make(PipelineConfig.baseline(4))
        ev = BatchEvent(5, 4)
        assert sum(pipe.batch_attribution(ev).values()) == pipe.batch_cycles(ev)[
            "total"
        ]

    def test_bigger_pool_costs_more(self):
        pipe = self.make()
        small = pipe.batch_cycles(BatchEvent(5, 1))["total"]
        big = pipe.batch_cycles(BatchEvent(5, 32))["total"]
        assert big > small

    def test_deeper_levels_cost_more_eval(self):
        """Lower level => longer interference row => bigger GEMM."""
        pipe = self.make()
        shallow = pipe.batch_cycles(BatchEvent(9, 1))["evaluate"]
        deep = pipe.batch_cycles(BatchEvent(0, 1))["evaluate"]
        assert deep >= shallow

    def test_level_validated(self):
        pipe = self.make()
        with pytest.raises(ValueError):
            pipe.batch_cycles(BatchEvent(10, 1))

    def test_baseline_batch_slower(self):
        opt = self.make()
        base = self.make(PipelineConfig.baseline(4))
        ev = BatchEvent(5, 1)
        assert base.batch_cycles(ev)["total"] > opt.batch_cycles(ev)["total"]


class TestDecodeReport:
    def test_requires_trace(self):
        pipe = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
        with pytest.raises(ValueError, match="batch trace"):
            pipe.decode_report(DecodeStats())

    def test_report_fields(self):
        stats = realistic_stats()
        pipe = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
        report = pipe.decode_report(stats)
        assert report.total_cycles > 0
        assert report.batches == len(stats.batches)
        assert report.seconds == pytest.approx(
            report.total_cycles / 300e6, rel=1e-12
        )
        assert report.milliseconds == pytest.approx(report.seconds * 1e3)

    def test_breakdown_sums_reasonably(self):
        stats = realistic_stats()
        pipe = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
        report = pipe.decode_report(stats)
        assert set(report.breakdown) >= {
            "branch",
            "evaluate",
            "norm",
            "prune",
            "control",
            "radius",
            "setup",
            "transfer",
        }

    def test_stage_breakdown_sums_to_total(self):
        """Acceptance invariant: stage attribution covers every cycle."""
        stats = realistic_stats()
        for config in (PipelineConfig.optimized(4), PipelineConfig.baseline(4)):
            pipe = FPGAPipeline(config, n_tx=10, n_rx=10, order=4)
            report = pipe.decode_report(stats)
            breakdown = report.stage_breakdown()
            assert sum(breakdown.values()) == report.total_cycles
            assert all(v >= 0 for v in breakdown.values())

    def test_stage_breakdown_is_a_copy(self):
        stats = realistic_stats()
        pipe = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
        report = pipe.decode_report(stats)
        report.stage_breakdown()["gemm"] = -1
        assert report.stage_breakdown().get("gemm", 0) >= 0

    def test_format_stage_breakdown(self):
        stats = realistic_stats()
        pipe = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
        text = pipe.decode_report(stats).format_stage_breakdown()
        assert "cycles over" in text
        assert "gemm" in text
        assert "%" in text

    def test_decode_report_emits_stage_counters(self):
        from repro.obs import Tracer, use_tracer

        stats = realistic_stats()
        pipe = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
        with use_tracer(Tracer()) as tracer:
            report = pipe.decode_report(stats)
        assert tracer.counters["fpga.cycles.total"] == report.total_cycles
        assert tracer.spans("fpga.decode_report")

    def test_transfer_under_three_percent(self):
        """The paper's <3% host->HBM staging claim on a realistic trace."""
        stats = realistic_stats(snr_db=8.0)
        pipe = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
        report = pipe.decode_report(stats)
        assert report.transfer_fraction < 0.03

    def test_optimized_faster_than_baseline_same_trace(self):
        stats = realistic_stats()
        opt = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
        base = FPGAPipeline(PipelineConfig.baseline(4), n_tx=10, n_rx=10, order=4)
        assert (
            base.decode_report(stats).total_cycles
            > opt.decode_report(stats).total_cycles
        )

    def test_more_work_more_cycles(self):
        low_snr = realistic_stats(snr_db=4.0, seed=1)
        high_snr = realistic_stats(snr_db=20.0, seed=1)
        pipe = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
        assert (
            pipe.decode_report(low_snr).total_cycles
            >= pipe.decode_report(high_snr).total_cycles
        )

    def test_mean_decode_seconds(self):
        stats = [realistic_stats(seed=s) for s in range(3)]
        pipe = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
        mean = pipe.mean_decode_seconds(stats)
        individuals = [pipe.decode_report(st).seconds for st in stats]
        assert mean == pytest.approx(np.mean(individuals))
        with pytest.raises(ValueError):
            pipe.mean_decode_seconds([])


class TestAnchorCalibration:
    """The calibrated model must land near the paper's 10x10 anchors."""

    def test_speedup_near_five_x(self):
        """CPU/FPGA-opt ~= 5x on the canonical trace (paper Fig. 6)."""
        from repro.perfmodel import CPUCostModel

        stats = [realistic_stats(snr_db=8.0, seed=s) for s in range(5)]
        cpu = CPUCostModel(n_rx=10)
        pipe = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
        cpu_t = cpu.mean_decode_seconds(stats)
        fpga_t = pipe.mean_decode_seconds(stats)
        assert 3.0 < cpu_t / fpga_t < 8.0

    def test_baseline_speedup_modest(self):
        """CPU/FPGA-baseline ~= 1.4x (paper Fig. 6)."""
        from repro.perfmodel import CPUCostModel

        stats = [realistic_stats(snr_db=4.0, seed=s) for s in range(5)]
        cpu = CPUCostModel(n_rx=10)
        base = FPGAPipeline(PipelineConfig.baseline(4), n_tx=10, n_rx=10, order=4)
        ratio = cpu.mean_decode_seconds(stats) / base.mean_decode_seconds(stats)
        assert 1.0 < ratio < 2.5


class TestStageBreakdownProperty:
    """stage_breakdown() must sum *exactly* to total_cycles — the
    attribution invariant — for any config, geometry and batch trace."""

    MODULATIONS = {"4qam": 4, "16qam": 16, "64qam": 64}

    def random_config(self, rng, order):
        from dataclasses import replace

        preset = (
            PipelineConfig.baseline(order)
            if rng.random() < 0.5
            else PipelineConfig.optimized(order)
        )
        return replace(
            preset,
            dataflow_overlap=bool(rng.random() < 0.5),
            prefetch=replace(
                preset.prefetch,
                double_buffered=bool(rng.random() < 0.5),
                address_setup_cycles=int(rng.integers(0, 12)),
                hbm_channels=int(rng.integers(1, 5)),
            ),
            gemm=replace(
                preset.gemm,
                pipeline_depth=int(rng.integers(1, 24)),
                initiation_interval=int(rng.integers(1, 5)),
            ),
            control_overhead_cycles=int(rng.integers(0, 128)),
            branch_ii=int(rng.integers(1, 5)),
            branch_latency=int(rng.integers(1, 20)),
            norm_ii=int(rng.integers(1, 5)),
            norm_latency=int(rng.integers(1, 24)),
            sorted_insertion=bool(rng.random() < 0.5),
            list_cycles_per_child=int(rng.integers(1, 20)),
            radius_update_cycles=int(rng.integers(0, 12)),
            pipeline_fill_cycles=int(rng.integers(0, 48)),
            node_roundtrip_cycles=int(rng.integers(0, 64)),
            setup_cycles=int(rng.integers(0, 120_000)),
        )

    def random_stats(self, rng, n_tx, depth):
        batches = [
            BatchEvent(
                level=int(rng.integers(0, n_tx)),
                pool_size=int(rng.integers(1, 65)),
            )
            for _ in range(depth)
        ]
        return DecodeStats(
            nodes_expanded=depth,
            nodes_generated=sum(b.pool_size for b in batches),
            radius_updates=int(rng.integers(0, 20)),
            batches=batches,
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_attribution_sums_exactly(self, seed):
        rng = np.random.default_rng(seed)
        mod = list(self.MODULATIONS)[seed % 3]
        order = self.MODULATIONS[mod]
        n_tx = int(rng.integers(2, 17))
        n_rx = n_tx + int(rng.integers(0, 5))
        config = self.random_config(rng, order)
        pipe = FPGAPipeline(config, n_tx=n_tx, n_rx=n_rx, order=order)
        stats = self.random_stats(rng, n_tx, depth=int(rng.integers(1, 400)))
        report = pipe.decode_report(stats)
        assert sum(report.stage_breakdown().values()) == report.total_cycles
        assert all(v >= 0 for v in report.stage_breakdown().values())
        assert report.batches == len(stats.batches)

    @pytest.mark.parametrize("mod,order", sorted(MODULATIONS.items()))
    def test_attribution_sums_on_real_traces(self, mod, order):
        system = MIMOSystem(6, 6, mod)
        frame = system.random_frame(12.0, np.random.default_rng(1))
        decoder = SphereDecoder(system.constellation)
        decoder.prepare(frame.channel, noise_var=frame.noise_var)
        stats = decoder.detect(frame.received).stats
        for config in (PipelineConfig.baseline(order), PipelineConfig.optimized(order)):
            report = FPGAPipeline(
                config, n_tx=6, n_rx=6, order=order
            ).decode_report(stats)
            assert sum(report.stage_breakdown().values()) == report.total_cycles
