"""The labelled metrics subsystem: registry, snapshots, exporters.

Covers the contracts the cross-process telemetry path leans on: exact
associative/commutative snapshot merges (shards flush in arbitrary
order), Prometheus-compatible histogram bucketing, the cardinality
guard, delta-style ``drain`` semantics, and the disabled registry being
a strict no-op.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    current_metrics,
    exponential_buckets,
    format_series_key,
    parse_series_key,
    to_prometheus,
    use_metrics,
)


class TestLabelledSeries:
    def test_counter_accumulates_per_label_set(self):
        m = MetricsRegistry()
        c = m.counter("mc.frames")
        c.inc(3, snr=8)
        c.inc(2, snr=8)
        c.inc(5, snr=12)
        c.inc(1)  # unlabelled series is distinct
        snap = m.snapshot()
        assert snap.counters[("mc.frames", (("snr", "8"),))] == 5
        assert snap.counters[("mc.frames", (("snr", "12"),))] == 5
        assert snap.counters[("mc.frames", ())] == 1
        assert snap.counter_total("mc.frames") == 11

    def test_label_order_does_not_split_series(self):
        m = MetricsRegistry()
        m.counter("x").inc(1, a="1", b="2")
        m.counter("x").inc(1, b="2", a="1")
        assert len(m.snapshot().counters) == 1

    def test_gauge_keeps_latest_value(self):
        m = MetricsRegistry()
        g = m.gauge("mc.shard.blocks_done")
        g.set(1, shard="0")
        g.set(4, shard="0")
        snap = m.snapshot()
        assert snap.gauge_series("mc.shard.blocks_done") == {
            (("shard", "0"),): 4.0
        }

    def test_series_key_round_trip(self):
        key = (("level", "3"), ("snr", "8"))
        rendered = format_series_key("traversal.nodes_expanded", key)
        assert rendered == "traversal.nodes_expanded{level=3,snr=8}"
        assert parse_series_key(rendered) == ("traversal.nodes_expanded", key)
        assert parse_series_key("plain") == ("plain", ())

    def test_same_name_cannot_be_two_kinds(self):
        m = MetricsRegistry()
        m.counter("x").inc(1)
        with pytest.raises(ValueError, match="already registered"):
            m.gauge("x")


class TestCardinalityGuard:
    def test_admission_caps_distinct_series(self):
        m = MetricsRegistry(max_series=4)
        c = m.counter("runaway")
        for i in range(4):
            c.inc(1, frame=str(i))
        with pytest.raises(ValueError, match="max_series"):
            c.inc(1, frame="4")

    def test_existing_series_keep_working_at_cap(self):
        m = MetricsRegistry(max_series=1)
        c = m.counter("x")
        c.inc(1, k="a")
        c.inc(1, k="a")  # same series: no new admission
        assert m.snapshot().counter_total("x") == 2

    def test_drain_resets_the_cardinality_budget(self):
        m = MetricsRegistry(max_series=1)
        m.counter("x").inc(1, k="a")
        m.drain()
        m.counter("x").inc(1, k="b")  # would have exceeded without drain


class TestHistograms:
    def test_exponential_bucket_edges(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert len(DEFAULT_BUCKETS) == 26

    def test_observation_lands_in_prometheus_le_bucket(self):
        h = HistogramData(edges=(1.0, 2.0, 4.0))
        # `le` semantics: a value equal to an edge belongs to that bucket.
        for v, bucket in ((0.5, 0), (1.0, 0), (1.5, 1), (4.0, 2), (9.0, 3)):
            h.observe(v)
            assert h.counts[bucket] >= 1
        assert h.count == 5
        assert h.sum == pytest.approx(16.0)
        assert h.min == 0.5
        assert h.max == 9.0

    def test_quantile_is_bucket_upper_edge_clamped_by_max(self):
        h = HistogramData(edges=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 0.7, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 3.0  # clamped to observed max

    def test_round_trips_through_dict(self):
        h = HistogramData(edges=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        back = HistogramData.from_dict(h.to_dict())
        assert back == h
        empty = HistogramData(edges=(1.0,))
        assert HistogramData.from_dict(empty.to_dict()) == empty

    def test_merge_requires_matching_edges(self):
        a = HistogramData(edges=(1.0, 2.0))
        b = HistogramData(edges=(1.0, 3.0))
        with pytest.raises(ValueError, match="edges"):
            a.merge(b)


class TestSnapshotMerge:
    def _registry(self, counter_vals, gauge_val=None, t=1.0):
        m = MetricsRegistry(clock=SimpleNamespace(now=lambda: t))
        for labels, v in counter_vals:
            m.counter("c").inc(v, **labels)
        if gauge_val is not None:
            m.gauge("g").set(gauge_val)
        m.histogram("h", edges=(1.0, 2.0)).observe(sum(v for _, v in counter_vals))
        return m.snapshot()

    def test_merge_is_associative_and_commutative(self):
        a = self._registry([({"snr": 8}, 1)], gauge_val=10, t=1.0)
        b = self._registry([({"snr": 8}, 2)], gauge_val=20, t=2.0)
        c = self._registry([({"snr": 12}, 4)], t=3.0)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a).merge(b)
        for merged in (right, swapped):
            assert merged.counters == left.counters
            assert merged.histograms == left.histograms
            assert merged.gauges == left.gauges
        assert left.counter_total("c") == 7

    def test_gauges_merge_latest_timestamp_wins(self):
        early = self._registry([], gauge_val=10, t=1.0)
        late = self._registry([], gauge_val=99, t=5.0)
        assert early.merge(late).gauge_series("g") == {(): 99.0}
        assert late.merge(early).gauge_series("g") == {(): 99.0}

    def test_snapshot_dict_round_trip(self):
        snap = self._registry([({"snr": 8}, 3)], gauge_val=7)
        back = MetricsSnapshot.from_dict(snap.to_dict())
        assert back.counters == snap.counters
        assert back.gauges == snap.gauges
        assert back.histograms == snap.histograms

    def test_merge_snapshot_folds_into_live_registry(self):
        m = MetricsRegistry()
        m.counter("c").inc(1, snr="8")
        m.merge_snapshot(self._registry([({"snr": 8}, 5)]))
        assert m.snapshot().counter_total("c") == 6


class TestDrain:
    def test_drain_returns_deltas_and_clears(self):
        m = MetricsRegistry()
        m.counter("c").inc(3)
        first = m.drain()
        assert first.counter_total("c") == 3
        assert m.snapshot().empty
        m.counter("c").inc(2)
        assert m.drain().counter_total("c") == 2

    def test_repeated_drains_merge_to_exact_totals(self):
        worker = MetricsRegistry()
        parent = MetricsRegistry()
        for chunk in (3, 4, 5):
            worker.counter("c").inc(chunk, snr="8")
            parent.merge_snapshot(worker.drain())
        assert parent.snapshot().counter_total("c") == 12


class TestDisabledRegistry:
    def test_null_metrics_is_ambient_default_and_inert(self):
        assert current_metrics() is NULL_METRICS
        assert not NULL_METRICS.enabled
        NULL_METRICS.counter("x").inc(5, label="v")
        NULL_METRICS.gauge("y").set(1)
        NULL_METRICS.histogram("z").observe(2)
        NULL_METRICS.tick(force=True)
        assert NULL_METRICS.snapshot().empty

    def test_use_metrics_scopes_the_ambient_registry(self):
        m = MetricsRegistry()
        with use_metrics(m):
            assert current_metrics() is m
            current_metrics().counter("c").inc(1)
        assert current_metrics() is NULL_METRICS
        assert m.snapshot().counter_total("c") == 1


class TestPrometheusExport:
    def test_renders_types_labels_and_cumulative_buckets(self):
        m = MetricsRegistry()
        m.counter("mc.frames").inc(3, snr="8")
        m.gauge("mc.shard.blocks_done").set(2, shard="0")
        h = m.histogram("lat", edges=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        text = to_prometheus(m.snapshot())
        assert '# TYPE repro_mc_frames counter' in text
        assert 'repro_mc_frames{snr="8"} 3' in text
        assert 'repro_mc_shard_blocks_done{shard="0"} 2' in text
        # +Inf bucket is cumulative over all observations.
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="2"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text


class TestTraversalAccountingConsistency:
    """Registry traversal totals must equal DecodeStats exactly.

    DFS reconstructs its per-level accumulator post-hoc from the node
    pool (``DfsPolicy._fold_levels``); best-first accounts inline per
    pooled expansion. Both paths must reproduce the search's own exact
    counters — the trace timeline is sampled, the metrics are not.
    """

    @pytest.mark.parametrize("strategy", ["dfs", "best-first"])
    def test_registry_totals_match_decode_stats(self, strategy):
        import numpy as np

        from repro.detectors.sphere import SphereDecoder
        from repro.mimo.system import MIMOSystem

        system = MIMOSystem(8, 8, "4qam")
        rng = np.random.default_rng(7)
        m = MetricsRegistry()
        totals = {"nodes_expanded": 0, "nodes_generated": 0, "nodes_pruned": 0}
        with use_metrics(m):
            for _ in range(3):
                frame = system.random_frame(6.0, rng)
                decoder = SphereDecoder(
                    system.constellation, strategy=strategy
                )
                decoder.prepare(frame.channel, noise_var=frame.noise_var)
                stats = decoder.detect(frame.received).stats
                for name in totals:
                    totals[name] += getattr(stats, name)
        assert totals["nodes_pruned"] > 0  # workload actually prunes
        snap = m.snapshot()
        for name, want in totals.items():
            assert snap.counter_total(f"traversal.{name}") == want, name
