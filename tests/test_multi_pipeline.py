"""Tests for the multi-pipeline deployment model (section III-C4)."""

import numpy as np
import pytest

from repro.fpga.multi_pipeline import (
    MultiPipelineDeployment,
    _erlang_c,
    max_pipelines,
)
from repro.fpga.pipeline import PipelineConfig


class TestMaxPipelines:
    def test_paper_claim_optimized_duplicates(self):
        """The point of section III-C4: the optimised designs replicate,
        the 16-QAM baseline does not."""
        assert max_pipelines(PipelineConfig.optimized(4), order=4) >= 2
        assert max_pipelines(PipelineConfig.optimized(16), order=16) >= 2
        assert max_pipelines(PipelineConfig.baseline(16), order=16) == 1

    def test_optimized_fits_more_than_baseline(self):
        for order in (4, 16):
            assert max_pipelines(
                PipelineConfig.optimized(order), order=order
            ) > max_pipelines(PipelineConfig.baseline(order), order=order)

    def test_bigger_systems_fit_fewer_or_equal(self):
        small = max_pipelines(PipelineConfig.optimized(4), order=4, n_rx=10)
        big = max_pipelines(PipelineConfig.optimized(4), order=4, n_rx=20, n_tx=20)
        assert big <= small


class TestErlangC:
    def test_single_server_equals_rho(self):
        # M/M/1: P(wait) = rho.
        assert _erlang_c(1, 0.5) == pytest.approx(0.5)

    def test_saturated_is_one(self):
        assert _erlang_c(2, 2.5) == 1.0

    def test_more_servers_less_waiting(self):
        assert _erlang_c(4, 1.0) < _erlang_c(2, 1.0) < _erlang_c(1, 0.99)


class TestDeployment:
    def make(self, c=2):
        service = np.full(500, 1e-3)
        return MultiPipelineDeployment(c, service)

    def test_max_throughput(self):
        dep = self.make(c=3)
        assert dep.max_throughput_hz == pytest.approx(3000.0)

    def test_replication_scales_throughput_linearly(self):
        service = np.full(100, 2e-3)
        one = MultiPipelineDeployment(1, service)
        four = MultiPipelineDeployment(4, service)
        assert four.max_throughput_hz == pytest.approx(4 * one.max_throughput_hz)

    def test_mm1_reduction(self):
        """c=1 with deterministic service reduces to M/D/1."""
        dep = self.make(c=1)
        report = dep.report(500.0)  # rho = 0.5
        # M/D/1 wait = rho S / (2 (1 - rho)) = 0.5e-3
        assert report.mean_wait_s == pytest.approx(0.5e-3, rel=1e-9)

    def test_two_pipelines_cut_waiting(self):
        service = np.full(200, 1e-3)
        one = MultiPipelineDeployment(1, service).report(800.0)
        two = MultiPipelineDeployment(2, service).report(800.0)
        assert two.mean_wait_s < one.mean_wait_s
        assert two.utilization == pytest.approx(one.utilization / 2)

    def test_saturation(self):
        dep = self.make(c=2)
        report = dep.report(5000.0)  # offered 5 > 2 servers
        assert not report.stable
        assert report.mean_sojourn_s == np.inf

    def test_variance_increases_wait(self):
        constant = np.full(1000, 1e-3)
        bursty = np.concatenate([np.full(900, 0.5e-3), np.full(100, 5.5e-3)])
        rate = 1500.0
        w_const = MultiPipelineDeployment(2, constant).report(rate).mean_wait_s
        w_burst = MultiPipelineDeployment(2, bursty).report(rate).mean_wait_s
        assert w_burst > w_const

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiPipelineDeployment(0, np.full(2, 1e-3))
        with pytest.raises(ValueError):
            MultiPipelineDeployment(1, np.array([]))
        with pytest.raises(ValueError):
            MultiPipelineDeployment(1, np.array([0.0]))
        with pytest.raises(ValueError):
            self.make().report(0.0)

    def test_end_to_end_with_real_traces(self):
        """Duplicating the optimised 4-QAM pipeline (which fits, per the
        resource model) doubles the sustainable vector rate."""
        from repro.bench.harness import run_workload_sweep

        workload = run_workload_sweep(
            10, "4qam", snrs=[8.0], channels=2, frames_per_channel=4, seed=5
        )
        times = np.array(
            [
                workload.fpga_optimized.decode_report(st).seconds
                for st in workload.sweep.points[0].frame_stats
            ]
        )
        assert max_pipelines(PipelineConfig.optimized(4), order=4) >= 2
        one = MultiPipelineDeployment(1, times)
        two = MultiPipelineDeployment(2, times)
        assert two.max_throughput_hz == pytest.approx(
            2 * one.max_throughput_hz
        )
        rate = one.max_throughput_hz * 0.9
        assert two.report(rate).mean_sojourn_s < one.report(rate).mean_sojourn_s
