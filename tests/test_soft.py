"""Tests for the soft-output (list) sphere detector."""

import numpy as np
import pytest

from repro.core.radius import FixedRadius, NoiseScaledRadius
from repro.detectors.ml import MLDetector
from repro.detectors.soft import SoftOutputSphereDetector
from repro.mimo.system import MIMOSystem


def detect_soft(system, snr_db, seed, **kwargs):
    rng = np.random.default_rng(seed)
    frame = system.random_frame(snr_db, rng)
    det = SoftOutputSphereDetector(system.constellation, **kwargs)
    det.prepare(frame.channel, noise_var=frame.noise_var)
    return frame, det.detect_soft(frame.received)


class TestHardDecision:
    def test_matches_ml_with_big_sphere(self):
        system = MIMOSystem(4, 4, "4qam")
        for seed in range(4):
            frame, soft = detect_soft(
                system, 8.0, seed, radius_policy=FixedRadius(radius_sq=1e9)
            )
            ml = MLDetector(system.constellation)
            ml.prepare(frame.channel)
            ml_result = ml.detect(frame.received)
            assert np.array_equal(soft.hard.indices, ml_result.indices)

    def test_escalation_on_empty_sphere(self):
        system = MIMOSystem(4, 4, "4qam")
        _, soft = detect_soft(
            system, 10.0, 0, radius_policy=FixedRadius(radius_sq=1e-9)
        )
        assert soft.list_size >= 1
        assert len(soft.hard.stats.radius_trace) >= 2

    def test_detect_compat_entry(self):
        system = MIMOSystem(4, 4, "4qam")
        rng = np.random.default_rng(0)
        frame = system.random_frame(10.0, rng)
        det = SoftOutputSphereDetector(system.constellation)
        det.prepare(frame.channel, noise_var=frame.noise_var)
        result = det.detect(frame.received)
        assert result.indices.shape == (4,)


class TestLlrs:
    def test_shape_and_clipping(self):
        system = MIMOSystem(4, 4, "16qam")
        _, soft = detect_soft(system, 10.0, 1)
        assert soft.llrs.shape == (16,)
        assert np.all(np.abs(soft.llrs) <= 50.0 + 1e-12)

    def test_sign_matches_hard_decision(self):
        """Positive LLR <=> the hard decision's bit is 1 (max-log APP)."""
        system = MIMOSystem(4, 4, "4qam")
        for seed in range(5):
            _, soft = detect_soft(
                system, 10.0, seed, radius_policy=NoiseScaledRadius(alpha=6.0)
            )
            hard_bits = soft.hard.bits
            agree = (soft.llrs > 0) == hard_bits
            # Zero-LLR ties are possible but measure-zero; tolerate none.
            assert np.all(agree | (soft.llrs == 0))

    def test_llr_magnitude_grows_with_snr(self):
        """Cleaner channels give more confident (larger) LLRs on average."""
        system = MIMOSystem(4, 4, "4qam")
        mags = {}
        for snr in (0.0, 20.0):
            vals = []
            for seed in range(6):
                _, soft = detect_soft(
                    system, snr, seed, radius_policy=NoiseScaledRadius(alpha=6.0)
                )
                vals.append(np.mean(np.abs(soft.llrs)))
            mags[snr] = np.mean(vals)
        assert mags[20.0] > mags[0.0]

    def test_counter_hypothesis_clamps(self):
        """A single-candidate list clamps every bit to +-llr_clip."""
        system = MIMOSystem(4, 4, "4qam")
        _, soft = detect_soft(
            system,
            30.0,
            0,
            radius_policy=FixedRadius(radius_sq=1e-6),
            llr_clip=25.0,
        )
        if soft.list_size == 1:
            assert np.all(np.abs(soft.llrs) == 25.0)

    def test_max_list_truncation(self):
        system = MIMOSystem(6, 6, "4qam")
        _, soft = detect_soft(
            system,
            4.0,
            0,
            radius_policy=FixedRadius(radius_sq=1e6),
            max_list=8,
        )
        assert soft.list_size <= 8
        assert soft.hard.stats.truncated > 0

    def test_llr_reference_small_system(self):
        """Against an exhaustive max-log computation on a 2x2 system."""
        system = MIMOSystem(2, 2, "4qam")
        rng = np.random.default_rng(3)
        frame = system.random_frame(8.0, rng)
        det = SoftOutputSphereDetector(
            system.constellation, radius_policy=FixedRadius(radius_sq=1e9)
        )
        det.prepare(frame.channel, noise_var=frame.noise_var)
        soft = det.detect_soft(frame.received)
        # Exhaustive reference over all 16 candidates.
        const = system.constellation
        cands = np.array(
            [[a, b] for a in range(4) for b in range(4)], dtype=np.int64
        )
        metrics = np.array(
            [
                np.linalg.norm(frame.received - frame.channel @ const.points[c]) ** 2
                for c in cands
            ]
        )
        bits = const.labels[cands].reshape(16, -1)
        for b in range(4):
            ref = (
                metrics[~bits[:, b]].min() - metrics[bits[:, b]].min()
            ) / frame.noise_var
            ref = np.clip(ref, -50.0, 50.0)
            assert soft.llrs[b] == pytest.approx(ref, rel=1e-6, abs=1e-9)


class TestValidation:
    def test_bad_args(self):
        const = MIMOSystem(3, 3).constellation
        with pytest.raises(ValueError):
            SoftOutputSphereDetector(const, max_list=0)
        with pytest.raises(ValueError):
            SoftOutputSphereDetector(const, llr_clip=0.0)

    def test_requires_prepare(self):
        det = SoftOutputSphereDetector(MIMOSystem(3, 3).constellation)
        with pytest.raises(RuntimeError):
            det.detect_soft(np.zeros(3, complex))
