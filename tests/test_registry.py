"""The declarative detector registry: specs, pickling, equivalence, replay.

The registry's contract (see ``repro.detectors.registry``):

- ``spec(kind, const, **params)`` validates the kind and the parameter
  names eagerly, so typos fail at construction time, not in a worker.
- Every :class:`DetectorSpec` survives a pickle round trip — including
  across a real ``ProcessPoolExecutor`` — and the rebuilt spec produces
  a detector whose ``detect()`` output is bit-identical to direct
  construction.
- Every entry flagged ``fpga_replayable`` emits a BatchEvent trace the
  FPGA pipeline simulator accepts, with the per-stage cycle breakdown
  summing exactly to the total.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.cli import main
from repro.detectors.registry import (
    DetectorSpec,
    detector_entries,
    detector_entry,
    spec,
)
from repro.fpga.pipeline import FPGAPipeline, PipelineConfig
from repro.mimo.constellation import Constellation
from repro.mimo.system import MIMOSystem

N_ANT = 4
SNR_DB = 8.0


def _frame(seed: int = 3):
    system = MIMOSystem(N_ANT, N_ANT, "4qam")
    rng = np.random.default_rng(seed)
    return system, system.random_frame(SNR_DB, rng)


def _decode(detector, frame):
    detector.prepare(frame.channel, noise_var=frame.noise_var)
    return detector.detect(frame.received)


def _pool_decode(s: DetectorSpec, channel, noise_var, received):
    """Worker-side: rebuild the detector from the shipped spec."""
    detector = s()
    detector.prepare(channel, noise_var=noise_var)
    return detector.detect(received).indices


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        const = Constellation.qam(4)
        with pytest.raises(ValueError, match="unknown detector kind"):
            spec("warp-drive", const)

    def test_unknown_param_rejected_eagerly(self):
        const = Constellation.qam(4)
        with pytest.raises(ValueError, match="unknown parameter"):
            spec("sd", const, max_nodse=10)

    def test_entry_lookup_lists_known_kinds(self):
        with pytest.raises(ValueError, match="registered kinds"):
            detector_entry("nope")

    def test_params_sorted_for_stable_equality(self):
        const = Constellation.qam(4)
        a = spec("sd", const, alpha=2.0, max_nodes=100)
        b = spec("sd", const, max_nodes=100, alpha=2.0)
        assert a == b


class TestSpecRoundTrip:
    @pytest.mark.parametrize(
        "kind", [entry.kind for entry in detector_entries()]
    )
    def test_pickle_round_trip_bit_identical(self, kind):
        const = Constellation.qam(4)
        system, frame = _frame()
        s = spec(kind, const)
        clone = pickle.loads(pickle.dumps(s))
        assert clone == s
        direct = detector_entry(kind).factory(const, **dict(detector_entry(kind).defaults))
        r_spec = _decode(clone(), frame)
        r_direct = _decode(direct, frame)
        assert type(clone()) is type(direct)
        assert np.array_equal(r_spec.indices, r_direct.indices)
        assert np.array_equal(r_spec.bits, r_direct.bits)
        assert r_spec.metric == r_direct.metric
        if r_spec.stats is not None:
            assert r_spec.stats.nodes_expanded == r_direct.stats.nodes_expanded
            assert r_spec.stats.gemm_calls == r_direct.stats.gemm_calls
            assert r_spec.stats.radius_trace == r_direct.stats.radius_trace

    def test_spec_param_overrides_apply(self):
        const = Constellation.qam(4)
        detector = spec("sd", const, alpha=3.0, max_nodes=777)()
        assert detector.max_nodes == 777
        assert detector.radius_policy.alpha == 3.0

    def test_process_pool_round_trip(self):
        system, frame = _frame()
        s = spec("sd", system.constellation)
        local = _decode(s(), frame).indices
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(
                _pool_decode, s, frame.channel, frame.noise_var, frame.received
            ).result()
        assert np.array_equal(local, remote)


class TestFpgaReplay:
    @pytest.mark.parametrize(
        "kind",
        [e.kind for e in detector_entries() if e.fpga_replayable],
    )
    def test_trace_replays_with_exact_stage_sum(self, kind):
        const = Constellation.qam(4)
        system, frame = _frame()
        result = _decode(spec(kind, const)(), frame)
        stats = result.stats
        assert stats is not None
        assert stats.batches, f"{kind} produced no BatchEvent trace"
        if detector_entry(kind).lattice != "complex":
            # Real-lattice representations search a 2M-level tree over
            # the per-dimension PAM alphabet.
            n_tx, order = 2 * N_ANT, int(round(np.sqrt(const.order)))
        else:
            n_tx, order = N_ANT, const.order
        pipe = FPGAPipeline(
            PipelineConfig.optimized(order),
            n_tx=n_tx,
            n_rx=n_tx,
            order=order,
        )
        report = pipe.decode_report(stats)
        breakdown = report.stage_breakdown()
        assert sum(breakdown.values()) == report.total_cycles

    @pytest.mark.parametrize("kind", ["kbest", "fsd"])
    def test_sweep_decoders_batch_matches_sequential(self, kind):
        # KBest/FSD gained the fused decode_batch path by moving onto the
        # shared engine; fused and sequential decoding must agree exactly.
        const = Constellation.qam(4)
        system, frame = _frame()
        rng = np.random.default_rng(11)
        other = system.random_frame(SNR_DB, rng, channel=frame.channel)
        detector = spec(kind, const)()
        detector.prepare(frame.channel, noise_var=frame.noise_var)
        sequential = [detector.detect(f.received) for f in (frame, other)]
        batched = detector.decode_batch(
            np.stack([frame.received, other.received])
        )
        for seq, bat in zip(sequential, batched):
            assert np.array_equal(seq.indices, bat.indices)
            assert seq.metric == bat.metric


class TestDetectorsSubcommand:
    def test_lists_every_kind_with_params_and_flags(self, capsys):
        assert main(["detectors"]) == 0
        out = capsys.readouterr().out
        for entry in detector_entries():
            assert f"{entry.kind}: " in out
        assert "alpha=2.0" in out
        assert "fpga-replay" in out
        assert "fig6" in out

    def test_lists_metric_and_lattice_axes(self, capsys):
        assert main(["detectors"]) == 0
        out = capsys.readouterr().out
        assert "metric       : linf" in out
        assert "lattice      : real-reordered" in out

    def test_exact_only_hides_approximate_kinds(self, capsys):
        assert main(["detectors", "--exact-only"]) == 0
        out = capsys.readouterr().out
        for entry in detector_entries():
            if entry.exact:
                assert f"{entry.kind}: " in out
            else:
                assert f"{entry.kind}: " not in out
        assert "sd-linf: " not in out
        assert "sd-real-reordered: " in out
