"""Tests for the GEMM-BFS decoder (the GPU baseline of [1])."""

import numpy as np
import pytest

from repro.core.radius import FixedRadius, NoiseScaledRadius
from repro.detectors.ml import MLDetector
from repro.detectors.sd_bfs import GemmBfsDecoder
from repro.mimo.system import MIMOSystem


def run_pair(system, decoder, snr_db, seed):
    rng = np.random.default_rng(seed)
    frame = system.random_frame(snr_db, rng)
    ml = MLDetector(system.constellation)
    ml.prepare(frame.channel)
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    return frame, decoder.detect(frame.received), ml.detect(frame.received)


class TestExactness:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_ml_with_generous_radius(self, seed):
        """A radius large enough to contain the ML point => exact."""
        system = MIMOSystem(4, 4, "4qam")
        decoder = GemmBfsDecoder(
            system.constellation, radius_policy=FixedRadius(radius_sq=1e6)
        )
        _, bfs, ml = run_pair(system, decoder, 6.0, seed)
        assert bfs.metric == pytest.approx(ml.metric, rel=1e-9)
        assert np.array_equal(bfs.indices, ml.indices)

    @pytest.mark.parametrize("seed", range(3))
    def test_escalation_recovers_ml(self, seed):
        """Tiny radius erases; escalation must still land on ML."""
        system = MIMOSystem(4, 4, "4qam")
        decoder = GemmBfsDecoder(
            system.constellation, radius_policy=FixedRadius(radius_sq=1e-9)
        )
        _, bfs, ml = run_pair(system, decoder, 8.0, seed)
        assert bfs.metric == pytest.approx(ml.metric, rel=1e-9)

    def test_noise_scaled_default_good_at_high_snr(self):
        system = MIMOSystem(5, 5, "4qam")
        decoder = GemmBfsDecoder(system.constellation)
        frame, bfs, ml = run_pair(system, decoder, 30.0, 0)
        assert np.array_equal(bfs.indices, frame.symbol_indices)
        assert bfs.metric == pytest.approx(ml.metric, rel=1e-9)


class TestWorkloadShape:
    def test_one_batch_per_level(self):
        """The BFS trace is exactly one event per tree level per sweep."""
        system = MIMOSystem(6, 6, "4qam")
        decoder = GemmBfsDecoder(
            system.constellation, radius_policy=FixedRadius(radius_sq=1e6)
        )
        _, bfs, _ = run_pair(system, decoder, 10.0, 0)
        st = bfs.stats
        assert len(st.batches) == 6
        levels = [ev.level for ev in st.batches]
        assert levels == [5, 4, 3, 2, 1, 0]

    def test_frontier_grows_then_counts_match(self):
        system = MIMOSystem(5, 5, "4qam")
        decoder = GemmBfsDecoder(
            system.constellation, radius_policy=FixedRadius(radius_sq=1e6)
        )
        _, bfs, _ = run_pair(system, decoder, 10.0, 1)
        st = bfs.stats
        # With an effectively infinite radius nothing is pruned: frontier
        # at level event i is 4^i.
        pools = [ev.pool_size for ev in st.batches]
        assert pools == [4**i for i in range(5)]
        assert st.nodes_expanded == sum(pools)
        assert st.leaves_reached == 4**5

    def test_explores_more_than_leaf_first(self):
        """The paper's IV-F claim: BFS explores far more nodes."""
        from repro.core.sphere_decoder import SphereDecoder

        system = MIMOSystem(6, 6, "4qam")
        rng = np.random.default_rng(3)
        frame = system.random_frame(6.0, rng)
        bfs = GemmBfsDecoder(
            system.constellation,
            radius_policy=NoiseScaledRadius(alpha=4.0),
        )
        leaf_first = SphereDecoder(system.constellation, strategy="dfs")
        bfs.prepare(frame.channel, noise_var=frame.noise_var)
        leaf_first.prepare(frame.channel, noise_var=frame.noise_var)
        r_bfs = bfs.detect(frame.received)
        r_lf = leaf_first.detect(frame.received)
        assert r_bfs.stats.nodes_expanded > r_lf.stats.nodes_expanded

    def test_max_frontier_caps_and_flags(self):
        system = MIMOSystem(8, 8, "4qam")
        decoder = GemmBfsDecoder(
            system.constellation,
            radius_policy=FixedRadius(radius_sq=1e6),
            max_frontier=64,
        )
        _, bfs, _ = run_pair(system, decoder, 10.0, 0)
        st = bfs.stats
        assert st.truncated > 0
        assert st.max_list_size <= 64

    def test_k_best_still_returns_valid_decision(self):
        system = MIMOSystem(8, 8, "4qam")
        decoder = GemmBfsDecoder(
            system.constellation,
            radius_policy=FixedRadius(radius_sq=1e6),
            max_frontier=16,
        )
        frame, bfs, _ = run_pair(system, decoder, 30.0, 0)
        assert bfs.indices.shape == (8,)
        assert np.all((bfs.indices >= 0) & (bfs.indices < 4))


class TestContract:
    def test_metric_is_true_residual(self):
        system = MIMOSystem(4, 4, "4qam")
        decoder = GemmBfsDecoder(system.constellation)
        frame, bfs, _ = run_pair(system, decoder, 10.0, 0)
        expected = (
            np.linalg.norm(frame.received - frame.channel @ bfs.symbols) ** 2
        )
        assert bfs.metric == pytest.approx(expected, rel=1e-9)

    def test_requires_prepare(self):
        decoder = GemmBfsDecoder(MIMOSystem(4, 4).constellation)
        with pytest.raises(RuntimeError):
            decoder.detect(np.zeros(4, complex))

    def test_invalid_max_frontier(self):
        with pytest.raises(ValueError):
            GemmBfsDecoder(MIMOSystem(4, 4).constellation, max_frontier=0)

    def test_record_trace_off(self):
        system = MIMOSystem(4, 4, "4qam")
        decoder = GemmBfsDecoder(system.constellation, record_trace=False)
        _, bfs, _ = run_pair(system, decoder, 10.0, 0)
        assert bfs.stats.batches == []
