"""Serial vs process-sharded vs batched Monte Carlo equivalence.

The contract under test (see ``repro.mimo.parallel_mc``): for a fixed
master seed, sharding channel blocks over N workers — or fusing each
block's frames into one lockstep ``decode_batch`` — changes *nothing*
about the simulation outcome. BERs, error counters, per-frame stats,
node counts, radius traces and batch events must be bit-identical;
only wall-clock fields may differ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.sphere_decoder import SphereDecoder
from repro.mimo.constellation import Constellation
from repro.mimo.montecarlo import MonteCarloEngine
from repro.mimo.parallel_mc import plan_chunks, plan_shards
from repro.mimo.system import MIMOSystem
from repro.obs import Tracer, use_tracer

SNRS = [6.0, 10.0]

#: DecodeStats fields that must match bit-for-bit across execution modes
#: (everything except the wall-clock field).
STAT_FIELDS = (
    "nodes_expanded",
    "nodes_generated",
    "nodes_pruned",
    "leaves_reached",
    "radius_updates",
    "gemm_calls",
    "gemm_flops",
    "max_list_size",
    "truncated",
    "batches",
    "radius_trace",
)


@dataclass(frozen=True)
class SdFactory:
    """Picklable sphere-decoder factory for pool workers."""

    order: int

    def __call__(self):
        return SphereDecoder(Constellation.qam(self.order))


@dataclass(frozen=True)
class CrashingFactory:
    """Factory whose detector always explodes (crash-log test)."""

    def __call__(self):
        raise RuntimeError("boom: injected worker failure")


def _engine(**overrides):
    system = MIMOSystem(4, 4, "4qam")
    defaults = dict(channels=6, frames_per_channel=3, seed=1234)
    defaults.update(overrides)
    return MonteCarloEngine(system, **defaults)


def _assert_sweeps_identical(a, b):
    assert np.array_equal(a.snrs_db, b.snrs_db)
    assert np.array_equal(a.bers, b.bers)
    for pa, pb in zip(a.points, b.points):
        assert pa.frames == pb.frames
        assert pa.errors == pb.errors
        assert len(pa.frame_stats) == len(pb.frame_stats)
        # Frame order itself must be reproduced, not just aggregates.
        for sa, sb in zip(pa.frame_stats, pb.frame_stats):
            for name in STAT_FIELDS:
                assert getattr(sa, name) == getattr(sb, name), name
        agg_a, agg_b = pa.aggregate_stats(), pb.aggregate_stats()
        for name in STAT_FIELDS:
            assert getattr(agg_a, name) == getattr(agg_b, name), name


class TestSerialParallelEquivalence:
    def test_workers_4_bit_identical_to_serial(self):
        serial = _engine().run(SdFactory(4), SNRS)
        sharded = _engine(workers=4).run(SdFactory(4), SNRS)
        _assert_sweeps_identical(serial, sharded)

    def test_explicit_chunking_does_not_change_results(self):
        serial = _engine().run(SdFactory(4), SNRS)
        for chunk in (1, 2, 5, 100):
            sharded = _engine(workers=2, chunk_blocks=chunk).run(
                SdFactory(4), SNRS
            )
            _assert_sweeps_identical(serial, sharded)

    def test_batch_frames_bit_identical_to_serial(self):
        serial = _engine().run(SdFactory(4), SNRS)
        batched = _engine(batch_frames=True).run(SdFactory(4), SNRS)
        _assert_sweeps_identical(serial, batched)

    def test_workers_and_batch_compose(self):
        serial = _engine().run(SdFactory(4), SNRS)
        both = _engine(workers=3, batch_frames=True).run(SdFactory(4), SNRS)
        _assert_sweeps_identical(serial, both)

    def test_run_n_workers_overrides_engine_default(self):
        sweep = _engine(workers=4).run(SdFactory(4), [8.0], n_workers=1)
        assert sweep.points[0].frames == 18

    def test_harness_factories_are_picklable(self):
        import pickle

        from repro.bench.harness import (
            bfs_gpu_decoder_factory,
            canonical_decoder_factory,
        )

        const = Constellation.qam(4)
        for factory in (
            canonical_decoder_factory(const),
            bfs_gpu_decoder_factory(const),
        ):
            clone = pickle.loads(pickle.dumps(factory))
            assert type(clone()) is type(factory())


class TestChunkPlanning:
    def test_chunks_cover_every_block_exactly_once(self):
        for n_blocks in (1, 3, 7, 16, 101):
            for workers in (1, 2, 5):
                chunks = plan_chunks(n_blocks, workers)
                covered = [i for s, e in chunks for i in range(s, e)]
                assert covered == list(range(n_blocks))

    def test_explicit_chunk_size(self):
        assert plan_chunks(7, 2, chunk_blocks=3) == [(0, 3), (3, 6), (6, 7)]

    def test_deterministic(self):
        assert plan_chunks(20, 3) == plan_chunks(20, 3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_chunks(0, 2)
        with pytest.raises(ValueError):
            plan_chunks(4, 0)
        with pytest.raises(ValueError):
            plan_chunks(4, 2, chunk_blocks=0)

    def test_shard_plan_reuses_serial_seed_tree(self):
        snrs = [6.0, 10.0]
        shards = plan_shards(snrs, 77, 5, workers=2)
        # Rebuild the serial seeding tree and check shard streams match.
        seqs = np.random.SeedSequence(77).spawn(len(snrs))
        for point_index, seq in enumerate(seqs):
            block_seqs = seq.spawn(5)
            point_shards = [s for s in shards if s.point_index == point_index]
            flattened = [
                ss for shard in point_shards for ss in shard.seed_seqs
            ]
            assert len(flattened) == 5
            for mine, serial in zip(flattened, block_seqs):
                assert mine.entropy == serial.entropy
                assert mine.spawn_key == serial.spawn_key


class TestHeartbeatUnderSharding:
    def test_parent_emits_heartbeats_with_workers_field(self):
        tracer = Tracer()
        with use_tracer(tracer):
            _engine(workers=2, heartbeat_every=1).run(SdFactory(4), [8.0])
        beats = [e for e in tracer.events if e.name == "mc.heartbeat"]
        assert len(beats) == 6  # one per channel block
        shard_ids = {s.shard_id for s in plan_shards([8.0], 0, 6, workers=2)}
        for beat in beats:
            assert set(beat.args) == {
                "snr_db", "blocks_done", "blocks_total", "frames",
                "ber", "nodes_per_s", "eta_s", "workers", "shard",
            }
            assert beat.args["workers"] == 2
            assert beat.args["blocks_total"] == 6
            assert beat.args["shard"] in shard_ids
        assert sorted(b.args["blocks_done"] for b in beats) == [1, 2, 3, 4, 5, 6]

    def test_heartbeat_every_thinning(self):
        tracer = Tracer()
        with use_tracer(tracer):
            _engine(workers=2, heartbeat_every=3).run(SdFactory(4), [8.0])
        beats = [e for e in tracer.events if e.name == "mc.heartbeat"]
        assert sorted(b.args["blocks_done"] for b in beats) == [3, 6]

    def test_point_spans_emitted_by_parent(self):
        tracer = Tracer()
        with use_tracer(tracer):
            _engine(workers=2).run(SdFactory(4), SNRS)
        spans = [e for e in tracer.events if e.name == "mc.point"]
        assert [s.args["snr_db"] for s in spans] == SNRS
        assert all(s.args["workers"] == 2 for s in spans)


class TestWorkerCrashForensics:
    def test_crash_log_written_and_error_propagates(self, tmp_path):
        crash_dir = tmp_path / "crashes"
        engine = _engine(workers=2, channels=2, crash_dir=crash_dir)
        with pytest.raises(RuntimeError, match="injected worker failure"):
            engine.run(CrashingFactory(), [8.0])
        logs = sorted(crash_dir.glob("shard-*.log"))
        assert logs, "no crash log written"
        text = logs[0].read_text()
        assert "injected worker failure" in text
        assert "Traceback" in text

    def test_crash_dir_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MC_CRASH_DIR", str(tmp_path / "env-crashes"))
        engine = _engine(workers=2, channels=2)
        assert str(engine.crash_dir) == str(tmp_path / "env-crashes")

    def test_no_crash_dir_still_raises(self):
        engine = _engine(workers=2, channels=2, crash_dir=None)
        engine.crash_dir = None  # defeat any ambient env default
        with pytest.raises(RuntimeError, match="injected worker failure"):
            engine.run(CrashingFactory(), [8.0])


class TestEarlyStopInteraction:
    def test_target_bit_errors_ignored_but_warns(self):
        import logging

        # Attach a handler straight to the module logger: robust against
        # other tests having reconfigured root-logger propagation.
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        logger = logging.getLogger("repro.mimo.parallel_mc")
        handler = Capture(level=logging.WARNING)
        logger.addHandler(handler)
        try:
            engine = _engine(workers=2, target_bit_errors=1)
            sweep = engine.run(SdFactory(4), [0.0])
        finally:
            logger.removeHandler(handler)
        assert sweep.points[0].frames == 18  # all blocks ran
        assert any("serial-only" in rec.getMessage() for rec in records)


class TestPointTimer:
    def test_serial_point_timer_pools_block_samples(self):
        sweep = _engine().run(SdFactory(4), [8.0])
        point = sweep.points[0]
        # 6 blocks x 3 frames, one sample per frame decode.
        assert point.timer.calls == 18
        assert point.decode_time_s == pytest.approx(point.timer.elapsed)

    def test_sharded_point_timer_merges_worker_timers(self):
        sweep = _engine(workers=3).run(SdFactory(4), [8.0])
        point = sweep.points[0]
        assert point.timer.calls == 18
        assert point.decode_time_s == pytest.approx(point.timer.elapsed)
        summary = point.timer.summarize()
        assert summary.count == 18
