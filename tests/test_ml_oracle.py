"""ML-oracle conformance: every exact detector matches brute force.

The :class:`~repro.detectors.ml.MLDetector` enumerates the entire
lattice, so on systems small enough to enumerate it is ground truth for
the maximum-likelihood point. The candidate set is drawn from the
detector registry — every entry flagged ``exact`` and
``fpga_replayable`` (the tree-search detectors; the linear baselines are
exact only in a trivial sense and have no decode trace) must return
exactly the same decision (indices) and the same ML metric on every one
of these random instances. Registering a new exact tree-search kind
automatically enrols it here; flagging an approximate kind ``exact``
makes this suite fail loudly. This is the conformance suite guarding the
batched/lockstep decode refactor and the metric/lattice axes: any
scheduling or representation change that alters a decision surfaces
here as a hard mismatch, not a statistical drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.ml import MLDetector
from repro.detectors.registry import detector_entries, spec
from repro.mimo.constellation import Constellation

#: (n_antennas, modulation order) — small enough for exhaustive ML.
SYSTEMS = [(2, 4), (3, 4), (4, 4), (2, 16), (3, 16)]

N_SEEDS = 60

#: Registry kinds that claim exact ML and carry a replayable decode
#: trace — i.e. the tree-search detectors the paper benchmarks.
EXACT_KINDS = [
    e.kind for e in detector_entries() if e.exact and e.fpga_replayable
]

#: The subset that additionally supports the fused lockstep batch path.
EXACT_BATCH_KINDS = [
    e.kind
    for e in detector_entries()
    if e.exact and e.fpga_replayable and e.batch
]


def _instance(n: int, order: int, seed: int):
    """One random channel / transmit / receive triple."""
    rng = np.random.default_rng(seed)
    const = Constellation.qam(order)
    channel = (
        rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    ) / np.sqrt(2)
    indices = rng.integers(0, order, size=n)
    sent = const.points[indices]
    noise_var = 0.05
    noise = np.sqrt(noise_var / 2) * (
        rng.standard_normal(n) + 1j * rng.standard_normal(n)
    )
    received = channel @ sent + noise
    return const, channel, received, noise_var


def test_registry_enrols_expected_kinds():
    # Guard against the selection predicate silently going empty (which
    # would vacuously pass everything below).
    assert "sd" in EXACT_KINDS
    assert "sd-real-reordered" in EXACT_KINDS
    assert "sd-linf" not in EXACT_KINDS  # approximate w.r.t. ML
    assert "ml" not in EXACT_KINDS  # the oracle itself, no trace


def _engine_spec(kind, const, engine):
    """Spec for ``kind`` under ``engine``, or None when unsupported."""
    entry = next(e for e in detector_entries() if e.kind == kind)
    if engine not in entry.engines:
        return None
    if "engine" in entry.defaults:
        return spec(kind, const, engine=engine)
    return spec(kind, const)


@pytest.mark.parametrize("n,order", SYSTEMS, ids=lambda v: str(v))
def test_every_exact_detector_matches_brute_force(n, order, traversal_engine):
    oracle_mismatches = []
    for seed in range(N_SEEDS):
        const, channel, received, noise_var = _instance(n, order, seed)
        oracle = MLDetector(const)
        oracle.prepare(channel, noise_var=noise_var)
        truth = oracle.detect(received)
        for kind in EXACT_KINDS:
            detector_spec = _engine_spec(kind, const, traversal_engine)
            if detector_spec is None:
                continue
            detector = detector_spec()
            detector.prepare(channel, noise_var=noise_var)
            result = detector.detect(received)
            if not np.array_equal(result.indices, truth.indices):
                # Distinct decisions are still ML if the metrics tie
                # exactly (degenerate instances); anything else is a bug.
                if not np.isclose(
                    result.metric, truth.metric, rtol=1e-10, atol=1e-12
                ):
                    oracle_mismatches.append(
                        (seed, kind, result.metric, truth.metric)
                    )
                continue
            assert np.isclose(
                result.metric, truth.metric, rtol=1e-10, atol=1e-12
            ), f"seed {seed}, {kind}: metric {result.metric} != {truth.metric}"
    assert not oracle_mismatches, oracle_mismatches


@pytest.mark.parametrize("n,order", [(3, 4), (4, 4), (2, 16)])
def test_decode_batch_matches_brute_force(n, order, traversal_engine):
    """The lockstep batch path is also exactly ML on every frame."""
    rng = np.random.default_rng(99)
    const = Constellation.qam(order)
    channel = (
        rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    ) / np.sqrt(2)
    noise_var = 0.05
    frames = 8
    indices = rng.integers(0, order, size=(frames, n))
    sent = const.points[indices]
    noise = np.sqrt(noise_var / 2) * (
        rng.standard_normal((frames, n)) + 1j * rng.standard_normal((frames, n))
    )
    received = sent @ channel.T + noise

    oracle = MLDetector(const)
    oracle.prepare(channel, noise_var=noise_var)
    truths = [oracle.detect(row) for row in received]

    for kind in EXACT_BATCH_KINDS:
        detector_spec = _engine_spec(kind, const, traversal_engine)
        if detector_spec is None:
            continue
        detector = detector_spec()
        detector.prepare(channel, noise_var=noise_var)
        results = detector.decode_batch(received)
        assert len(results) == frames
        for truth, result in zip(truths, results):
            assert np.isclose(
                result.metric, truth.metric, rtol=1e-10, atol=1e-12
            ), detector.name
