"""Tests for repro.mimo.montecarlo."""

import numpy as np
import pytest

from repro.detectors.linear import ZeroForcingDetector
from repro.core.sphere_decoder import SphereDecoder
from repro.mimo.montecarlo import MonteCarloEngine, SnrPoint
from repro.mimo.metrics import ErrorCounter
from repro.mimo.system import MIMOSystem


def _system():
    return MIMOSystem(4, 4, "4qam")


class _ZfFactory:
    """Picklable detector factory (needed for process workers)."""

    def __init__(self, const):
        self.const = const

    def __call__(self):
        return ZeroForcingDetector(self.const)


def _zf_factory(const):
    return _ZfFactory(const)


class TestEngineBasics:
    def test_runs_and_counts_frames(self):
        system = _system()
        engine = MonteCarloEngine(system, channels=2, frames_per_channel=3, seed=0)
        sweep = engine.run(_zf_factory(system.constellation), [10.0, 20.0])
        assert len(sweep.points) == 2
        for point in sweep.points:
            assert point.frames == 6
            assert point.errors.bits == 6 * system.bits_per_frame

    def test_snr_grid_preserved(self):
        system = _system()
        engine = MonteCarloEngine(system, channels=1, frames_per_channel=2, seed=0)
        sweep = engine.run(_zf_factory(system.constellation), [4, 12, 20])
        assert np.array_equal(sweep.snrs_db, [4.0, 12.0, 20.0])

    def test_reproducible(self):
        system = _system()

        def run():
            engine = MonteCarloEngine(
                system, channels=2, frames_per_channel=4, seed=77
            )
            return engine.run(_zf_factory(system.constellation), [8.0])

        a, b = run(), run()
        assert a.points[0].errors.bit_errors == b.points[0].errors.bit_errors

    def test_different_seeds_differ(self):
        system = _system()
        results = []
        for seed in (1, 2):
            engine = MonteCarloEngine(
                system, channels=3, frames_per_channel=10, seed=seed
            )
            sweep = engine.run(_zf_factory(system.constellation), [6.0])
            results.append(sweep.points[0].errors.bit_errors)
        assert results[0] != results[1]

    def test_detector_name_default_and_override(self):
        system = _system()
        engine = MonteCarloEngine(system, channels=1, frames_per_channel=1, seed=0)
        sweep = engine.run(_zf_factory(system.constellation), [10.0])
        assert sweep.detector_name == "zf"
        named = engine.run(
            _zf_factory(system.constellation), [10.0], detector_name="custom"
        )
        assert named.detector_name == "custom"

    def test_empty_snrs_rejected(self):
        system = _system()
        engine = MonteCarloEngine(system, channels=1, frames_per_channel=1)
        with pytest.raises(ValueError):
            engine.run(_zf_factory(system.constellation), [])

    def test_invalid_counts_rejected(self):
        system = _system()
        with pytest.raises(ValueError):
            MonteCarloEngine(system, channels=0, frames_per_channel=1)
        with pytest.raises(ValueError):
            MonteCarloEngine(system, channels=1, frames_per_channel=0)


class TestStatsCollection:
    def test_sd_stats_collected(self):
        system = _system()
        const = system.constellation
        engine = MonteCarloEngine(system, channels=2, frames_per_channel=2, seed=0)
        sweep = engine.run(lambda: SphereDecoder(const), [10.0])
        point = sweep.points[0]
        assert len(point.frame_stats) == point.frames
        agg = point.aggregate_stats()
        assert agg.nodes_expanded > 0
        assert agg.gemm_calls > 0

    def test_linear_detector_has_no_stats(self):
        system = _system()
        engine = MonteCarloEngine(system, channels=1, frames_per_channel=2, seed=0)
        sweep = engine.run(_zf_factory(system.constellation), [10.0])
        assert sweep.points[0].frame_stats == []
        assert np.isnan(sweep.points[0].mean_nodes_expanded())

    def test_keep_traces_false_drops_batches(self):
        system = _system()
        const = system.constellation
        engine = MonteCarloEngine(
            system, channels=1, frames_per_channel=2, seed=0, keep_traces=False
        )
        sweep = engine.run(lambda: SphereDecoder(const), [10.0])
        for st in sweep.points[0].frame_stats:
            assert st.batches == []

    def test_decode_time_accumulated(self):
        system = _system()
        const = system.constellation
        engine = MonteCarloEngine(system, channels=1, frames_per_channel=3, seed=0)
        sweep = engine.run(lambda: SphereDecoder(const), [10.0])
        assert sweep.points[0].decode_time_s > 0
        assert sweep.points[0].mean_decode_time_s > 0


class TestEarlyStop:
    def test_target_bit_errors_stops_early(self):
        system = _system()
        # At very low SNR ZF makes many errors; one channel block is
        # enough to cross a tiny error budget.
        engine = MonteCarloEngine(
            system,
            channels=50,
            frames_per_channel=5,
            seed=0,
            target_bit_errors=1,
        )
        sweep = engine.run(_zf_factory(system.constellation), [-5.0])
        point = sweep.points[0]
        assert point.frames < 50 * 5

    def test_no_early_stop_without_target(self):
        system = _system()
        engine = MonteCarloEngine(system, channels=3, frames_per_channel=2, seed=0)
        sweep = engine.run(_zf_factory(system.constellation), [-5.0])
        assert sweep.points[0].frames == 6


class TestSweepResult:
    def test_point_at(self):
        system = _system()
        engine = MonteCarloEngine(system, channels=1, frames_per_channel=1, seed=0)
        sweep = engine.run(_zf_factory(system.constellation), [4.0, 8.0])
        assert sweep.point_at(8.0).snr_db == 8.0
        with pytest.raises(KeyError):
            sweep.point_at(12.0)

    def test_bers_array(self):
        system = _system()
        engine = MonteCarloEngine(system, channels=2, frames_per_channel=5, seed=0)
        sweep = engine.run(_zf_factory(system.constellation), [0.0, 30.0])
        bers = sweep.bers
        assert bers.shape == (2,)
        assert bers[1] <= bers[0]  # higher SNR, no more errors


class TestParallelWorkers:
    def test_parallel_matches_frame_count(self):
        system = _system()
        engine = MonteCarloEngine(system, channels=4, frames_per_channel=2, seed=0)
        sweep = engine.run(
            _zf_factory(system.constellation), [10.0], n_workers=2
        )
        assert sweep.points[0].frames == 8

    def test_parallel_matches_serial_errors(self):
        """Same seed => identical per-block streams => identical counts."""
        system = _system()

        def run(workers):
            engine = MonteCarloEngine(
                system, channels=4, frames_per_channel=3, seed=42
            )
            sweep = engine.run(
                _zf_factory(system.constellation), [6.0], n_workers=workers
            )
            return sweep.points[0].errors.bit_errors

        assert run(1) == run(2)


class TestHeartbeat:
    def heartbeats(self, tracer):
        return [e for e in tracer.events if e.name == "mc.heartbeat"]

    def run_traced(self, *, channels=3, heartbeat_every=1):
        from repro.obs import Tracer, use_tracer

        system = _system()
        engine = MonteCarloEngine(
            system,
            channels=channels,
            frames_per_channel=2,
            seed=0,
            heartbeat_every=heartbeat_every,
        )
        tracer = Tracer()
        with use_tracer(tracer):
            engine.run(_zf_factory(system.constellation), [10.0])
        return tracer

    def test_instant_per_block(self):
        tracer = self.run_traced(channels=3)
        beats = self.heartbeats(tracer)
        assert [e.args["blocks_done"] for e in beats] == [1, 2, 3]
        assert all(e.args["blocks_total"] == 3 for e in beats)

    def test_instant_payload(self):
        tracer = self.run_traced(channels=2)
        last = self.heartbeats(tracer)[-1]
        assert set(last.args) == {
            "snr_db", "blocks_done", "blocks_total", "frames",
            "ber", "nodes_per_s", "eta_s",
        }
        assert last.args["snr_db"] == 10.0
        assert last.args["frames"] == 4  # 2 blocks x 2 frames
        assert 0.0 <= last.args["ber"] <= 1.0
        assert last.args["eta_s"] == pytest.approx(0.0, abs=5.0)

    def test_every_n_blocks(self):
        tracer = self.run_traced(channels=4, heartbeat_every=2)
        beats = self.heartbeats(tracer)
        assert [e.args["blocks_done"] for e in beats] == [2, 4]

    def test_zero_disables(self):
        tracer = self.run_traced(channels=3, heartbeat_every=0)
        assert self.heartbeats(tracer) == []

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="heartbeat_every"):
            MonteCarloEngine(_system(), heartbeat_every=-1)

    def test_log_line_when_verbose(self):
        """The INFO heartbeat renders frames, BER and ETA."""
        import io

        from repro.obs.log import configure

        stream = io.StringIO()
        configure(1, stream=stream)
        try:
            system = _system()
            engine = MonteCarloEngine(
                system, channels=2, frames_per_channel=2, seed=0
            )
            engine.run(_zf_factory(system.constellation), [10.0])
        finally:
            configure(0)
        logged = stream.getvalue()
        assert "mc heartbeat 10.0 dB" in logged
        assert "block 2/2" in logged
        assert "eta" in logged

    def test_silent_without_tracer_or_verbose_logging(self):
        """Default run: no heartbeat work observable anywhere."""
        from repro.obs import current_tracer

        system = _system()
        engine = MonteCarloEngine(system, channels=2, frames_per_channel=2, seed=0)
        engine.run(_zf_factory(system.constellation), [10.0])
        assert self.heartbeats(current_tracer()) == []
