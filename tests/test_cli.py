"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_mimo, _parse_snrs, build_parser, main


class TestParsers:
    def test_snr_range(self):
        assert _parse_snrs("4:20:4") == [4.0, 8.0, 12.0, 16.0, 20.0]

    def test_snr_list(self):
        assert _parse_snrs("4,8,12") == [4.0, 8.0, 12.0]

    def test_snr_bad_range(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_snrs("4:20")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_snrs("4:20:0")

    def test_mimo(self):
        assert _parse_mimo("10x10") == (10, 10)
        assert _parse_mimo("4X8") == (4, 8)

    def test_mimo_bad(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_mimo("10-10")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table1" in out

    def test_decode(self, capsys):
        assert main(["decode", "--mimo", "4x4", "--snr", "12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "decoded" in out
        assert "modelled time" in out

    def test_decode_dfs_strategy(self, capsys):
        assert main(["decode", "--mimo", "3x3", "--strategy", "dfs"]) == 0

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "baseline-16qam" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_with_scale_flags(self, capsys):
        code = main(
            ["experiment", "fig6", "--channels", "1", "--frames", "1", "--seed", "1"]
        )
        assert code == 0
        assert "fig6" in capsys.readouterr().out

    def test_ber_sd(self, capsys):
        code = main(
            [
                "ber",
                "--mimo",
                "4x4",
                "--snr",
                "10,20",
                "--channels",
                "1",
                "--frames",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BER" in out

    @pytest.mark.parametrize("detector", ["zf", "mmse", "mrc", "fsd"])
    def test_ber_other_detectors(self, detector, capsys):
        code = main(
            [
                "ber",
                "--mimo",
                "3x3",
                "--snr",
                "15",
                "--detector",
                detector,
                "--channels",
                "1",
                "--frames",
                "2",
            ]
        )
        assert code == 0
