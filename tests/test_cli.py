"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    _parse_mimo,
    _parse_modulation,
    _parse_snrs,
    build_parser,
    main,
)


class TestParsers:
    def test_snr_range(self):
        assert _parse_snrs("4:20:4") == [4.0, 8.0, 12.0, 16.0, 20.0]

    def test_snr_list(self):
        assert _parse_snrs("4,8,12") == [4.0, 8.0, 12.0]

    def test_snr_bad_range(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_snrs("4:20")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_snrs("4:20:0")

    @pytest.mark.parametrize("text", ["", ",", ", ,", "20:4:4"])
    def test_snr_empty_rejected(self, text):
        """Regression: inputs parsing to zero SNR points must error."""
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="no SNR values"):
            _parse_snrs(text)

    def test_modulation_names(self):
        assert _parse_modulation("16QAM") == "16qam"
        assert _parse_modulation(" 4qam ") == "4qam"

    def test_modulation_bare_order(self):
        assert _parse_modulation("4") == "4qam"
        assert _parse_modulation("16") == "16qam"

    def test_mimo(self):
        assert _parse_mimo("10x10") == (10, 10)
        assert _parse_mimo("4X8") == (4, 8)

    def test_mimo_bad(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_mimo("10-10")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table1" in out

    def test_decode(self, capsys):
        assert main(["decode", "--mimo", "4x4", "--snr", "12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "decoded" in out
        assert "modelled time" in out

    def test_decode_dfs_strategy(self, capsys):
        assert main(["decode", "--mimo", "3x3", "--strategy", "dfs"]) == 0

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "baseline-16qam" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_with_scale_flags(self, capsys):
        code = main(
            ["experiment", "fig6", "--channels", "1", "--frames", "1", "--seed", "1"]
        )
        assert code == 0
        assert "fig6" in capsys.readouterr().out

    def test_ber_sd(self, capsys):
        code = main(
            [
                "ber",
                "--mimo",
                "4x4",
                "--snr",
                "10,20",
                "--channels",
                "1",
                "--frames",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BER" in out

    @pytest.mark.parametrize("detector", ["zf", "mmse", "mrc", "fsd"])
    def test_ber_other_detectors(self, detector, capsys):
        code = main(
            [
                "ber",
                "--mimo",
                "3x3",
                "--snr",
                "15",
                "--detector",
                detector,
                "--channels",
                "1",
                "--frames",
                "2",
            ]
        )
        assert code == 0


class TestTraceCommand:
    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "decode.trace.json"
        code = main(
            ["trace", "--size", "6", "--mod", "4", "--out", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "Chrome trace written to" in printed
        assert "cycles over" in printed  # stage breakdown header
        assert "p95_ms" in printed  # metrics table
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert events
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert any(e["name"] == "sd.detect" for e in events)
        assert any(e["name"] == "fpga.decode_report" for e in events)

    def test_trace_stage_breakdown_sums_printed_total(self, tmp_path, capsys):
        """The printed per-stage cycles add up to the printed total."""
        import re

        out = tmp_path / "t.json"
        assert main(["trace", "--size", "5", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        total = int(re.search(r"== fpga-\w+: (\d+) cycles", printed).group(1))
        stage_cycles = [
            int(m.group(1))
            for m in re.finditer(r"^\S+\s+(\d+)\s+[\d.]+%$", printed, re.M)
        ]
        assert sum(stage_cycles) == total

    def test_trace_jsonl_and_baseline_design(self, tmp_path):
        out = tmp_path / "t.json"
        events = tmp_path / "events.jsonl"
        code = main(
            [
                "trace",
                "--mimo",
                "4x4",
                "--design",
                "baseline",
                "--strategy",
                "dfs",
                "--out",
                str(out),
                "--jsonl",
                str(events),
            ]
        )
        assert code == 0
        lines = events.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["name"] for line in lines)


class TestErrorPaths:
    """Config mistakes exit 2 with one `error:` line, never a traceback."""

    def test_value_error_is_one_line(self, capsys):
        code = main(
            ["ber", "--mimo", "3x3", "--snr", "10", "--channels", "0", "--frames", "1"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err == "error: channels must be positive, got 0\n"
        assert "Traceback" not in err

    def test_unknown_run_reference(self, tmp_path, capsys):
        code = main(["runs", "--dir", str(tmp_path), "show", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: no run matching 'nope'")
        assert "Traceback" not in err

    def test_malformed_modulation(self, capsys):
        assert main(["decode", "--mod", "7qam"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown constellation '7qam'")
        assert err.count("\n") == 1
        assert "Traceback" not in err


class TestRunsCommands:
    def record(self, runs_dir, seed):
        code = main(
            [
                "experiment",
                "smoke",
                "--channels",
                "1",
                "--frames",
                "2",
                "--seed",
                str(seed),
                "--record",
                "--runs-dir",
                str(runs_dir),
            ]
        )
        assert code == 0

    def test_record_list_diff_report_round_trip(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        self.record(runs_dir, seed=1)
        self.record(runs_dir, seed=2)
        out = capsys.readouterr().out
        assert out.count("[obs] run recorded:") == 2

        assert main(["runs", "--dir", str(runs_dir), "list"]) == 0
        listing = capsys.readouterr().out
        assert "smoke" in listing
        assert listing.count("complete") == 2

        assert main(["runs", "--dir", str(runs_dir), "diff", "latest~1", "latest"]) == 0
        diff = capsys.readouterr().out
        assert "per-snr_db series" in diff
        assert "host_ms_a" in diff and "host_ms_pct" in diff
        assert "span shifts" in diff

        report_path = tmp_path / "deep" / "report.md"
        code = main(
            ["runs", "--dir", str(runs_dir), "report", "latest", "--out", str(report_path)]
        )
        assert code == 0
        assert report_path.read_text().startswith("# Run report: ")

    def test_show_latest(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        self.record(runs_dir, seed=1)
        capsys.readouterr()
        assert main(["runs", "--dir", str(runs_dir), "show", "latest"]) == 0
        out = capsys.readouterr().out
        assert "experiment" in out and "smoke" in out
        assert "git_sha" in out

    def test_list_empty_registry(self, tmp_path, capsys):
        assert main(["runs", "--dir", str(tmp_path / "none"), "list"]) == 0
        assert "(no runs recorded)" in capsys.readouterr().out

    def test_experiment_without_record_writes_nothing(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["experiment", "smoke", "--channels", "1", "--frames", "1", "--seed", "1"]
        )
        assert code == 0
        assert not (tmp_path / "runs").exists()


class TestStatsCommand:
    def test_stats_prints_metrics(self, capsys):
        code = main(["stats", "fig6", "--channels", "1", "--frames", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "p95_ms" in out
        assert "counters:" in out

    def test_stats_unknown_experiment(self, capsys):
        assert main(["stats", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_stats_writes_trace(self, tmp_path, capsys):
        code = main(
            [
                "stats",
                "fig6",
                "--channels",
                "1",
                "--frames",
                "1",
                "--trace",
                str(tmp_path),
            ]
        )
        assert code == 0
        path = tmp_path / "fig6.trace.json"
        assert path.exists()
        assert json.loads(path.read_text())["traceEvents"]

    def test_verbose_flag_accepted(self, capsys):
        assert main(["-v", "list"]) == 0
