"""Tests for child-enumeration orders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumeration import CHILD_ORDERS, child_order


class TestChildOrder:
    def test_natural_is_identity(self):
        pds = np.array([3.0, 1.0, 2.0])
        assert np.array_equal(child_order(pds, "natural"), [0, 1, 2])

    def test_sorted_ascending(self):
        pds = np.array([3.0, 1.0, 2.0])
        order = child_order(pds, "sorted")
        assert np.array_equal(pds[order], [1.0, 2.0, 3.0])

    def test_sorted_is_default(self):
        pds = np.array([5.0, 4.0])
        assert np.array_equal(child_order(pds), child_order(pds, "sorted"))

    def test_stable_on_ties(self):
        pds = np.array([1.0, 1.0, 0.5])
        order = child_order(pds, "sorted")
        assert np.array_equal(order, [2, 0, 1])

    def test_rejects_unknown_order(self):
        with pytest.raises(ValueError):
            child_order(np.array([1.0]), "zigzag")

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            child_order(np.zeros((2, 2)))

    def test_orders_registry(self):
        assert set(CHILD_ORDERS) == {"natural", "sorted"}


@given(
    st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=16,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_sorted_is_permutation_and_monotone(pds):
    pds = np.asarray(pds)
    order = child_order(pds, "sorted")
    assert sorted(order.tolist()) == list(range(len(pds)))
    assert np.all(np.diff(pds[order]) >= 0)
