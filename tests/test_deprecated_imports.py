"""Backward-compat shims for detector classes that moved out of core.

``SphereDecoder`` and ``PartitionedSphereDecoder`` historically lived in
``repro.core``; after the policy/backend split they are detectors
(``repro.detectors.sphere`` / ``repro.detectors.partitioned``). The old
import paths must keep resolving — to the *same* class objects — while
emitting a ``DeprecationWarning`` that names the new home.
"""

from __future__ import annotations

import importlib

import pytest

from repro.detectors.partitioned import PartitionedSphereDecoder
from repro.detectors.sphere import ORDERINGS, STRATEGIES, SphereDecoder

OLD_PATHS = [
    ("repro.core.sphere_decoder", "SphereDecoder", SphereDecoder),
    ("repro.core.sphere_decoder", "STRATEGIES", STRATEGIES),
    ("repro.core.sphere_decoder", "ORDERINGS", ORDERINGS),
    ("repro.core.parallel", "PartitionedSphereDecoder", PartitionedSphereDecoder),
    ("repro.core", "SphereDecoder", SphereDecoder),
    ("repro.core", "PartitionedSphereDecoder", PartitionedSphereDecoder),
]


@pytest.mark.parametrize(
    "module_name, attr, expected",
    OLD_PATHS,
    ids=[f"{m}.{a}" for m, a, _ in OLD_PATHS],
)
def test_old_path_resolves_and_warns(module_name, attr, expected):
    module = importlib.import_module(module_name)
    with pytest.warns(DeprecationWarning, match=attr):
        resolved = getattr(module, attr)
    assert resolved is expected


def test_warning_names_the_new_home():
    module = importlib.import_module("repro.core.sphere_decoder")
    with pytest.warns(DeprecationWarning, match="repro.detectors.sphere"):
        module.SphereDecoder


def test_unknown_attribute_still_raises():
    module = importlib.import_module("repro.core.sphere_decoder")
    with pytest.raises(AttributeError):
        module.NoSuchThing
    core = importlib.import_module("repro.core")
    with pytest.raises(AttributeError):
        core.NoSuchThing


def test_dir_advertises_moved_names():
    module = importlib.import_module("repro.core.sphere_decoder")
    assert "SphereDecoder" in dir(module)
