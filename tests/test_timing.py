"""Tests for repro.util.timing."""

import pytest

from repro.util.timing import Timer, WallClock


class FakeClock(WallClock):
    """Deterministic clock advancing only when told."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


class TestTimer:
    def test_accumulates_elapsed(self):
        clock = FakeClock()
        timer = Timer(clock=clock)
        with timer:
            clock.t += 2.0
        assert timer.elapsed == pytest.approx(2.0)

    def test_accumulates_across_calls(self):
        clock = FakeClock()
        timer = Timer(clock=clock)
        for _ in range(3):
            with timer:
                clock.t += 1.0
        assert timer.elapsed == pytest.approx(3.0)
        assert timer.calls == 3

    def test_mean(self):
        clock = FakeClock()
        timer = Timer(clock=clock)
        with timer:
            clock.t += 4.0
        with timer:
            clock.t += 2.0
        assert timer.mean == pytest.approx(3.0)

    def test_mean_zero_before_use(self):
        assert Timer().mean == 0.0

    def test_not_reentrant(self):
        timer = Timer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with timer:
                with timer:
                    pass

    def test_reset(self):
        clock = FakeClock()
        timer = Timer(clock=clock)
        with timer:
            clock.t += 1.0
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.calls == 0

    def test_real_clock_monotonic(self):
        timer = Timer()
        with timer:
            pass
        assert timer.elapsed >= 0.0
