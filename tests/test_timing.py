"""Tests for repro.util.timing."""

import numpy as np
import pytest

from repro.util.timing import Timer, WallClock, percentile, summarize


class FakeClock(WallClock):
    """Deterministic clock advancing only when told."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


class TestTimer:
    def test_accumulates_elapsed(self):
        clock = FakeClock()
        timer = Timer(clock=clock)
        with timer:
            clock.t += 2.0
        assert timer.elapsed == pytest.approx(2.0)

    def test_accumulates_across_calls(self):
        clock = FakeClock()
        timer = Timer(clock=clock)
        for _ in range(3):
            with timer:
                clock.t += 1.0
        assert timer.elapsed == pytest.approx(3.0)
        assert timer.calls == 3

    def test_mean(self):
        clock = FakeClock()
        timer = Timer(clock=clock)
        with timer:
            clock.t += 4.0
        with timer:
            clock.t += 2.0
        assert timer.mean == pytest.approx(3.0)

    def test_mean_zero_before_use(self):
        assert Timer().mean == 0.0

    def test_not_reentrant(self):
        timer = Timer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with timer:
                with timer:
                    pass

    def test_reset(self):
        clock = FakeClock()
        timer = Timer(clock=clock)
        with timer:
            clock.t += 1.0
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.calls == 0
        assert timer.samples == []
        assert timer.summarize().empty

    def test_reset_allows_reuse_after_guard(self):
        """reset() clears a half-open state so the timer is usable again."""
        clock = FakeClock()
        timer = Timer(clock=clock)
        timer.__enter__()
        timer.reset()
        with timer:
            clock.t += 1.0
        assert timer.calls == 1

    def test_keeps_samples(self):
        clock = FakeClock()
        timer = Timer(clock=clock)
        for dt in (1.0, 3.0, 2.0):
            with timer:
                clock.t += dt
        assert timer.samples == pytest.approx([1.0, 3.0, 2.0])
        summary = timer.summarize()
        assert summary.count == 3
        assert summary.total == pytest.approx(6.0)
        assert summary.p50 == pytest.approx(2.0)

    def test_real_clock_monotonic(self):
        timer = Timer()
        with timer:
            pass
        assert timer.elapsed >= 0.0


class TestTimerSampleCap:
    def timed(self, timer, clock, durations):
        for dt in durations:
            with timer:
                clock.t += dt

    def test_ring_keeps_newest_samples(self):
        clock = FakeClock()
        timer = Timer(clock=clock, max_samples=3)
        self.timed(timer, clock, [1.0, 2.0, 3.0, 4.0, 5.0])
        assert timer.samples == pytest.approx([3.0, 4.0, 5.0])

    def test_summarize_aggregates_stay_exact(self):
        """count/total/min/max cover every call, not just the window."""
        clock = FakeClock()
        timer = Timer(clock=clock, max_samples=4)
        self.timed(timer, clock, [10.0] + [1.0] * 99)
        summary = timer.summarize()
        assert summary.count == 100
        assert timer.calls == 100
        assert summary.total == pytest.approx(109.0)
        assert summary.mean == pytest.approx(1.09)
        assert summary.minimum == pytest.approx(1.0)
        assert summary.maximum == pytest.approx(10.0)  # evicted yet remembered
        # percentiles describe the retained window only
        assert summary.p99 == pytest.approx(1.0)

    def test_default_cap_applies(self):
        assert Timer().max_samples == 65_536

    def test_unbounded_retention(self):
        clock = FakeClock()
        timer = Timer(clock=clock, max_samples=None)
        self.timed(timer, clock, [1.0] * 10)
        assert len(timer.samples) == 10

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError, match="max_samples"):
            Timer(max_samples=0)
        with pytest.raises(ValueError, match="max_samples"):
            Timer(max_samples=-5)

    def test_reset_clears_ring_state(self):
        clock = FakeClock()
        timer = Timer(clock=clock, max_samples=2)
        self.timed(timer, clock, [1.0, 2.0, 3.0])
        timer.reset()
        assert timer.samples == []
        self.timed(timer, clock, [7.0])
        assert timer.samples == pytest.approx([7.0])
        assert timer.summarize().maximum == pytest.approx(7.0)


class TestPercentile:
    def test_matches_numpy(self):
        rng = np.random.default_rng(7)
        values = list(rng.uniform(0, 10, size=37))
        for q in (0.0, 25.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_single_sample(self):
        assert percentile([4.2], 95.0) == 4.2

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([], 50.0)


class TestSummarize:
    def test_empty_is_all_zero(self):
        summary = summarize([])
        assert summary.empty
        assert summary.count == 0
        assert summary.total == 0.0
        assert summary.p99 == 0.0

    def test_basic_stats(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert not summary.empty
        assert summary.count == 4
        assert summary.total == pytest.approx(10.0)
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == pytest.approx(2.5)

    def test_percentiles_ordered(self):
        values = list(range(101))
        summary = summarize(values)
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum


class TestTimerMerge:
    """Cross-process merge semantics (repro.mimo.parallel_mc uses these)."""

    def _timer(self, durations, *, max_samples=None):
        clock = FakeClock()
        timer = Timer(clock=clock, max_samples=max_samples)
        for d in durations:
            with timer:
                clock.t += d
        return timer

    def test_merge_sums_exact_aggregates(self):
        a = self._timer([1.0, 2.0])
        b = self._timer([3.0])
        m = a.merge(b)
        assert m.calls == 3
        assert m.elapsed == pytest.approx(6.0)
        s = m.summarize()
        assert s.count == 3
        assert s.minimum == pytest.approx(1.0)
        assert s.maximum == pytest.approx(3.0)
        assert s.mean == pytest.approx(2.0)

    def test_merge_pools_samples_for_percentiles(self):
        a = self._timer([1.0, 5.0])
        b = self._timer([2.0, 4.0, 3.0])
        m = a.merge(b)
        assert sorted(m.samples) == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert m.summarize().p50 == pytest.approx(3.0)

    def test_merge_is_order_independent(self):
        a = self._timer([0.5, 1.5, 9.0])
        b = self._timer([2.0, 0.1])
        ab, ba = a.merge(b), b.merge(a)
        assert ab.summarize() == ba.summarize()
        assert ab.samples == ba.samples

    def test_merge_honours_max_samples_cap(self):
        a = self._timer(range(1, 9), max_samples=4)
        b = self._timer(range(9, 17), max_samples=4)
        m = a.merge(b)
        assert len(m.samples) == 4
        # Exact aggregates survive the decimation.
        assert m.calls == 16
        assert m.summarize().count == 16
        assert m.summarize().minimum == pytest.approx(1.0)
        assert m.summarize().maximum == pytest.approx(16.0)
        # Decimation is quantile-preserving: endpoints of the retained
        # windows survive, and the picks are sorted.
        assert m.samples == sorted(m.samples)
        assert m.samples[0] == pytest.approx(min(a.samples + b.samples))
        assert m.samples[-1] == pytest.approx(max(a.samples + b.samples))

    def test_merge_cap_of_one_keeps_median(self):
        a = self._timer([1.0, 2.0, 3.0], max_samples=1)
        b = self._timer([4.0, 5.0], max_samples=1)
        m = a.merge(b)
        assert len(m.samples) == 1

    def test_merge_does_not_mutate_operands(self):
        a = self._timer([1.0])
        b = self._timer([2.0])
        a.merge(b)
        assert a.calls == 1 and b.calls == 1
        assert a.samples == [1.0] and b.samples == [2.0]

    def test_merge_rejects_mid_measurement_timer(self):
        clock = FakeClock()
        a = Timer(clock=clock)
        b = Timer(clock=clock)
        a.__enter__()
        with pytest.raises(RuntimeError, match="mid-measurement"):
            a.merge(b)
        with pytest.raises(RuntimeError, match="mid-measurement"):
            b.merge(a)

    def test_merge_empty_timers(self):
        m = Timer().merge(Timer())
        assert m.calls == 0
        assert m.summarize().empty
