"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_in,
    check_matrix,
    check_nonnegative,
    check_positive_int,
    check_probability,
    check_square_matrix,
    check_vector,
)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(7), "x") == 7

    def test_returns_python_int(self):
        assert isinstance(check_positive_int(np.int32(2), "x"), int)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-1, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="n_antennas"):
            check_positive_int(0, "n_antennas")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0, "x") == 0.0

    def test_accepts_positive(self):
        assert check_nonnegative(1.5, "x") == 1.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative(-0.1, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_nonnegative(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_nonnegative(float("inf"), "x")


class TestCheckProbability:
    def test_bounds_inclusive(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability(-0.01, "p")


class TestCheckVector:
    def test_passes_through_1d(self):
        v = check_vector([1, 2, 3], "v")
        assert v.shape == (3,)

    def test_length_enforced(self):
        with pytest.raises(ValueError, match="length 4"):
            check_vector([1, 2, 3], "v", length=4)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_vector(np.zeros((2, 2)), "v")

    def test_length_match_ok(self):
        v = check_vector(np.arange(5), "v", length=5)
        assert v.shape == (5,)


class TestCheckMatrix:
    def test_passes_through_2d(self):
        m = check_matrix(np.zeros((2, 3)), "m")
        assert m.shape == (2, 3)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_matrix(np.zeros(3), "m")

    def test_shape_rows_enforced(self):
        with pytest.raises(ValueError, match="rows"):
            check_matrix(np.zeros((2, 3)), "m", shape=(4, None))

    def test_shape_cols_enforced(self):
        with pytest.raises(ValueError, match="columns"):
            check_matrix(np.zeros((2, 3)), "m", shape=(None, 5))

    def test_shape_none_unconstrained(self):
        m = check_matrix(np.zeros((2, 3)), "m", shape=(None, None))
        assert m.shape == (2, 3)


class TestCheckSquareMatrix:
    def test_accepts_square(self):
        m = check_square_matrix(np.eye(3), "m")
        assert m.shape == (3, 3)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            check_square_matrix(np.zeros((2, 3)), "m")


class TestCheckIn:
    def test_accepts_member(self):
        assert check_in("a", "x", ("a", "b")) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="one of"):
            check_in("c", "x", ("a", "b"))

    def test_error_shows_value(self):
        with pytest.raises(ValueError, match="'zzz'"):
            check_in("zzz", "mode", ("fast", "slow"))
