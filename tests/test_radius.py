"""Tests for the sphere-radius policies."""

import numpy as np
import pytest

from repro.core.radius import (
    BabaiRadius,
    FixedRadius,
    InfiniteRadius,
    NoiseScaledRadius,
    babai_point,
)
from repro.mimo.channel import ChannelModel
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import effective_receive, qr_decompose


def triangular_system(n=4, seed=0, order=4):
    const = Constellation.qam(order)
    rng = np.random.default_rng(seed)
    h = ChannelModel(n_tx=n, n_rx=n).draw_channel(rng)
    qr = qr_decompose(h)
    idx = rng.integers(0, order, n)
    s = const.points[idx]
    y = h @ s + 0.1 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
    ybar = effective_receive(qr, y)
    return qr.r, ybar, const, idx


class TestBabaiPoint:
    def test_metric_matches_solution(self):
        r, ybar, const, _ = triangular_system()
        idx, metric = babai_point(r, ybar, const)
        s = const.points[idx]
        assert metric == pytest.approx(np.linalg.norm(ybar - r @ s) ** 2, rel=1e-9)

    def test_recovers_transmit_with_small_noise(self):
        r, ybar, const, sent = triangular_system(seed=3)
        idx, _ = babai_point(r, ybar, const)
        # Babai = SIC; with mild noise on a random well-conditioned channel
        # it usually recovers, but the guaranteed property is validity:
        assert idx.shape == sent.shape
        assert np.all((idx >= 0) & (idx < const.order))

    def test_noiseless_exact(self):
        const = Constellation.qam(4)
        rng = np.random.default_rng(7)
        h = ChannelModel(n_tx=5, n_rx=5).draw_channel(rng)
        qr = qr_decompose(h)
        sent = rng.integers(0, 4, 5)
        y = h @ const.points[sent]
        ybar = effective_receive(qr, y)
        idx, metric = babai_point(qr.r, ybar, const)
        assert np.array_equal(qr.unpermute(idx), sent)
        assert metric == pytest.approx(0.0, abs=1e-18)

    def test_metric_upper_bounds_ml(self):
        """The Babai metric can never be below the ML minimum."""
        from repro.detectors.ml import MLDetector

        const = Constellation.qam(4)
        rng = np.random.default_rng(11)
        h = ChannelModel(n_tx=3, n_rx=3).draw_channel(rng)
        qr = qr_decompose(h)
        y = rng.standard_normal(3) + 1j * rng.standard_normal(3)
        ybar = effective_receive(qr, y)
        _, metric = babai_point(qr.r, ybar, const)
        ml = MLDetector(const)
        ml.prepare(h)
        assert metric >= ml.detect(y).metric - 1e-9


class TestPolicies:
    def test_infinite(self):
        r, ybar, const, _ = triangular_system()
        init = InfiniteRadius().initial(r, ybar, const, 0.5)
        assert np.isinf(init.radius_sq)
        assert init.incumbent_indices is None
        assert not InfiniteRadius().can_escalate()

    def test_noise_scaled_value(self):
        r, ybar, const, _ = triangular_system(n=4)
        init = NoiseScaledRadius(alpha=2.0).initial(r, ybar, const, 0.25)
        assert init.radius_sq == pytest.approx(2.0 * 4 * 0.25)
        assert init.incumbent_indices is None

    def test_noise_scaled_escalates(self):
        assert NoiseScaledRadius().can_escalate()

    def test_noise_scaled_zero_noise_falls_back_to_babai(self):
        r, ybar, const, _ = triangular_system()
        init = NoiseScaledRadius().initial(r, ybar, const, 0.0)
        assert init.incumbent_indices is not None
        assert init.radius_sq > 0

    def test_noise_scaled_validation(self):
        with pytest.raises(ValueError):
            NoiseScaledRadius(alpha=0.0)
        with pytest.raises(ValueError):
            NoiseScaledRadius(escalation_factor=1.0)

    def test_fixed(self):
        r, ybar, const, _ = triangular_system()
        init = FixedRadius(radius_sq=5.0).initial(r, ybar, const, 0.9)
        assert init.radius_sq == 5.0
        assert init.incumbent_indices is None
        assert FixedRadius(5.0).can_escalate()

    def test_fixed_validation(self):
        with pytest.raises(ValueError):
            FixedRadius(radius_sq=0.0)
        with pytest.raises(ValueError):
            FixedRadius(radius_sq=1.0, escalation_factor=0.5)

    def test_babai_policy_consistent(self):
        r, ybar, const, _ = triangular_system()
        init = BabaiRadius().initial(r, ybar, const, 0.5)
        idx, metric = babai_point(r, ybar, const)
        assert np.array_equal(init.incumbent_indices, idx)
        assert init.radius_sq == pytest.approx(metric)
        assert not BabaiRadius().can_escalate()
