"""Behavioural tests for the sphere decoder: stats, traces, caps, API."""

import numpy as np
import pytest

from repro.core.radius import InfiniteRadius, NoiseScaledRadius
from repro.core.sphere_decoder import SphereDecoder
from repro.mimo.preprocessing import effective_receive, qr_decompose
from repro.mimo.system import MIMOSystem


def decode_one(decoder, system, snr_db=8.0, seed=0):
    rng = np.random.default_rng(seed)
    frame = system.random_frame(snr_db, rng)
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    return frame, decoder.detect(frame.received)


class TestStatsConsistency:
    def test_generated_equals_expanded_times_order(self):
        system = MIMOSystem(5, 5, "4qam")
        decoder = SphereDecoder(system.constellation)
        _, result = decode_one(decoder, system)
        st = result.stats
        assert st.nodes_generated == st.nodes_expanded * 4

    def test_batch_trace_sums_to_expanded(self):
        system = MIMOSystem(5, 5, "4qam")
        decoder = SphereDecoder(system.constellation)
        _, result = decode_one(decoder, system)
        st = result.stats
        assert sum(ev.pool_size for ev in st.batches) == st.nodes_expanded

    def test_batch_levels_in_range(self):
        system = MIMOSystem(6, 6, "4qam")
        decoder = SphereDecoder(system.constellation)
        _, result = decode_one(decoder, system)
        for ev in result.stats.batches:
            assert 0 <= ev.level < 6
            assert ev.pool_size >= 1

    def test_children_accounted(self):
        """Every generated child is pruned, inserted, or a counted leaf."""
        system = MIMOSystem(5, 5, "4qam")
        decoder = SphereDecoder(
            system.constellation,
            strategy="best-first",
            radius_policy=InfiniteRadius(),
        )
        _, result = decode_one(decoder, system)
        st = result.stats
        # Internal children inserted into the list = generated - pruned -
        # leaves; they must each eventually be popped or abandoned, so the
        # identity below is an inequality on expansion counts.
        inserted = st.nodes_generated - st.nodes_pruned - st.leaves_reached
        assert inserted >= 0
        assert st.nodes_expanded <= inserted + 1  # +1 for the root

    def test_radius_trace_monotone_after_init(self):
        """Once leaves appear the incumbent bound can only shrink."""
        system = MIMOSystem(5, 5, "4qam")
        decoder = SphereDecoder(
            system.constellation,
            strategy="dfs",
            radius_policy=InfiniteRadius(),
        )
        _, result = decode_one(decoder, system, snr_db=4.0)
        trace = result.stats.radius_trace
        # trace[0] is the initial radius (inf); updates afterwards shrink.
        updates = trace[1:]
        assert all(b < a for a, b in zip(updates, updates[1:]))

    def test_radius_updates_counted(self):
        system = MIMOSystem(5, 5, "4qam")
        decoder = SphereDecoder(
            system.constellation,
            strategy="dfs",
            radius_policy=InfiniteRadius(),
        )
        _, result = decode_one(decoder, system, snr_db=4.0)
        st = result.stats
        assert st.radius_updates >= 1
        assert st.leaves_reached >= st.radius_updates

    def test_wall_time_recorded(self):
        system = MIMOSystem(5, 5, "4qam")
        decoder = SphereDecoder(system.constellation)
        _, result = decode_one(decoder, system)
        assert result.stats.wall_time_s > 0

    def test_gemm_accounting_from_evaluator(self):
        system = MIMOSystem(5, 5, "4qam")
        decoder = SphereDecoder(system.constellation)
        _, result = decode_one(decoder, system)
        st = result.stats
        assert st.gemm_calls == len(st.batches)
        assert st.gemm_flops > 0

    def test_max_list_size_positive_for_nontrivial(self):
        system = MIMOSystem(6, 6, "4qam")
        decoder = SphereDecoder(system.constellation, radius_policy=InfiniteRadius())
        _, result = decode_one(decoder, system, snr_db=2.0)
        assert result.stats.max_list_size > 0


class TestTruncationAndTraces:
    def test_max_nodes_truncates(self):
        system = MIMOSystem(8, 8, "4qam")
        decoder = SphereDecoder(
            system.constellation,
            strategy="dfs",
            radius_policy=NoiseScaledRadius(alpha=2.0),
            max_nodes=5,
        )
        _, result = decode_one(decoder, system, snr_db=0.0)
        st = result.stats
        assert st.truncated >= 1
        assert st.nodes_expanded <= 5 + 1
        # Even truncated, a decision must come back.
        assert result.indices.shape == (8,)

    def test_record_trace_off(self):
        system = MIMOSystem(5, 5, "4qam")
        decoder = SphereDecoder(system.constellation, record_trace=False)
        _, result = decode_one(decoder, system)
        assert result.stats.batches == []
        assert result.stats.nodes_expanded > 0  # counters still kept

    def test_pool_batches_bounded_by_pool_size(self):
        system = MIMOSystem(6, 6, "4qam")
        decoder = SphereDecoder(system.constellation, pool_size=4)
        _, result = decode_one(decoder, system, snr_db=2.0)
        assert max(ev.pool_size for ev in result.stats.batches) <= 4

    def test_dfs_pool_always_one(self):
        system = MIMOSystem(6, 6, "4qam")
        decoder = SphereDecoder(system.constellation, strategy="dfs")
        _, result = decode_one(decoder, system, snr_db=2.0)
        assert all(ev.pool_size == 1 for ev in result.stats.batches)


class TestResultContract:
    def test_metric_is_true_residual(self):
        system = MIMOSystem(5, 5, "4qam")
        decoder = SphereDecoder(system.constellation)
        frame, result = decode_one(decoder, system)
        expected = (
            np.linalg.norm(frame.received - frame.channel @ result.symbols) ** 2
        )
        assert result.metric == pytest.approx(expected, rel=1e-9)

    def test_bits_match_indices(self):
        system = MIMOSystem(5, 5, "16qam")
        decoder = SphereDecoder(system.constellation)
        _, result = decode_one(decoder, system)
        assert np.array_equal(
            result.bits, system.constellation.indices_to_bits(result.indices)
        )

    def test_high_snr_recovers_transmission(self):
        system = MIMOSystem(6, 6, "4qam")
        decoder = SphereDecoder(system.constellation)
        frame, result = decode_one(decoder, system, snr_db=60.0)
        assert np.array_equal(result.indices, frame.symbol_indices)

    def test_sqrd_result_in_original_order(self):
        """SQRD permutes internally; the result must be un-permuted."""
        system = MIMOSystem(6, 6, "4qam")
        decoder = SphereDecoder(system.constellation, ordering="sqrd")
        frame, result = decode_one(decoder, system, snr_db=60.0)
        assert np.array_equal(result.indices, frame.symbol_indices)

    def test_prepare_required(self):
        decoder = SphereDecoder(MIMOSystem(4, 4).constellation)
        with pytest.raises(RuntimeError):
            decoder.detect(np.zeros(4, complex))

    def test_received_length_checked(self):
        system = MIMOSystem(4, 4, "4qam")
        decoder = SphereDecoder(system.constellation)
        frame = system.random_frame(10.0, 0)
        decoder.prepare(frame.channel)
        with pytest.raises(ValueError):
            decoder.detect(np.zeros(5, complex))

    def test_invalid_constructor_args(self):
        const = MIMOSystem(4, 4).constellation
        with pytest.raises(ValueError):
            SphereDecoder(const, strategy="bfs")
        with pytest.raises(ValueError):
            SphereDecoder(const, ordering="weird")
        with pytest.raises(ValueError):
            SphereDecoder(const, pool_size=0)
        with pytest.raises(ValueError):
            SphereDecoder(const, max_nodes=0)

    def test_negative_noise_var_rejected(self):
        system = MIMOSystem(4, 4, "4qam")
        decoder = SphereDecoder(system.constellation)
        with pytest.raises(ValueError):
            decoder.prepare(np.eye(4, dtype=complex), noise_var=-0.5)


class TestSolveAPI:
    def test_solve_matches_detect(self):
        system = MIMOSystem(5, 5, "4qam")
        frame = system.random_frame(8.0, 0)
        decoder = SphereDecoder(system.constellation)
        decoder.prepare(frame.channel, noise_var=frame.noise_var)
        via_detect = decoder.detect(frame.received)
        qr = qr_decompose(frame.channel)
        ybar = effective_receive(qr, frame.received)
        indices, metric, stats = decoder.solve(qr.r, ybar, frame.noise_var)
        assert np.array_equal(indices, via_detect.indices)  # natural ordering
        assert stats.nodes_expanded > 0

    def test_solve_reduced_metric(self):
        system = MIMOSystem(4, 4, "4qam")
        frame = system.random_frame(8.0, 1)
        qr = qr_decompose(frame.channel)
        ybar = effective_receive(qr, frame.received)
        decoder = SphereDecoder(system.constellation)
        indices, metric, _ = decoder.solve(qr.r, ybar, frame.noise_var)
        s = system.constellation.points[indices]
        assert metric == pytest.approx(np.linalg.norm(ybar - qr.r @ s) ** 2, rel=1e-9)

    def test_reprepare_with_new_channel(self):
        system = MIMOSystem(4, 4, "4qam")
        decoder = SphereDecoder(system.constellation)
        for seed in range(3):
            frame = system.random_frame(40.0, seed)
            decoder.prepare(frame.channel, noise_var=frame.noise_var)
            result = decoder.detect(frame.received)
            assert np.array_equal(result.indices, frame.symbol_indices)
