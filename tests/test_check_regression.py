"""Tests for the benchmark-regression gate (tools/check_regression.py)."""

import json
import sys
from pathlib import Path

import pytest

TOOLS_DIR = Path(__file__).resolve().parent.parent / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

import check_regression as cr


class TestMetricClass:
    def test_known_prefixes(self):
        assert cr.metric_class("host_ms@8") == "time"
        assert cr.metric_class("cpu_model_ms@12") == "model"
        assert cr.metric_class("fpga_opt_ms@8") == "model"
        assert cr.metric_class("mean_nodes@12") == "nodes"
        assert cr.metric_class("mean_nodes_per_sec@8") == "rate"
        assert cr.metric_class("ber@8") == "ber"

    def test_unknown_prefix_is_uncompared(self):
        assert cr.metric_class("frames@8") is None


BASE = {
    "host_ms@8": 10.0,
    "cpu_model_ms@8": 5.0,
    "mean_nodes@8": 30.0,
    "ber@8": 0.05,
}


class TestCompare:
    def test_identical_runs_pass(self):
        assert cr.compare(BASE, dict(BASE)) == []

    def test_injected_2x_slowdown_is_flagged(self):
        current = dict(BASE, **{"host_ms@8": 20.0})
        violations = cr.compare(BASE, current)
        assert [v["metric"] for v in violations] == ["host_ms@8"]
        assert "2.00x baseline" in violations[0]["reason"]

    def test_within_tolerance_passes(self):
        current = dict(BASE, **{"host_ms@8": 15.0})  # +50% < +60%
        assert cr.compare(BASE, current) == []

    def test_improvements_never_regress(self):
        current = {k: v * 0.5 for k, v in BASE.items()}
        assert cr.compare(BASE, current) == []

    def test_tight_model_class(self):
        current = dict(BASE, **{"cpu_model_ms@8": 5.2})  # +4% > +2%
        violations = cr.compare(BASE, current)
        assert [v["metric"] for v in violations] == ["cpu_model_ms@8"]

    def test_ber_zero_tolerance_with_abs_slack(self):
        base = dict(BASE, **{"ber@8": 0.0})
        assert cr.compare(base, dict(base)) == []  # 0 vs 0 is fine
        worse = dict(base, **{"ber@8": 1e-3})
        assert [v["metric"] for v in cr.compare(base, worse)] == ["ber@8"]

    def test_missing_metric_either_side_is_violation(self):
        current = dict(BASE)
        del current["mean_nodes@8"]
        current["host_ms@12"] = 1.0
        reasons = {v["metric"]: v["reason"] for v in cr.compare(BASE, current)}
        assert reasons == {
            "mean_nodes@8": "metric missing from current run",
            "host_ms@12": "metric missing from baseline",
        }

    def test_tolerance_override(self):
        current = dict(BASE, **{"host_ms@8": 20.0})
        assert cr.compare(BASE, current, {"time": 2.0}) == []

    def test_rate_collapse_is_flagged(self):
        """Rate metrics regress downward: a throughput collapse fails."""
        base = dict(BASE, **{"mean_nodes_per_sec@8": 100_000.0})
        current = dict(base, **{"mean_nodes_per_sec@8": 30_000.0})  # 0.3x
        violations = cr.compare(base, current)
        assert [v["metric"] for v in violations] == ["mean_nodes_per_sec@8"]
        assert "higher is better" in violations[0]["reason"]

    def test_rate_improvement_and_jitter_pass(self):
        base = dict(BASE, **{"mean_nodes_per_sec@8": 100_000.0})
        faster = dict(base, **{"mean_nodes_per_sec@8": 250_000.0})
        assert cr.compare(base, faster) == []
        jitter = dict(base, **{"mean_nodes_per_sec@8": 50_000.0})  # at -50%
        assert cr.compare(base, jitter) == []  # within the -60% floor


class TestCollectMetrics:
    def test_deterministic_for_fixed_seed(self):
        kwargs = dict(channels=1, frames_per_channel=2, seed=11)
        a, series = cr.collect_metrics(**kwargs)
        b, _ = cr.collect_metrics(**kwargs)
        assert set(a) and set(a) == set(b)
        for name in a:
            # time and rate are measured wall-clock quantities; all other
            # classes must be bit-deterministic for a fixed seed.
            if cr.metric_class(name) not in ("time", "rate"):
                assert a[name] == b[name], name
        assert {n.split("@", 1)[0] for n in a} == {
            "host_ms", "cpu_model_ms", "fpga_opt_ms", "ber", "mean_nodes",
            "mean_nodes_per_sec", "mean_nodes_linf", "mean_nodes_per_sec_linf",
            "mean_nodes_rr", "mean_nodes_per_sec_rr",
        }
        assert series.rows


class TestMainEndToEnd:
    ARGS = ["--channels", "1", "--frames", "2", "--seed", "11"]

    def test_update_then_clean_pass(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert cr.main([*self.ARGS, "--baseline", str(baseline), "--update"]) == 0
        assert baseline.is_file()
        doc = json.loads(baseline.read_text())
        assert doc["schema"] == cr.SCHEMA
        assert doc["config"]["seed"] == 11
        # unmodified re-run at the same config passes the gate (host wall
        # time and throughput jitter hugely at this micro scale, so relax
        # `time`/`rate` the way CI does; the deterministic classes stay
        # at their defaults)
        assert cr.main([*self.ARGS, "--baseline", str(baseline),
                        "--tol-time", "20", "--tol-rate", "0.95"]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_regression_exits_1(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        cr.main([*self.ARGS, "--baseline", str(baseline), "--update"])
        doc = json.loads(baseline.read_text())
        for name in doc["metrics"]:  # simulate everything getting 2x faster
            doc["metrics"][name] *= 0.5  # ... so the current run looks 2x slower
        baseline.write_text(json.dumps(doc))
        assert cr.main([*self.ARGS, "--baseline", str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        code = cr.main([*self.ARGS, "--baseline", str(tmp_path / "nope.json")])
        assert code == 2
        assert "no baseline" in capsys.readouterr().err

    def test_config_mismatch_exits_2(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        cr.main([*self.ARGS, "--baseline", str(baseline), "--update"])
        code = cr.main(
            ["--channels", "1", "--frames", "3", "--seed", "11",
             "--baseline", str(baseline)]
        )
        assert code == 2
        assert "does not match" in capsys.readouterr().err

    def test_trajectory_appends(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        trajectory = tmp_path / "trajectory.json"
        cr.main([*self.ARGS, "--baseline", str(baseline), "--update",
                 "--trajectory", str(trajectory)])
        cr.main([*self.ARGS, "--baseline", str(baseline),
                 "--trajectory", str(trajectory)])
        doc = json.loads(trajectory.read_text())
        assert len(doc["points"]) == 2
        assert set(doc["points"][0]) == {"recorded_utc", "git_sha", "metrics"}

    def test_runs_dir_records_run(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        runs = tmp_path / "runs"
        cr.main([*self.ARGS, "--baseline", str(baseline), "--update",
                 "--runs-dir", str(runs)])
        dirs = [p for p in runs.iterdir() if (p / "manifest.json").is_file()]
        assert len(dirs) == 1
        assert (dirs[0] / "series.json").is_file()
        assert (dirs[0] / "metrics.json").is_file()
        assert (dirs[0] / "profile.json").is_file()
        manifest = json.loads((dirs[0] / "manifest.json").read_text())
        assert "profile.json" in manifest["artifacts"]


class TestAttributionHint:
    """The best-effort span-attribution hint under a failed gate."""

    ARGS = ["--channels", "1", "--frames", "2", "--seed", "11"]

    def _force_failure(self, baseline):
        """Halve every baseline metric so the next run looks 2x slower."""
        doc = json.loads(baseline.read_text())
        for name in doc["metrics"]:
            doc["metrics"][name] *= 0.5
        # keep rate metrics from masking: they regress downward, and the
        # halved baseline makes the current run look *faster* there
        baseline.write_text(json.dumps(doc))

    def _shrink_profile(self, runs):
        """Scale the recorded profile down so the next run regresses.

        The hint only prints spans whose self-time *grew* vs the prior
        run; two back-to-back runs of the same workload can tie or
        speed up on noise, so pin the comparison's outcome."""
        profile = next(runs.glob("*/profile.json"))
        doc = json.loads(profile.read_text())

        def scale(node):
            node["total_s"] *= 1e-3
            node["self_s"] *= 1e-3
            for child in node.get("children", []):
                scale(child)

        doc["wall_s"] *= 1e-3
        for root in doc["tree"]:
            scale(root)
        profile.write_text(json.dumps(doc))

    def test_hint_diffs_against_previous_recorded_run(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        runs = tmp_path / "runs"
        cr.main([*self.ARGS, "--baseline", str(baseline), "--update",
                 "--runs-dir", str(runs)])
        self._force_failure(baseline)
        self._shrink_profile(runs)
        code = cr.main([*self.ARGS, "--baseline", str(baseline),
                        "--runs-dir", str(runs)])
        assert code == 1  # hint never changes the exit code
        out = capsys.readouterr().out
        assert "attribution hint (span self-time vs run " in out
        # at most 3 spans, each with an absolute delta in ms
        hint_lines = out.split("attribution hint", 1)[1].splitlines()[1:]
        assert 1 <= len(hint_lines) <= 3
        assert all("ms" in line for line in hint_lines)

    def test_hint_falls_back_without_prior_run(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        cr.main([*self.ARGS, "--baseline", str(baseline), "--update"])
        self._force_failure(baseline)
        runs = tmp_path / "fresh-runs"  # no prior recording in here
        code = cr.main([*self.ARGS, "--baseline", str(baseline),
                        "--runs-dir", str(runs)])
        assert code == 1
        out = capsys.readouterr().out
        assert "attribution hint (top spans by self-time, no prior run)" in out

    def test_no_hint_without_runs_dir(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        cr.main([*self.ARGS, "--baseline", str(baseline), "--update"])
        self._force_failure(baseline)
        assert cr.main([*self.ARGS, "--baseline", str(baseline)]) == 1
        assert "attribution hint" not in capsys.readouterr().out

    def test_hint_failure_is_swallowed(self, tmp_path, capsys, monkeypatch):
        """A broken hint path must not turn exit 1 into a traceback."""
        baseline = tmp_path / "baseline.json"
        runs = tmp_path / "runs"
        cr.main([*self.ARGS, "--baseline", str(baseline), "--update",
                 "--runs-dir", str(runs)])
        self._force_failure(baseline)
        import repro.obs.profile as profile_mod

        def _boom(*a, **k):
            raise RuntimeError("synthetic hint failure")

        # diff_profiles is used only by the hint (record_profile still
        # needs the real tree builder on the recording path)
        monkeypatch.setattr(profile_mod, "diff_profiles", _boom)
        monkeypatch.setattr(profile_mod, "self_by_name", _boom)
        code = cr.main([*self.ARGS, "--baseline", str(baseline),
                        "--runs-dir", str(runs)])
        assert code == 1
        assert "attribution hint" not in capsys.readouterr().out
