"""Tests for repro.core.tree."""

import heapq

import numpy as np
import pytest

from repro.core.tree import (
    SearchNode,
    path_symbols,
    path_to_level_indices,
    root_node,
)
from repro.mimo.constellation import Constellation


class TestSearchNode:
    def test_root(self):
        root = root_node(5)
        assert root.pd == 0.0
        assert root.level == 4
        assert root.path == ()
        assert root.depth == 0

    def test_root_invalid(self):
        with pytest.raises(ValueError):
            root_node(0)

    def test_leaf_parent(self):
        assert SearchNode(0.0, 0, 0, (1, 2)).is_leaf_parent()
        assert not SearchNode(0.0, 0, 1, (1,)).is_leaf_parent()

    def test_heap_orders_by_pd(self):
        nodes = [
            SearchNode(3.0, 1, 2, ()),
            SearchNode(1.0, 2, 2, ()),
            SearchNode(2.0, 3, 2, ()),
        ]
        heapq.heapify(nodes)
        popped = [heapq.heappop(nodes).pd for _ in range(3)]
        assert popped == [1.0, 2.0, 3.0]

    def test_ties_broken_by_seq(self):
        a = SearchNode(1.0, 1, 2, (0,))
        b = SearchNode(1.0, 2, 2, (3,))
        heap = [b, a]
        heapq.heapify(heap)
        assert heapq.heappop(heap).seq == 1


class TestPathHelpers:
    def test_path_symbols_order(self):
        const = Constellation.qam(4)
        symbols = path_symbols((0, 3), const)
        assert symbols[0] == const.points[0]
        assert symbols[1] == const.points[3]

    def test_path_symbols_empty(self):
        const = Constellation.qam(4)
        assert path_symbols((), const).shape == (0,)

    def test_path_to_level_indices_reverses(self):
        # path[0] is level M-1; out[k] is level k.
        out = path_to_level_indices((7, 5, 3), 3)
        assert np.array_equal(out, [3, 5, 7])

    def test_path_to_level_indices_requires_complete(self):
        with pytest.raises(ValueError):
            path_to_level_indices((1, 2), 3)
