"""Tests for repro.detectors.base: stats records and the Detector ABC."""

from dataclasses import dataclass, field, fields

import numpy as np
import pytest

from repro.detectors.base import BatchEvent, DecodeStats, DetectionResult, Detector


class TestBatchEvent:
    def test_fields(self):
        ev = BatchEvent(level=3, pool_size=8)
        assert ev.level == 3
        assert ev.pool_size == 8

    def test_is_tuple(self):
        assert tuple(BatchEvent(1, 2)) == (1, 2)


class TestDecodeStats:
    def test_defaults_zero(self):
        st = DecodeStats()
        assert st.nodes_expanded == 0
        assert st.batches == []
        assert st.truncated == 0

    def test_merge_sums_counters(self):
        a = DecodeStats(nodes_expanded=3, nodes_generated=12, gemm_calls=2)
        b = DecodeStats(nodes_expanded=5, nodes_generated=20, gemm_calls=4)
        m = a.merge(b)
        assert m.nodes_expanded == 8
        assert m.nodes_generated == 32
        assert m.gemm_calls == 6

    def test_merge_max_list_size(self):
        a = DecodeStats(max_list_size=10)
        b = DecodeStats(max_list_size=7)
        assert a.merge(b).max_list_size == 10

    def test_merge_concatenates_traces(self):
        a = DecodeStats(batches=[BatchEvent(1, 1)], radius_trace=[5.0])
        b = DecodeStats(batches=[BatchEvent(0, 2)], radius_trace=[3.0])
        m = a.merge(b)
        assert m.batches == [BatchEvent(1, 1), BatchEvent(0, 2)]
        assert m.radius_trace == [5.0, 3.0]

    def test_merge_does_not_mutate(self):
        a = DecodeStats(nodes_expanded=1)
        b = DecodeStats(nodes_expanded=2)
        a.merge(b)
        assert a.nodes_expanded == 1
        assert b.nodes_expanded == 2

    def test_merge_truncated(self):
        assert DecodeStats(truncated=1).merge(DecodeStats(truncated=2)).truncated == 3

    def test_merge_aggregates_every_field(self):
        """Regression: no field may be silently dropped by merge().

        Builds two records whose every field is non-default and checks
        each merged field against the rule the dataclass declares (sum
        for numerics/lists, metadata override otherwise) — so adding a
        field without aggregation support fails here, not in a report.
        """

        def sample(offset: int) -> DecodeStats:
            kwargs = {}
            for i, f in enumerate(fields(DecodeStats)):
                if f.name == "batches":
                    kwargs[f.name] = [BatchEvent(offset, i + 1)]
                elif f.name == "radius_trace":
                    kwargs[f.name] = [float(offset + i)]
                elif f.type == "float" or f.name == "wall_time_s":
                    kwargs[f.name] = float(offset + i + 0.5)
                else:
                    kwargs[f.name] = offset + i + 1
            return DecodeStats(**kwargs)

        a, b = sample(10), sample(100)
        m = a.merge(b)
        for f in fields(DecodeStats):
            mine, theirs = getattr(a, f.name), getattr(b, f.name)
            rule = f.metadata.get("merge", "sum")
            expected = max(mine, theirs) if rule == "max" else mine + theirs
            assert getattr(m, f.name) == expected, f.name

    def test_merge_picks_up_subclass_fields(self):
        """fields() introspection covers fields added by subclasses."""

        @dataclass
        class ExtendedStats(DecodeStats):
            cache_hits: int = 0
            peak_frontier: int = field(default=0, metadata={"merge": "max"})

        a = ExtendedStats(nodes_expanded=1, cache_hits=3, peak_frontier=9)
        b = ExtendedStats(nodes_expanded=2, cache_hits=4, peak_frontier=5)
        m = a.merge(b)
        assert isinstance(m, ExtendedStats)
        assert m.nodes_expanded == 3
        assert m.cache_hits == 7
        assert m.peak_frontier == 9

    def test_merge_rejects_unmergeable_field(self):
        @dataclass
        class BadStats(DecodeStats):
            label: str = ""

        with pytest.raises(TypeError, match="no default merge rule"):
            BadStats(label="a").merge(BadStats(label="b"))


class _DummyDetector(Detector):
    name = "dummy"

    def __init__(self):
        self._prepared = False

    def prepare(self, channel, noise_var=0.0):
        self._prepared = True

    def detect(self, received):
        self._require_prepared()
        received = np.asarray(received)
        return DetectionResult(
            indices=np.zeros(2, dtype=int),
            symbols=np.zeros(2, dtype=complex),
            bits=np.zeros(2, dtype=bool),
            metric=0.0,
        )


class TestDetectorABC:
    def test_require_prepared(self):
        det = _DummyDetector()
        with pytest.raises(RuntimeError, match="before prepare"):
            det.detect(np.zeros(2))

    def test_detect_after_prepare(self):
        det = _DummyDetector()
        det.prepare(np.eye(2))
        result = det.detect(np.zeros(2))
        assert result.metric == 0.0

    def test_detect_batch(self):
        det = _DummyDetector()
        det.prepare(np.eye(2))
        results = det.detect_batch(np.zeros((3, 2)))
        assert len(results) == 3

    def test_detect_batch_requires_2d(self):
        det = _DummyDetector()
        det.prepare(np.eye(2))
        with pytest.raises(ValueError):
            det.detect_batch(np.zeros(2))


class TestMergeAll:
    def _sample(self, i):
        return DecodeStats(
            nodes_expanded=i,
            gemm_calls=2 * i,
            max_list_size=i * i,
            batches=[BatchEvent(level=i, pool_size=i + 1)],
            radius_trace=[float(i)],
        )

    def test_equivalent_to_pairwise_merge(self):
        records = [self._sample(i) for i in range(1, 6)]
        folded = records[0]
        for other in records[1:]:
            folded = folded.merge(other)
        assert DecodeStats.merge_all(records) == folded

    def test_empty_iterable_gives_defaults(self):
        assert DecodeStats.merge_all([]) == DecodeStats()

    def test_scalar_fields_order_independent(self):
        records = [self._sample(i) for i in (3, 1, 4, 1, 5)]
        forward = DecodeStats.merge_all(records)
        backward = DecodeStats.merge_all(list(reversed(records)))
        for f in fields(DecodeStats):
            if f.name in ("batches", "radius_trace"):
                continue  # list fields concatenate in input order
            assert getattr(forward, f.name) == getattr(backward, f.name), f.name

    def test_list_fields_concatenate_in_input_order(self):
        records = [self._sample(i) for i in (2, 7, 5)]
        merged = DecodeStats.merge_all(records)
        assert merged.radius_trace == [2.0, 7.0, 5.0]
        assert [b.level for b in merged.batches] == [2, 7, 5]

    def test_does_not_mutate_inputs(self):
        records = [self._sample(1), self._sample(2)]
        DecodeStats.merge_all(records)
        assert records[0].radius_trace == [1.0]
        assert records[1].radius_trace == [2.0]

    def test_accepts_generator(self):
        total = DecodeStats.merge_all(self._sample(i) for i in range(3))
        assert total.nodes_expanded == 3
