"""The live metrics stream: throttled writer, readers, and renderers.

The stream is the contract between a recorded run and ``obs tail`` /
``obs top``: cumulative snapshot lines, a strict reader for finished
runs (exit 2 on empty/truncated), and a tolerant ``tail -f`` follower
that treats a partial last line as "not flushed yet".
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import (
    MetricsStreamWriter,
    follow_stream,
    format_stream_line,
    format_top,
    read_stream,
)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestWriter:
    def test_maybe_write_throttles_by_interval(self, tmp_path):
        clock = FakeClock()
        w = MetricsStreamWriter(
            tmp_path / "s.jsonl", interval_s=1.0, clock=clock
        )
        m = MetricsRegistry()
        m.counter("mc.frames").inc(1)
        assert w.maybe_write(m)  # first write is always due
        clock.t = 0.4
        assert not w.maybe_write(m)
        clock.t = 0.9
        assert not w.maybe_write(m)
        clock.t = 1.1
        assert w.maybe_write(m)
        assert w.lines_written == 2

    def test_write_bypasses_throttle_and_appends_snapshots(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "nested" / "s.jsonl"  # parent dir is created
        w = MetricsStreamWriter(path, interval_s=60.0, clock=clock)
        m = MetricsRegistry()
        m.counter("mc.frames").inc(3, snr="8")
        w.write(m)
        m.counter("mc.frames").inc(2, snr="8")
        w.write(m)
        docs = read_stream(path)
        # Cumulative, not deltas: the second line holds the running total.
        assert docs[0]["counters"]["mc.frames{snr=8}"] == 3
        assert docs[1]["counters"]["mc.frames{snr=8}"] == 5


class TestReadStream:
    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no metrics stream"):
            read_stream(tmp_path / "absent.jsonl")

    def test_empty_stream_raises_value_error(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_stream(path)

    def test_truncated_line_names_the_line_number(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(json.dumps({"t": 1.0}) + "\n" + '{"t": 2.0, "cou')
        with pytest.raises(ValueError, match="line 2"):
            read_stream(path)

    def test_non_object_line_is_rejected(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="not a snapshot"):
            read_stream(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"t": 1.0}\n\n{"t": 2.0}\n')
        assert [d["t"] for d in read_stream(path)] == [1.0, 2.0]


class TestFollowStream:
    def test_yields_lines_appended_between_polls(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"t": 1}\n')
        polls = {"n": 0}

        def sleep(_):
            polls["n"] += 1
            if polls["n"] == 1:
                with path.open("a") as fh:
                    fh.write('{"t": 2}\n')

        docs = list(
            follow_stream(path, stop=lambda: polls["n"] >= 2, sleep=sleep)
        )
        assert [d["t"] for d in docs] == [1, 2]

    def test_partial_last_line_waits_for_the_writer(self, tmp_path):
        path = tmp_path / "s.jsonl"
        full = '{"t": 7}'
        path.write_text(full[:4])  # writer died mid-line... or not yet done
        polls = {"n": 0}

        def sleep(_):
            polls["n"] += 1
            with path.open("a") as fh:
                fh.write(full[4:] + "\n")

        docs = list(
            follow_stream(path, stop=lambda: polls["n"] >= 1, sleep=sleep)
        )
        assert docs == [{"t": 7}]

    def test_file_may_not_exist_yet(self, tmp_path):
        path = tmp_path / "s.jsonl"
        polls = {"n": 0}

        def sleep(_):
            polls["n"] += 1
            path.write_text('{"t": 3}\n')

        docs = list(
            follow_stream(path, stop=lambda: polls["n"] >= 1, sleep=sleep)
        )
        assert docs == [{"t": 3}]

    def test_malformed_complete_line_is_skipped_while_live(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('not json\n{"t": 4}\n')
        docs = list(follow_stream(path, stop=lambda: True, sleep=lambda _: None))
        assert docs == [{"t": 4}]


def _doc(t, frames, nodes, *, bits=0, errors=0, decode_s=0.0, shards=None):
    counters = {
        "mc.frames{snr=8}": frames,
        "mc.nodes_expanded": nodes,
    }
    if bits:
        counters["mc.bits"] = bits
        counters["mc.bit_errors"] = errors
    if decode_s:
        counters["mc.decode_seconds"] = decode_s
    gauges = {}
    for sid, (done, total) in (shards or {}).items():
        gauges[f"mc.shard.blocks_done{{shard={sid}}}"] = [done, t]
        gauges[f"mc.shard.blocks_total{{shard={sid}}}"] = [total, t]
    return {"t": t, "counters": counters, "gauges": gauges}


class TestRenderers:
    def test_stream_line_shows_totals_and_rates(self):
        prev = _doc(100.0, frames=100, nodes=10_000)
        cur = _doc(102.0, frames=300, nodes=60_000, bits=1200, errors=6)
        line = format_stream_line(cur, prev)
        assert "100.0 fr/s" in line  # (300-100)/2s
        assert "25.0k" in line  # (60000-10000)/2 nodes/s, humanised
        assert "frames" in line and "300" in line
        assert "ber 0.005" in line

    def test_stream_line_without_prev_has_no_rates(self):
        line = format_stream_line(_doc(5.0, frames=10, nodes=100))
        assert "fr/s" not in line

    def test_stream_line_counts_finished_shards(self):
        doc = _doc(
            1.0, frames=1, nodes=1, shards={"0": (10, 10), "1": (4, 10)}
        )
        assert "shards 1/2" in format_stream_line(doc)

    def test_top_renders_totals_rates_and_shard_lag(self):
        docs = [
            _doc(10.0, frames=100, nodes=10_000),
            _doc(
                12.0,
                frames=300,
                nodes=60_000,
                bits=1200,
                errors=6,
                decode_s=4.0,
                shards={"0": (10, 10), "1": (5, 10)},
            ),
        ]
        out = format_top(docs, run="2026-08-08T00-00-00")
        assert "run 2026-08-08T00-00-00" in out
        assert "2 snapshot(s)" in out
        assert "100.0/s" in out  # frame rate from the last two lines
        assert "0.005" in out  # ber
        assert "75.0 fr/s avg" in out  # 300 frames / 4.0 decode-s
        # Shard 1 trails the leader by 5 of its 10 blocks.
        assert "5.0 blocks" in out
        assert "0.0 blocks" in out

    def test_top_with_no_snapshots(self):
        assert format_top([]) == "(no snapshots)"
