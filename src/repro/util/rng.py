"""Random-number plumbing.

All stochastic code in the library accepts either a seed, a
``numpy.random.Generator`` or ``None`` and normalises it through
:func:`as_generator`. Monte Carlo workers derive statistically independent
streams via :func:`spawn_generators` (``SeedSequence.spawn`` under the
hood), which is the supported NumPy mechanism for parallel reproducible
randomness.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(rng: object = None) -> np.random.Generator:
    """Normalise ``rng`` into a ``numpy.random.Generator``.

    Parameters
    ----------
    rng:
        ``None`` (fresh OS-entropy generator), an integer seed, a
        ``SeedSequence`` or an existing ``Generator`` (returned as-is).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        "rng must be None, an int seed, a SeedSequence or a Generator, "
        f"got {type(rng).__name__}"
    )


def spawn_generators(n: int, rng: object = None) -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from one seed source.

    The streams are derived with ``SeedSequence.spawn`` so they are
    reproducible (same seed in → same streams out) and statistically
    independent regardless of how much each stream is consumed.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if isinstance(rng, np.random.SeedSequence):
        seq = rng
    elif rng is None or isinstance(rng, (int, np.integer)):
        seq = np.random.SeedSequence(rng)
    elif isinstance(rng, np.random.Generator):
        # Derive a child sequence from the generator's own bit stream so
        # repeated calls on the same generator yield different spawns.
        seq = np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))
    else:
        raise TypeError(
            "rng must be None, an int seed, a SeedSequence or a Generator, "
            f"got {type(rng).__name__}"
        )
    return [np.random.default_rng(child) for child in seq.spawn(n)]
