"""Shared utilities: argument validation, RNG plumbing, timing."""

from repro.util.validation import (
    check_positive_int,
    check_square_matrix,
    check_vector,
    check_probability,
    check_in,
)
from repro.util.rng import as_generator, spawn_generators
from repro.util.timing import Timer, WallClock

__all__ = [
    "check_positive_int",
    "check_square_matrix",
    "check_vector",
    "check_probability",
    "check_in",
    "as_generator",
    "spawn_generators",
    "Timer",
    "WallClock",
]
