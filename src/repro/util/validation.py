"""Lightweight argument validation helpers.

Every public entry point of the library validates its inputs through these
helpers so that misuse fails fast with a precise message instead of a
cryptic NumPy broadcast error deep inside a decoder loop.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as ``int`` if it is a positive integer, else raise.

    Accepts Python ints and NumPy integer scalars; rejects bools, floats
    and anything non-integral.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative(value: Any, name: str) -> float:
    """Return ``value`` as ``float`` if it is finite and >= 0, else raise."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be finite and non-negative, got {value}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Return ``value`` as ``float`` if it lies in [0, 1], else raise."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_vector(arr: Any, name: str, *, length: int | None = None) -> np.ndarray:
    """Return ``arr`` as a 1-D ndarray, optionally enforcing its length."""
    arr = np.asarray(arr)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if length is not None and arr.shape[0] != length:
        raise ValueError(f"{name} must have length {length}, got {arr.shape[0]}")
    return arr


def check_matrix(
    arr: Any,
    name: str,
    *,
    shape: tuple[int | None, int | None] | None = None,
) -> np.ndarray:
    """Return ``arr`` as a 2-D ndarray, optionally enforcing (rows, cols).

    ``None`` in ``shape`` leaves that dimension unconstrained.
    """
    arr = np.asarray(arr)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if shape is not None:
        rows, cols = shape
        if rows is not None and arr.shape[0] != rows:
            raise ValueError(f"{name} must have {rows} rows, got {arr.shape[0]}")
        if cols is not None and arr.shape[1] != cols:
            raise ValueError(f"{name} must have {cols} columns, got {arr.shape[1]}")
    return arr


def check_square_matrix(arr: Any, name: str) -> np.ndarray:
    """Return ``arr`` as a square 2-D ndarray or raise."""
    arr = check_matrix(arr, name)
    if arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    return arr


def check_in(value: Any, name: str, allowed: Iterable[Any]) -> Any:
    """Return ``value`` if it is one of ``allowed``, else raise ValueError."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
