"""Timing helpers used by the benchmark harness and Monte Carlo engine."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence


class WallClock:
    """Monotonic wall clock; injectable for deterministic tests."""

    def now(self) -> float:
        """Current time in seconds (monotonic)."""
        return time.perf_counter()


@dataclass(frozen=True)
class TimingSummary:
    """Distribution summary of a sample of durations (or any scalars).

    Produced by :func:`summarize`; the observability metrics exporter
    (:mod:`repro.obs.metrics`) renders one of these per span name.
    """

    count: int
    total: float
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @property
    def empty(self) -> bool:
        """True when the summary was built from no samples."""
        return self.count == 0


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches ``numpy.percentile``'s default behaviour but stays pure
    Python so callers need no array round trip for small samples.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        raise ValueError("cannot take a percentile of no samples")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def summarize(values: Sequence[float]) -> TimingSummary:
    """Count/total/mean/min/max/p50/p95/p99 of a sample.

    An empty sample yields an all-zero summary (``empty`` is True)
    rather than raising, so exporters can render sparse traces.
    """
    vals = [float(v) for v in values]
    if not vals:
        return TimingSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    total = sum(vals)
    return TimingSummary(
        count=len(vals),
        total=total,
        mean=total / len(vals),
        minimum=min(vals),
        maximum=max(vals),
        p50=percentile(vals, 50.0),
        p95=percentile(vals, 95.0),
        p99=percentile(vals, 99.0),
    )


#: Default per-call sample retention for :class:`Timer` — bounds memory
#: on multi-million-frame sweeps while keeping percentile estimates on a
#: window large enough for stable p99s.
DEFAULT_MAX_SAMPLES = 65_536


class Timer:
    """Accumulating stopwatch.

    Usage::

        timer = Timer()
        with timer:
            work()
        print(timer.elapsed, timer.calls)

    Per-call durations are retained in :attr:`samples` for the
    percentile view, capped at ``max_samples`` entries (a ring buffer —
    the newest calls win). The *exact* aggregates survive any retention
    limit: :attr:`calls`, :attr:`elapsed` and :meth:`summarize`'s
    count / total / mean / min / max are maintained as running values
    over every call ever timed; only the percentiles are computed over
    the retained window. ``max_samples=None`` retains everything.
    """

    def __init__(
        self,
        clock: WallClock | None = None,
        *,
        max_samples: int | None = DEFAULT_MAX_SAMPLES,
    ) -> None:
        if max_samples is not None and max_samples <= 0:
            raise ValueError("max_samples must be positive (or None)")
        self.clock = clock if clock is not None else WallClock()
        self.max_samples = max_samples
        self.elapsed = 0.0
        self.calls = 0
        self._samples: list[float] = []
        self._next = 0  # ring-buffer write cursor once the cap is hit
        self._min = float("inf")
        self._max = float("-inf")
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("Timer is not reentrant")
        self._start = self.clock.now()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._start is None:  # pragma: no cover - defensive
            raise RuntimeError("Timer.__exit__ without __enter__")
        duration = self.clock.now() - self._start
        self.elapsed += duration
        self.calls += 1
        self._min = min(self._min, duration)
        self._max = max(self._max, duration)
        if self.max_samples is None or len(self._samples) < self.max_samples:
            self._samples.append(duration)
        else:
            self._samples[self._next] = duration
            self._next = (self._next + 1) % self.max_samples
        self._start = None

    @property
    def samples(self) -> list[float]:
        """Retained per-call durations, oldest first (bounded window)."""
        return self._samples[self._next :] + self._samples[: self._next]

    @property
    def mean(self) -> float:
        """Mean seconds per timed call (0.0 before any call completes)."""
        return self.elapsed / self.calls if self.calls else 0.0

    def reset(self) -> None:
        """Zero the accumulated time, call count and samples."""
        self.elapsed = 0.0
        self.calls = 0
        self._samples = []
        self._next = 0
        self._min = float("inf")
        self._max = float("-inf")
        self._start = None

    def merge(self, other: "Timer") -> "Timer":
        """Combine two timers (e.g. accumulated in different processes).

        The exact aggregates are merged exactly: ``calls`` and
        ``elapsed`` sum, min/max combine — so ``summarize()`` of the
        merged timer reports exact count/total/mean/min/max no matter
        how the work was sharded. Percentiles are computed from the
        *pooled* retained samples of both sides; when the pool exceeds
        ``max_samples`` it is decimated quantile-preservingly (sorted,
        then evenly strided down to the cap), which keeps the merge
        **order-independent**: ``a.merge(b)`` and ``b.merge(a)`` yield
        identical summaries. Worker processes have no global call
        order, so "newest wins" ring semantics cannot apply across a
        merge; the distribution (a multiset) is what percentiles need,
        and that is preserved.

        The result adopts ``self.max_samples`` and is a new timer; both
        operands are left untouched.
        """
        if self._start is not None or other._start is not None:
            raise RuntimeError("cannot merge a Timer that is mid-measurement")
        merged = Timer(self.clock, max_samples=self.max_samples)
        merged.elapsed = self.elapsed + other.elapsed
        merged.calls = self.calls + other.calls
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        pool = sorted(self.samples + other.samples)
        cap = self.max_samples
        if cap is not None and len(pool) > cap:
            # Quantile-preserving decimation: evenly strided picks from
            # the sorted pool (endpoints included) approximate every
            # percentile of the full pool without order sensitivity.
            if cap == 1:
                pool = [pool[(len(pool) - 1) // 2]]
            else:
                idx = [
                    round(i * (len(pool) - 1) / (cap - 1)) for i in range(cap)
                ]
                pool = [pool[i] for i in idx]
        merged._samples = pool
        merged._next = 0
        return merged

    def summarize(self) -> TimingSummary:
        """Distribution summary over the per-call durations.

        ``count``/``total``/``mean``/``minimum``/``maximum`` are exact
        across *all* calls regardless of the retention cap; the
        percentiles describe the retained window.
        """
        if not self.calls:
            return summarize([])
        window = self.samples
        return TimingSummary(
            count=self.calls,
            total=self.elapsed,
            mean=self.elapsed / self.calls,
            minimum=self._min,
            maximum=self._max,
            p50=percentile(window, 50.0),
            p95=percentile(window, 95.0),
            p99=percentile(window, 99.0),
        )
