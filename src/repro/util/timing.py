"""Timing helpers used by the benchmark harness and Monte Carlo engine."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class WallClock:
    """Monotonic wall clock; injectable for deterministic tests."""

    def now(self) -> float:
        """Current time in seconds (monotonic)."""
        return time.perf_counter()


@dataclass
class Timer:
    """Accumulating stopwatch.

    Usage::

        timer = Timer()
        with timer:
            work()
        print(timer.elapsed, timer.calls)
    """

    clock: WallClock = field(default_factory=WallClock)
    elapsed: float = 0.0
    calls: int = 0
    _start: float | None = None

    def __enter__(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("Timer is not reentrant")
        self._start = self.clock.now()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._start is None:  # pragma: no cover - defensive
            raise RuntimeError("Timer.__exit__ without __enter__")
        self.elapsed += self.clock.now() - self._start
        self.calls += 1
        self._start = None

    @property
    def mean(self) -> float:
        """Mean seconds per timed call (0.0 before any call completes)."""
        return self.elapsed / self.calls if self.calls else 0.0

    def reset(self) -> None:
        """Zero the accumulated time and call count."""
        self.elapsed = 0.0
        self.calls = 0
        self._start = None
