"""Timing helpers used by the benchmark harness and Monte Carlo engine."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence


class WallClock:
    """Monotonic wall clock; injectable for deterministic tests."""

    def now(self) -> float:
        """Current time in seconds (monotonic)."""
        return time.perf_counter()


@dataclass(frozen=True)
class TimingSummary:
    """Distribution summary of a sample of durations (or any scalars).

    Produced by :func:`summarize`; the observability metrics exporter
    (:mod:`repro.obs.metrics`) renders one of these per span name.
    """

    count: int
    total: float
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @property
    def empty(self) -> bool:
        """True when the summary was built from no samples."""
        return self.count == 0


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches ``numpy.percentile``'s default behaviour but stays pure
    Python so callers need no array round trip for small samples.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        raise ValueError("cannot take a percentile of no samples")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def summarize(values: Sequence[float]) -> TimingSummary:
    """Count/total/mean/min/max/p50/p95/p99 of a sample.

    An empty sample yields an all-zero summary (``empty`` is True)
    rather than raising, so exporters can render sparse traces.
    """
    vals = [float(v) for v in values]
    if not vals:
        return TimingSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    total = sum(vals)
    return TimingSummary(
        count=len(vals),
        total=total,
        mean=total / len(vals),
        minimum=min(vals),
        maximum=max(vals),
        p50=percentile(vals, 50.0),
        p95=percentile(vals, 95.0),
        p99=percentile(vals, 99.0),
    )


@dataclass
class Timer:
    """Accumulating stopwatch.

    Usage::

        timer = Timer()
        with timer:
            work()
        print(timer.elapsed, timer.calls)

    Every timed call's duration is also kept in :attr:`samples`, so
    :meth:`summarize` can report percentiles across calls.
    """

    clock: WallClock = field(default_factory=WallClock)
    elapsed: float = 0.0
    calls: int = 0
    samples: list[float] = field(default_factory=list)
    _start: float | None = None

    def __enter__(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("Timer is not reentrant")
        self._start = self.clock.now()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._start is None:  # pragma: no cover - defensive
            raise RuntimeError("Timer.__exit__ without __enter__")
        duration = self.clock.now() - self._start
        self.elapsed += duration
        self.calls += 1
        self.samples.append(duration)
        self._start = None

    @property
    def mean(self) -> float:
        """Mean seconds per timed call (0.0 before any call completes)."""
        return self.elapsed / self.calls if self.calls else 0.0

    def reset(self) -> None:
        """Zero the accumulated time, call count and samples."""
        self.elapsed = 0.0
        self.calls = 0
        self.samples = []
        self._start = None

    def summarize(self) -> TimingSummary:
        """Distribution summary over the per-call durations."""
        return summarize(self.samples)
