"""Multi-pipeline deployments (paper section III-C4's payoff).

The paper optimises resource utilisation specifically so that "one may
[...] instantiate a second pipeline path to exploit more data
parallelism": under 50% on every resource, two independent decode
pipelines fit on the U280. This module models that deployment:

* :func:`max_pipelines` — how many replicas of a design the device
  carries (the resource estimator supplies per-replica usage);
* :class:`MultiPipelineDeployment` — throughput and latency of ``c``
  parallel pipelines fed from one vector queue, using the Allen–Cunneen
  M/G/c approximation (exact for M/M/c, excellent for these SCVs).

Independent vectors are embarrassingly parallel across pipelines — no
radius sharing needed — so unlike the multi-PE *single-vector* search
(:mod:`repro.detectors.partitioned`), replication scales throughput linearly
until resources run out.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import factorial

import numpy as np

from repro.fpga.device import AlveoU280, DeviceSpec
from repro.fpga.pipeline import PipelineConfig
from repro.fpga.resources import estimate_resources
from repro.util.validation import check_positive_int, check_vector


def max_pipelines(
    config: PipelineConfig,
    *,
    order: int,
    n_tx: int = 10,
    n_rx: int = 10,
    device: DeviceSpec = AlveoU280,
) -> int:
    """Replicas of one design that fit the device's resources."""
    report = estimate_resources(
        config, order=order, n_tx=n_tx, n_rx=n_rx, device=device
    )
    limits = []
    for used, total in (
        (report.luts, device.luts),
        (report.ffs, device.ffs),
        (report.dsps, device.dsps),
        (report.brams, device.bram_blocks),
        (report.urams, device.uram_blocks),
    ):
        if used > 0:
            limits.append(total // used)
    return max(min(limits), 0) if limits else 0


def _erlang_c(c: int, a: float) -> float:
    """Erlang-C probability of waiting for an M/M/c queue.

    ``a = lambda * E[S]`` is the offered load; requires ``a < c``.
    """
    if a >= c:
        return 1.0
    rho = a / c
    summation = sum(a**k / factorial(k) for k in range(c))
    top = a**c / (factorial(c) * (1.0 - rho))
    return top / (summation + top)


@dataclass(frozen=True)
class DeploymentReport:
    """Predicted behaviour of a c-pipeline deployment at one load."""

    n_pipelines: int
    arrival_rate_hz: float
    mean_service_s: float
    utilization: float
    mean_wait_s: float
    mean_sojourn_s: float

    @property
    def stable(self) -> bool:
        """Whether the deployment keeps up with the offered load."""
        return self.utilization < 1.0


class MultiPipelineDeployment:
    """``c`` replicated pipelines served from one Poisson vector queue."""

    def __init__(
        self,
        n_pipelines: int,
        service_times_s: np.ndarray,
    ) -> None:
        self.n_pipelines = check_positive_int(n_pipelines, "n_pipelines")
        service = check_vector(
            np.asarray(service_times_s, dtype=float), "service_times_s"
        )
        if service.size == 0 or np.any(service <= 0):
            raise ValueError("service times must be positive and non-empty")
        self._mean = float(np.mean(service))
        second = float(np.mean(service**2))
        self._scv = max(second / self._mean**2 - 1.0, 0.0)

    @property
    def max_throughput_hz(self) -> float:
        """Saturation throughput: ``c / E[S]``."""
        return self.n_pipelines / self._mean

    def report(self, arrival_rate_hz: float) -> DeploymentReport:
        """Allen–Cunneen M/G/c waiting-time approximation."""
        if arrival_rate_hz <= 0:
            raise ValueError("arrival_rate_hz must be positive")
        c = self.n_pipelines
        offered = arrival_rate_hz * self._mean
        rho = offered / c
        if rho >= 1.0:
            wait = float("inf")
            sojourn = float("inf")
        else:
            wait_mmc = _erlang_c(c, offered) * self._mean / (c * (1.0 - rho))
            # Allen-Cunneen: scale the M/M/c wait by (1 + SCV)/2.
            wait = wait_mmc * (1.0 + self._scv) / 2.0
            sojourn = wait + self._mean
        return DeploymentReport(
            n_pipelines=c,
            arrival_rate_hz=arrival_rate_hz,
            mean_service_s=self._mean,
            utilization=rho,
            mean_wait_s=wait,
            mean_sojourn_s=sojourn,
        )
