"""On-chip / off-chip memory models.

Two concerns live here:

* **Capacity planning** — :class:`OnChipMemoryPlan` maps named buffers
  (tree-state blocks, GEMM operand double-buffers, channel matrix, ...)
  onto BRAM18/URAM blocks of the device, enforcing that the plan fits.
  The resource estimator builds Table I's BRAM/URAM columns from it.
* **Bandwidth/latency** — :func:`hbm_stream_cycles` charges the one-time
  host->HBM transfer and the prefetch unit's HBM reads. The paper
  measures the PCIe/HBM staging at <3% of total execution; the pipeline
  model accounts for it explicitly so that claim can be checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

from repro.fpga.device import DeviceSpec

#: First-word latency of an HBM read measured in fabric cycles (~400 ns
#: at 300 MHz).
HBM_LATENCY_CYCLES = 120
#: 32-bit words an HBM pseudo-channel delivers per fabric cycle (256-bit
#: AXI bus).
HBM_WORDS_PER_CYCLE_PER_CHANNEL = 8
#: BRAM/URAM are single-cycle once initiated.
ONCHIP_LATENCY_CYCLES = 1


def hbm_stream_cycles(words: int, channels: int = 1) -> int:
    """Cycles to stream ``words`` 32-bit words from HBM.

    One fixed first-word latency plus pipelined delivery over the given
    number of pseudo-channels.
    """
    if words < 0:
        raise ValueError(f"words must be non-negative, got {words}")
    if channels <= 0:
        raise ValueError(f"channels must be positive, got {channels}")
    if words == 0:
        return 0
    return HBM_LATENCY_CYCLES + ceil(
        words / (HBM_WORDS_PER_CYCLE_PER_CHANNEL * channels)
    )


@dataclass(frozen=True)
class MemoryRequirement:
    """One named on-chip buffer."""

    name: str
    bits: int
    kind: str  # "bram" or "uram"

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ValueError(f"bits must be non-negative, got {self.bits}")
        if self.kind not in ("bram", "uram"):
            raise ValueError(f"kind must be 'bram' or 'uram', got {self.kind!r}")


@dataclass
class OnChipMemoryPlan:
    """A set of buffers mapped onto a device's BRAM/URAM blocks."""

    device: DeviceSpec
    buffers: list[MemoryRequirement] = field(default_factory=list)

    def add(self, name: str, bits: int, kind: str) -> MemoryRequirement:
        """Register a buffer and return its requirement record."""
        req = MemoryRequirement(name=name, bits=bits, kind=kind)
        self.buffers.append(req)
        return req

    def bram_blocks(self) -> int:
        """BRAM18 blocks consumed (each buffer rounds up independently,
        as HLS partitioning does)."""
        return sum(
            ceil(b.bits / self.device.BRAM_BITS)
            for b in self.buffers
            if b.kind == "bram" and b.bits
        )

    def uram_blocks(self) -> int:
        """URAM blocks consumed."""
        return sum(
            ceil(b.bits / self.device.URAM_BITS)
            for b in self.buffers
            if b.kind == "uram" and b.bits
        )

    def fits(self) -> bool:
        """Whether the plan fits on the device."""
        return (
            self.bram_blocks() <= self.device.bram_blocks
            and self.uram_blocks() <= self.device.uram_blocks
        )

    def report(self) -> dict[str, float]:
        """Utilisation fractions {'brams': ..., 'urams': ...}."""
        return self.device.utilization(
            {"brams": self.bram_blocks(), "urams": self.uram_blocks()}
        )
