"""Pre-fetching unit model (paper section III-C2).

The SD's traversal path is unpredictable (pruning makes memory access
irregular), so the design pre-calculates the addresses the GEMM engine
will need from the level/node information, gathers the blocks, and
stages them contiguously in BRAM. With **double buffering** the fetch of
batch *i+1* overlaps the compute of batch *i*, hiding the HBM latency;
the baseline design fetches and computes sequentially.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.memory import hbm_stream_cycles


@dataclass(frozen=True)
class PrefetchUnit:
    """Address generation + gather + staging model.

    Parameters
    ----------
    double_buffered:
        Overlap fetch with compute (the optimised design).
    address_setup_cycles:
        Fixed cycles to derive the block addresses from (level, node id).
    hbm_channels:
        Pseudo-channels the gather spreads across.
    """

    double_buffered: bool = True
    address_setup_cycles: int = 4
    hbm_channels: int = 2

    def __post_init__(self) -> None:
        if self.address_setup_cycles < 0:
            raise ValueError("address_setup_cycles must be non-negative")
        if self.hbm_channels <= 0:
            raise ValueError("hbm_channels must be positive")

    def fetch_cycles(self, words: int) -> int:
        """Cycles to gather ``words`` 32-bit words for one batch."""
        if words < 0:
            raise ValueError(f"words must be non-negative, got {words}")
        if words == 0:
            return 0
        return self.address_setup_cycles + hbm_stream_cycles(
            words, self.hbm_channels
        )

    def effective_cycles(self, compute_cycles: int, fetch_words: int) -> int:
        """Combined fetch+compute cost for one batch.

        Double buffering hides whichever of the two is shorter; the
        baseline pays both in sequence.
        """
        if compute_cycles < 0:
            raise ValueError("compute_cycles must be non-negative")
        fetch = self.fetch_cycles(fetch_words)
        if self.double_buffered:
            return max(compute_cycles, fetch)
        return compute_cycles + fetch
