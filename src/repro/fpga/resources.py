"""Resource-utilisation estimator — regenerates Table I.

HLS resource usage is estimated bottom-up from the pipeline's
components, with per-component LUT/FF coefficients calibrated once
against the paper's reported utilisation (Table I, 10x10 system):

* **GEMM mesh** — LUT/FF/DSP proportional to the number of MAC PEs;
  fp32 MACs map to 4 DSP slices with maximal DSP fusion.
* **NORM / branching lanes** — one lane per constellation child.
* **Fixed infrastructure** — list controller, prefetch address
  generation, AXI/HBM plumbing.
* **Baseline overhead** — the un-isolated Vitis BLAS wrapper plus the
  generic (non-specialised) control logic: an affine blow-up of the core
  fabric counts. Removing it is exactly the paper's optimisation III-C4.
* **BRAM** — operand double-buffers and staging, growing with the
  modulation factor.
* **URAM** — the Meta State Table, sized by
  :meth:`repro.fpga.mst.MetaStateTable.storage_bits`; the optimised
  design's buffer-reuse roughly halves the required capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.fpga.device import AlveoU280, DeviceSpec
from repro.fpga.mst import MetaStateTable
from repro.fpga.pipeline import PipelineConfig
from repro.util.validation import check_positive_int

# Calibrated per-component coefficients (see module docstring).
_LUT_PER_MAC = 1_700
_LUT_PER_LANE = 4_000
_LUT_FIXED = 18_000
_FF_PER_MAC = 1_080
_FF_PER_LANE = 3_000
_FF_FIXED = 100_800
_DSP_PER_LANE = 7
# Compare-tree NORM lanes (``norm_kind="compare"``, the ℓ∞ metric): the
# per-child |Re|/|Im| max needs sign-strip + comparators only — no fp
# multipliers, so almost all lane DSPs are freed and the fabric cost of
# a lane drops to the comparator/mux tree.
_LUT_PER_LANE_CMP = 2_400
_FF_PER_LANE_CMP = 1_800
_DSP_PER_LANE_CMP = 2
_DSP_FIXED = 8
_BRAM_FIXED = 296
_BRAM_PER_ORDER = 6.67
_BRAM_PER_EXTRA_RX = 8
# Baseline (un-optimised) affine blow-ups.
_BASE_LUT_SCALE, _BASE_LUT_OFFSET = 1.745, 128_500
_BASE_FF_SCALE, _BASE_FF_OFFSET = 1.743, 203_800
_BASE_DSP_SCALE, _BASE_DSP_OFFSET = 1.6, 280
_BASE_BRAM_OFFSET = 107
_BASE_BRAM_PER_ORDER = 3.4
# MST node capacity per tree level; the optimised design's buffer reuse
# (III-C4) lets it provision roughly half the baseline's slots.
_MST_CAPACITY_PER_ORDER_OPT = 360
_MST_CAPACITY_PER_ORDER_BASE = 768


@dataclass(frozen=True)
class ResourceReport:
    """Estimated fabric usage of one accelerator build."""

    config_name: str
    freq_mhz: float
    luts: int
    ffs: int
    dsps: int
    brams: int
    urams: int
    device: DeviceSpec = AlveoU280

    def utilization(self) -> dict[str, float]:
        """Fractions of the device consumed, keyed like Table I rows."""
        return self.device.utilization(
            {
                "luts": self.luts,
                "ffs": self.ffs,
                "dsps": self.dsps,
                "brams": self.brams,
                "urams": self.urams,
            }
        )

    def fits(self) -> bool:
        """Whether the build fits the device."""
        util = self.utilization()
        return all(frac <= 1.0 for frac in util.values())

    def can_duplicate(self) -> bool:
        """Paper section III-C4: under 50% leaves room for a second pipeline."""
        util = self.utilization()
        return all(frac <= 0.5 for frac in util.values())


def mst_capacity(order: int, *, optimized: bool) -> int:
    """Provisioned MST slots per tree level for one design point."""
    check_positive_int(order, "order")
    per_order = (
        _MST_CAPACITY_PER_ORDER_OPT if optimized else _MST_CAPACITY_PER_ORDER_BASE
    )
    return per_order * order


def estimate_resources(
    config: PipelineConfig,
    *,
    order: int,
    n_tx: int = 10,
    n_rx: int = 10,
    device: DeviceSpec = AlveoU280,
) -> ResourceReport:
    """Bottom-up resource estimate for one build.

    ``config`` should come from :meth:`PipelineConfig.baseline` or
    :meth:`PipelineConfig.optimized` with the same ``order``.
    """
    order = check_positive_int(order, "order")
    n_tx = check_positive_int(n_tx, "n_tx")
    n_rx = check_positive_int(n_rx, "n_rx")
    optimized = config.dataflow_overlap
    macs = config.gemm.macs
    lanes = order
    compare = getattr(config, "norm_kind", "mac") == "compare"
    lut_lane = _LUT_PER_LANE_CMP if compare else _LUT_PER_LANE
    ff_lane = _FF_PER_LANE_CMP if compare else _FF_PER_LANE
    dsp_lane = _DSP_PER_LANE_CMP if compare else _DSP_PER_LANE
    luts = _LUT_PER_MAC * macs + lut_lane * lanes + _LUT_FIXED
    ffs = _FF_PER_MAC * macs + ff_lane * lanes + _FF_FIXED
    dsps = config.gemm.dsp_usage + dsp_lane * lanes + _DSP_FIXED
    brams = _BRAM_FIXED + _BRAM_PER_ORDER * order + _BRAM_PER_EXTRA_RX * max(
        n_rx - 10, 0
    )
    if not optimized:
        luts = luts * _BASE_LUT_SCALE + _BASE_LUT_OFFSET
        ffs = ffs * _BASE_FF_SCALE + _BASE_FF_OFFSET
        dsps = dsps * _BASE_DSP_SCALE + _BASE_DSP_OFFSET
        brams = brams + _BASE_BRAM_OFFSET + _BASE_BRAM_PER_ORDER * order
    mst = MetaStateTable(
        n_levels=n_tx, capacity=mst_capacity(order, optimized=optimized)
    )
    # Per-level partitions round up to whole URAM blocks independently.
    per_level_bits = mst.capacity * mst.entry_bits(n_rx, order)
    urams = n_tx * ceil(per_level_bits / device.URAM_BITS)
    return ResourceReport(
        config_name=config.name,
        freq_mhz=config.freq_mhz,
        luts=int(round(luts)),
        ffs=int(round(ffs)),
        dsps=int(round(dsps)),
        brams=int(round(brams)),
        urams=int(urams),
        device=device,
    )


def table1(device: DeviceSpec = AlveoU280) -> dict[str, ResourceReport]:
    """The four design points of Table I (10x10 system).

    Keys: ``"baseline-4qam"``, ``"baseline-16qam"``, ``"optimized-4qam"``,
    ``"optimized-16qam"``.
    """
    out: dict[str, ResourceReport] = {}
    for label, factory in (("baseline", PipelineConfig.baseline), ("optimized", PipelineConfig.optimized)):
        for order in (4, 16):
            config = factory(order)
            out[f"{label}-{order}qam"] = estimate_resources(
                config, order=order, n_tx=10, n_rx=10, device=device
            )
    return out
