"""Meta State Table (MST) — the paper's dynamic-tree workaround (III-C3).

FPGAs have no dynamic allocation and pointer-chasing is
performance-prohibitive, so the paper stores the search tree in a fixed
database: per-level partitions of a flat table, each entry recording a
node's parent link, assigned symbol and PD — i.e. the node's block of
the "tree state matrix" (Fig. 5). Partitioning per level gives
single-cycle access and lets the prefetch unit compute addresses
directly from (level, slot).

This is a *functional* model: the Python decoders can run on top of it
(see ``tests/test_mst.py`` which replays a decode through the table and
checks path reconstruction), and the resource estimator sizes URAM from
its capacity.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int

#: Parent sentinel for depth-1 nodes (children of the root).
ROOT_PARENT = -1


class MstCapacityError(RuntimeError):
    """Raised when a level partition is full."""


class MetaStateTable:
    """Fixed-capacity, level-partitioned node store.

    Node IDs encode their partition: ``node_id = depth * capacity + slot``
    with ``depth in [1, n_levels]`` (the root is virtual and owns no
    entry). This mirrors the hardware, where the ID *is* the address.

    Parameters
    ----------
    n_levels:
        Tree depth M (one level per transmit symbol).
    capacity:
        Entries per level partition.
    """

    def __init__(self, n_levels: int, capacity: int) -> None:
        self.n_levels = check_positive_int(n_levels, "n_levels")
        self.capacity = check_positive_int(capacity, "capacity")
        size = self.n_levels * self.capacity
        # Flat, preallocated storage — the hardware's partitioned URAM.
        self._parent = np.full(size, ROOT_PARENT - 1, dtype=np.int64)
        self._symbol = np.full(size, -1, dtype=np.int64)
        self._pd = np.full(size, np.nan, dtype=float)
        self._used = np.zeros(self.n_levels, dtype=np.int64)
        self.high_water = 0

    # ------------------------------------------------------------------

    def _offset(self, depth: int) -> int:
        if not 1 <= depth <= self.n_levels:
            raise ValueError(f"depth must be in [1, {self.n_levels}], got {depth}")
        return (depth - 1) * self.capacity

    def depth_of(self, node_id: int) -> int:
        """Partition (depth) a node ID belongs to."""
        depth = node_id // self.capacity + 1
        if not 1 <= depth <= self.n_levels:
            raise KeyError(f"node id {node_id} out of range")
        return depth

    def alloc(self, depth: int, parent_id: int, symbol_index: int, pd: float) -> int:
        """Store one node; returns its ID.

        ``parent_id`` is :data:`ROOT_PARENT` for depth-1 nodes, otherwise
        a previously allocated ID at ``depth - 1``.
        """
        self._offset(depth)  # validates the depth range first
        if depth == 1:
            if parent_id != ROOT_PARENT:
                raise ValueError("depth-1 nodes must have ROOT_PARENT as parent")
        else:
            if self.depth_of(parent_id) != depth - 1:
                raise ValueError(
                    f"parent {parent_id} is not at depth {depth - 1}"
                )
            if self._symbol[parent_id] < 0:
                raise KeyError(f"parent {parent_id} was never allocated")
        if symbol_index < 0:
            raise ValueError("symbol_index must be non-negative")
        if pd < 0:
            raise ValueError("pd must be non-negative")
        slot = int(self._used[depth - 1])
        if slot >= self.capacity:
            raise MstCapacityError(
                f"MST level {depth} full (capacity {self.capacity})"
            )
        node_id = self._offset(depth) + slot
        self._parent[node_id] = parent_id
        self._symbol[node_id] = symbol_index
        self._pd[node_id] = pd
        self._used[depth - 1] = slot + 1
        self.high_water = max(self.high_water, slot + 1)
        return node_id

    def pd(self, node_id: int) -> float:
        """Stored partial distance of a node."""
        self.depth_of(node_id)
        if self._symbol[node_id] < 0:
            raise KeyError(f"node {node_id} was never allocated")
        return float(self._pd[node_id])

    def path(self, node_id: int) -> tuple[int, ...]:
        """Root-first symbol-index path of a node (follows parent links)."""
        self.depth_of(node_id)
        if self._symbol[node_id] < 0:
            raise KeyError(f"node {node_id} was never allocated")
        rev: list[int] = []
        cur = node_id
        while cur != ROOT_PARENT:
            rev.append(int(self._symbol[cur]))
            cur = int(self._parent[cur])
        return tuple(reversed(rev))

    def occupancy(self, depth: int) -> int:
        """Allocated entries in one level partition."""
        self._offset(depth)  # validates depth
        return int(self._used[depth - 1])

    def total_allocated(self) -> int:
        """Allocated entries across all partitions."""
        return int(self._used.sum())

    def reset(self) -> None:
        """Clear all partitions (new decode, buffers reused)."""
        self._used[:] = 0
        self._symbol[:] = -1
        self._parent[:] = ROOT_PARENT - 1
        self._pd[:] = np.nan

    # ------------------------------------------------------------------

    def entry_bits(self, n_rx: int, order: int) -> int:
        """Storage per entry, including its tree-state block (Fig. 5).

        The paper sizes the intermediate tree-state matrix at
        ``4 * modulation^2 * N`` words (section IV-E); each MST entry
        additionally keeps parent link, symbol and PD (3 words).
        """
        check_positive_int(n_rx, "n_rx")
        check_positive_int(order, "order")
        # Per-node share of the level's tree-state block: the full level
        # block (4 * order^2 * N words) is shared by the order^2 nodes a
        # double-buffered branching stage emits, leaving 4 * N words per
        # node, plus parent link, symbol and PD (3 words).
        words = 4 * n_rx + 3
        return words * 32

    def storage_bits(self, n_rx: int, order: int) -> int:
        """Total URAM footprint of the table."""
        return self.n_levels * self.capacity * self.entry_bits(n_rx, order)
