"""Dataflow pipeline simulator (paper Fig. 4 + section III).

The accelerator is a chain of HLS dataflow modules::

    branching -> prefetch/double-buffer -> GEMM engine -> NORM -> sort/prune

driven by the search-list controller, with the tree held in the MST. The
simulator replays a decoder's :class:`~repro.detectors.base.BatchEvent`
trace — one event per (level, pool) expansion the *actual algorithm*
performed — through per-module cycle models and reports decode time at
the configured clock.

Two presets mirror the paper's designs:

* :meth:`PipelineConfig.baseline` — the direct HLS port: 253 MHz, small
  GEMM mesh with II=4 (loop-carried fp accumulation), no double
  buffering, no dataflow overlap between modules, heavy control logic.
* :meth:`PipelineConfig.optimized` — the paper's design: 300 MHz,
  larger II=1 systolic mesh, double-buffered prefetch, fully overlapped
  dataflow stages and per-modulation specialised (thin) control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import log2

from repro.detectors.base import BatchEvent, DecodeStats
from repro.fpga.device import AlveoU280, DeviceSpec
from repro.fpga.gemm_engine import SystolicGemmEngine
from repro.fpga.memory import hbm_stream_cycles
from repro.fpga.prefetch import PrefetchUnit
from repro.obs.metrics import current_metrics
from repro.obs.tracer import current_tracer
from repro.util.validation import check_positive_int

#: The five dataflow modules of the accelerator (paper Fig. 4), in
#: pipeline order. ``stage_breakdown()`` attributes every cycle of a
#: decode to one of these, plus the bookkeeping buckets below.
PIPELINE_STAGES = ("branch", "prefetch", "gemm", "norm", "prune")

#: Non-module buckets of the exact attribution: dataflow fill bubbles,
#: control/round-trip, radius updates, per-decode setup, host transfer.
OVERHEAD_BUCKETS = ("fill", "control", "radius", "setup", "transfer")

#: NORM-module micro-architectures. ``"mac"`` is the paper's fp32
#: multiply-accumulate datapath for the ℓ₂-squared partial distance;
#: ``"compare"`` is the max/compare tree the ℓ∞ metric admits (Seethaler
#: & Bölcskei) — no multipliers, so the stage initiates faster, drains
#: in fewer cycles and frees DSP slices (see ``fpga/resources.py``).
NORM_KINDS = ("mac", "compare")


def _mesh_cols(order: int) -> int:
    """GEMM mesh width for a per-modulation specialised design.

    The evaluation GEMM's output width is the modulation factor ``P``
    (one column per child), so the mesh is 8 lanes wide for 4-QAM and 16
    for 16-QAM — matching Table I's DSP growth with modulation.
    """
    check_positive_int(order, "order")
    return max(8, min(order, 32))


def _roundtrip_cycles(order: int, *, optimized: bool) -> int:
    """Loop-carried pop -> expand -> insert latency for one batch.

    The search list and MST are walked serially for each of the ``P``
    children (sorted insertion + state-block allocation), so the round
    trip grows with the modulation factor. The affine coefficients are
    calibrated against the paper's absolute decode-time anchors (10x10:
    Fig. 6 for 4-QAM, Fig. 10's ~4x speedup for 16-QAM) — see
    EXPERIMENTS.md, "FPGA model calibration".
    """
    if optimized:
        return 255 + 64 * order
    return 850 + 212 * order


@dataclass(frozen=True)
class PipelineConfig:
    """Micro-architecture parameters of one accelerator build."""

    name: str
    freq_mhz: float
    gemm: SystolicGemmEngine
    prefetch: PrefetchUnit
    dataflow_overlap: bool
    control_overhead_cycles: int
    branch_ii: int
    branch_latency: int
    norm_ii: int
    norm_latency: int
    sorted_insertion: bool
    list_cycles_per_child: int
    radius_update_cycles: int
    pipeline_fill_cycles: int
    #: Latency of the serial pop -> MST read -> ... -> list-insert round
    #: trip that sequences consecutive batches (the loop-carried
    #: dependency of the tree search; it cannot be pipelined away).
    #: Calibrated against the paper's absolute decode-time anchors — see
    #: EXPERIMENTS.md, "FPGA model calibration".
    node_roundtrip_cycles: int = 0
    #: Per-decode fixed work: ybar = Q^H y, list/MST initialisation and
    #: radius seeding. Calibrated with the same anchors.
    setup_cycles: int = 0
    #: NORM datapath flavour (:data:`NORM_KINDS`): ``"mac"`` for the
    #: ℓ₂-squared multiply-accumulate, ``"compare"`` for the ℓ∞ max
    #: tree. ``norm_ii``/``norm_latency`` must be set consistently (the
    #: presets do this); the flag also drives the resource and power
    #: deltas in :mod:`repro.fpga.resources` / :mod:`repro.fpga.power`.
    norm_kind: str = "mac"

    def __post_init__(self) -> None:
        if self.freq_mhz <= 0:
            raise ValueError("freq_mhz must be positive")
        if self.norm_kind not in NORM_KINDS:
            raise ValueError(
                f"norm_kind must be one of {NORM_KINDS}, got {self.norm_kind!r}"
            )
        for name in (
            "control_overhead_cycles",
            "branch_ii",
            "branch_latency",
            "norm_ii",
            "norm_latency",
            "list_cycles_per_child",
            "radius_update_cycles",
            "pipeline_fill_cycles",
            "node_roundtrip_cycles",
            "setup_cycles",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @classmethod
    def baseline(cls, order: int = 4, *, norm_kind: str = "mac") -> "PipelineConfig":
        """Direct HLS port of the CPU code (paper's FPGA-baseline).

        ``order`` is the modulation factor; the paper builds a separate
        design per modulation (section III-C4), whose GEMM mesh is sized
        to the ``P`` children emitted per node. ``norm_kind="compare"``
        swaps the NORM MAC datapath for the ℓ∞ max tree: a comparator
        initiates every cycle even in the un-pipelined baseline (no
        loop-carried fp accumulation to schedule around) and its tree
        depth is a fraction of the fp-adder chain.
        """
        compare = norm_kind == "compare"
        return cls(
            name="fpga-baseline" + ("-linf" if compare else ""),
            freq_mhz=253.0,
            gemm=SystolicGemmEngine(
                rows=8,
                cols=_mesh_cols(order),
                pipeline_depth=16,
                initiation_interval=4,
                dsps_per_mac=4,
            ),
            prefetch=PrefetchUnit(double_buffered=False, hbm_channels=1),
            dataflow_overlap=False,
            control_overhead_cycles=96,
            branch_ii=2,
            branch_latency=8,
            norm_ii=1 if compare else 4,
            norm_latency=4 if compare else 16,
            sorted_insertion=True,
            list_cycles_per_child=16,
            radius_update_cycles=8,
            pipeline_fill_cycles=32,
            node_roundtrip_cycles=_roundtrip_cycles(order, optimized=False),
            setup_cycles=100_000,
            norm_kind=norm_kind,
        )

    @classmethod
    def optimized(cls, order: int = 4, *, norm_kind: str = "mac") -> "PipelineConfig":
        """The paper's optimised design (section III-C).

        ``norm_kind="compare"`` models the ℓ∞ variant: II is already 1,
        so only the drain latency shrinks (comparator tree vs fp-adder
        chain) — plus the fabric/power savings in the companion models.
        """
        compare = norm_kind == "compare"
        return cls(
            name="fpga-optimized" + ("-linf" if compare else ""),
            freq_mhz=300.0,
            gemm=SystolicGemmEngine(
                rows=8,
                cols=_mesh_cols(order),
                pipeline_depth=12,
                initiation_interval=1,
                dsps_per_mac=4,
            ),
            prefetch=PrefetchUnit(double_buffered=True, hbm_channels=4),
            dataflow_overlap=True,
            control_overhead_cycles=8,
            branch_ii=1,
            branch_latency=4,
            norm_ii=1,
            norm_latency=2 if compare else 8,
            sorted_insertion=True,
            list_cycles_per_child=4,
            radius_update_cycles=2,
            pipeline_fill_cycles=16,
            node_roundtrip_cycles=_roundtrip_cycles(order, optimized=True),
            setup_cycles=51_600,
            norm_kind=norm_kind,
        )


@dataclass
class PipelineReport:
    """Cycle accounting for one decode.

    Two complementary views of where cycles go:

    ``breakdown``
        Raw *busy* cycles per module. Under dataflow overlap modules run
        concurrently, so these sum to **more** than ``total_cycles`` —
        useful for utilisation, wrong for attribution.
    ``attributed`` / :meth:`stage_breakdown`
        Exact attribution: each batch's wall cycles are charged to the
        critical (slowest) stage of that batch plus explicit ``fill``/
        ``control``/``radius``/``setup``/``transfer`` buckets, so the
        values **sum exactly to** ``total_cycles`` (asserted in
        ``tests/test_pipeline.py``).
    """

    config_name: str
    freq_mhz: float
    total_cycles: int
    transfer_cycles: int
    batches: int
    breakdown: dict[str, int] = field(default_factory=dict)
    attributed: dict[str, int] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Decode time implied by the cycle count at the clock frequency."""
        return self.total_cycles / (self.freq_mhz * 1e6)

    @property
    def milliseconds(self) -> float:
        """Decode time in ms (the unit of the paper's figures)."""
        return self.seconds * 1e3

    @property
    def transfer_fraction(self) -> float:
        """Share of time spent on the one-time host->HBM staging.

        The paper measures this below 3%; ``tests/test_pipeline.py``
        checks the model agrees on realistic traces.
        """
        return self.transfer_cycles / self.total_cycles if self.total_cycles else 0.0

    def stage_breakdown(self) -> dict[str, int]:
        """Per-stage cycle attribution summing exactly to the total.

        Keys are the five pipeline modules (:data:`PIPELINE_STAGES`)
        plus the overhead buckets (:data:`OVERHEAD_BUCKETS`). See
        ``docs/observability.md`` for how to read it.
        """
        return dict(self.attributed)

    def format_stage_breakdown(self) -> str:
        """Aligned-text rendering of :meth:`stage_breakdown`."""
        rows = [
            (name, cycles, 100.0 * cycles / self.total_cycles)
            for name, cycles in sorted(
                self.attributed.items(), key=lambda kv: -kv[1]
            )
            if self.total_cycles
        ]
        width = max((len(name) for name, *_ in rows), default=5)
        lines = [
            f"== {self.config_name}: {self.total_cycles} cycles over "
            f"{self.batches} batches ({self.milliseconds:.3f} ms @ "
            f"{self.freq_mhz:g} MHz) =="
        ]
        for name, cycles, pct in rows:
            lines.append(f"{name.ljust(width)}  {cycles:>12d}  {pct:6.2f}%")
        return "\n".join(lines)


class FPGAPipeline:
    """Replays decode traces through the module cycle models."""

    def __init__(
        self,
        config: PipelineConfig,
        *,
        n_tx: int,
        n_rx: int,
        order: int,
        device: DeviceSpec = AlveoU280,
    ) -> None:
        self.config = config
        self.n_tx = check_positive_int(n_tx, "n_tx")
        self.n_rx = check_positive_int(n_rx, "n_rx")
        self.order = check_positive_int(order, "order")
        self.device = device
        if config.freq_mhz > device.max_freq_mhz + 1e-9:
            raise ValueError(
                f"config clock {config.freq_mhz} MHz exceeds device limit "
                f"{device.max_freq_mhz} MHz"
            )

    # ------------------------------------------------------------------
    # Per-module cycle models
    # ------------------------------------------------------------------

    def _sort_cycles(self, children: int) -> int:
        """Pruning-module sort: bitonic network over one node's children.

        Depth of a bitonic sorter on P elements is
        ``log2(P) * (log2(P)+1) / 2`` stages; the stream of ``children``
        results passes through at II=1.
        """
        p = self.order
        stages = int(log2(p) * (log2(p) + 1) / 2) if p > 1 else 0
        if not self.config.sorted_insertion:
            stages = 0
        return children + stages

    def batch_cycles(self, event: BatchEvent) -> dict[str, int]:
        """Raw cycle breakdown for one expansion batch.

        ``prefetch`` and ``gemm`` are the two halves of the evaluation
        stage; ``evaluate`` is their combination (``max`` when the fetch
        is double-buffered behind the compute, the sum otherwise).
        Module values are *busy* cycles — under dataflow overlap they
        exceed ``total``; use :meth:`batch_attribution` for an exact
        accounting.
        """
        level, pool = event.level, event.pool_size
        if not 0 <= level < self.n_tx:
            raise ValueError(f"event level {level} out of range")
        check_positive_int(pool, "pool_size")
        cfg = self.config
        p = self.order
        children = pool * p
        depth = self.n_tx - 1 - level  # known symbols per pool node
        # Branching: emit `children` tree-state updates.
        branch = children * cfg.branch_ii + cfg.branch_latency
        # Evaluation GEMM: (pool, depth+1) @ (depth+1, P) complex.
        gemm = cfg.gemm.cycles(pool, p, depth + 1)
        # Prefetch: R row + pool tree-state blocks + constellation column.
        words = 2 * (depth + 1) * (pool + 1) + 2 * p
        fetch = cfg.prefetch.fetch_cycles(words)
        evaluation = cfg.prefetch.effective_cycles(gemm, words)
        # NORM: one PD per child.
        norm = children * cfg.norm_ii + cfg.norm_latency
        # Sort + list insertion (the pruning module).
        prune = self._sort_cycles(children) + children * cfg.list_cycles_per_child
        dataflow = {
            "branch": branch,
            "evaluate": evaluation,
            "norm": norm,
            "prune": prune,
        }
        if cfg.dataflow_overlap:
            total = max(dataflow.values()) + cfg.pipeline_fill_cycles
        else:
            total = sum(dataflow.values())
        stages = dict(dataflow)
        stages["prefetch"] = fetch
        stages["gemm"] = gemm
        stages["control"] = cfg.control_overhead_cycles + cfg.node_roundtrip_cycles
        stages["total"] = (
            total + cfg.control_overhead_cycles + cfg.node_roundtrip_cycles
        )
        return stages

    def batch_attribution(self, event: BatchEvent) -> dict[str, int]:
        """Exact per-stage attribution of one batch's wall cycles.

        Keys: the five modules of :data:`PIPELINE_STAGES` plus ``fill``
        and ``control``; the values sum exactly to
        ``batch_cycles(event)["total"]``. Under dataflow overlap the
        whole stage time is charged to the *critical* (slowest) module —
        the others run hidden beneath it — and the pipeline fill bubble
        is reported separately. The evaluation charge lands on ``gemm``
        or ``prefetch`` depending on which dominates (both, sequentially,
        without double buffering).
        """
        return self._attribute(self.batch_cycles(event))

    def _attribute(self, stages: dict[str, int]) -> dict[str, int]:
        cfg = self.config
        out = {name: 0 for name in PIPELINE_STAGES}
        out["fill"] = 0

        def charge_evaluate() -> None:
            if cfg.prefetch.double_buffered:
                # Fetch hides behind compute (or vice versa): charge the
                # dominant half the full combined stage time.
                key = "gemm" if stages["gemm"] >= stages["prefetch"] else "prefetch"
                out[key] += stages["evaluate"]
            else:
                out["gemm"] += stages["gemm"]
                out["prefetch"] += stages["prefetch"]

        dataflow = {
            name: stages[name] for name in ("branch", "evaluate", "norm", "prune")
        }
        if cfg.dataflow_overlap:
            critical = max(dataflow, key=dataflow.get)
            if critical == "evaluate":
                charge_evaluate()
            else:
                out[critical] += dataflow[critical]
            out["fill"] += cfg.pipeline_fill_cycles
        else:
            out["branch"] += stages["branch"]
            out["norm"] += stages["norm"]
            out["prune"] += stages["prune"]
            charge_evaluate()
        out["control"] = stages["control"]
        return out

    def transfer_cycles(self) -> int:
        """One-time host -> HBM staging of H, y and constellation tables."""
        words = 2 * self.n_tx * self.n_rx + 2 * self.n_rx + 2 * self.order
        return hbm_stream_cycles(words, self.device.hbm_channels)

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------

    def decode_report(self, stats: DecodeStats) -> PipelineReport:
        """Total decode time for one decode's statistics record.

        Requires the per-expansion batch trace (``record_trace=True`` on
        the decoder).
        """
        if not stats.batches:
            raise ValueError(
                "stats has no batch trace; run the decoder with record_trace=True"
            )
        tracer = current_tracer()
        with tracer.span(
            "fpga.decode_report", config=self.config.name, batches=len(stats.batches)
        ):
            breakdown: dict[str, int] = {
                "branch": 0,
                "prefetch": 0,
                "gemm": 0,
                "evaluate": 0,
                "norm": 0,
                "prune": 0,
                "control": 0,
            }
            attributed: dict[str, int] = dict.fromkeys(
                PIPELINE_STAGES + OVERHEAD_BUCKETS, 0
            )
            total = 0
            for event in stats.batches:
                cycles = self.batch_cycles(event)
                for key, value in self._attribute(cycles).items():
                    attributed[key] += value
                total += cycles.pop("total")
                for key, value in cycles.items():
                    breakdown[key] += value
            radius = stats.radius_updates * self.config.radius_update_cycles
            breakdown["radius"] = radius
            attributed["radius"] = radius
            total += radius
            breakdown["setup"] = self.config.setup_cycles
            attributed["setup"] = self.config.setup_cycles
            total += self.config.setup_cycles
            transfer = self.transfer_cycles()
            total += transfer
            breakdown["transfer"] = transfer
            attributed["transfer"] = transfer
        if tracer.enabled:
            for stage, cycles in attributed.items():
                tracer.count(f"fpga.cycles.{stage}", cycles)
            tracer.count("fpga.cycles.total", total)
        metrics = current_metrics()
        if metrics.enabled:
            cfg = self.config.name
            busy = metrics.counter("fpga.stage_busy_cycles")
            occupancy = metrics.gauge("fpga.stage_occupancy")
            for stage in PIPELINE_STAGES:
                busy.inc(breakdown[stage], config=cfg, stage=stage)
                if total:
                    occupancy.set(
                        breakdown[stage] / total, config=cfg, stage=stage
                    )
            stall = metrics.counter("fpga.stall_cycles")
            for bucket in OVERHEAD_BUCKETS:
                stall.inc(attributed[bucket], config=cfg, bucket=bucket)
            metrics.counter("fpga.cycles_total").inc(total, config=cfg)
        return PipelineReport(
            config_name=self.config.name,
            freq_mhz=self.config.freq_mhz,
            total_cycles=total,
            transfer_cycles=transfer,
            batches=len(stats.batches),
            breakdown=breakdown,
            attributed=attributed,
        )

    def mean_decode_seconds(self, stats_list: list[DecodeStats]) -> float:
        """Mean decode time over a list of per-frame stats records."""
        if not stats_list:
            raise ValueError("stats_list must be non-empty")
        return float(
            sum(self.decode_report(st).seconds for st in stats_list)
            / len(stats_list)
        )
