"""Cycle-approximate model of the paper's FPGA accelerator (Alveo U280).

The real system is an HLS dataflow pipeline (paper Fig. 4): branching ->
prefetch/double-buffer -> systolic GEMM engine -> NORM -> sort/prune,
with the search tree state held in the Meta State Table (MST) in on-chip
memory. Since the physical card is not available here, this package
simulates it: per-module cycle models are driven by the *actual* batch
trace produced by the decoder, and resource / power estimators reproduce
Tables I and II.
"""

from repro.fpga.device import DeviceSpec, AlveoU280
from repro.fpga.gemm_engine import SystolicGemmEngine
from repro.fpga.memory import (
    MemoryRequirement,
    OnChipMemoryPlan,
    hbm_stream_cycles,
)
from repro.fpga.prefetch import PrefetchUnit
from repro.fpga.mst import MetaStateTable, MstCapacityError
from repro.fpga.pipeline import FPGAPipeline, PipelineConfig, PipelineReport
from repro.fpga.resources import ResourceReport, estimate_resources, table1
from repro.fpga.power import fpga_power_w, cpu_power_w, energy_joules
from repro.fpga.multi_pipeline import (
    MultiPipelineDeployment,
    DeploymentReport,
    max_pipelines,
)

__all__ = [
    "DeviceSpec",
    "AlveoU280",
    "SystolicGemmEngine",
    "MemoryRequirement",
    "OnChipMemoryPlan",
    "hbm_stream_cycles",
    "PrefetchUnit",
    "MetaStateTable",
    "MstCapacityError",
    "FPGAPipeline",
    "PipelineConfig",
    "PipelineReport",
    "ResourceReport",
    "estimate_resources",
    "table1",
    "fpga_power_w",
    "cpu_power_w",
    "energy_joules",
    "MultiPipelineDeployment",
    "DeploymentReport",
    "max_pipelines",
]
