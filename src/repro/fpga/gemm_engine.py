"""Systolic-array GEMM engine cycle/resource model (paper section III-C1).

The paper extracts the raw GEMM engine from the Xilinx Vitis BLAS
library: a two-dimensional mesh of floating-point MAC units (built from
DSP slices) fed from single-cycle BRAM, with control logic stripped down
to the single operation the decoder needs.

The model computes the cycles to evaluate ``C = A @ B`` with
``A: (m, k)``, ``B: (k, n)`` *complex* operands on an ``rows x cols``
mesh of real-MAC processing elements:

* the output is tiled into ``ceil(m/rows) * ceil(n/cols)`` tiles;
* each tile streams the ``k`` reduction dimension through the mesh —
  a complex MAC costs 4 real MACs, so ``4 k * ii`` cycles per tile plus
  the pipeline fill/drain depth;
* ``ii`` (initiation interval) is 1 for the optimised engine and larger
  for the naive HLS port (the paper's "baseline" whose loop-carried
  floating-point accumulation prevents II=1).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

#: Xilinx fp32 multiply-accumulate cost in DSP48 slices (mul=3, add=2).
DSPS_PER_FP32_MAC = 5


@dataclass(frozen=True)
class SystolicGemmEngine:
    """A ``rows x cols`` mesh of pipelined fp32 MAC processing elements."""

    rows: int = 8
    cols: int = 8
    pipeline_depth: int = 12
    initiation_interval: int = 1
    dsps_per_mac: int = DSPS_PER_FP32_MAC

    def __post_init__(self) -> None:
        for name in ("rows", "cols", "pipeline_depth", "initiation_interval", "dsps_per_mac"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def macs(self) -> int:
        """Real MAC units in the mesh."""
        return self.rows * self.cols

    @property
    def dsp_usage(self) -> int:
        """DSP slices consumed by the mesh."""
        return self.macs * self.dsps_per_mac

    def tile_count(self, m: int, n: int) -> int:
        """Output tiles for an ``(m, n)`` result."""
        if m <= 0 or n <= 0:
            raise ValueError(f"m and n must be positive, got ({m}, {n})")
        return ceil(m / self.rows) * ceil(n / self.cols)

    def cycles(self, m: int, n: int, k: int, *, complex_data: bool = True) -> int:
        """Cycles for one ``(m, k) @ (k, n)`` GEMM.

        ``k == 0`` (empty reduction, e.g. expanding the tree root, which
        has no assigned symbols yet) degenerates to the pipeline fill
        cost of writing zeros/bias through the mesh.
        """
        if m <= 0 or n <= 0:
            raise ValueError(f"m and n must be positive, got ({m}, {n})")
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        factor = 4 if complex_data else 1
        per_tile = factor * k * self.initiation_interval + self.pipeline_depth
        return self.tile_count(m, n) * per_tile

    def sustained_macs_per_cycle(self, m: int, n: int, k: int) -> float:
        """Effective real-MAC throughput for a given problem shape.

        Useful for utilisation reports: small/ragged problems waste mesh
        lanes, which is exactly why the paper batches node evaluations.
        """
        cyc = self.cycles(m, n, k)
        total_macs = 4 * m * n * k
        return total_macs / cyc if cyc else 0.0
