"""Power and energy models — regenerates Table II.

The paper measured power empirically (AMD uProf for the CPU, Vitis
Analyzer for the FPGA). Power draw is a property of the physical parts,
not something a functional simulation can derive, so this module anchors
on the paper's four measured configurations and extends them with a
fitted power law for other configurations:

``P(N, order) = P_anchor * (N / 10)^beta * (order / 4)^gamma``

with ``(beta, gamma)`` fitted per platform from the anchors. The energy
table (and its headline 38.1x geometric-mean reduction) then follows
from ``E = P * t`` using execution times produced by the experiment
harness.
"""

from __future__ import annotations

from math import log

import numpy as np

from repro.util.validation import check_positive_int

#: Paper Table II measured power (watts), keyed by (n_antennas, order).
CPU_POWER_ANCHORS_W: dict[tuple[int, int], float] = {
    (10, 4): 82.0,
    (15, 4): 93.0,
    (20, 4): 135.0,
    (10, 16): 142.0,
}
FPGA_POWER_ANCHORS_W: dict[tuple[int, int], float] = {
    (10, 4): 8.0,
    (15, 4): 11.7,
    (20, 4): 12.0,
    (10, 16): 12.8,
}

# Power-law exponents fitted from the anchors (base config = (10, 4)).
_CPU_BETA = log(135.0 / 82.0) / log(2.0)  # antenna scaling
_CPU_GAMMA = log(142.0 / 82.0) / log(4.0)  # modulation scaling
_FPGA_BETA = log(12.0 / 8.0) / log(2.0)
_FPGA_GAMMA = log(12.8 / 8.0) / log(4.0)


def _power_w(
    n_antennas: int,
    order: int,
    anchors: dict[tuple[int, int], float],
    beta: float,
    gamma: float,
) -> float:
    check_positive_int(n_antennas, "n_antennas")
    check_positive_int(order, "order")
    key = (n_antennas, order)
    if key in anchors:
        return anchors[key]
    base = anchors[(10, 4)]
    return base * (n_antennas / 10.0) ** beta * (order / 4.0) ** gamma


def cpu_power_w(n_antennas: int, order: int) -> float:
    """CPU package power while decoding an ``N x N`` / ``order``-QAM system."""
    return _power_w(n_antennas, order, CPU_POWER_ANCHORS_W, _CPU_BETA, _CPU_GAMMA)


# Board-power ratio of the compare-tree NORM build (``norm_kind =
# "compare"``, ℓ∞ metric) to the MAC build. The NORM lanes are a minor
# share of total board power (the GEMM mesh and HBM dominate), and
# swapping fp MACs for comparators trims their dynamic power — a ~8%
# board-level saving, consistent with the DSP reduction in
# ``fpga/resources.py``.
_FPGA_COMPARE_NORM_SCALE = 0.92


def fpga_power_w(n_antennas: int, order: int, norm_kind: str = "mac") -> float:
    """FPGA board power for the optimised design on the same system.

    ``norm_kind`` selects the NORM datapath of the build being powered:
    ``"mac"`` (the measured anchors) or ``"compare"`` (the ℓ∞ max-tree
    variant, scaled by :data:`_FPGA_COMPARE_NORM_SCALE`).
    """
    if norm_kind not in ("mac", "compare"):
        raise ValueError(
            f'norm_kind must be "mac" or "compare", got {norm_kind!r}'
        )
    base = _power_w(n_antennas, order, FPGA_POWER_ANCHORS_W, _FPGA_BETA, _FPGA_GAMMA)
    if norm_kind == "compare":
        return base * _FPGA_COMPARE_NORM_SCALE
    return base


def energy_joules(power_w: float, seconds: float) -> float:
    """Energy consumed decoding one signal: ``E = P * t``."""
    if power_w < 0 or seconds < 0:
        raise ValueError("power and time must be non-negative")
    return power_w * seconds


def energy_reduction_geomean(reductions: list[float]) -> float:
    """Geometric mean of per-configuration energy-reduction factors.

    The paper reports 38.1x across Table II's four configurations.
    """
    arr = np.asarray(reductions, dtype=float)
    if arr.size == 0 or np.any(arr <= 0):
        raise ValueError("reductions must be positive and non-empty")
    return float(np.exp(np.mean(np.log(arr))))
