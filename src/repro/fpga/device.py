"""FPGA device specifications.

Numbers for the Alveo U280 follow the paper's section IV-A and the
Xilinx data sheet it cites: 8 GB HBM over 32 channels, 32 GB DDR4,
4032 BRAM18 blocks (18 Kb each), 960 URAM blocks (288 Kb each); the
logic fabric has ~1.3 M LUTs / ~2.6 M flip-flops / 9024 DSP slices.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Capacity envelope of one FPGA card."""

    name: str
    luts: int
    ffs: int
    dsps: int
    bram_blocks: int  # 18 Kb each
    uram_blocks: int  # 288 Kb each
    hbm_bytes: int
    ddr_bytes: int
    hbm_channels: int
    max_freq_mhz: float

    #: Capacity of one BRAM18 block in bits.
    BRAM_BITS: int = 18 * 1024
    #: Capacity of one URAM block in bits.
    URAM_BITS: int = 288 * 1024

    def __post_init__(self) -> None:
        for field_name in (
            "luts",
            "ffs",
            "dsps",
            "bram_blocks",
            "uram_blocks",
            "hbm_bytes",
            "ddr_bytes",
            "hbm_channels",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.max_freq_mhz <= 0:
            raise ValueError("max_freq_mhz must be positive")

    def bram_bits(self) -> int:
        """Total on-chip BRAM capacity in bits."""
        return self.bram_blocks * self.BRAM_BITS

    def uram_bits(self) -> int:
        """Total on-chip URAM capacity in bits."""
        return self.uram_blocks * self.URAM_BITS

    def utilization(self, used: dict[str, int]) -> dict[str, float]:
        """Fractions of each resource consumed by ``used`` counts."""
        totals = {
            "luts": self.luts,
            "ffs": self.ffs,
            "dsps": self.dsps,
            "brams": self.bram_blocks,
            "urams": self.uram_blocks,
        }
        out: dict[str, float] = {}
        for key, count in used.items():
            if key not in totals:
                raise KeyError(f"unknown resource {key!r}")
            if count < 0:
                raise ValueError(f"{key} count must be non-negative")
            out[key] = count / totals[key]
        return out


#: The card used in the paper.
AlveoU280 = DeviceSpec(
    name="Xilinx Alveo U280",
    luts=1_303_680,
    ffs=2_607_360,
    dsps=9_024,
    bram_blocks=4_032,
    uram_blocks=960,
    hbm_bytes=8 * 1024**3,
    ddr_bytes=32 * 1024**3,
    hbm_channels=32,
    max_freq_mhz=300.0,
)
