"""Live metrics stream: periodic registry snapshots as append-only JSONL.

One line per snapshot, each a :meth:`MetricsSnapshot.to_dict` document
plus a wall-clock ``t`` — written by :class:`MetricsStreamWriter` into
``runs/<id>/metrics.stream.jsonl`` while a recorded run executes, and
replayed afterwards (or *during*, in follow mode) by
``repro-sd obs tail`` / ``repro-sd obs top``.

Snapshots are **cumulative**, not deltas: each line is the full state of
the registry at that instant, so a reader can start anywhere, rates come
from differencing consecutive lines, and a truncated tail (the writer
died mid-line) costs one sample, not the run. :func:`read_stream` is the
strict reader (one-line :class:`ValueError` on an empty or malformed
stream — the CLI error contract turns that into exit 2);
:func:`follow_stream` is the tolerant ``tail -f`` loop that treats a
partial last line as "not flushed yet" and keeps polling.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.obs.metrics import MetricsSnapshot

#: Stream file name inside a run directory.
STREAM_FILE = "metrics.stream.jsonl"

#: Default minimum seconds between snapshots.
DEFAULT_INTERVAL_S = 1.0


class MetricsStreamWriter:
    """Appends throttled registry snapshots to a JSONL file.

    ``maybe_write`` (the :meth:`MetricsRegistry.tick` path) enforces a
    minimum interval between lines so per-block ticking stays cheap —
    one clock read and a comparison when inside the interval. ``write``
    bypasses the throttle for end-of-run flushes. Each line is written
    with a single appending ``write`` call so concurrent readers never
    see interleaved fragments, only (at worst) a partial final line.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        interval_s: float = DEFAULT_INTERVAL_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = Path(path)
        self.interval_s = interval_s
        self._clock = clock
        self._last_write: float | None = None
        self.lines_written = 0

    def maybe_write(self, registry) -> bool:
        """Snapshot if the interval elapsed; returns True if written."""
        now = self._clock()
        if (
            self._last_write is not None
            and now - self._last_write < self.interval_s
        ):
            return False
        self.write(registry)
        return True

    def write(self, registry) -> None:
        """Append one snapshot line unconditionally."""
        snap = registry.snapshot()
        self._last_write = self._clock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(snap.to_dict()) + "\n"
        with self.path.open("a") as fh:
            fh.write(line)
        self.lines_written += 1


def read_stream(path: str | Path) -> list[dict[str, Any]]:
    """All snapshot documents of a stream file, strictly validated.

    Raises :class:`FileNotFoundError` when the file is missing and
    :class:`ValueError` (with the offending line number) when it is
    empty or any line is malformed — the CLI maps both to exit 2.
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no metrics stream at {path}")
    snapshots: list[dict[str, Any]] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}: malformed stream line {lineno}: {exc.msg} "
                    "(truncated write?)"
                ) from exc
            if not isinstance(doc, dict):
                raise ValueError(
                    f"{path}: stream line {lineno} is not a snapshot object"
                )
            snapshots.append(doc)
    if not snapshots:
        raise ValueError(f"{path}: metrics stream is empty")
    return snapshots


def follow_stream(
    path: str | Path,
    *,
    poll_s: float = 0.5,
    stop: Callable[[], bool] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[dict[str, Any]]:
    """Yield snapshots as they are appended (``tail -f`` semantics).

    Tolerant by design: a partial last line is treated as "still being
    written" and retried on the next poll; a malformed *complete* line
    is skipped (the stream is advisory while live). Returns once
    ``stop()`` is true and the file has been drained. The file not
    existing yet is fine — the writer may not have flushed.
    """
    path = Path(path)
    offset = 0
    pending = ""
    while True:
        chunk = ""
        if path.is_file():
            with path.open() as fh:
                fh.seek(offset)
                chunk = fh.read()
                offset = fh.tell()
        if chunk:
            pending += chunk
            while "\n" in pending:
                line, pending = pending.split("\n", 1)
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(doc, dict):
                    yield doc
            continue  # drain fully before considering a stop
        if stop is not None and stop():
            return
        sleep(poll_s)


# ---------------------------------------------------------------------------
# Renderers (obs tail / obs top)
# ---------------------------------------------------------------------------


def _counter_total(doc: dict[str, Any], name: str) -> float:
    """Sum one counter across label sets in a snapshot document."""
    prefix = name + "{"
    return sum(
        v
        for k, v in (doc.get("counters") or {}).items()
        if k == name or k.startswith(prefix)
    )


def _gauge_series(doc: dict[str, Any], name: str) -> dict[str, float]:
    """``label-suffix -> value`` for one gauge in a snapshot document."""
    out: dict[str, float] = {}
    prefix = name + "{"
    for k, pair in (doc.get("gauges") or {}).items():
        if k == name:
            out[""] = float(pair[0])
        elif k.startswith(prefix):
            out[k[len(prefix) : -1]] = float(pair[0])
    return out


def _human(n: float) -> str:
    """Compact count: 950 -> '950', 12_340 -> '12.3k', 4.2e6 -> '4.2M'."""
    for cut, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(n) >= cut:
            return f"{n / cut:.1f}{suffix}"
    return f"{n:g}"


def _shard_fractions(doc: dict[str, Any]) -> dict[str, float]:
    """Per-shard completion fraction from the shard progress gauges."""
    total = _gauge_series(doc, "mc.shard.blocks_total")
    done = _gauge_series(doc, "mc.shard.blocks_done")
    out: dict[str, float] = {}
    for label, t in total.items():
        if t > 0:
            out[label] = min(done.get(label, 0.0) / t, 1.0)
    return out


def format_stream_line(
    doc: dict[str, Any], prev: dict[str, Any] | None = None
) -> str:
    """One human-readable line per snapshot (``obs tail``).

    Rates are differenced against the previous snapshot when given;
    totals come from the (cumulative) snapshot itself.
    """
    t = float(doc.get("t", 0.0))
    frames = _counter_total(doc, "mc.frames")
    nodes = _counter_total(doc, "mc.nodes_expanded")
    bits = _counter_total(doc, "mc.bits")
    errors = _counter_total(doc, "mc.bit_errors")
    parts = [time.strftime("%H:%M:%S", time.localtime(t)) if t else "--:--:--"]
    if prev is not None:
        dt = t - float(prev.get("t", 0.0))
        if dt > 0:
            fps = (frames - _counter_total(prev, "mc.frames")) / dt
            nps = (nodes - _counter_total(prev, "mc.nodes_expanded")) / dt
            parts.append(f"{fps:6.1f} fr/s")
            parts.append(f"{_human(nps):>7}n/s")
    parts.append(f"frames {_human(frames):>7}")
    parts.append(f"nodes {_human(nodes):>7}")
    if bits > 0:
        parts.append(f"ber {errors / bits:.3g}")
    fractions = _shard_fractions(doc)
    if fractions:
        finished = sum(1 for f in fractions.values() if f >= 1.0)
        parts.append(f"shards {finished}/{len(fractions)}")
    return "  ".join(parts)


def format_top(docs: list[dict[str, Any]], *, run: str = "") -> str:
    """Terminal snapshot table (``obs top``): totals, rates, shard lag.

    Uses the last snapshot for totals and the last two for rates. Shard
    lag is blocks behind the leading shard, from the progress gauges.
    """
    if not docs:
        return "(no snapshots)"
    cur = docs[-1]
    prev = docs[-2] if len(docs) > 1 else None
    t = float(cur.get("t", 0.0))
    frames = _counter_total(cur, "mc.frames")
    nodes = _counter_total(cur, "mc.nodes_expanded")
    bits = _counter_total(cur, "mc.bits")
    errors = _counter_total(cur, "mc.bit_errors")
    decode_s = _counter_total(cur, "mc.decode_seconds")

    lines = []
    title = f"run {run}" if run else "metrics"
    stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(t)) if t else "?"
    lines.append(f"== {title} · {len(docs)} snapshot(s) · last {stamp} ==")
    fps = nps = None
    if prev is not None:
        dt = t - float(prev.get("t", 0.0))
        if dt > 0:
            fps = (frames - _counter_total(prev, "mc.frames")) / dt
            nps = (nodes - _counter_total(prev, "mc.nodes_expanded")) / dt
    rows = [
        ("frames", _human(frames), f"{fps:.1f}/s" if fps is not None else "-"),
        ("nodes", _human(nodes), f"{_human(nps)}/s" if nps is not None else "-"),
        (
            "ber",
            f"{errors / bits:.3g}" if bits else "-",
            f"{_human(errors)} err / {_human(bits)} bits" if bits else "",
        ),
        (
            "decode",
            f"{decode_s:.2f}s",
            f"{frames / decode_s:.1f} fr/s avg" if decode_s > 0 else "",
        ),
    ]
    w0 = max(len(r[0]) for r in rows)
    w1 = max(len(r[1]) for r in rows)
    for name, value, extra in rows:
        line = f"  {name.ljust(w0)}  {value.rjust(w1)}"
        if extra:
            line += f"  {extra}"
        lines.append(line)

    total = _gauge_series(cur, "mc.shard.blocks_total")
    done = _gauge_series(cur, "mc.shard.blocks_done")
    if total:
        lines.append("")
        lines.append("  shard      done/total   lag")
        leader = max(
            (done.get(lbl, 0.0) / t_ for lbl, t_ in total.items() if t_ > 0),
            default=0.0,
        )
        for label in sorted(total, key=lambda s: (len(s), s)):
            t_ = total[label]
            d = done.get(label, 0.0)
            frac = d / t_ if t_ > 0 else 0.0
            lag = (leader - frac) * t_ if t_ > 0 else 0.0
            shard = label.split("=", 1)[1] if "=" in label else label or "?"
            lines.append(
                f"  {shard:>5}  {int(d):>6}/{int(t_):<6}  {lag:5.1f} blocks"
            )
    return "\n".join(lines)
