"""Persistent experiment run registry (``runs/<timestamp>-<id>/``).

Every recorded harness / benchmark / ``repro-sd experiment`` invocation
becomes one *run directory* holding everything needed to compare it
against any other run later:

``manifest.json``
    Provenance: run id, experiment id, detector/sweep configuration,
    seeds, git SHA, Python/numpy versions, host info, wall time, status.
``series.json``
    The experiment's :class:`~repro.bench.harness.SeriesResult` table
    (columns + rows), when the run produced one.
``sweep.json``
    The :class:`~repro.mimo.montecarlo.SweepResult` series — decode
    time, BER, frame and node counts per SNR point.
``metrics.json``
    Span percentile summaries (p50/p95/p99) and final counter values
    from the run's tracer, plus — when a metrics registry was active —
    the final labelled counter/gauge/histogram snapshot.
``metrics.stream.jsonl``
    Live snapshot stream appended *while the run executes* (see
    :mod:`repro.obs.stream`); ``repro-sd obs tail``/``top`` replay it.
``trace.json``
    Optionally, the full Chrome ``trace_event`` document.

Mirroring the tracer's design, a *disabled* recorder (the default when
no runs directory was requested) turns every call into a guarded no-op:
no directories are created, nothing is serialised, and the instrumented
call sites pay one attribute check. ``repro.obs.report`` renders and
diffs the recorded artifacts.
"""

from __future__ import annotations

import json
import platform
import socket
import subprocess
import sys
import time
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.obs.export import chrome_trace
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, counter_totals, span_metrics
from repro.obs.stream import STREAM_FILE as _STREAM_FILE
from repro.obs.stream import MetricsStreamWriter
from repro.obs.tracer import Tracer

_log = get_logger(__name__)

#: On-disk schema version stamped into every manifest.
SCHEMA_VERSION = 1

#: Default registry root, relative to the current working directory.
DEFAULT_RUNS_DIR = "runs"

#: File names inside one run directory.
MANIFEST_FILE = "manifest.json"
SERIES_FILE = "series.json"
SWEEP_FILE = "sweep.json"
METRICS_FILE = "metrics.json"
TRACE_FILE = "trace.json"
#: Span call-tree with self/total times + function hotspots
#: (see repro.obs.profile; rendered by `runs show` and `profile diff`).
PROFILE_FILE = "profile.json"
#: Live metrics stream (written during the run; see repro.obs.stream).
STREAM_FILE = _STREAM_FILE


def _git_sha() -> str | None:
    """The current repository HEAD, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def capture_environment() -> dict[str, Any]:
    """Reproducibility context recorded into every manifest."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "hostname": socket.gethostname(),
    }


def make_run_id(experiment: str) -> str:
    """``<UTC timestamp>-<experiment>-<random suffix>`` — sortable and
    collision-free even for runs started within the same second."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{experiment}-{uuid.uuid4().hex[:6]}"


@dataclass
class RunManifest:
    """Provenance record for one run (serialised to ``manifest.json``)."""

    run_id: str
    experiment: str
    created_utc: str
    status: str = "running"
    seed: int | None = None
    config: dict[str, Any] = field(default_factory=dict)
    environment: dict[str, Any] = field(default_factory=dict)
    elapsed_s: float | None = None
    #: Artifact file names the recorder wrote (stamped at finalize), so
    #: readers can see what a run holds without listing its directory.
    artifacts: list[str] = field(default_factory=list)
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


def sweep_to_dict(sweep) -> dict[str, Any]:
    """Serialise a :class:`SweepResult` (time + BER per SNR point)."""
    points = []
    for p in sweep.points:
        nodes = p.mean_nodes_expanded()
        points.append(
            {
                "snr_db": p.snr_db,
                "ber": p.ber,
                "frames": p.frames,
                "decode_time_s": p.decode_time_s,
                "mean_decode_time_s": p.mean_decode_time_s
                if p.frames
                else None,
                "bit_errors": p.errors.bit_errors,
                "bits": p.errors.bits,
                "mean_nodes": None if nodes != nodes else nodes,  # NaN -> null
            }
        )
    return {
        "detector": sweep.detector_name,
        "system": sweep.system_label,
        "points": points,
    }


def series_to_dict(series) -> dict[str, Any]:
    """Serialise a :class:`SeriesResult` (duck-typed: columns + rows)."""
    return {
        "experiment": series.experiment,
        "title": series.title,
        "columns": list(series.columns),
        "rows": [dict(row) for row in series.rows],
        "notes": series.notes,
    }


def metrics_to_dict(tracer: Tracer) -> dict[str, Any]:
    """Serialise span percentile summaries and counter totals."""
    spans = {}
    for name, s in span_metrics(tracer).items():
        spans[name] = {
            "count": s.count,
            "total_s": s.total,
            "mean_s": s.mean,
            "min_s": s.minimum,
            "max_s": s.maximum,
            "p50_s": s.p50,
            "p95_s": s.p95,
            "p99_s": s.p99,
        }
    return {"spans": spans, "counters": counter_totals(tracer)}


class RunRecorder:
    """Accumulates one run's artifacts; all methods no-op when disabled.

    Created by :meth:`RunRegistry.new_run`. Nothing touches the
    filesystem until the first ``record_*`` call on an *enabled*
    recorder, and ``finalize`` stamps the manifest last — a crash
    mid-run leaves a manifest-less directory that the loaders skip.
    """

    def __init__(
        self,
        path: Path | None,
        manifest: RunManifest | None,
        *,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled and path is not None
        self.path = path
        self.manifest = manifest
        self._started = time.perf_counter()
        self._artifacts: set[str] = set()

    def _write(self, name: str, payload: Mapping[str, Any]) -> None:
        assert self.path is not None
        self.path.mkdir(parents=True, exist_ok=True)
        (self.path / name).write_text(json.dumps(payload, indent=1))
        self._artifacts.add(name)

    def record_series(self, series) -> None:
        """Record a :class:`SeriesResult` table as ``series.json``."""
        if not self.enabled:
            return
        self._write(SERIES_FILE, series_to_dict(series))

    def record_sweep(self, sweep) -> None:
        """Record a :class:`SweepResult` series as ``sweep.json``."""
        if not self.enabled:
            return
        self._write(SWEEP_FILE, sweep_to_dict(sweep))

    def record_metrics(
        self, tracer: Tracer, metrics: MetricsRegistry | None = None
    ) -> None:
        """Record the tracer's span/counter summary as ``metrics.json``.

        When an enabled :class:`MetricsRegistry` is also given, its
        final snapshot lands under an ``instruments`` key (flat
        Prometheus-style series names).
        """
        if not self.enabled:
            return
        doc = metrics_to_dict(tracer)
        if metrics is not None and metrics.enabled:
            doc["instruments"] = metrics.snapshot().to_dict()
        self._write(METRICS_FILE, doc)

    def stream_writer(
        self, *, interval_s: float | None = None
    ) -> MetricsStreamWriter | None:
        """A live-snapshot writer appending to this run's
        ``metrics.stream.jsonl`` (None for a disabled recorder).

        Attach it to a registry (``metrics.stream = ...``) so engine
        ``tick()`` calls land here; the run directory is created eagerly
        so ``obs tail --follow`` can resolve the run before the first
        other artifact is written.
        """
        if not self.enabled:
            return None
        assert self.path is not None
        self.path.mkdir(parents=True, exist_ok=True)
        kwargs = {} if interval_s is None else {"interval_s": interval_s}
        return MetricsStreamWriter(self.path / STREAM_FILE, **kwargs)

    def record_trace(self, tracer: Tracer) -> None:
        """Record the full Chrome trace document as ``trace.json``."""
        if not self.enabled:
            return
        self._write(TRACE_FILE, chrome_trace(tracer))

    def record_profile(self, tree_or_tracer) -> None:
        """Record a span call-tree as ``profile.json``.

        Accepts a ready :class:`~repro.obs.profile.ProfileTree` (duck-
        typed on ``to_dict``) or a tracer whose span events are folded
        into one on the spot — every recorded run can carry its own
        perf attribution for ``repro-sd profile diff`` at no extra
        runtime cost (the fold is a read-side pass over the buffer).
        """
        if not self.enabled:
            return
        if isinstance(tree_or_tracer, Tracer):
            from repro.obs.profile import build_profile_tree

            tree = build_profile_tree(tree_or_tracer.events)
        else:
            tree = tree_or_tracer
        self._write(PROFILE_FILE, tree.to_dict())

    def finalize(self, status: str = "complete") -> Path | None:
        """Stamp the manifest (status + elapsed time); returns the run
        directory, or None for a disabled recorder."""
        if not self.enabled:
            return None
        assert self.manifest is not None and self.path is not None
        self.manifest.status = status
        self.manifest.elapsed_s = time.perf_counter() - self._started
        if (self.path / STREAM_FILE).is_file():
            self._artifacts.add(STREAM_FILE)
        self.manifest.artifacts = sorted(self._artifacts)
        self._write(MANIFEST_FILE, self.manifest.to_dict())
        _log.info("recorded run %s -> %s", self.manifest.run_id, self.path)
        return self.path


#: Shared disabled recorder — the no-op analogue of ``NULL_TRACER``.
NULL_RECORDER = RunRecorder(None, None, enabled=False)


class RunRegistry:
    """Creates and enumerates run directories under one root.

    Parameters
    ----------
    root:
        Registry root directory (``runs/`` by convention). ``None``
        yields a *disabled* registry whose recorders never write.
    """

    def __init__(self, root: str | Path | None) -> None:
        self.root = Path(root) if root is not None else None

    @property
    def enabled(self) -> bool:
        """Whether this registry persists anything at all."""
        return self.root is not None

    def new_run(
        self,
        experiment: str,
        *,
        seed: int | None = None,
        config: Mapping[str, Any] | None = None,
    ) -> RunRecorder:
        """A recorder for one new run (the shared no-op when disabled)."""
        if not self.enabled:
            return NULL_RECORDER
        run_id = make_run_id(experiment)
        manifest = RunManifest(
            run_id=run_id,
            experiment=experiment,
            created_utc=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            seed=seed,
            config=dict(config or {}),
            environment=capture_environment(),
        )
        assert self.root is not None
        return RunRecorder(self.root / run_id, manifest)

    def run_dirs(self, *, include_unfinished: bool = False) -> list[Path]:
        """All finalized run directories, oldest first (id-sorted).

        ``include_unfinished`` also lists directories whose manifest has
        not landed yet (a run still executing, or one that crashed
        before ``finalize``) — what ``obs tail --follow`` needs to
        attach to a live run.
        """
        if self.root is None or not self.root.is_dir():
            return []
        return sorted(
            p
            for p in self.root.iterdir()
            if p.is_dir()
            and (include_unfinished or (p / MANIFEST_FILE).is_file())
        )

    def resolve(self, token: str, *, include_unfinished: bool = False) -> Path:
        """Resolve a user-supplied run reference to a directory.

        Accepts an exact run id, a unique id prefix, ``latest`` /
        ``latest~N`` (N runs before the newest), or a filesystem path.
        ``include_unfinished`` extends every form to manifest-less
        (live/crashed) run directories. Raises :class:`KeyError` with a
        one-line message otherwise.
        """
        as_path = Path(token)
        if as_path.is_dir() and (
            include_unfinished or (as_path / MANIFEST_FILE).is_file()
        ):
            return as_path
        runs = self.run_dirs(include_unfinished=include_unfinished)
        if token == "latest" or token.startswith("latest~"):
            back = 0
            if "~" in token:
                try:
                    back = int(token.split("~", 1)[1])
                except ValueError:
                    raise KeyError(f"bad run reference {token!r}")
            if back >= len(runs):
                raise KeyError(
                    f"only {len(runs)} run(s) recorded; {token!r} is out of range"
                )
            return runs[-1 - back]
        exact = [p for p in runs if p.name == token]
        if exact:
            return exact[0]
        matches = [p for p in runs if p.name.startswith(token)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(
                f"no run matching {token!r} under {self.root} "
                f"({len(runs)} run(s) recorded)"
            )
        names = ", ".join(p.name for p in matches[:4])
        raise KeyError(f"ambiguous run reference {token!r}: {names}, ...")
