"""repro.obs — structured tracing, metrics and diagnostics.

Three cooperating pieces (see ``docs/observability.md``):

``repro.obs.tracer``
    :class:`Tracer` / :class:`Span` / :class:`Counter` — a lightweight
    span & counter collector, nested via ``contextvars``, with
    near-zero overhead when disabled. The decoder, the detectors, the
    Monte Carlo engine and the FPGA pipeline simulator are all
    instrumented against the *ambient* tracer (``current_tracer()``).
``repro.obs.export`` / ``repro.obs.metrics``
    Exporters: Chrome ``trace_event`` JSON (``chrome://tracing`` /
    Perfetto), a JSONL event log, and an aligned-text percentile
    summary (p50/p95/p99) reused by the benchmark harness.
``repro.obs.log``
    ``logging``-based diagnostics channel with a single
    :func:`~repro.obs.log.configure` entry point; the CLI's ``-v``/
    ``-q`` flags map onto it.
``repro.obs.registry`` / ``repro.obs.report``
    Persistent run registry: every recorded harness / benchmark /
    ``repro-sd experiment`` invocation becomes a ``runs/<id>/``
    directory (manifest + series + metrics + optional trace), and
    ``repro-sd runs list|show|diff|report`` renders and compares them.

Quickstart::

    from repro.obs import Tracer, use_tracer, write_chrome_trace

    tracer = Tracer()
    with use_tracer(tracer):
        decoder.detect(received)
    write_chrome_trace(tracer, "decode.trace.json")
"""

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.metrics import (
    counter_totals,
    format_metrics,
    span_metrics,
    traversal_rates,
)
from repro.obs.registry import (
    NULL_RECORDER,
    RunManifest,
    RunRecorder,
    RunRegistry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    PHASE_COUNTER,
    PHASE_INSTANT,
    PHASE_SPAN,
    Counter,
    Span,
    TraceEvent,
    Tracer,
    current_tracer,
    reset_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Tracer",
    "Span",
    "Counter",
    "TraceEvent",
    "NULL_TRACER",
    "PHASE_SPAN",
    "PHASE_INSTANT",
    "PHASE_COUNTER",
    "current_tracer",
    "set_tracer",
    "reset_tracer",
    "use_tracer",
    "chrome_trace",
    "chrome_trace_events",
    "jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
    "span_metrics",
    "counter_totals",
    "traversal_rates",
    "format_metrics",
    "RunRegistry",
    "RunRecorder",
    "RunManifest",
    "NULL_RECORDER",
    "configure_logging",
    "get_logger",
]
