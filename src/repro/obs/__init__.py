"""repro.obs — structured tracing, metrics and diagnostics.

Cooperating pieces (see ``docs/observability.md``):

``repro.obs.tracer``
    :class:`Tracer` / :class:`Span` / :class:`Counter` — a lightweight
    span & counter collector, nested via ``contextvars``, with
    near-zero overhead when disabled. The decoder, the detectors, the
    Monte Carlo engine and the FPGA pipeline simulator are all
    instrumented against the *ambient* tracer (``current_tracer()``).
    :class:`TraceContext` propagates the observed state into Monte
    Carlo shard workers, whose buffers flow back over the progress
    queue into one merged per-process-lane trace.
``repro.obs.metrics``
    The labelled metrics subsystem — :class:`MetricsRegistry` hands out
    counters, gauges and exponential-bucket histograms against the
    ambient registry (``current_metrics()``), snapshots merge exactly
    across processes, and exporters render Prometheus text — plus the
    original tracer percentile summaries.
``repro.obs.export`` / ``repro.obs.stream``
    Exporters: Chrome ``trace_event`` JSON (``chrome://tracing`` /
    Perfetto) with one lane per worker process, a JSONL event log that
    round-trips (``read_jsonl``), and the live metrics stream
    (``metrics.stream.jsonl``) behind ``repro-sd obs tail`` / ``top``.
``repro.obs.log``
    ``logging``-based diagnostics channel with a single
    :func:`~repro.obs.log.configure` entry point; the CLI's ``-v``/
    ``-q`` flags map onto it.
``repro.obs.profile``
    Performance attribution: fold a tracer's spans into a call-tree
    with **self vs total time**, scope :mod:`cProfile` to spans
    (:class:`SpanProfiler`), export collapsed-stack / speedscope
    flamegraphs, and diff two recorded runs' per-span self-times
    (``repro-sd profile run|flame|diff``).
``repro.obs.registry`` / ``repro.obs.report``
    Persistent run registry: every recorded harness / benchmark /
    ``repro-sd experiment`` invocation becomes a ``runs/<id>/``
    directory (manifest + series + metrics + stream + optional trace),
    and ``repro-sd runs list|show|diff|report`` renders and compares
    them.

Quickstart::

    from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer

    tracer, metrics = Tracer(), MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        decoder.detect(received)
    write_chrome_trace(tracer, "decode.trace.json")
    print(to_prometheus(metrics.snapshot()))
"""

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    events_from_chrome,
    jsonl_lines,
    read_jsonl,
    tracer_from_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    counter_totals,
    current_metrics,
    exponential_buckets,
    format_metrics,
    reset_metrics,
    set_metrics,
    span_metrics,
    to_prometheus,
    traversal_rates,
    use_metrics,
)
from repro.obs.profile import (
    ProfileDiff,
    ProfileNode,
    ProfileTree,
    SpanProfiler,
    build_profile_tree,
    collapsed_stack_lines,
    diff_profiles,
    format_profile,
    format_profile_diff,
    load_profile,
    parse_collapsed,
    profile_callable,
    profile_experiment,
    self_by_name,
    speedscope_document,
    write_collapsed,
    write_speedscope,
)
from repro.obs.registry import (
    NULL_RECORDER,
    RunManifest,
    RunRecorder,
    RunRegistry,
)
from repro.obs.stream import (
    STREAM_FILE,
    MetricsStreamWriter,
    follow_stream,
    format_stream_line,
    format_top,
    read_stream,
)
from repro.obs.tracer import (
    NULL_TRACER,
    PHASE_COUNTER,
    PHASE_INSTANT,
    PHASE_SPAN,
    Counter,
    Span,
    TraceContext,
    TraceEvent,
    Tracer,
    current_tracer,
    reset_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Tracer",
    "Span",
    "Counter",
    "TraceEvent",
    "TraceContext",
    "NULL_TRACER",
    "PHASE_SPAN",
    "PHASE_INSTANT",
    "PHASE_COUNTER",
    "current_tracer",
    "set_tracer",
    "reset_tracer",
    "use_tracer",
    "MetricsRegistry",
    "MetricsSnapshot",
    "HistogramData",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
    "exponential_buckets",
    "current_metrics",
    "set_metrics",
    "reset_metrics",
    "use_metrics",
    "to_prometheus",
    "chrome_trace",
    "chrome_trace_events",
    "jsonl_lines",
    "read_jsonl",
    "tracer_from_events",
    "write_chrome_trace",
    "write_jsonl",
    "MetricsStreamWriter",
    "STREAM_FILE",
    "read_stream",
    "follow_stream",
    "format_stream_line",
    "format_top",
    "span_metrics",
    "counter_totals",
    "traversal_rates",
    "format_metrics",
    "events_from_chrome",
    "ProfileNode",
    "ProfileTree",
    "ProfileDiff",
    "SpanProfiler",
    "build_profile_tree",
    "self_by_name",
    "collapsed_stack_lines",
    "parse_collapsed",
    "speedscope_document",
    "write_collapsed",
    "write_speedscope",
    "diff_profiles",
    "format_profile",
    "format_profile_diff",
    "load_profile",
    "profile_callable",
    "profile_experiment",
    "RunRegistry",
    "RunRecorder",
    "RunManifest",
    "NULL_RECORDER",
    "configure_logging",
    "get_logger",
]
