"""Trace exporters: Chrome ``trace_event`` JSON and a JSONL event log.

The Chrome format (one ``{"traceEvents": [...]}`` object) loads directly
in ``chrome://tracing`` or https://ui.perfetto.dev; spans become
complete events (``ph: "X"``), instants ``ph: "i"`` and counters
``ph: "C"``. Timestamps are microseconds from the tracer epoch and are
emitted in monotonically non-decreasing order.

Events absorbed from Monte Carlo shard workers carry their origin OS
pid (see :class:`~repro.obs.tracer.TraceContext`); the exporter renders
one process lane per origin — the parent as ``pid 1`` (``repro (main)``),
each worker under its real pid with a ``shard worker`` process-name
metadata row — so a merged sharded sweep reads as one timeline with a
track per process.

The JSONL log is one JSON object per recorded event, in emission order —
convenient for ad-hoc ``jq``/pandas post-processing. It round-trips:
:func:`read_jsonl` + :func:`tracer_from_events` rebuild a tracer good
enough for ``repro-sd stats --from-jsonl`` and
``repro-sd trace --from-jsonl``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import (
    PHASE_COUNTER,
    PHASE_INSTANT,
    PHASE_SPAN,
    TraceEvent,
    Tracer,
)

#: Synthetic process id for events recorded by the owning process
#: (``TraceEvent.pid == 0``); worker events keep their real OS pid.
TRACE_PID = 1


def _tid_map(tracer: Tracer) -> dict[tuple[int, int], int]:
    """Map (origin pid, OS thread ident) to small per-process tids."""
    mapping: dict[tuple[int, int], int] = {}
    per_pid: dict[int, int] = {}
    for event in tracer.events:
        key = (event.pid, event.tid)
        if key not in mapping:
            per_pid[event.pid] = per_pid.get(event.pid, 0) + 1
            mapping[key] = per_pid[event.pid]
    return mapping


def _process_metadata(tracer: Tracer) -> list[dict]:
    """Chrome ``process_name``/``process_sort_index`` metadata rows —
    one lane per origin process, parent first."""
    pids: list[int] = []
    for event in tracer.events:
        if event.pid not in pids:
            pids.append(event.pid)
    rows: list[dict] = []
    for order, pid in enumerate(sorted(pids, key=lambda p: (p != 0, p))):
        lane = TRACE_PID if pid == 0 else pid
        name = "repro (main)" if pid == 0 else f"shard worker {pid}"
        rows.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": lane,
                "tid": 0,
                "ts": 0,
                "args": {"name": name},
            }
        )
        rows.append(
            {
                "ph": "M",
                "name": "process_sort_index",
                "pid": lane,
                "tid": 0,
                "ts": 0,
                "args": {"sort_index": order},
            }
        )
    return rows


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The tracer's events as Chrome ``trace_event`` dicts, ts-sorted,
    prefixed with per-process metadata rows."""
    tids = _tid_map(tracer)
    rows: list[dict] = []
    for event in tracer.events:
        base = {
            "name": event.name,
            "ts": round(event.ts * 1e6, 3),
            "pid": TRACE_PID if event.pid == 0 else event.pid,
            "tid": tids.get((event.pid, event.tid), 0),
        }
        if event.phase == PHASE_SPAN:
            base["ph"] = "X"
            base["dur"] = round(event.dur * 1e6, 3)
            if event.args:
                base["args"] = dict(event.args)
        elif event.phase == PHASE_INSTANT:
            base["ph"] = "i"
            base["s"] = "t"
            if event.args:
                base["args"] = dict(event.args)
        elif event.phase == PHASE_COUNTER:
            base["ph"] = "C"
            base["args"] = {event.name: event.value}
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown event phase {event.phase!r}")
        rows.append(base)
    rows.sort(key=lambda r: r["ts"])
    return _process_metadata(tracer) + rows


def chrome_trace(tracer: Tracer) -> dict:
    """The full Chrome trace document for one tracer."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer)))
    return path


def jsonl_lines(tracer: Tracer) -> list[str]:
    """One compact JSON object per event, in emission order."""
    lines = []
    for event in tracer.events:
        row = {
            "phase": event.phase,
            "name": event.name,
            "ts": event.ts,
        }
        if event.phase == PHASE_SPAN:
            row["dur"] = event.dur
            row["depth"] = event.depth
        if event.phase == PHASE_COUNTER:
            row["value"] = event.value
        if event.args:
            row["args"] = dict(event.args)
        if event.pid:
            row["pid"] = event.pid
        lines.append(json.dumps(row))
    return lines


def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write the JSONL event log to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = "\n".join(jsonl_lines(tracer))
    path.write_text(text + "\n" if text else "")
    return path


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Parse a JSONL event log back into :class:`TraceEvent` rows.

    Strict: raises :class:`FileNotFoundError` for a missing file and
    :class:`ValueError` (with the line number) for an empty log, a
    malformed line — including the truncated final line a killed writer
    leaves behind — or a row missing the required fields. The CLI error
    contract maps both to exit 2.
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no JSONL event log at {path}")
    events: list[TraceEvent] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}: malformed JSONL line {lineno}: {exc.msg} "
                    "(truncated write?)"
                ) from exc
            if not isinstance(row, dict) or "phase" not in row or "name" not in row:
                raise ValueError(
                    f"{path}: JSONL line {lineno} is not a trace event"
                )
            if row["phase"] not in (PHASE_SPAN, PHASE_INSTANT, PHASE_COUNTER):
                raise ValueError(
                    f"{path}: JSONL line {lineno} has unknown phase "
                    f"{row['phase']!r}"
                )
            try:
                events.append(
                    TraceEvent(
                        phase=row["phase"],
                        name=row["name"],
                        ts=float(row.get("ts", 0.0)),
                        dur=float(row.get("dur", 0.0)),
                        depth=int(row.get("depth", 0)),
                        value=float(row.get("value", 0.0)),
                        args=row.get("args"),
                        pid=int(row.get("pid", 0)),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}: JSONL line {lineno} has bad field types: {exc}"
                ) from exc
    if not events:
        raise ValueError(f"{path}: JSONL event log is empty")
    return events


def events_from_chrome(doc: dict) -> list[TraceEvent]:
    """Parse a Chrome ``trace_event`` document back into trace events.

    The inverse of :func:`chrome_trace` for the phases the tracer emits:
    complete spans (``ph: "X"``), instants (``"i"``) and counters
    (``"C"``). Metadata rows (``"M"``) and unknown phases are skipped.
    Timestamps come back in seconds; the exporter's synthetic main-lane
    pid (:data:`TRACE_PID`) maps back to ``0``. This is what lets
    ``repro-sd profile`` rebuild a span tree from a recorded run's
    ``trace.json``. Raises :class:`ValueError` when the document has no
    ``traceEvents`` list or no convertible events.
    """
    rows = doc.get("traceEvents")
    if not isinstance(rows, list):
        raise ValueError("not a Chrome trace document (no traceEvents list)")
    events: list[TraceEvent] = []
    for row in rows:
        if not isinstance(row, dict):
            continue
        ph = row.get("ph")
        if ph not in ("X", "i", "C"):
            continue
        pid = int(row.get("pid", TRACE_PID))
        base = {
            "name": str(row.get("name", "")),
            "ts": float(row.get("ts", 0.0)) / 1e6,
            "tid": int(row.get("tid", 0)),
            "pid": 0 if pid == TRACE_PID else pid,
        }
        if ph == "X":
            events.append(
                TraceEvent(
                    phase=PHASE_SPAN,
                    dur=float(row.get("dur", 0.0)) / 1e6,
                    args=row.get("args"),
                    **base,
                )
            )
        elif ph == "i":
            events.append(
                TraceEvent(phase=PHASE_INSTANT, args=row.get("args"), **base)
            )
        else:
            args = row.get("args") or {}
            events.append(
                TraceEvent(
                    phase=PHASE_COUNTER,
                    value=float(args.get(base["name"], 0.0)),
                    **base,
                )
            )
    if not events:
        raise ValueError("Chrome trace document holds no convertible events")
    return events


def tracer_from_events(events: list[TraceEvent]) -> Tracer:
    """A disabled-for-recording tracer wrapping pre-recorded events.

    Good enough for every read-side consumer (``stats``, ``trace``,
    exporters): spans, counters and instants are replayed verbatim;
    counter totals are reconstructed from each origin process's last
    running-total event, summed across origins (each worker counts its
    own running total, so the per-origin maxima are the shard totals).
    """
    tracer = Tracer(enabled=True, epoch=0.0)
    tracer._events = list(events)
    last: dict[tuple[int, str], float] = {}
    for event in events:
        if event.phase == PHASE_COUNTER:
            last[(event.pid, event.name)] = event.value
    for (_pid, name), value in last.items():
        tracer.counters[name] = tracer.counters.get(name, 0.0) + value
    return tracer
