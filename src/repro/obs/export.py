"""Trace exporters: Chrome ``trace_event`` JSON and a JSONL event log.

The Chrome format (one ``{"traceEvents": [...]}`` object) loads directly
in ``chrome://tracing`` or https://ui.perfetto.dev; spans become
complete events (``ph: "X"``), instants ``ph: "i"`` and counters
``ph: "C"``. Timestamps are microseconds from the tracer epoch and are
emitted in monotonically non-decreasing order.

The JSONL log is one JSON object per recorded event, in emission order —
convenient for ad-hoc ``jq``/pandas post-processing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN, Tracer

#: Synthetic process id used for all events (single-process tool).
TRACE_PID = 1


def _tid_map(tracer: Tracer) -> dict[int, int]:
    """Map OS thread idents to small stable ids (first seen = 1)."""
    mapping: dict[int, int] = {}
    for event in tracer.events:
        if event.tid not in mapping:
            mapping[event.tid] = len(mapping) + 1
    return mapping


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The tracer's events as Chrome ``trace_event`` dicts, ts-sorted."""
    tids = _tid_map(tracer)
    rows: list[dict] = []
    for event in tracer.events:
        base = {
            "name": event.name,
            "ts": round(event.ts * 1e6, 3),
            "pid": TRACE_PID,
            "tid": tids.get(event.tid, 0),
        }
        if event.phase == PHASE_SPAN:
            base["ph"] = "X"
            base["dur"] = round(event.dur * 1e6, 3)
            if event.args:
                base["args"] = dict(event.args)
        elif event.phase == PHASE_INSTANT:
            base["ph"] = "i"
            base["s"] = "t"
            if event.args:
                base["args"] = dict(event.args)
        elif event.phase == PHASE_COUNTER:
            base["ph"] = "C"
            base["args"] = {event.name: event.value}
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown event phase {event.phase!r}")
        rows.append(base)
    rows.sort(key=lambda r: r["ts"])
    return rows


def chrome_trace(tracer: Tracer) -> dict:
    """The full Chrome trace document for one tracer."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer)))
    return path


def jsonl_lines(tracer: Tracer) -> list[str]:
    """One compact JSON object per event, in emission order."""
    lines = []
    for event in tracer.events:
        row = {
            "phase": event.phase,
            "name": event.name,
            "ts": event.ts,
        }
        if event.phase == PHASE_SPAN:
            row["dur"] = event.dur
            row["depth"] = event.depth
        if event.phase == PHASE_COUNTER:
            row["value"] = event.value
        if event.args:
            row["args"] = dict(event.args)
        lines.append(json.dumps(row))
    return lines


def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write the JSONL event log to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = "\n".join(jsonl_lines(tracer))
    path.write_text(text + "\n" if text else "")
    return path
