"""Span/counter tracer for the decoder and FPGA-pipeline hot paths.

Design constraints (see ``docs/observability.md``):

* **Near-zero overhead when disabled.** Instrumented code fetches the
  ambient tracer once per decode (``current_tracer()``) and either
  guards per-batch emission with ``tracer.enabled`` or uses the no-op
  span the disabled tracer hands out. No string formatting, no dict
  building, no clock reads happen on the disabled path.
* **Cheap when enabled, too.** Per-expansion hot paths use
  :meth:`Tracer.mark`, which appends a raw tuple (one clock read, no
  event object, no args dict) and defers :class:`TraceEvent`
  materialisation to the first inspection — the difference between a
  few hundred nanoseconds and a few microseconds per expansion, which
  is what keeps fully-enabled telemetry under the ≤5 % decode-overhead
  budget enforced by ``benchmarks/bench_obs_overhead.py``.
* **Nesting via contextvars.** Span depth lives in a
  :class:`contextvars.ContextVar`, so nesting is correct across
  threads and ``asyncio`` tasks without locks on the hot path.
* **Exporter-agnostic records.** The tracer stores plain
  :class:`TraceEvent` rows; :mod:`repro.obs.export` turns them into
  Chrome ``trace_event`` JSON or a JSONL log, and
  :mod:`repro.obs.metrics` into a percentile summary.
* **Cross-process propagation.** A :class:`TraceContext` captured in
  the parent ships the *enabled* flags and the parent's clock epoch to
  Monte Carlo shard workers (it rides in
  :class:`~repro.mimo.parallel_mc.ShardSpec`). Workers build their own
  tracer against that epoch (``perf_counter`` is CLOCK_MONOTONIC on
  Linux — system-wide, so timestamps stay comparable), stamp events
  with their OS pid, and :meth:`Tracer.drain` / :meth:`Tracer.absorb`
  move the buffers back through the existing progress queue. The
  merged trace renders one lane per worker process.

Usage::

    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        decoder.detect(received)        # instrumented internally
    write_chrome_trace(tracer, "decode.trace.json")
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter as _perf_counter
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, NamedTuple

from repro.util.timing import WallClock
from repro.util.validation import check_positive_int

_get_ident = threading.get_ident

#: Event phases, mirroring the Chrome trace_event vocabulary.
PHASE_SPAN = "span"
PHASE_INSTANT = "instant"
PHASE_COUNTER = "counter"


class TraceEvent(NamedTuple):
    """One recorded event (a completed span, an instant, or a count).

    ``ts`` and ``dur`` are seconds relative to the tracer's epoch (its
    construction, or the last :meth:`Tracer.clear`). ``depth`` is the
    span-nesting depth at emission; ``tid`` the OS thread ident;
    ``pid`` the *origin process* (0 = the process that owns the tracer,
    a real OS pid for events absorbed from shard workers). A
    ``NamedTuple`` rather than a frozen dataclass: events are built on
    hot paths and tuple construction is several times cheaper.
    """

    phase: str
    name: str
    ts: float
    dur: float = 0.0
    depth: int = 0
    tid: int = 0
    value: float = 0.0
    args: Mapping[str, Any] | None = None
    pid: int = 0


class Span:
    """Context manager recording one timed region on a tracer.

    Created via :meth:`Tracer.span`; the event is appended on exit so a
    crash inside the region leaves no half-open record.
    """

    __slots__ = ("_tracer", "name", "args", "_start", "_token")

    def __init__(self, tracer: "Tracer", name: str, args: Mapping | None) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start: float | None = None
        self._token = None

    def __enter__(self) -> "Span":
        hook = self._tracer.on_span_enter
        if hook is not None:
            hook(self.name)
        self._token = _DEPTH.set(_DEPTH.get() + 1)
        self._start = self._tracer._now()
        return self

    def __exit__(self, *exc: object) -> None:
        tracer = self._tracer
        end = tracer._now()
        hook = tracer.on_span_exit
        if hook is not None:
            hook(self.name)
        depth = _DEPTH.get()
        _DEPTH.reset(self._token)
        start = self._start if self._start is not None else end
        tracer._record(
            TraceEvent(
                phase=PHASE_SPAN,
                name=self.name,
                ts=start,
                dur=end - start,
                depth=depth,
                tid=threading.get_ident(),
                args=self.args,
                pid=tracer.pid,
            )
        )


class _NullSpan:
    """Shared no-op span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Current span-nesting depth for the running execution context.
_DEPTH: ContextVar[int] = ContextVar("repro_obs_depth", default=0)


@dataclass
class Counter:
    """A named counter bound to one tracer (convenience handle)."""

    tracer: "Tracer"
    name: str

    def add(self, value: float = 1.0) -> None:
        """Increment the counter (no-op on a disabled tracer)."""
        self.tracer.count(self.name, value)

    @property
    def value(self) -> float:
        """Current accumulated total."""
        return self.tracer.counters.get(self.name, 0.0)


class Tracer:
    """Collects spans, instants and counters for one observed run.

    Parameters
    ----------
    enabled:
        When False every API is a no-op; :data:`NULL_TRACER` is the
        canonical disabled instance that ``current_tracer()`` returns
        when nothing was installed.
    clock:
        Injectable monotonic clock (deterministic tests).
    epoch:
        Absolute clock reading to measure timestamps from. ``None``
        (default) takes the clock's *now*; shard workers pass the
        parent's epoch (via :class:`TraceContext`) so their events land
        on the parent's timeline.
    pid:
        Origin-process stamp for every event this tracer records.
        ``0`` means "the owning process" (the exporter maps it to the
        primary lane); workers pass ``os.getpid()``.
    mark_stride:
        Sampling stride for *single-node* expansion marks. DFS expands
        one node per GEMM batch, emitting hundreds of ``sd.batch``
        instants per frame; recording every one costs more decode time
        than the whole rest of the stack and produces unreadable
        traces. Hot paths that honour the stride (the traversal expand
        hook) record every ``mark_stride``-th single-node mark and
        every pooled (``pool > 1``) mark. Exact expansion counts are
        unaffected — they live in the metrics registry and in
        ``DecodeStats``; marks are timeline *samples*. ``1`` records
        everything.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: WallClock | None = None,
        epoch: float | None = None,
        pid: int = 0,
        mark_stride: int = 16,
    ) -> None:
        self.enabled = enabled
        self.mark_stride = check_positive_int(mark_stride, "mark_stride")
        #: Optional callables invoked with the span *name* at every span
        #: boundary (enter fires before the start timestamp is taken,
        #: exit after the end timestamp — hook cost never lands inside
        #: the span it brackets). ``repro.obs.profile.SpanProfiler``
        #: attaches here to scope cProfile capture to tracer spans; the
        #: cost when unset is one attribute load + None check per span.
        self.on_span_enter = None
        self.on_span_exit = None
        self._clock = clock or WallClock()
        # One bound call per mark(): the default WallClock is a pure
        # perf_counter wrapper, so the hot path skips the wrapper frame.
        self._mark_now = _perf_counter if clock is None else self._clock.now
        self._epoch = self._clock.now() if epoch is None else float(epoch)
        self.pid = pid
        self._events: list[TraceEvent] = []
        #: Deferred :meth:`mark` rows: ``(name, ts, tid, level, pool)``.
        self._marks: list[tuple[str, float, int, int, int]] = []
        self.counters: dict[str, float] = {}
        #: Counter totals already shipped by :meth:`drain`.
        self._drained_counters: dict[str, float] = {}

    # -- recording ------------------------------------------------------

    def _now(self) -> float:
        return self._clock.now() - self._epoch

    def _materialize(self) -> None:
        """Turn deferred :meth:`mark` rows into real instant events."""
        marks, self._marks = self._marks, []
        append = self._events.append
        pid = self.pid
        for name, ts, tid, level, pool in marks:
            append(
                TraceEvent(
                    phase=PHASE_INSTANT,
                    name=name,
                    ts=ts,
                    tid=tid,
                    args={"level": level, "pool": pool},
                    pid=pid,
                )
            )

    def _record(self, event: TraceEvent) -> None:
        # Deliberately does NOT materialise pending marks: span exits
        # land inside the decode hot loop, and the exporters ts-sort
        # anyway, so mark conversion can wait for the first inspection.
        self._events.append(event)

    @property
    def events(self) -> list[TraceEvent]:
        """All recorded events, in emission order (marks materialised)."""
        if self._marks:
            self._materialize()
        return self._events

    def span(self, name: str, **args: Any):
        """A context manager timing one named region.

        Keyword arguments become the span's ``args`` payload (visible in
        the Chrome trace viewer). Disabled tracers return a shared no-op
        span: no allocation beyond the call itself.
        """
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, args or None)

    def instant(self, name: str, **args: Any) -> None:
        """Record a point-in-time event (Chrome ``i`` phase)."""
        if not self.enabled:
            return
        self._record(
            TraceEvent(
                phase=PHASE_INSTANT,
                name=name,
                ts=self._now(),
                depth=_DEPTH.get(),
                tid=threading.get_ident(),
                args=args or None,
                pid=self.pid,
            )
        )

    def mark(self, name: str, level: int, pool: int) -> None:
        """Deferred instant for per-expansion hot paths.

        Semantically ``instant(name, level=..., pool=...)`` but built
        from one raw tuple append — no kwargs dict, no event object, no
        depth lookup — and materialised lazily. The traversal engine
        calls this once per GEMM batch (tens of thousands of times per
        sweep); the full ``instant`` path there is what used to push
        enabled-tracer overhead past the CI budget.
        """
        if not self.enabled:
            return
        self._marks.append(
            (name, self._mark_now() - self._epoch, _get_ident(), level, pool)
        )

    def mark_bindings(self):
        """Raw pieces of the :meth:`mark` fast path, or ``None`` when off.

        Returns ``(append, now, epoch, tid)`` — the mark-buffer append,
        the mark clock, the epoch offset and the *calling thread's*
        ident — so a hot-path caller can fuse
        ``append((name, now() - epoch, tid, level, pool))`` into its own
        prebound closure: every per-call attribute lookup and the extra
        call frame of :meth:`mark` paid once per solve instead of tens
        of thousands of times per sweep. Rebind per solve (a
        :meth:`clear` swaps the buffer, and the thread ident is frozen
        at binding time).
        """
        if not self.enabled:
            return None
        return self._marks.append, self._mark_now, self._epoch, _get_ident()

    def count(self, name: str, value: float = 1.0) -> None:
        """Accumulate a named counter and record the running total."""
        if not self.enabled:
            return
        total = self.counters.get(name, 0.0) + value
        self.counters[name] = total
        self._record(
            TraceEvent(
                phase=PHASE_COUNTER,
                name=name,
                ts=self._now(),
                tid=threading.get_ident(),
                value=total,
                pid=self.pid,
            )
        )

    def counter(self, name: str) -> Counter:
        """A bound :class:`Counter` handle for repeated increments."""
        return Counter(self, name)

    # -- cross-process propagation --------------------------------------

    def drain(self) -> tuple[list[TraceEvent], dict[str, float]]:
        """Pop buffered events plus counter *deltas* since the last drain.

        The worker-side half of shard telemetry: called after every
        channel block (and from the crash path, so a dying shard still
        ships its partial trace), the returned pair is small enough to
        ride the existing Manager progress queue. Counter deltas — not
        totals — keep parent-side :meth:`absorb` merges exact no matter
        how many flushes a shard makes.
        """
        if self._marks:
            self._materialize()
        events, self._events = self._events, []
        deltas: dict[str, float] = {}
        for name, total in self.counters.items():
            delta = total - self._drained_counters.get(name, 0.0)
            if delta:
                deltas[name] = delta
            self._drained_counters[name] = total
        return events, deltas

    def absorb(
        self,
        events: Iterable[TraceEvent],
        counters: Mapping[str, float] | None = None,
    ) -> None:
        """Fold a worker's drained events and counter deltas into this
        tracer.

        Events are appended as-is (they already carry the worker's
        ``pid`` stamp and share this tracer's epoch — see
        :class:`TraceContext`); counter deltas add into this tracer's
        totals *without* re-emitting counter events, since the worker's
        own counter events are in ``events`` and render on its lane.
        """
        if not self.enabled:
            return
        if self._marks:
            self._materialize()
        self._events.extend(events)
        if counters:
            for name, delta in counters.items():
                self.counters[name] = self.counters.get(name, 0.0) + delta

    # -- inspection ------------------------------------------------------

    def spans(self, name: str | None = None) -> list[TraceEvent]:
        """All completed span events, optionally filtered by name."""
        return [
            e
            for e in self.events
            if e.phase == PHASE_SPAN and (name is None or e.name == name)
        ]

    def span_durations(self) -> dict[str, list[float]]:
        """Span durations (seconds) grouped by span name."""
        grouped: dict[str, list[float]] = {}
        for e in self.events:
            if e.phase == PHASE_SPAN:
                grouped.setdefault(e.name, []).append(e.dur)
        return grouped

    def clear(self) -> None:
        """Drop all recorded events/counters and restart the epoch."""
        self._events = []
        self._marks = []
        self.counters = {}
        self._drained_counters = {}
        self._epoch = self._clock.now()


#: Canonical disabled tracer; what ``current_tracer()`` yields when no
#: tracer has been installed. Never record on it.
NULL_TRACER = Tracer(enabled=False)

_CURRENT: ContextVar[Tracer] = ContextVar("repro_obs_tracer", default=NULL_TRACER)


def current_tracer() -> Tracer:
    """The tracer installed for this execution context (never None)."""
    return _CURRENT.get()


def set_tracer(tracer: Tracer):
    """Install ``tracer`` for this context; returns a reset token."""
    return _CURRENT.set(tracer)


def reset_tracer(token) -> None:
    """Undo a :func:`set_tracer` with its token."""
    _CURRENT.reset(token)


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scope ``tracer`` as the ambient tracer for a ``with`` block."""
    token = set_tracer(tracer)
    try:
        yield tracer
    finally:
        reset_tracer(token)


@dataclass(frozen=True)
class TraceContext:
    """Telemetry propagation record carried across process boundaries.

    Contextvars don't cross processes, so the parent captures *what is
    observed* (trace / metrics enabled) plus its tracer's absolute
    clock epoch, and ships this frozen record inside every
    :class:`~repro.mimo.parallel_mc.ShardSpec`. Workers rebuild a
    :class:`Tracer` (same epoch, own pid) and a
    :class:`~repro.obs.metrics.MetricsRegistry` from it, so their
    events land directly on the parent's timeline and their metric
    snapshots merge exactly.

    ``time.perf_counter`` is CLOCK_MONOTONIC on Linux (and QPC on
    Windows) — a system-wide clock, so a shared epoch yields aligned
    cross-process timestamps. On platforms where it is per-process the
    lanes still render; only their relative offset is approximate.
    """

    trace_enabled: bool = False
    metrics_enabled: bool = False
    #: Parent tracer's absolute ``perf_counter`` epoch.
    epoch: float = 0.0

    @classmethod
    def capture(cls) -> "TraceContext | None":
        """The ambient observability state, or None when nothing is on."""
        from repro.obs.metrics import current_metrics

        tracer = current_tracer()
        metrics = current_metrics()
        if not tracer.enabled and not metrics.enabled:
            return None
        return cls(
            trace_enabled=tracer.enabled,
            metrics_enabled=metrics.enabled,
            epoch=tracer._epoch if tracer.enabled else 0.0,
        )

    @property
    def observed(self) -> bool:
        """Whether anything at all is being collected."""
        return self.trace_enabled or self.metrics_enabled
