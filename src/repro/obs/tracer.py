"""Span/counter tracer for the decoder and FPGA-pipeline hot paths.

Design constraints (see ``docs/observability.md``):

* **Near-zero overhead when disabled.** Instrumented code fetches the
  ambient tracer once per decode (``current_tracer()``) and either
  guards per-batch emission with ``tracer.enabled`` or uses the no-op
  span the disabled tracer hands out. No string formatting, no dict
  building, no clock reads happen on the disabled path.
* **Nesting via contextvars.** Span depth lives in a
  :class:`contextvars.ContextVar`, so nesting is correct across
  threads and ``asyncio`` tasks without locks on the hot path.
* **Exporter-agnostic records.** The tracer stores plain
  :class:`TraceEvent` rows; :mod:`repro.obs.export` turns them into
  Chrome ``trace_event`` JSON or a JSONL log, and
  :mod:`repro.obs.metrics` into a percentile summary.

Usage::

    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        decoder.detect(received)        # instrumented internally
    write_chrome_trace(tracer, "decode.trace.json")
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.util.timing import WallClock

#: Event phases, mirroring the Chrome trace_event vocabulary.
PHASE_SPAN = "span"
PHASE_INSTANT = "instant"
PHASE_COUNTER = "counter"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event (a completed span, an instant, or a count).

    ``ts`` and ``dur`` are seconds relative to the tracer's epoch (its
    construction, or the last :meth:`Tracer.clear`). ``depth`` is the
    span-nesting depth at emission; ``tid`` the OS thread ident.
    """

    phase: str
    name: str
    ts: float
    dur: float = 0.0
    depth: int = 0
    tid: int = 0
    value: float = 0.0
    args: Mapping[str, Any] | None = None


class Span:
    """Context manager recording one timed region on a tracer.

    Created via :meth:`Tracer.span`; the event is appended on exit so a
    crash inside the region leaves no half-open record.
    """

    __slots__ = ("_tracer", "name", "args", "_start", "_token")

    def __init__(self, tracer: "Tracer", name: str, args: Mapping | None) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start: float | None = None
        self._token = None

    def __enter__(self) -> "Span":
        self._token = _DEPTH.set(_DEPTH.get() + 1)
        self._start = self._tracer._now()
        return self

    def __exit__(self, *exc: object) -> None:
        end = self._tracer._now()
        depth = _DEPTH.get()
        _DEPTH.reset(self._token)
        start = self._start if self._start is not None else end
        self._tracer._record(
            TraceEvent(
                phase=PHASE_SPAN,
                name=self.name,
                ts=start,
                dur=end - start,
                depth=depth,
                tid=threading.get_ident(),
                args=self.args,
            )
        )


class _NullSpan:
    """Shared no-op span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Current span-nesting depth for the running execution context.
_DEPTH: ContextVar[int] = ContextVar("repro_obs_depth", default=0)


@dataclass
class Counter:
    """A named counter bound to one tracer (convenience handle)."""

    tracer: "Tracer"
    name: str

    def add(self, value: float = 1.0) -> None:
        """Increment the counter (no-op on a disabled tracer)."""
        self.tracer.count(self.name, value)

    @property
    def value(self) -> float:
        """Current accumulated total."""
        return self.tracer.counters.get(self.name, 0.0)


class Tracer:
    """Collects spans, instants and counters for one observed run.

    Parameters
    ----------
    enabled:
        When False every API is a no-op; :data:`NULL_TRACER` is the
        canonical disabled instance that ``current_tracer()`` returns
        when nothing was installed.
    clock:
        Injectable monotonic clock (deterministic tests).
    """

    def __init__(self, *, enabled: bool = True, clock: WallClock | None = None) -> None:
        self.enabled = enabled
        self._clock = clock or WallClock()
        self._epoch = self._clock.now()
        self.events: list[TraceEvent] = []
        self.counters: dict[str, float] = {}

    # -- recording ------------------------------------------------------

    def _now(self) -> float:
        return self._clock.now() - self._epoch

    def _record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def span(self, name: str, **args: Any):
        """A context manager timing one named region.

        Keyword arguments become the span's ``args`` payload (visible in
        the Chrome trace viewer). Disabled tracers return a shared no-op
        span: no allocation beyond the call itself.
        """
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, args or None)

    def instant(self, name: str, **args: Any) -> None:
        """Record a point-in-time event (Chrome ``i`` phase)."""
        if not self.enabled:
            return
        self._record(
            TraceEvent(
                phase=PHASE_INSTANT,
                name=name,
                ts=self._now(),
                depth=_DEPTH.get(),
                tid=threading.get_ident(),
                args=args or None,
            )
        )

    def count(self, name: str, value: float = 1.0) -> None:
        """Accumulate a named counter and record the running total."""
        if not self.enabled:
            return
        total = self.counters.get(name, 0.0) + value
        self.counters[name] = total
        self._record(
            TraceEvent(
                phase=PHASE_COUNTER,
                name=name,
                ts=self._now(),
                tid=threading.get_ident(),
                value=total,
            )
        )

    def counter(self, name: str) -> Counter:
        """A bound :class:`Counter` handle for repeated increments."""
        return Counter(self, name)

    # -- inspection ------------------------------------------------------

    def spans(self, name: str | None = None) -> list[TraceEvent]:
        """All completed span events, optionally filtered by name."""
        return [
            e
            for e in self.events
            if e.phase == PHASE_SPAN and (name is None or e.name == name)
        ]

    def span_durations(self) -> dict[str, list[float]]:
        """Span durations (seconds) grouped by span name."""
        grouped: dict[str, list[float]] = {}
        for e in self.events:
            if e.phase == PHASE_SPAN:
                grouped.setdefault(e.name, []).append(e.dur)
        return grouped

    def clear(self) -> None:
        """Drop all recorded events/counters and restart the epoch."""
        self.events = []
        self.counters = {}
        self._epoch = self._clock.now()


#: Canonical disabled tracer; what ``current_tracer()`` yields when no
#: tracer has been installed. Never record on it.
NULL_TRACER = Tracer(enabled=False)

_CURRENT: ContextVar[Tracer] = ContextVar("repro_obs_tracer", default=NULL_TRACER)


def current_tracer() -> Tracer:
    """The tracer installed for this execution context (never None)."""
    return _CURRENT.get()


def set_tracer(tracer: Tracer):
    """Install ``tracer`` for this context; returns a reset token."""
    return _CURRENT.set(tracer)


def reset_tracer(token) -> None:
    """Undo a :func:`set_tracer` with its token."""
    _CURRENT.reset(token)


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scope ``tracer`` as the ambient tracer for a ``with`` block."""
    token = set_tracer(tracer)
    try:
        yield tracer
    finally:
        reset_tracer(token)
