"""Performance attribution: span call-trees, flamegraphs, run diffs.

The missing answer after PRs 1/2/6 was *where the time went*: spans
record durations, the registry records runs, the stream shows progress
— but "which span got slower between run A and run B, and by how much
of the total" required manual spelunking. This module closes the loop
(the host-side analogue of ``FpgaPipeline.stage_breakdown()``, whose
per-stage cycles sum exactly to ``total_cycles``):

:func:`build_profile_tree`
    Folds a tracer's span events into an aggregated call-tree keyed by
    span *path* (``mc.point → mc.frame → sd.detect``), with call
    counts, **total time** (span wall) and **self time** (total minus
    the time covered by child spans). Self-times sum to the
    span-covered wall time by construction, so a ranked self-time
    table is an exact attribution, not a correlation.
:class:`SpanProfiler`
    Scopes :mod:`cProfile` capture to tracer spans via the tracer's
    span hooks: at any instant exactly one per-span-name profile is
    enabled (the innermost open span's), so function-level hotspots —
    GEMM time vs pool bookkeeping vs heap ops — are attributed to the
    span they actually ran under.
:func:`collapsed_stack_lines` / :func:`speedscope_document`
    Flamegraph exports: the classic Brendan-Gregg collapsed-stack text
    (``a;b;c <usec>``, one line per tree node with self time) and a
    speedscope JSON document (https://www.speedscope.app) built from
    the same self-time weights.
:func:`diff_profiles`
    Run-to-run attribution: a ranked table of per-span Δself-time
    (absolute and as a share of the base run's wall time), so a perf
    regression names its culprit span instead of just a number.
:func:`load_profile`
    Loads a recorded run's tree — from ``profile.json`` when the run
    recorded one, else rebuilt from its Chrome ``trace.json``.

Tree-building semantics
-----------------------
Spans are grouped per ``(pid, tid)`` lane and nested by interval
containment: a span is a child of the innermost span that fully
contains it. A span that *overlaps* an open span without being
contained (hand-built traces; cross-thread absorb artifacts) is
treated as a sibling at the closest enclosing scope rather than a
child, so totals never double-count. Nodes aggregate by path — two
``sd.detect`` calls under the same ``mc.frame`` become one node with
``count == 2`` — and recursive spans (a name nested under itself)
stay distinct per depth in the tree while :func:`self_by_name` sums
their self-times exactly once.
"""

from __future__ import annotations

import cProfile
import json
import pstats
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.obs.tracer import PHASE_SPAN, TraceEvent, Tracer

#: On-disk ``profile.json`` schema version.
PROFILE_SCHEMA = 1

#: Containment slack (seconds) when nesting spans: a child may end up
#: to this much after its parent (clock rounding in JSONL round trips).
_EPS = 1e-9

#: Path separator in collapsed-stack lines and flattened tables.
PATH_SEP = ";"


@dataclass
class ProfileNode:
    """One aggregated call-tree node (a span name at one tree path)."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    children: dict[str, "ProfileNode"] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ProfileNode":
        node = cls(
            name=str(doc["name"]),
            count=int(doc.get("count", 0)),
            total_s=float(doc.get("total_s", 0.0)),
            self_s=float(doc.get("self_s", 0.0)),
        )
        for child in doc.get("children", []):
            parsed = cls.from_dict(child)
            node.children[parsed.name] = parsed
        return node


@dataclass
class ProfileTree:
    """An aggregated span call-tree plus optional function hotspots.

    ``roots`` maps top-level span names to nodes; ``wall_s`` is the
    span-covered wall time (the sum of root totals — the denominator
    of every percentage this module prints). ``functions`` carries the
    per-span function tables a :class:`SpanProfiler` captured:
    ``{span name: [{function, calls, tottime_s, cumtime_s}, ...]}``.
    """

    roots: dict[str, ProfileNode] = field(default_factory=dict)
    wall_s: float = 0.0
    functions: dict[str, list[dict[str, Any]]] = field(default_factory=dict)

    def walk(self) -> Iterator[tuple[tuple[str, ...], ProfileNode]]:
        """Yield ``(path, node)`` pairs, depth-first, parents first."""

        def _walk(node: ProfileNode, path: tuple[str, ...]):
            yield path, node
            for child in node.children.values():
                yield from _walk(child, path + (child.name,))

        for root in self.roots.values():
            yield from _walk(root, (root.name,))

    @property
    def self_total_s(self) -> float:
        """Sum of every node's self time (== ``wall_s`` up to clamping)."""
        return sum(node.self_s for _path, node in self.walk())

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA,
            "wall_s": self.wall_s,
            "tree": [r.to_dict() for r in self.roots.values()],
            "functions": self.functions,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ProfileTree":
        tree = cls(wall_s=float(doc.get("wall_s", 0.0)))
        for row in doc.get("tree", []):
            node = ProfileNode.from_dict(row)
            tree.roots[node.name] = node
        tree.functions = {
            str(name): [dict(fn) for fn in rows]
            for name, rows in (doc.get("functions") or {}).items()
        }
        return tree


def _label(value: Any) -> str:
    """A compact arg-value label (floats lose their trailing ``.0``)."""
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def build_profile_tree(
    events: Iterable[TraceEvent], *, label_args: tuple[str, ...] = ()
) -> ProfileTree:
    """Fold span events into one aggregated self/total-time call-tree.

    See the module docstring for the nesting semantics. Non-span
    events are ignored, so the whole ``tracer.events`` list (or a
    replayed JSONL / Chrome trace) can be passed directly.

    ``label_args`` splits the aggregation by span argument: a span
    carrying any of the named args gets the value folded into its node
    name (``mc.point[snr_db=8]``), so per-SNR / per-level breakdowns
    fall out of the same tree — ``bfs.level[level=3]`` nodes stay
    distinct instead of merging, and descendants aggregate under the
    labelled subtree they actually ran in.
    """
    lanes: dict[tuple[int, int], list[TraceEvent]] = {}
    for event in events:
        if event.phase == PHASE_SPAN and event.dur >= 0.0:
            lanes.setdefault((event.pid, event.tid), []).append(event)

    def _node_name(event: TraceEvent) -> str:
        if not label_args or not event.args:
            return event.name
        parts = [
            f"{key}={_label(event.args[key])}"
            for key in label_args
            if key in event.args
        ]
        if not parts:
            return event.name
        return f"{event.name}[{','.join(parts)}]"
    virtual_root = ProfileNode(name="")
    for lane in lanes.values():
        # Parents first: earlier start, and for equal starts the longer
        # (enclosing) span. Span events are recorded at *exit*, so the
        # raw buffer order is children-first — the sort undoes that.
        lane.sort(key=lambda e: (e.ts, -(e.ts + e.dur)))
        stack: list[tuple[float, ProfileNode]] = []
        for event in lane:
            end = event.ts + event.dur
            while stack and (
                event.ts >= stack[-1][0] - _EPS  # starts after top ended
                or end > stack[-1][0] + _EPS  # overlaps, not contained
            ):
                stack.pop()
            parent = stack[-1][1] if stack else virtual_root
            name = _node_name(event)
            node = parent.children.get(name)
            if node is None:
                node = ProfileNode(name=name)
                parent.children[name] = node
            node.count += 1
            node.total_s += event.dur
            stack.append((end, node))

    def _finalize(node: ProfileNode) -> None:
        covered = 0.0
        for child in node.children.values():
            _finalize(child)
            covered += child.total_s
        node.self_s = max(node.total_s - covered, 0.0)

    for root in virtual_root.children.values():
        _finalize(root)
    tree = ProfileTree(roots=virtual_root.children)
    tree.wall_s = sum(r.total_s for r in tree.roots.values())
    return tree


def self_by_name(tree: ProfileTree) -> dict[str, dict[str, float]]:
    """Per-span-name aggregation across all tree paths.

    Self-times add exactly (every node's self time is counted once);
    ``total_s`` sums all occurrences, so a recursive span's total can
    exceed its wall share — rank and diff on ``self_s``.
    """
    flat: dict[str, dict[str, float]] = {}
    for _path, node in tree.walk():
        row = flat.setdefault(
            node.name, {"count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        row["count"] += node.count
        row["total_s"] += node.total_s
        row["self_s"] += node.self_s
    return flat


# ---------------------------------------------------------------------------
# Flamegraph exports
# ---------------------------------------------------------------------------


def collapsed_stack_lines(tree: ProfileTree) -> list[str]:
    """Brendan-Gregg collapsed-stack lines, one per node with self time.

    ``root;child;leaf <microseconds>`` — the input format of
    ``flamegraph.pl`` and of speedscope's "import". Nodes whose self
    time rounds below one microsecond are omitted (zero-weight rows are
    meaningless to every consumer).
    """
    lines = []
    for path, node in tree.walk():
        usec = round(node.self_s * 1e6)
        if usec >= 1:
            lines.append(f"{PATH_SEP.join(path)} {usec}")
    return lines


def parse_collapsed(lines: Iterable[str]) -> dict[str, int]:
    """Parse collapsed-stack lines back to ``{path: microseconds}``.

    The round-trip half used by the tests; raises :class:`ValueError`
    on a malformed line.
    """
    out: dict[str, int] = {}
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        stack, _sep, value = line.rpartition(" ")
        if not stack or not value.lstrip("-").isdigit():
            raise ValueError(f"malformed collapsed-stack line {lineno}: {line!r}")
        out[stack] = out.get(stack, 0) + int(value)
    return out


def write_collapsed(tree: ProfileTree, path: str | Path) -> Path:
    """Write the collapsed-stack flamegraph input to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = collapsed_stack_lines(tree)
    path.write_text("\n".join(lines) + "\n" if lines else "")
    return path


#: The JSON schema URL stamped into every speedscope export.
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def speedscope_document(tree: ProfileTree, *, name: str = "repro-sd") -> dict:
    """The tree as a speedscope *sampled* profile document.

    Each tree node with self time becomes one weighted sample whose
    stack is the node's path; weights are microseconds of self time,
    so the rendered flame widths are the exact attribution (not clock
    samples). Loads directly at https://www.speedscope.app.
    """
    frames: list[dict[str, str]] = []
    frame_index: dict[str, int] = {}
    samples: list[list[int]] = []
    weights: list[float] = []
    for path, node in tree.walk():
        usec = node.self_s * 1e6
        if usec <= 0.0:
            continue
        stack = []
        for frame_name in path:
            idx = frame_index.get(frame_name)
            if idx is None:
                idx = frame_index[frame_name] = len(frames)
                frames.append({"name": frame_name})
            stack.append(idx)
        samples.append(stack)
        weights.append(usec)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro.obs.profile",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "microseconds",
                "startValue": 0,
                "endValue": sum(weights),
                "samples": samples,
                "weights": weights,
            }
        ],
    }


def write_speedscope(
    tree: ProfileTree, path: str | Path, *, name: str = "repro-sd"
) -> Path:
    """Serialise :func:`speedscope_document` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(speedscope_document(tree, name=name)))
    return path


# ---------------------------------------------------------------------------
# Span-scoped cProfile capture
# ---------------------------------------------------------------------------


class SpanProfiler:
    """Attributes cProfile function stats to the innermost open span.

    Attach to a tracer's span hooks (:meth:`attach`); on every span
    enter the currently-enabled profile (if any) is suspended and the
    entered span *name*'s accumulating profile enabled, and on exit the
    parent's resumed — so at any instant exactly one profile runs and
    each function call lands in the profile of the span it executed
    under. CPython allows a single active profiler, which is exactly
    what the switch discipline guarantees.

    This is a *profiling-mode* tool: the per-span enable/disable costs
    real time, so it lives behind ``repro-sd profile run`` and
    ``tools/profile_smoke.py``, never on the default telemetry path.
    """

    def __init__(self) -> None:
        self.profiles: dict[str, cProfile.Profile] = {}
        self._stack: list[cProfile.Profile] = []

    # -- tracer hooks ---------------------------------------------------

    def _enter(self, name: str) -> None:
        if self._stack:
            self._stack[-1].disable()
        profile = self.profiles.get(name)
        if profile is None:
            profile = self.profiles[name] = cProfile.Profile()
        self._stack.append(profile)
        profile.enable()

    def _exit(self, name: str) -> None:
        if not self._stack:  # pragma: no cover - unbalanced hooks
            return
        self._stack.pop().disable()
        if self._stack:
            self._stack[-1].enable()

    def attach(self, tracer: Tracer) -> "_ProfilerAttachment":
        """Context manager installing this profiler on ``tracer``'s
        span hooks (restores the previous hooks on exit)."""
        return _ProfilerAttachment(self, tracer)

    # -- results --------------------------------------------------------

    def function_tables(self, *, top: int = 15) -> dict[str, list[dict]]:
        """Per-span top functions by internal time.

        Rows carry ``function`` (``file:line(name)``, bare name for
        builtins), ``calls``, ``tottime_s`` and ``cumtime_s`` — the
        JSON-friendly cut of ``pstats`` that lands in ``profile.json``.
        """
        tables: dict[str, list[dict]] = {}
        for span, profile in self.profiles.items():
            try:
                stats = pstats.Stats(profile)
            except (TypeError, ValueError):  # never enabled
                continue
            rows = []
            for (filename, line, fn), (
                _cc,
                ncalls,
                tottime,
                cumtime,
                _callers,
            ) in stats.stats.items():  # type: ignore[attr-defined]
                label = (
                    fn
                    if filename == "~"
                    else f"{Path(filename).name}:{line}({fn})"
                )
                rows.append(
                    {
                        "function": label,
                        "calls": ncalls,
                        "tottime_s": tottime,
                        "cumtime_s": cumtime,
                    }
                )
            rows.sort(key=lambda r: r["tottime_s"], reverse=True)
            tables[span] = rows[:top]
        return tables

    def combined_stats(self) -> pstats.Stats:
        """All per-span profiles merged into one :class:`pstats.Stats`.

        The whole-run view ``tools/profile_smoke.py`` ships as its
        ``.pstats`` artifact; code that ran outside any span is not
        covered (by construction nothing was being profiled there).
        """
        profiles = [p for p in self.profiles.values() if p.getstats()]
        if not profiles:
            empty = cProfile.Profile()
            empty.enable()
            empty.disable()
            return pstats.Stats(empty)
        stats = pstats.Stats(profiles[0])
        for profile in profiles[1:]:
            stats.add(profile)
        return stats


class _ProfilerAttachment:
    """RAII installer for :meth:`SpanProfiler.attach`."""

    def __init__(self, profiler: SpanProfiler, tracer: Tracer) -> None:
        self._profiler = profiler
        self._tracer = tracer
        self._previous: tuple[Any, Any] | None = None

    def __enter__(self) -> SpanProfiler:
        tracer = self._tracer
        self._previous = (tracer.on_span_enter, tracer.on_span_exit)
        tracer.on_span_enter = self._profiler._enter
        tracer.on_span_exit = self._profiler._exit
        return self._profiler

    def __exit__(self, *exc: object) -> None:
        assert self._previous is not None
        self._tracer.on_span_enter, self._tracer.on_span_exit = self._previous
        # Unwind anything left enabled by an exception mid-span.
        stack = self._profiler._stack
        while stack:
            stack.pop().disable()


# ---------------------------------------------------------------------------
# Profiled experiment runs
# ---------------------------------------------------------------------------


@dataclass
class ProfileResult:
    """Everything one profiled run produced."""

    experiment: str
    tree: ProfileTree
    tracer: Tracer
    profiler: SpanProfiler
    series: Any = None


def profile_callable(
    fn: Callable[[], Any],
    *,
    experiment: str = "callable",
    functions_top: int = 15,
    label_args: tuple[str, ...] = (),
) -> ProfileResult:
    """Run ``fn`` under an enabled tracer + :class:`SpanProfiler`.

    Returns the built :class:`ProfileTree` (with per-span function
    tables filled in), the tracer and the profiler. The ambient-tracer
    pattern means ``fn`` needs no profiling awareness — any code
    instrumented against ``current_tracer()`` is attributed.
    """
    from repro.obs.tracer import use_tracer

    tracer = Tracer()
    profiler = SpanProfiler()
    with profiler.attach(tracer), use_tracer(tracer):
        value = fn()
    tree = build_profile_tree(tracer.events, label_args=label_args)
    tree.functions = profiler.function_tables(top=functions_top)
    return ProfileResult(
        experiment=experiment,
        tree=tree,
        tracer=tracer,
        profiler=profiler,
        series=value,
    )


def profile_experiment(
    name: str,
    *,
    channels: int | None = None,
    frames_per_channel: int | None = None,
    seed: int = 2023,
    functions_top: int = 15,
    label_args: tuple[str, ...] = (),
) -> ProfileResult:
    """Profile one registered experiment (see ``repro-sd list``).

    Raises :class:`KeyError` for an unknown experiment id — the CLI
    maps that to its exit-2 contract.
    """
    from repro.bench.experiments import EXPERIMENTS

    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; run `repro-sd list`")
    fn, _description = EXPERIMENTS[name]
    kwargs: dict[str, Any] = {}
    if name != "table1":
        kwargs["seed"] = seed
        if channels is not None:
            kwargs["channels"] = channels
        if frames_per_channel is not None:
            kwargs["frames_per_channel"] = frames_per_channel
    result = profile_callable(
        lambda: fn(**kwargs),
        experiment=name,
        functions_top=functions_top,
        label_args=label_args,
    )
    result.experiment = name
    return result


# ---------------------------------------------------------------------------
# Loading recorded runs
# ---------------------------------------------------------------------------


def load_profile(run_dir: str | Path) -> ProfileTree:
    """A recorded run's profile tree.

    Prefers the run's ``profile.json`` (exact, includes function
    tables); falls back to rebuilding the tree from its Chrome
    ``trace.json`` for runs recorded before profiles existed. Raises
    :class:`KeyError` when the run holds neither.
    """
    from repro.obs.export import events_from_chrome
    from repro.obs.registry import PROFILE_FILE, TRACE_FILE

    run_dir = Path(run_dir)
    profile_path = run_dir / PROFILE_FILE
    if profile_path.is_file():
        return ProfileTree.from_dict(json.loads(profile_path.read_text()))
    trace_path = run_dir / TRACE_FILE
    if trace_path.is_file():
        return build_profile_tree(
            events_from_chrome(json.loads(trace_path.read_text()))
        )
    raise KeyError(
        f"{run_dir} recorded neither {PROFILE_FILE} nor {TRACE_FILE}; "
        "re-record with `repro-sd profile run --record` or "
        "`experiment --record`"
    )


# ---------------------------------------------------------------------------
# Run-to-run diffing
# ---------------------------------------------------------------------------


@dataclass
class ProfileDiffRow:
    """One span name's self-time movement between two runs."""

    span: str
    count_a: int
    count_b: int
    self_a_s: float
    self_b_s: float

    @property
    def delta_s(self) -> float:
        return self.self_b_s - self.self_a_s


@dataclass
class ProfileDiff:
    """Ranked per-span Δself-time between a base and a compared run.

    Rows are sorted by Δself-time descending — regressions first, the
    biggest first — and carry both absolute seconds and the share of
    the *base* run's span-covered wall time, so "span X accounts for
    80 % of the slowdown" reads straight off the table.
    """

    wall_a_s: float
    wall_b_s: float
    rows: list[ProfileDiffRow] = field(default_factory=list)

    @property
    def wall_delta_s(self) -> float:
        return self.wall_b_s - self.wall_a_s

    def pct_of_wall(self, row: ProfileDiffRow) -> float | None:
        """``row``'s Δself as a percentage of the base run's wall."""
        if not self.wall_a_s:
            return None
        return 100.0 * row.delta_s / self.wall_a_s

    def regressions(
        self, *, min_delta_s: float = 0.0, min_pct: float = 0.0
    ) -> list[ProfileDiffRow]:
        """Rows whose self-time grew beyond both thresholds."""
        out = []
        for row in self.rows:
            if row.delta_s <= min_delta_s:
                continue
            pct = self.pct_of_wall(row)
            if pct is not None and pct < min_pct:
                continue
            out.append(row)
        return out


def diff_profiles(a: ProfileTree, b: ProfileTree) -> ProfileDiff:
    """Compare two trees' per-span self-times (``a`` is the base)."""
    flat_a, flat_b = self_by_name(a), self_by_name(b)
    diff = ProfileDiff(wall_a_s=a.wall_s, wall_b_s=b.wall_s)
    for span in {**flat_a, **flat_b}:
        ra = flat_a.get(span, {"count": 0, "self_s": 0.0})
        rb = flat_b.get(span, {"count": 0, "self_s": 0.0})
        diff.rows.append(
            ProfileDiffRow(
                span=span,
                count_a=int(ra["count"]),
                count_b=int(rb["count"]),
                self_a_s=float(ra["self_s"]),
                self_b_s=float(rb["self_s"]),
            )
        )
    diff.rows.sort(key=lambda r: (-r.delta_s, r.span))
    return diff


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------


def _table(header: tuple[str, ...], rows: list[tuple[str, ...]]) -> list[str]:
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(r))))
    return lines


def format_profile(
    tree: ProfileTree, *, title: str = "profile", functions_top: int = 0
) -> str:
    """Render the call-tree (total vs self) as an indented table.

    ``functions_top > 0`` appends each span's top functions by internal
    time when the tree carries :class:`SpanProfiler` tables.
    """
    lines = [f"== {title}: {tree.wall_s * 1e3:.3f} ms span-covered wall =="]
    rows = []
    wall = tree.wall_s or 1.0
    for path, node in tree.walk():
        indent = "  " * (len(path) - 1)
        rows.append(
            (
                f"{indent}{node.name}",
                str(node.count),
                f"{node.total_s * 1e3:.3f}",
                f"{node.self_s * 1e3:.3f}",
                f"{100.0 * node.self_s / wall:.1f}",
            )
        )
    if not rows:
        lines.append("(no spans recorded)")
        return "\n".join(lines)
    lines += _table(("span", "count", "total_ms", "self_ms", "self_%"), rows)
    if functions_top > 0 and tree.functions:
        for span, fns in tree.functions.items():
            shown = fns[:functions_top]
            if not shown:
                continue
            lines.append("")
            lines.append(f"-- {span}: top functions by internal time --")
            lines += _table(
                ("function", "calls", "tottime_ms", "cumtime_ms"),
                [
                    (
                        fn["function"],
                        str(fn["calls"]),
                        f"{fn['tottime_s'] * 1e3:.3f}",
                        f"{fn['cumtime_s'] * 1e3:.3f}",
                    )
                    for fn in shown
                ],
            )
    return "\n".join(lines)


def format_profile_diff(
    diff: ProfileDiff, *, top: int | None = None, title: str = "profile diff"
) -> str:
    """Render a :class:`ProfileDiff` as a ranked aligned-text table."""
    lines = [
        f"== {title}: wall {diff.wall_a_s * 1e3:.3f} -> "
        f"{diff.wall_b_s * 1e3:.3f} ms "
        f"({diff.wall_delta_s * 1e3:+.3f} ms) =="
    ]
    rows = diff.rows if top is None else diff.rows[:top]
    if not rows:
        lines.append("(no spans in either run)")
        return "\n".join(lines)
    body = []
    for row in rows:
        pct = diff.pct_of_wall(row)
        body.append(
            (
                row.span,
                f"{row.count_a}->{row.count_b}",
                f"{row.self_a_s * 1e3:.3f}",
                f"{row.self_b_s * 1e3:.3f}",
                f"{row.delta_s * 1e3:+.3f}",
                "-" if pct is None else f"{pct:+.2f}",
            )
        )
    lines += _table(
        ("span", "count", "self_a_ms", "self_b_ms", "delta_ms", "%of_wall_a"),
        body,
    )
    regressed = diff.regressions()
    lines.append("")
    lines.append(
        f"{len(regressed)} span(s) regressed, "
        f"{sum(1 for r in diff.rows if r.delta_s < 0)} improved"
    )
    return "\n".join(lines)
