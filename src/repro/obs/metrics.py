"""Metrics: labelled counters / gauges / histograms plus the legacy
tracer-summary helpers.

Two complementary surfaces live here:

* The original **tracer summaries** (:func:`span_metrics`,
  :func:`counter_totals`, :func:`traversal_rates`,
  :func:`format_metrics`) — post-hoc percentile tables over a
  :class:`~repro.obs.tracer.Tracer`'s recorded spans and counters.
* The **metrics registry** — a first-class, live subsystem:
  :class:`MetricsRegistry` hands out labelled counter / gauge /
  exponential-bucket-histogram instruments, snapshots merge exactly
  across processes (the same contract as
  :meth:`repro.util.timing.Timer.merge` — order-independent, exact
  aggregates), and exporters render Prometheus text or JSON documents.
  The ambient-instance pattern mirrors the tracer:
  :func:`current_metrics` returns :data:`NULL_METRICS` (every method a
  no-op) unless :func:`use_metrics` installed a live registry, so
  instrumented code pays one attribute check when observability is off.

Label values are kept as strings in snapshots so JSON round trips are
exact; series keys render Prometheus-style: ``mc.frames{snr=8}``.

Cardinality is guarded: a registry admits at most ``max_series``
distinct (name, labels) series and raises :class:`ValueError` beyond
that — an instrumentation bug (e.g. a per-frame label) should fail
loudly rather than silently eat memory.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.obs.tracer import Tracer
from repro.util.timing import TimingSummary, summarize

# ---------------------------------------------------------------------------
# Tracer-summary helpers (post-hoc view over recorded spans/counters)
# ---------------------------------------------------------------------------


def span_metrics(tracer: Tracer) -> dict[str, TimingSummary]:
    """Per-span-name duration summary (seconds), insertion-ordered."""
    return {
        name: summarize(durs) for name, durs in tracer.span_durations().items()
    }


def counter_totals(tracer: Tracer) -> dict[str, float]:
    """Final accumulated value of every counter."""
    return dict(tracer.counters)


def traversal_rates(tracer: Tracer) -> dict[str, float]:
    """Nodes-expanded-per-second by detector trace root.

    Pairs each ``<root>.nodes_expanded`` counter with the total time
    spent in that root's ``detect`` / ``decode_batch`` spans — the
    host-throughput figure the SoA-frontier refactor optimises. Roots
    whose spans carry no recorded time are omitted.
    """
    durations = tracer.span_durations()
    rates: dict[str, float] = {}
    for name, value in tracer.counters.items():
        if not name.endswith(".nodes_expanded"):
            continue
        root = name[: -len(".nodes_expanded")]
        wall = sum(
            sum(durs)
            for span, durs in durations.items()
            if span in (f"{root}.detect", f"{root}.decode_batch")
        )
        if wall > 0:
            rates[f"{root}.nodes_per_sec"] = value / wall
    return rates


def format_metrics(tracer: Tracer, *, title: str = "metrics") -> str:
    """Render spans (ms percentiles) and counters as an aligned table."""
    lines = [f"== {title} =="]
    spans = span_metrics(tracer)
    if spans:
        header = ("span", "count", "total_ms", "mean_ms", "p50_ms", "p95_ms", "p99_ms")
        rows = [
            (
                name,
                str(s.count),
                f"{s.total * 1e3:.3f}",
                f"{s.mean * 1e3:.3f}",
                f"{s.p50 * 1e3:.3f}",
                f"{s.p95 * 1e3:.3f}",
                f"{s.p99 * 1e3:.3f}",
            )
            for name, s in spans.items()
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
        ]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * w for w in widths))
        for r in rows:
            lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(r))))
    else:
        lines.append("(no spans recorded)")
    counters = counter_totals(tracer)
    if counters:
        width = max(len(name) for name in counters)
        lines.append("")
        lines.append("counters:")
        for name, value in counters.items():
            shown = f"{int(value)}" if float(value).is_integer() else f"{value:.3f}"
            lines.append(f"  {name.ljust(width)}  {shown}")
    rates = traversal_rates(tracer)
    if rates:
        width = max(len(name) for name in rates)
        lines.append("")
        lines.append("derived:")
        for name, value in rates.items():
            lines.append(f"  {name.ljust(width)}  {value:,.0f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Series keys
# ---------------------------------------------------------------------------

#: Internal label key: sorted ``(label, value)`` pairs, values stringified.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Canonical hashable key for one label set (values stringified)."""
    if not labels:
        return ()
    if len(labels) == 1:
        ((k, v),) = labels.items()
        return ((k, v if type(v) is str else _label_str(v)),)
    if len(labels) == 2:
        # The per-solve flush loops hit this shape (detector, level)
        # tens of times per frame; pairwise compare beats building a
        # generator + sorted() for it.
        (k1, v1), (k2, v2) = labels.items()
        a = (k1, v1 if type(v1) is str else _label_str(v1))
        b = (k2, v2 if type(v2) is str else _label_str(v2))
        return (a, b) if k1 <= k2 else (b, a)
    return tuple(
        sorted((k, v if type(v) is str else _label_str(v)) for k, v in labels.items())
    )


def _label_str(value: Any) -> str:
    """Stable string form for a label value (``8.0`` renders as ``8``)."""
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, (int, float)):
        return format(value, "g")
    return str(value)


def format_series_key(name: str, key: LabelKey) -> str:
    """Prometheus-style flat key: ``mc.frames{snr=8,shard=0}``."""
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


def parse_series_key(flat: str) -> tuple[str, LabelKey]:
    """Inverse of :func:`format_series_key` (raises ValueError)."""
    if "{" not in flat:
        return flat, ()
    if not flat.endswith("}"):
        raise ValueError(f"malformed series key {flat!r}")
    name, _, inner = flat[:-1].partition("{")
    pairs = []
    for part in inner.split(","):
        k, sep, v = part.partition("=")
        if not sep or not k:
            raise ValueError(f"malformed series key {flat!r}")
        pairs.append((k, v))
    return name, tuple(sorted(pairs))


# ---------------------------------------------------------------------------
# Histogram buckets
# ---------------------------------------------------------------------------


def exponential_buckets(
    start: float, factor: float, count: int
) -> tuple[float, ...]:
    """``count`` exponentially spaced upper bounds from ``start``.

    ``exponential_buckets(1e-6, 2, 4)`` → ``(1e-6, 2e-6, 4e-6, 8e-6)``;
    observations above the last edge land in the implicit overflow
    bucket. Geometric spacing keeps relative quantile error bounded by
    ``factor`` across any dynamic range, which is what latency-style
    metrics need.
    """
    if start <= 0:
        raise ValueError("bucket start must be positive")
    if factor <= 1.0:
        raise ValueError("bucket growth factor must exceed 1")
    if count < 1:
        raise ValueError("need at least one bucket edge")
    edges = []
    edge = float(start)
    for _ in range(count):
        edges.append(edge)
        edge *= factor
    return tuple(edges)


#: Default edges: 1 µs .. ~33 s in powers of two — covers everything
#: from a single expansion batch to a whole sweep.
DEFAULT_BUCKETS = exponential_buckets(1e-6, 2.0, 26)


@dataclass
class HistogramData:
    """One histogram series: exponential buckets plus exact aggregates.

    ``counts`` has ``len(edges) + 1`` slots — the last is the overflow
    bucket for observations above the largest edge. Bucket semantics
    are Prometheus ``le``: an observation lands in the first bucket
    whose upper edge is >= the value. ``count``/``sum``/``min``/``max``
    are exact regardless of bucket resolution, mirroring
    :class:`~repro.util.timing.Timer`'s exact-aggregate guarantee.
    """

    edges: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "HistogramData") -> "HistogramData":
        """Exact, order-independent merge (bucket-wise addition)."""
        if self.edges != other.edges:
            raise ValueError(
                "cannot merge histograms with different bucket edges"
            )
        return HistogramData(
            edges=self.edges,
            counts=[a + b for a, b in zip(self.counts, other.counts)],
            count=self.count + other.count,
            sum=self.sum + other.sum,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    def quantile(self, q: float) -> float:
        """Upper-edge estimate of the ``q``-quantile (0..1).

        Resolution is one bucket; exact ``min``/``max`` clamp the ends.
        Returns NaN for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return float("nan")
        target = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target and c:
                if i >= len(self.edges):
                    return self.max
                return min(self.edges[i], self.max)
        return self.max

    def to_dict(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "HistogramData":
        return cls(
            edges=tuple(doc["edges"]),
            counts=list(doc["counts"]),
            count=int(doc["count"]),
            sum=float(doc["sum"]),
            min=float("inf") if doc.get("min") is None else float(doc["min"]),
            max=float("-inf") if doc.get("max") is None else float(doc["max"]),
        )


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


@dataclass
class MetricsSnapshot:
    """A point-in-time (or delta) copy of a registry's series.

    ``merge`` is associative and commutative — counters and histograms
    add exactly; gauges keep the latest observation by timestamp (ties
    broken by value, so the operation stays order-independent). That is
    the same contract :meth:`Timer.merge` provides, and it is what lets
    shard deltas arrive in any interleaving and still produce the exact
    totals the serial run would have.
    """

    t: float = 0.0
    counters: dict[tuple[str, LabelKey], float] = field(default_factory=dict)
    gauges: dict[tuple[str, LabelKey], tuple[float, float]] = field(
        default_factory=dict
    )
    histograms: dict[tuple[str, LabelKey], HistogramData] = field(
        default_factory=dict
    )

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        out = MetricsSnapshot(t=max(self.t, other.t))
        out.counters = dict(self.counters)
        for key, value in other.counters.items():
            out.counters[key] = out.counters.get(key, 0.0) + value
        out.gauges = dict(self.gauges)
        for key, (value, ts) in other.gauges.items():
            mine = out.gauges.get(key)
            if mine is None or (ts, value) > (mine[1], mine[0]):
                out.gauges[key] = (value, ts)
        out.histograms = dict(self.histograms)
        for key, hist in other.histograms.items():
            mine = out.histograms.get(key)
            out.histograms[key] = hist if mine is None else mine.merge(hist)
        return out

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all of its label sets."""
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def gauge_series(self, name: str) -> dict[LabelKey, float]:
        """Current value of one gauge per label set."""
        return {key: v for (n, key), (v, _) in self.gauges.items() if n == name}

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready document (flat Prometheus-style series keys)."""
        return {
            "t": self.t,
            "counters": {
                format_series_key(n, k): v for (n, k), v in self.counters.items()
            },
            "gauges": {
                format_series_key(n, k): [v, ts]
                for (n, k), (v, ts) in self.gauges.items()
            },
            "histograms": {
                format_series_key(n, k): h.to_dict()
                for (n, k), h in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "MetricsSnapshot":
        snap = cls(t=float(doc.get("t", 0.0)))
        for flat, value in (doc.get("counters") or {}).items():
            snap.counters[parse_series_key(flat)] = float(value)
        for flat, (value, ts) in (doc.get("gauges") or {}).items():
            snap.gauges[parse_series_key(flat)] = (float(value), float(ts))
        for flat, h in (doc.get("histograms") or {}).items():
            snap.histograms[parse_series_key(flat)] = HistogramData.from_dict(h)
        return snap


def to_prometheus(snapshot: MetricsSnapshot, *, prefix: str = "repro_") -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Metric names swap ``.`` for ``_`` and gain ``prefix``; histograms
    emit cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``,
    exactly as a Prometheus client library would.
    """

    def prom_name(name: str) -> str:
        return prefix + name.replace(".", "_").replace("-", "_")

    def labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
        pairs = key + extra
        if not pairs:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in pairs)
        return "{" + inner + "}"

    lines: list[str] = []
    seen_counters: set[str] = set()
    for (name, key), value in sorted(snapshot.counters.items()):
        pname = prom_name(name)
        if pname not in seen_counters:
            lines.append(f"# TYPE {pname} counter")
            seen_counters.add(pname)
        lines.append(f"{pname}{labels(key)} {value:g}")
    seen_gauges: set[str] = set()
    for (name, key), (value, _ts) in sorted(snapshot.gauges.items()):
        pname = prom_name(name)
        if pname not in seen_gauges:
            lines.append(f"# TYPE {pname} gauge")
            seen_gauges.add(pname)
        lines.append(f"{pname}{labels(key)} {value:g}")
    seen_hists: set[str] = set()
    for (name, key), hist in sorted(snapshot.histograms.items()):
        pname = prom_name(name)
        if pname not in seen_hists:
            lines.append(f"# TYPE {pname} histogram")
            seen_hists.add(pname)
        cum = 0
        for edge, c in zip(hist.edges, hist.counts):
            cum += c
            lines.append(
                f"{pname}_bucket{labels(key, (('le', format(edge, 'g')),))} {cum}"
            )
        lines.append(f"{pname}_bucket{labels(key, (('le', '+Inf'),))} {hist.count}")
        lines.append(f"{pname}_sum{labels(key)} {hist.sum:g}")
        lines.append(f"{pname}_count{labels(key)} {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class _NullInstrument:
    """Shared no-op instrument handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        return None

    def set(self, value: float, **labels: Any) -> None:
        return None

    def observe(self, value: float, **labels: Any) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class CounterHandle:
    """Monotonically increasing, labelled counter."""

    __slots__ = ("name", "_registry", "_series")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._series: dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        series = self._series
        if key in series:
            series[key] += value
        else:
            self._registry._admit(self.name, key)
            series[key] = float(value)


class GaugeHandle:
    """Last-observation-wins, labelled gauge (timestamped for merges)."""

    __slots__ = ("name", "_registry", "_series")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._series: dict[LabelKey, tuple[float, float]] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        if key not in self._series:
            self._registry._admit(self.name, key)
        self._series[key] = (float(value), self._registry._now())


class HistogramHandle:
    """Labelled exponential-bucket histogram."""

    __slots__ = ("name", "edges", "_registry", "_series")

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        edges: tuple[float, ...],
    ) -> None:
        self.name = name
        self.edges = edges
        self._registry = registry
        self._series: dict[LabelKey, HistogramData] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        hist = self._series.get(key)
        if hist is None:
            self._registry._admit(self.name, key)
            hist = self._series[key] = HistogramData(edges=self.edges)
        hist.observe(value)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Series-count ceiling; far above legitimate use (detector × SNR ×
#: level × shard for a large sweep is a few thousand) but low enough to
#: catch a per-frame label before it eats the heap.
DEFAULT_MAX_SERIES = 50_000


class MetricsRegistry:
    """Get-or-create home for counters, gauges and histograms.

    Mirrors the tracer's enabled/ambient design: a disabled registry
    (``NULL_METRICS``) hands out a shared no-op instrument, so
    instrumented code never branches beyond ``metrics.enabled`` or the
    no-op call itself. Instrument handles are cheap to re-request but
    hot paths should hold onto them.

    ``stream`` may be set to a
    :class:`~repro.obs.stream.MetricsStreamWriter` (anything with
    ``maybe_write(registry)`` / ``write(registry)``); :meth:`tick`
    forwards to it, which is how live snapshots reach
    ``runs/<id>/metrics.stream.jsonl`` without the engine knowing about
    files.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        max_series: int = DEFAULT_MAX_SERIES,
        clock=None,
    ) -> None:
        self.enabled = enabled
        self.max_series = max_series
        self._clock = clock
        self._counters: dict[str, CounterHandle] = {}
        self._gauges: dict[str, GaugeHandle] = {}
        self._histograms: dict[str, HistogramHandle] = {}
        self._n_series = 0
        #: Optional live-snapshot sink (see :meth:`tick`).
        self.stream = None

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock.now()
        import time

        return time.time()

    def _admit(self, name: str, key: LabelKey) -> None:
        self._n_series += 1
        if self._n_series > self.max_series:
            raise ValueError(
                f"metrics registry exceeded max_series={self.max_series} "
                f"admitting {format_series_key(name, key)!r}; "
                "a label with unbounded cardinality is almost certainly "
                "being used (frame index, timestamp, ...)"
            )

    # -- instrument access ---------------------------------------------

    def counter(self, name: str):
        """The named counter (shared no-op when disabled)."""
        if not self.enabled:
            return _NULL_INSTRUMENT
        handle = self._counters.get(name)
        if handle is None:
            self._check_unique(name, self._counters)
            handle = self._counters[name] = CounterHandle(name, self)
        return handle

    def gauge(self, name: str):
        """The named gauge (shared no-op when disabled)."""
        if not self.enabled:
            return _NULL_INSTRUMENT
        handle = self._gauges.get(name)
        if handle is None:
            self._check_unique(name, self._gauges)
            handle = self._gauges[name] = GaugeHandle(name, self)
        return handle

    def histogram(self, name: str, *, edges: tuple[float, ...] | None = None):
        """The named histogram (shared no-op when disabled).

        ``edges`` applies on first creation only; re-requesting with
        different edges raises (silently diverging buckets would make
        merges impossible).
        """
        if not self.enabled:
            return _NULL_INSTRUMENT
        handle = self._histograms.get(name)
        if handle is None:
            self._check_unique(name, self._histograms)
            handle = self._histograms[name] = HistogramHandle(
                name, self, tuple(edges) if edges is not None else DEFAULT_BUCKETS
            )
        elif edges is not None and tuple(edges) != handle.edges:
            raise ValueError(
                f"histogram {name!r} already registered with different edges"
            )
        return handle

    def _check_unique(self, name: str, own: dict) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not own and name in table:
                raise ValueError(
                    f"metric {name!r} is already registered as a {kind}"
                )

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """A deep point-in-time copy of every series."""
        snap = MetricsSnapshot(t=self._now())
        for name, c in self._counters.items():
            for key, value in c._series.items():
                snap.counters[(name, key)] = value
        for name, g in self._gauges.items():
            for key, pair in g._series.items():
                snap.gauges[(name, key)] = pair
        for name, h in self._histograms.items():
            for key, hist in h._series.items():
                snap.histograms[(name, key)] = HistogramData(
                    edges=hist.edges,
                    counts=list(hist.counts),
                    count=hist.count,
                    sum=hist.sum,
                    min=hist.min,
                    max=hist.max,
                )
        return snap

    def drain(self) -> MetricsSnapshot:
        """Snapshot every series, then clear them (delta semantics).

        The worker-side flush: repeated drains ship disjoint deltas, so
        the parent's :meth:`merge_snapshot` reconstructs exact totals no
        matter how many flushes each shard makes. Gauges are shipped
        as-is (their merge is latest-wins, so re-shipping is harmless).
        """
        snap = self.snapshot()
        for c in self._counters.values():
            c._series.clear()
        for g in self._gauges.values():
            g._series.clear()
        for h in self._histograms.values():
            h._series.clear()
        self._n_series = 0
        return snap

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        """Fold a (delta) snapshot into the live series — the parent-side
        half of :meth:`drain`."""
        if not self.enabled:
            return
        for (name, key), value in snap.counters.items():
            series = self.counter(name)._series
            if key in series:
                series[key] += value
            else:
                self._admit(name, key)
                series[key] = value
        for (name, key), (value, ts) in snap.gauges.items():
            series = self.gauge(name)._series
            mine = series.get(key)
            if mine is None:
                self._admit(name, key)
                series[key] = (value, ts)
            elif (ts, value) > (mine[1], mine[0]):
                series[key] = (value, ts)
        for (name, key), hist in snap.histograms.items():
            handle = self.histogram(name, edges=hist.edges)
            mine = handle._series.get(key)
            if mine is None:
                self._admit(name, key)
                handle._series[key] = HistogramData(
                    edges=hist.edges,
                    counts=list(hist.counts),
                    count=hist.count,
                    sum=hist.sum,
                    min=hist.min,
                    max=hist.max,
                )
            else:
                handle._series[key] = mine.merge(hist)

    def clear(self) -> None:
        """Drop every instrument and series."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._n_series = 0

    # -- live stream ----------------------------------------------------

    def tick(self, *, force: bool = False) -> None:
        """Offer the attached stream writer a chance to snapshot.

        Call at natural cadence points (block boundaries, queue drains).
        No-op without a stream; ``force`` flushes regardless of the
        writer's interval throttle (end-of-run).
        """
        stream = self.stream
        if stream is None or not self.enabled:
            return
        if force:
            stream.write(self)
        else:
            stream.maybe_write(self)


#: Canonical disabled registry, the ``current_metrics()`` default.
NULL_METRICS = MetricsRegistry(enabled=False)

_CURRENT_METRICS: ContextVar[MetricsRegistry] = ContextVar(
    "repro_obs_metrics", default=NULL_METRICS
)


def current_metrics() -> MetricsRegistry:
    """The registry installed for this execution context (never None)."""
    return _CURRENT_METRICS.get()


def set_metrics(registry: MetricsRegistry):
    """Install ``registry`` for this context; returns a reset token."""
    return _CURRENT_METRICS.set(registry)


def reset_metrics(token) -> None:
    """Undo a :func:`set_metrics` with its token."""
    _CURRENT_METRICS.reset(token)


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the ambient metrics sink for a ``with`` block."""
    token = set_metrics(registry)
    try:
        yield registry
    finally:
        reset_metrics(token)
