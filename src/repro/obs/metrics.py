"""Aligned-text metrics summary over a tracer's spans and counters.

Reuses :func:`repro.util.timing.summarize` so the percentile
definitions match the benchmark harness exactly.
"""

from __future__ import annotations

from repro.obs.tracer import Tracer
from repro.util.timing import TimingSummary, summarize


def span_metrics(tracer: Tracer) -> dict[str, TimingSummary]:
    """Per-span-name duration summary (seconds), insertion-ordered."""
    return {
        name: summarize(durs) for name, durs in tracer.span_durations().items()
    }


def counter_totals(tracer: Tracer) -> dict[str, float]:
    """Final accumulated value of every counter."""
    return dict(tracer.counters)


def format_metrics(tracer: Tracer, *, title: str = "metrics") -> str:
    """Render spans (ms percentiles) and counters as an aligned table."""
    lines = [f"== {title} =="]
    spans = span_metrics(tracer)
    if spans:
        header = ("span", "count", "total_ms", "mean_ms", "p50_ms", "p95_ms", "p99_ms")
        rows = [
            (
                name,
                str(s.count),
                f"{s.total * 1e3:.3f}",
                f"{s.mean * 1e3:.3f}",
                f"{s.p50 * 1e3:.3f}",
                f"{s.p95 * 1e3:.3f}",
                f"{s.p99 * 1e3:.3f}",
            )
            for name, s in spans.items()
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
        ]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * w for w in widths))
        for r in rows:
            lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(r))))
    else:
        lines.append("(no spans recorded)")
    counters = counter_totals(tracer)
    if counters:
        width = max(len(name) for name in counters)
        lines.append("")
        lines.append("counters:")
        for name, value in counters.items():
            shown = f"{int(value)}" if float(value).is_integer() else f"{value:.3f}"
            lines.append(f"  {name.ljust(width)}  {shown}")
    return "\n".join(lines)
