"""Aligned-text metrics summary over a tracer's spans and counters.

Reuses :func:`repro.util.timing.summarize` so the percentile
definitions match the benchmark harness exactly.
"""

from __future__ import annotations

from repro.obs.tracer import Tracer
from repro.util.timing import TimingSummary, summarize


def span_metrics(tracer: Tracer) -> dict[str, TimingSummary]:
    """Per-span-name duration summary (seconds), insertion-ordered."""
    return {
        name: summarize(durs) for name, durs in tracer.span_durations().items()
    }


def counter_totals(tracer: Tracer) -> dict[str, float]:
    """Final accumulated value of every counter."""
    return dict(tracer.counters)


def traversal_rates(tracer: Tracer) -> dict[str, float]:
    """Nodes-expanded-per-second by detector trace root.

    Pairs each ``<root>.nodes_expanded`` counter with the total time
    spent in that root's ``detect`` / ``decode_batch`` spans — the
    host-throughput figure the SoA-frontier refactor optimises. Roots
    whose spans carry no recorded time are omitted.
    """
    durations = tracer.span_durations()
    rates: dict[str, float] = {}
    for name, value in tracer.counters.items():
        if not name.endswith(".nodes_expanded"):
            continue
        root = name[: -len(".nodes_expanded")]
        wall = sum(
            sum(durs)
            for span, durs in durations.items()
            if span in (f"{root}.detect", f"{root}.decode_batch")
        )
        if wall > 0:
            rates[f"{root}.nodes_per_sec"] = value / wall
    return rates


def format_metrics(tracer: Tracer, *, title: str = "metrics") -> str:
    """Render spans (ms percentiles) and counters as an aligned table."""
    lines = [f"== {title} =="]
    spans = span_metrics(tracer)
    if spans:
        header = ("span", "count", "total_ms", "mean_ms", "p50_ms", "p95_ms", "p99_ms")
        rows = [
            (
                name,
                str(s.count),
                f"{s.total * 1e3:.3f}",
                f"{s.mean * 1e3:.3f}",
                f"{s.p50 * 1e3:.3f}",
                f"{s.p95 * 1e3:.3f}",
                f"{s.p99 * 1e3:.3f}",
            )
            for name, s in spans.items()
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
        ]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * w for w in widths))
        for r in rows:
            lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(r))))
    else:
        lines.append("(no spans recorded)")
    counters = counter_totals(tracer)
    if counters:
        width = max(len(name) for name in counters)
        lines.append("")
        lines.append("counters:")
        for name, value in counters.items():
            shown = f"{int(value)}" if float(value).is_integer() else f"{value:.3f}"
            lines.append(f"  {name.ljust(width)}  {shown}")
    rates = traversal_rates(tracer)
    if rates:
        width = max(len(name) for name in rates)
        lines.append("")
        lines.append("derived:")
        for name, value in rates.items():
            lines.append(f"  {name.ljust(width)}  {value:,.0f}")
    return "\n".join(lines)
