"""``logging``-based diagnostics channel for the whole package.

Everything logs under the ``"repro"`` root logger; :func:`configure` is
the single entry point that attaches a handler (the CLI maps ``-v``/
``-q`` onto its ``verbosity`` argument). Library code never configures
handlers itself — importing :func:`get_logger` is always side-effect
free, so embedding applications keep full control.
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

#: Root logger name for the package.
LOGGER_NAME = "repro"

#: Marker attribute identifying handlers installed by :func:`configure`,
#: so repeated calls replace (not stack) them.
_HANDLER_MARK = "_repro_obs_handler"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger in the ``repro`` hierarchy.

    ``get_logger("repro.mimo.montecarlo")`` and
    ``get_logger(__name__)`` are the intended spellings; a bare
    ``get_logger()`` returns the package root logger.
    """
    if name is None or name == LOGGER_NAME:
        return logging.getLogger(LOGGER_NAME)
    if not name.startswith(LOGGER_NAME + "."):
        name = f"{LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def verbosity_level(verbosity: int) -> int:
    """Map a ``-v``/``-q`` count to a ``logging`` level.

    ``-1`` and below → ERROR, ``0`` → WARNING (default), ``1`` → INFO,
    ``2`` and above → DEBUG.
    """
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure(
    verbosity: int = 0,
    *,
    stream: TextIO | None = None,
    fmt: str = _FORMAT,
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger (idempotent).

    Re-invoking replaces the previously installed handler, so the CLI
    can be called repeatedly in one process (tests do this). Returns
    the configured root package logger.
    """
    logger = get_logger()
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(fmt, datefmt=_DATE_FORMAT))
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    logger.setLevel(verbosity_level(verbosity))
    # Don't double-print through the root logger when an application has
    # its own configuration.
    logger.propagate = False
    return logger
