"""Loading, rendering and diffing recorded runs (``repro.obs.registry``).

The CLI's ``repro-sd runs list|show|diff|report`` subcommands are thin
wrappers over this module. Diffs align two runs' per-SNR series (sweep
points when recorded, otherwise the experiment table's rows keyed on
their first column) and report absolute + relative deltas for every
numeric column — decode-time, BER and node-count shifts — plus the
p50/p95/p99 movement of every span both runs recorded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.obs.registry import (
    MANIFEST_FILE,
    METRICS_FILE,
    PROFILE_FILE,
    SERIES_FILE,
    SWEEP_FILE,
)


@dataclass
class RunData:
    """One run directory's artifacts, loaded into memory."""

    path: Path
    manifest: dict[str, Any]
    series: dict[str, Any] | None = None
    sweep: dict[str, Any] | None = None
    metrics: dict[str, Any] | None = None
    profile: dict[str, Any] | None = None

    @property
    def run_id(self) -> str:
        return self.manifest.get("run_id", self.path.name)

    @property
    def experiment(self) -> str:
        return self.manifest.get("experiment", "?")


def load_run(path: str | Path) -> RunData:
    """Load one run directory; raises ``KeyError`` without a manifest."""
    path = Path(path)
    manifest_path = path / MANIFEST_FILE
    if not manifest_path.is_file():
        raise KeyError(f"{path} is not a recorded run (no {MANIFEST_FILE})")
    run = RunData(path=path, manifest=json.loads(manifest_path.read_text()))
    for name, attr in (
        (SERIES_FILE, "series"),
        (SWEEP_FILE, "sweep"),
        (METRICS_FILE, "metrics"),
        (PROFILE_FILE, "profile"),
    ):
        artifact = path / name
        if artifact.is_file():
            setattr(run, attr, json.loads(artifact.read_text()))
    return run


# ----------------------------------------------------------------------
# Table rendering (aligned text and GitHub markdown)
# ----------------------------------------------------------------------


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    columns: list[str], rows: Iterable[dict], *, markdown: bool = False
) -> str:
    """Render rows (dicts) under ``columns`` as one table."""
    cells = [[_fmt(row.get(col)) for col in columns] for row in rows]
    if markdown:
        lines = ["| " + " | ".join(columns) + " |"]
        lines.append("|" + "|".join("---" for _ in columns) + "|")
        for r in cells:
            lines.append("| " + " | ".join(r) + " |")
        return "\n".join(lines)
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    lines = ["  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))]
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(r))))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Single-run views
# ----------------------------------------------------------------------

#: Columns of the ``runs list`` table.
LIST_COLUMNS = ["run_id", "experiment", "created_utc", "status", "elapsed_s", "seed"]


def format_run_list(runs: Iterable[RunData], *, markdown: bool = False) -> str:
    """The ``runs list`` table (oldest first)."""
    rows = [
        {
            "run_id": r.run_id,
            "experiment": r.experiment,
            "created_utc": r.manifest.get("created_utc"),
            "status": r.manifest.get("status"),
            "elapsed_s": r.manifest.get("elapsed_s"),
            "seed": r.manifest.get("seed"),
        }
        for r in runs
    ]
    if not rows:
        return "(no runs recorded)"
    return format_table(LIST_COLUMNS, rows, markdown=markdown)


def _sweep_columns(sweep: dict) -> list[str]:
    keys: list[str] = []
    for point in sweep.get("points", []):
        for key in point:
            if key not in keys:
                keys.append(key)
    return keys


def format_run(run: RunData, *, markdown: bool = False) -> str:
    """The ``runs show`` view: manifest summary + recorded tables."""
    env = run.manifest.get("environment", {})
    heading = f"run {run.run_id}  [{run.manifest.get('status', '?')}]"
    lines = [f"## {heading}" if markdown else f"== {heading} =="]
    for label, value in (
        ("experiment", run.experiment),
        ("created", run.manifest.get("created_utc")),
        ("seed", run.manifest.get("seed")),
        ("elapsed_s", _fmt(run.manifest.get("elapsed_s"))),
        ("git_sha", env.get("git_sha")),
        ("python/numpy", f"{env.get('python')} / {env.get('numpy')}"),
        ("host", f"{env.get('hostname')} ({env.get('platform')})"),
    ):
        lines.append(f"- **{label}**: {value}" if markdown else f"{label:>13}: {value}")
    if run.manifest.get("config"):
        config = ", ".join(f"{k}={v}" for k, v in run.manifest["config"].items())
        lines.append(f"- **config**: {config}" if markdown else f"{'config':>13}: {config}")
    if run.sweep is not None:
        lines.append("")
        title = f"sweep: {run.sweep.get('detector')} on {run.sweep.get('system')}"
        lines.append(f"### {title}" if markdown else f"-- {title} --")
        lines.append(
            format_table(
                _sweep_columns(run.sweep), run.sweep["points"], markdown=markdown
            )
        )
    if run.series is not None:
        lines.append("")
        title = f"series: {run.series.get('title', run.series.get('experiment'))}"
        lines.append(f"### {title}" if markdown else f"-- {title} --")
        lines.append(
            format_table(
                list(run.series["columns"]), run.series["rows"], markdown=markdown
            )
        )
        if run.series.get("notes"):
            lines.append(run.series["notes"])
    if run.metrics is not None and run.metrics.get("spans"):
        lines.append("")
        lines.append("### spans" if markdown else "-- spans --")
        span_rows = [
            {
                "span": name,
                "count": s.get("count"),
                "p50_ms": 1e3 * s.get("p50_s", 0.0),
                "p95_ms": 1e3 * s.get("p95_s", 0.0),
                "p99_ms": 1e3 * s.get("p99_s", 0.0),
                "total_ms": 1e3 * s.get("total_s", 0.0),
            }
            for name, s in run.metrics["spans"].items()
        ]
        lines.append(
            format_table(
                ["span", "count", "p50_ms", "p95_ms", "p99_ms", "total_ms"],
                span_rows,
                markdown=markdown,
            )
        )
    hotspots = _hotspot_rows(run)
    if hotspots:
        lines.append("")
        title = "hotspots (span self-time)"
        lines.append(f"### {title}" if markdown else f"-- {title} --")
        lines.append(
            format_table(
                ["span", "count", "total_ms", "self_ms", "self_pct"],
                hotspots,
                markdown=markdown,
            )
        )
    return "\n".join(lines)


#: Rows shown in the per-run hotspot table (top spans by self-time).
HOTSPOT_ROWS = 8


def _hotspot_rows(run: RunData, *, top: int = HOTSPOT_ROWS) -> list[dict]:
    """Top tree paths by self-time from the run's ``profile.json``.

    The attribution view next to BER/latency: self-times sum to the
    span-covered wall, so ``self_pct`` reads as "share of the run's
    instrumented time". Empty when the run recorded no profile.
    """
    if run.profile is None:
        return []
    from repro.obs.profile import PATH_SEP, ProfileTree

    tree = ProfileTree.from_dict(run.profile)
    wall = tree.wall_s or 1.0
    rows = [
        {
            "span": PATH_SEP.join(path),
            "count": node.count,
            "total_ms": 1e3 * node.total_s,
            "self_ms": 1e3 * node.self_s,
            "self_pct": 100.0 * node.self_s / wall,
        }
        for path, node in tree.walk()
    ]
    rows.sort(key=lambda r: r["self_ms"], reverse=True)
    return rows[:top]


# ----------------------------------------------------------------------
# Diffs
# ----------------------------------------------------------------------


@dataclass
class RunDiff:
    """Structured comparison of two runs (see :func:`diff_runs`)."""

    a: RunData
    b: RunData
    key_column: str = ""
    series_columns: list[str] = field(default_factory=list)
    series_rows: list[dict] = field(default_factory=list)
    span_rows: list[dict] = field(default_factory=list)


def _numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _paired_rows(run: RunData) -> tuple[str, list[str], list[dict]] | None:
    """(key column, value columns, rows) of the run's best series."""
    if run.sweep is not None:
        columns = [c for c in _sweep_columns(run.sweep) if c != "snr_db"]
        return "snr_db", columns, list(run.sweep["points"])
    if run.series is not None:
        columns = list(run.series["columns"])
        if not columns:
            return None
        return columns[0], columns[1:], list(run.series["rows"])
    return None


def diff_runs(a: RunData, b: RunData) -> RunDiff:
    """Align two runs' series and compute per-key numeric deltas.

    Rows are matched on the key column (``snr_db`` for sweeps); for
    every numeric column shared by a matched pair the diff carries
    ``<col>_a``, ``<col>_b``, ``<col>_delta`` and ``<col>_pct`` (the
    relative change in percent, None when the base value is 0).
    """
    diff = RunDiff(a=a, b=b)
    pair_a, pair_b = _paired_rows(a), _paired_rows(b)
    if pair_a and pair_b:
        key_a, cols_a, rows_a = pair_a
        key_b, cols_b, rows_b = pair_b
        if key_a == key_b:
            diff.key_column = key_a
            shared = [c for c in cols_a if c in cols_b]
            by_key = {row.get(key_b): row for row in rows_b}
            out_cols = [key_a]
            for row in rows_a:
                key = row.get(key_a)
                other = by_key.get(key)
                if other is None:
                    continue
                out = {key_a: key}
                for col in shared:
                    va, vb = row.get(col), other.get(col)
                    if not (_numeric(va) and _numeric(vb)):
                        continue
                    out[f"{col}_a"] = va
                    out[f"{col}_b"] = vb
                    out[f"{col}_delta"] = vb - va
                    out[f"{col}_pct"] = 100.0 * (vb - va) / va if va else None
                    for name in (f"{col}_a", f"{col}_b", f"{col}_delta", f"{col}_pct"):
                        if name not in out_cols:
                            out_cols.append(name)
                diff.series_rows.append(out)
            diff.series_columns = out_cols
    spans_a = (a.metrics or {}).get("spans", {})
    spans_b = (b.metrics or {}).get("spans", {})
    for name in spans_a:
        if name not in spans_b:
            continue
        sa, sb = spans_a[name], spans_b[name]
        row: dict[str, Any] = {"span": name}
        for pct in ("p50", "p95", "p99"):
            va = 1e3 * sa.get(f"{pct}_s", 0.0)
            vb = 1e3 * sb.get(f"{pct}_s", 0.0)
            row[f"{pct}_a_ms"] = va
            row[f"{pct}_b_ms"] = vb
            row[f"{pct}_pct"] = 100.0 * (vb - va) / va if va else None
        diff.span_rows.append(row)
    return diff


def format_diff(diff: RunDiff, *, markdown: bool = False) -> str:
    """Render a :class:`RunDiff` as aligned text or markdown."""
    title = f"diff {diff.a.run_id} -> {diff.b.run_id}"
    lines = [f"## {title}" if markdown else f"== {title} =="]
    if diff.series_rows:
        sub = f"per-{diff.key_column} series (a -> b)"
        lines.append(f"### {sub}" if markdown else f"-- {sub} --")
        lines.append(
            format_table(diff.series_columns, diff.series_rows, markdown=markdown)
        )
    else:
        lines.append("(no alignable series: runs recorded no common table)")
    if diff.span_rows:
        lines.append("")
        lines.append("### span shifts" if markdown else "-- span shifts --")
        columns = ["span"]
        for pct in ("p50", "p95", "p99"):
            columns += [f"{pct}_a_ms", f"{pct}_b_ms", f"{pct}_pct"]
        lines.append(format_table(columns, diff.span_rows, markdown=markdown))
    return "\n".join(lines)


def format_report(run: RunData) -> str:
    """The ``runs report`` view: one self-contained markdown document."""
    lines = [f"# Run report: {run.run_id}", "", format_run(run, markdown=True)]
    return "\n".join(lines)
