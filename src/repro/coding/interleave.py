"""Block interleaving.

Viterbi decoding assumes scattered bit errors, but a deep MIMO fade
corrupts a whole transmit vector — a *burst* of adjacent coded bits. The
standard fix is a rows-in/columns-out block interleaver between encoder
and modulator: a burst of up to ``rows`` adjacent channel errors lands
on bits at least ``rows`` apart after deinterleaving, which the code's
free distance can then absorb.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int


class BlockInterleaver:
    """Rows-in / columns-out block interleaver for fixed-length frames.

    Parameters
    ----------
    rows, cols:
        The interleaver operates on blocks of exactly ``rows * cols``
        symbols: written row-major, read column-major.
    """

    def __init__(self, rows: int, cols: int) -> None:
        self.rows = check_positive_int(rows, "rows")
        self.cols = check_positive_int(cols, "cols")

    @property
    def block_size(self) -> int:
        """Symbols per interleaver block."""
        return self.rows * self.cols

    def _check(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data)
        if data.ndim != 1 or data.size != self.block_size:
            raise ValueError(
                f"data must be 1-D of length {self.block_size}, got shape {data.shape}"
            )
        return data

    def interleave(self, data: np.ndarray) -> np.ndarray:
        """Permute one block (row-major in, column-major out)."""
        return self._check(data).reshape(self.rows, self.cols).T.reshape(-1)

    def deinterleave(self, data: np.ndarray) -> np.ndarray:
        """Invert :meth:`interleave`."""
        return self._check(data).reshape(self.cols, self.rows).T.reshape(-1)

    def spread(self) -> int:
        """Minimum output distance between input neighbours.

        A burst shorter than this lands on non-adjacent pre-interleaver
        positions.
        """
        return self.rows
