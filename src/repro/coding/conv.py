"""Rate-1/n convolutional codes with Viterbi decoding.

The encoder is the textbook feed-forward shift register: constraint
length ``K``, one input bit per step, ``n`` output bits given by octal
generator polynomials (e.g. the ubiquitous ``(133, 171)`` K=7 code used
by 802.11, or the toy ``(7, 5)`` K=3 code). Frames are *terminated*:
``K-1`` flush zeros return the trellis to state 0, so the decoder knows
both endpoints.

:class:`ViterbiDecoder` implements maximum-likelihood sequence decoding
over the trellis, vectorised across states per step:

* **hard** input — Hamming branch metrics on sliced bits;
* **soft** input — correlation metrics on LLRs (positive = bit 1), the
  natural partner of
  :class:`~repro.detectors.soft.SoftOutputSphereDetector`.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int


class ConvolutionalCode:
    """A feed-forward rate-1/n convolutional code.

    Parameters
    ----------
    generators:
        Octal (or plain int) generator polynomials; their count sets the
        inverse rate ``n``.
    constraint_length:
        K — register length including the current input bit. Defaults to
        the highest bit set in the generators.
    """

    def __init__(
        self,
        generators: tuple[int, ...] = (0o133, 0o171),
        constraint_length: int | None = None,
    ) -> None:
        if len(generators) < 2:
            raise ValueError("need at least two generator polynomials")
        gens = tuple(int(g) for g in generators)
        if any(g <= 0 for g in gens):
            raise ValueError("generator polynomials must be positive")
        needed = max(g.bit_length() for g in gens)
        if constraint_length is None:
            constraint_length = needed
        constraint_length = check_positive_int(constraint_length, "constraint_length")
        if constraint_length < needed:
            raise ValueError(
                f"constraint_length {constraint_length} too small for generators "
                f"(need {needed})"
            )
        self.generators = gens
        self.constraint_length = constraint_length
        self.n_outputs = len(gens)
        self.n_states = 1 << (constraint_length - 1)
        # Transition tables: for state s and input b, the register word is
        # (b << (K-1)) | s read MSB-first as [input, s_bits]; outputs are
        # generator parities; next state shifts the input in.
        states = np.arange(self.n_states)
        self._next_state = np.empty((self.n_states, 2), dtype=np.int64)
        self._outputs = np.empty((self.n_states, 2, self.n_outputs), dtype=np.int64)
        for b in (0, 1):
            word = (b << (constraint_length - 1)) | states
            self._next_state[:, b] = word >> 1
            for gi, g in enumerate(gens):
                masked = word & g
                # Parity of each masked word.
                parity = np.zeros_like(masked)
                m = masked.copy()
                while np.any(m):
                    parity ^= m & 1
                    m >>= 1
                self._outputs[:, b, gi] = parity

    @property
    def rate(self) -> float:
        """Information bits per coded bit (ignoring termination)."""
        return 1.0 / self.n_outputs

    def coded_length(self, n_info_bits: int) -> int:
        """Coded bits for ``n_info_bits`` including termination flush."""
        check_positive_int(n_info_bits, "n_info_bits")
        return (n_info_bits + self.constraint_length - 1) * self.n_outputs

    def free_distance(self, max_steps: int = 64) -> int:
        """Free distance of the code (minimum-weight non-zero codeword).

        Dijkstra-style search over the trellis: start by leaving state 0
        with input 1, accumulate output weight, and find the cheapest
        return to state 0. Determines the code's guaranteed error
        correction: ``t = floor((d_free - 1) / 2)`` scattered errors.
        """
        import heapq

        check_positive_int(max_steps, "max_steps")
        best = {s: np.inf for s in range(self.n_states)}
        heap: list[tuple[int, int]] = []
        # First transition must be input 1 (else the codeword is zero).
        w0 = int(self._outputs[0, 1].sum())
        start = int(self._next_state[0, 1])
        if start == 0:
            return w0
        heapq.heappush(heap, (w0, start))
        best[start] = w0
        while heap:
            weight, state = heapq.heappop(heap)
            if weight > best[state]:
                continue
            for b in (0, 1):
                nxt = int(self._next_state[state, b])
                w = weight + int(self._outputs[state, b].sum())
                if nxt == 0:
                    return w
                if w < best[nxt]:
                    best[nxt] = w
                    heapq.heappush(heap, (w, nxt))
        raise RuntimeError("free distance search failed")  # pragma: no cover

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode and terminate a bit array."""
        bits = np.asarray(bits).astype(np.int64)
        if bits.ndim != 1 or bits.size == 0:
            raise ValueError("bits must be a non-empty 1-D array")
        flushed = np.concatenate(
            [bits, np.zeros(self.constraint_length - 1, dtype=np.int64)]
        )
        out = np.empty(flushed.size * self.n_outputs, dtype=bool)
        state = 0
        for i, b in enumerate(flushed):
            out[i * self.n_outputs : (i + 1) * self.n_outputs] = self._outputs[
                state, b
            ].astype(bool)
            state = int(self._next_state[state, b])
        if state != 0:  # pragma: no cover - termination is by construction
            raise AssertionError("trellis did not terminate")
        return out


class ViterbiDecoder:
    """Maximum-likelihood sequence decoder for a terminated code."""

    #: Effective -infinity for unreachable path metrics.
    _NEG = -1e18

    def __init__(self, code: ConvolutionalCode) -> None:
        self.code = code

    # ------------------------------------------------------------------

    def _run_trellis(self, branch_scores: np.ndarray) -> np.ndarray:
        """Viterbi over precomputed scores.

        ``branch_scores[t, s, b]`` is the reward for taking input ``b``
        from state ``s`` at step ``t``; returns the decoded input bits
        (including flush bits).
        """
        code = self.code
        steps = branch_scores.shape[0]
        metrics = np.full(code.n_states, self._NEG)
        metrics[0] = 0.0  # encoder starts in state 0
        prev_state = np.empty((steps, code.n_states), dtype=np.int64)
        prev_bit = np.empty((steps, code.n_states), dtype=np.int64)
        for t in range(steps):
            new_metrics = np.full(code.n_states, self._NEG)
            new_prev = np.zeros(code.n_states, dtype=np.int64)
            new_bit = np.zeros(code.n_states, dtype=np.int64)
            for b in (0, 1):
                cand = metrics + branch_scores[t, :, b]  # score per origin
                dest = code._next_state[:, b]
                # For each destination keep the best origin.
                order = np.argsort(cand, kind="stable")
                # Later (larger) candidates overwrite earlier ones.
                new_metrics_b = new_metrics.copy()
                np.maximum.at(new_metrics_b, dest, cand)
                improved = new_metrics_b > new_metrics
                # Recover argmax per destination.
                best_origin = np.full(code.n_states, -1, dtype=np.int64)
                for s in order:
                    best_origin[dest[s]] = s  # last write = max (sorted)
                update = improved
                new_prev[update] = best_origin[update]
                new_bit[update] = b
                new_metrics = new_metrics_b
            prev_state[t] = new_prev
            prev_bit[t] = new_bit
            metrics = new_metrics
        # Terminated frame: end in state 0.
        state = 0
        decoded = np.empty(steps, dtype=np.int64)
        for t in range(steps - 1, -1, -1):
            decoded[t] = prev_bit[t, state]
            state = int(prev_state[t, state])
        return decoded

    def _strip_flush(self, decoded: np.ndarray) -> np.ndarray:
        return decoded[: decoded.size - (self.code.constraint_length - 1)].astype(
            bool
        )

    # ------------------------------------------------------------------

    def decode_hard(self, coded_bits: np.ndarray) -> np.ndarray:
        """Decode hard-sliced coded bits (Hamming metric)."""
        code = self.code
        coded_bits = np.asarray(coded_bits).astype(np.int64)
        if coded_bits.ndim != 1 or coded_bits.size % code.n_outputs:
            raise ValueError(
                f"coded bits length must be a multiple of {code.n_outputs}"
            )
        steps = coded_bits.size // code.n_outputs
        received = coded_bits.reshape(steps, code.n_outputs)
        # Reward = matching bits: steps x states x 2.
        matches = (
            code._outputs[None, :, :, :] == received[:, None, None, :]
        ).sum(axis=3)
        decoded = self._run_trellis(matches.astype(float))
        return self._strip_flush(decoded)

    def decode_soft(self, llrs: np.ndarray) -> np.ndarray:
        """Decode from per-bit LLRs (positive favours 1; correlation metric)."""
        code = self.code
        llrs = np.asarray(llrs, dtype=float)
        if llrs.ndim != 1 or llrs.size % code.n_outputs:
            raise ValueError(
                f"LLR length must be a multiple of {code.n_outputs}"
            )
        steps = llrs.size // code.n_outputs
        observed = llrs.reshape(steps, code.n_outputs)
        signs = 2.0 * code._outputs[None, :, :, :] - 1.0  # bit -> +-1
        scores = (signs * observed[:, None, None, :]).sum(axis=3)
        decoded = self._run_trellis(scores)
        return self._strip_flush(decoded)
