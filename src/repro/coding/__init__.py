"""Channel coding substrate: convolutional codes and Viterbi decoding.

Real MIMO links are coded; the detector's soft outputs
(:mod:`repro.detectors.soft`) only pay off when a soft-input decoder
consumes them. This package provides the classic rate-1/n
convolutional codes with hard- and soft-decision Viterbi decoding,
closing the loop for coded-BER experiments.
"""

from repro.coding.conv import ConvolutionalCode, ViterbiDecoder
from repro.coding.interleave import BlockInterleaver

__all__ = ["ConvolutionalCode", "ViterbiDecoder", "BlockInterleaver"]
