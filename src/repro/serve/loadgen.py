"""Deterministic, seeded multi-stream load generation.

A :class:`LoadGenerator` replays what a base station's front haul looks
like to the detector: many concurrent streams (users), each pinned to a
channel block (its fading realisation) and emitting received vectors at
its own arrival process. The whole trace derives from one
``numpy.random.SeedSequence`` tree — one spawned child per channel
block and per stream — so the same seed always yields the bit-identical
trace (arrival times, channels, payloads) regardless of how many
streams are generated or in what order the events are consumed.

Arrival profiles:

``poisson``
    Independent exponential inter-arrivals at ``rate_hz`` — the M/G/1
    assumption of :mod:`repro.bench.realtime`, so served traces can be
    cross-checked against the Pollaczek–Khinchine prediction.
``bursty``
    ON/OFF-modulated Poisson: exponentially distributed ON windows at
    ``rate_hz / on_fraction`` separated by silent OFF windows, keeping
    the long-run mean near ``rate_hz`` while stressing the scheduler's
    size trigger and backpressure bound.
``uniform``
    Evenly spaced arrivals with a random phase — the isochronous
    slot-clocked uplink.

:func:`arrival_times` is the shared primitive; the queueing analysis in
:mod:`repro.bench.realtime` and the capacity examples synthesise their
arrivals through it instead of hand-rolling per-script variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.mimo.system import MIMOSystem

__all__ = [
    "ArrivalEvent",
    "LoadGenerator",
    "LoadTrace",
    "arrival_times",
]

ARRIVAL_PROFILES = ("poisson", "bursty", "uniform")


def arrival_times(
    profile: str,
    rate_hz: float,
    duration_s: float,
    rng: np.random.Generator,
    *,
    on_fraction: float = 0.25,
    cycle_s: float | None = None,
) -> np.ndarray:
    """Arrival timestamps in ``[0, duration_s)`` for one stream.

    ``on_fraction``/``cycle_s`` only shape the ``bursty`` profile: a
    mean ON window of ``on_fraction * cycle_s`` seconds at elevated
    rate ``rate_hz / on_fraction`` alternates with silent OFF windows,
    so the long-run mean rate stays ``rate_hz``. ``cycle_s`` defaults
    to ten mean inter-arrival times.
    """
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive, got {rate_hz}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if profile == "uniform":
        period = 1.0 / rate_hz
        phase = rng.uniform(0.0, period)
        return np.arange(phase, duration_s, period)
    if profile == "poisson":
        # Draw in geometric chunks until past the horizon; deterministic
        # for a given generator state.
        times: list[float] = []
        t = 0.0
        while True:
            gaps = rng.exponential(1.0 / rate_hz, size=256)
            arrivals = t + np.cumsum(gaps)
            inside = arrivals[arrivals < duration_s]
            times.extend(inside.tolist())
            if inside.size < arrivals.size:
                return np.asarray(times)
            t = float(arrivals[-1])
    if profile == "bursty":
        if not 0 < on_fraction < 1:
            raise ValueError(
                f"on_fraction must lie in (0, 1), got {on_fraction}"
            )
        cycle = cycle_s if cycle_s is not None else 10.0 / rate_hz
        if cycle <= 0:
            raise ValueError(f"cycle_s must be positive, got {cycle_s}")
        on_mean = on_fraction * cycle
        off_mean = (1.0 - on_fraction) * cycle
        burst_rate = rate_hz / on_fraction
        times = []
        t = 0.0
        while t < duration_s:
            on_end = t + rng.exponential(on_mean)
            while True:
                t += rng.exponential(1.0 / burst_rate)
                if t >= on_end or t >= duration_s:
                    break
                times.append(t)
            t = max(t, on_end) + rng.exponential(off_mean)
        return np.asarray(times)
    raise ValueError(
        f"unknown arrival profile {profile!r}; "
        f"expected one of {ARRIVAL_PROFILES}"
    )


@dataclass(frozen=True)
class ArrivalEvent:
    """One frame arrival: the payload a stream submits to the service."""

    stream_id: str
    stream_index: int
    seq: int
    channel_id: str
    arrival_s: float
    received: np.ndarray
    sent_indices: np.ndarray
    sent_bits: np.ndarray


@dataclass
class LoadTrace:
    """A fully materialised multi-stream load trace.

    ``events`` is globally time-ordered (ties broken by stream index
    then per-stream sequence, so the order is total and deterministic);
    ``channels`` maps each channel block to its ``(matrix, noise_var)``
    for :meth:`DetectionService.register_trace_channels`.
    """

    events: list[ArrivalEvent]
    channels: dict[str, tuple[np.ndarray, float]]
    n_streams: int
    duration_s: float
    rate_hz: float
    profile: str
    seed: int
    snr_db: float
    system_label: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def n_events(self) -> int:
        return len(self.events)

    @property
    def offered_rate_hz(self) -> float:
        """Realised aggregate arrival rate over the trace horizon."""
        return self.n_events / self.duration_s if self.duration_s else 0.0

    def arrival_array(self) -> np.ndarray:
        """All arrival timestamps, in event order."""
        return np.asarray([ev.arrival_s for ev in self.events])

    def stream_counts(self) -> dict[str, int]:
        """Frames per stream (includes silent streams as zero)."""
        counts = {f"s{i:04d}": 0 for i in range(self.n_streams)}
        for ev in self.events:
            counts[ev.stream_id] += 1
        return counts


class LoadGenerator:
    """Seeded generator of heavy-traffic multi-stream traces.

    Parameters
    ----------
    system:
        The MIMO link every stream transmits over.
    n_streams:
        Concurrent streams (users).
    rate_hz:
        Mean arrival rate *per stream*.
    duration_s:
        Trace horizon.
    channel_blocks:
        Number of distinct channel realisations; streams are assigned
        round-robin (stream ``i`` to block ``i % channel_blocks``), so
        fewer blocks than streams means cross-stream coalescing into
        shared fused batches. Default: one block per stream.
    profile, on_fraction, cycle_s:
        Arrival process (see :func:`arrival_times`).
    """

    def __init__(
        self,
        system: MIMOSystem,
        *,
        n_streams: int,
        rate_hz: float,
        duration_s: float,
        snr_db: float = 8.0,
        profile: str = "poisson",
        seed: int = 0,
        channel_blocks: int | None = None,
        on_fraction: float = 0.25,
        cycle_s: float | None = None,
    ) -> None:
        if n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {n_streams}")
        if profile not in ARRIVAL_PROFILES:
            raise ValueError(
                f"unknown arrival profile {profile!r}; "
                f"expected one of {ARRIVAL_PROFILES}"
            )
        blocks = n_streams if channel_blocks is None else channel_blocks
        if not 1 <= blocks <= n_streams:
            raise ValueError(
                f"channel_blocks must lie in [1, n_streams], got {blocks}"
            )
        self.system = system
        self.n_streams = n_streams
        self.rate_hz = float(rate_hz)
        self.duration_s = float(duration_s)
        self.snr_db = float(snr_db)
        self.profile = profile
        self.seed = int(seed)
        self.channel_blocks = blocks
        self.on_fraction = on_fraction
        self.cycle_s = cycle_s

    def trace(self) -> LoadTrace:
        """Materialise the trace (same seed -> bit-identical trace)."""
        root = np.random.SeedSequence(self.seed)
        children = root.spawn(self.channel_blocks + self.n_streams)
        noise_var = self.system.noise_var(self.snr_db)
        channels: dict[str, tuple[np.ndarray, float]] = {}
        matrices: list[np.ndarray] = []
        for b in range(self.channel_blocks):
            rng = np.random.default_rng(children[b])
            matrix = self.system.channel_model.draw_channel(rng)
            channels[f"ch{b:03d}"] = (matrix, noise_var)
            matrices.append(matrix)
        events: list[ArrivalEvent] = []
        for s in range(self.n_streams):
            rng = np.random.default_rng(children[self.channel_blocks + s])
            block = s % self.channel_blocks
            times = arrival_times(
                self.profile,
                self.rate_hz,
                self.duration_s,
                rng,
                on_fraction=self.on_fraction,
                cycle_s=self.cycle_s,
            )
            for seq, t in enumerate(times):
                frame = self.system.random_frame(
                    self.snr_db, rng, channel=matrices[block]
                )
                events.append(
                    ArrivalEvent(
                        stream_id=f"s{s:04d}",
                        stream_index=s,
                        seq=seq,
                        channel_id=f"ch{block:03d}",
                        arrival_s=float(t),
                        received=frame.received,
                        sent_indices=frame.symbol_indices,
                        sent_bits=frame.bits,
                    )
                )
        events.sort(key=lambda ev: (ev.arrival_s, ev.stream_index, ev.seq))
        return LoadTrace(
            events=events,
            channels=channels,
            n_streams=self.n_streams,
            duration_s=self.duration_s,
            rate_hz=self.rate_hz,
            profile=self.profile,
            seed=self.seed,
            snr_db=self.snr_db,
            system_label=repr(self.system),
        )
