"""Detection service: the serving front end over the detector registry.

:class:`DetectionService` binds a :class:`~repro.detectors.registry.
DetectorSpec` to a :class:`~repro.serve.scheduler.BatchScheduler` and a
set of channel blocks. Frames submitted per stream coalesce into fused
``decode_batch`` calls (when the registry entry supports the batch
path; sequential ``detect`` otherwise), and results are **delivered in
per-stream submission order** through a reorder buffer — even when a
stream's frames land in different channel-block batches that complete
out of order.

The service itself owns no clock or thread. Three drivers sit on top:

* :func:`serve_trace` — a deterministic virtual-time event loop over a
  load trace (single decode server; batch service times come from the
  measured host decode or a pluggable deterministic model). This is
  what the capacity experiments and the CI gate run.
* :class:`ThreadedDetectionService` — a real-time front end: a flusher
  thread honours deadlines, ``submit`` returns a future and applies
  blocking backpressure.
* Direct ``submit``/``poll``/``drain`` calls — what the property tests
  drive on a fake clock.

Serving telemetry rides the ambient tracer/metrics exactly like the
decode path: ``serve.batch`` spans, ``serve.frames``/``serve.batches``
counters, ``serve.batch_fill`` / ``serve.latency_seconds`` histograms
and a ``serve.queue_depth`` gauge.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.detectors.base import DetectionResult, Detector
from repro.detectors.registry import DetectorSpec, detector_entry
from repro.obs.metrics import current_metrics, exponential_buckets
from repro.obs.tracer import current_tracer
from repro.serve.scheduler import (
    BackpressureError,
    Batch,
    BatchScheduler,
    SchedulerConfig,
)
from repro.util.timing import Timer, TimingSummary, WallClock, summarize

__all__ = [
    "DetectionService",
    "FrameResult",
    "ServeReport",
    "ThreadedDetectionService",
    "conformance_mismatches",
    "direct_results",
    "fixed_service_model",
    "fpga_service_model",
    "serve_trace",
]

#: Batch-fill histogram buckets: 1, 2, 4, ... 1024 frames.
FILL_BUCKETS = exponential_buckets(1.0, 2.0, 11)

#: Latency histogram buckets: 1 us .. ~1 s.
LATENCY_BUCKETS = exponential_buckets(1e-6, 2.0, 21)


@dataclass(frozen=True)
class FrameResult:
    """One served frame: the decode outcome plus latency accounting.

    All timestamps live in the driver's clock domain (virtual seconds
    under :func:`serve_trace`, wall seconds under the threaded front
    end). ``service_s`` is the batch's service time attributed to this
    frame's batch (not split per frame).
    """

    request: Any  # FrameRequest
    result: DetectionResult
    batch_size: int
    reason: str
    flushed_s: float
    completed_s: float
    service_s: float

    @property
    def stream_id(self) -> str:
        return self.request.stream_id

    @property
    def seq(self) -> int:
        return self.request.seq

    @property
    def queue_wait_s(self) -> float:
        """Time spent in the scheduler before the batch flushed."""
        return self.flushed_s - self.request.arrival_s

    @property
    def latency_s(self) -> float:
        """Submission-to-delivery sojourn (the SLO quantity)."""
        return self.completed_s - self.request.arrival_s


@dataclass
class _Decoded:
    """Decode outcome of one batch before completion stamping."""

    results: list[DetectionResult]
    service_s: float
    measured_s: float


class _StreamDelivery:
    """Per-stream reorder buffer: releases results in seq order."""

    def __init__(self) -> None:
        self.next_seq = 0
        self._held: dict[int, FrameResult] = {}

    def push(self, fr: FrameResult) -> list[FrameResult]:
        self._held[fr.seq] = fr
        released: list[FrameResult] = []
        while self.next_seq in self._held:
            released.append(self._held.pop(self.next_seq))
            self.next_seq += 1
        return released

    @property
    def holding(self) -> int:
        return len(self._held)


def fixed_service_model(per_frame_s: float) -> Callable:
    """A deterministic service model: ``per_frame_s`` per frame."""
    if per_frame_s <= 0:
        raise ValueError("per_frame_s must be positive")

    def model(batch: Batch, results, measured_s: float) -> float:
        return per_frame_s * len(batch)

    return model


def fpga_service_model(pipeline) -> Callable:
    """Deterministic service model from the FPGA pipeline simulator.

    Batch service time = sum of each frame's modelled pipeline seconds
    (the fleet model serialises frames through one pipeline). Frames
    without search stats (closed-form detectors) fall back to the
    measured host share, so mixed workloads stay well-defined.
    """

    def model(batch: Batch, results, measured_s: float) -> float:
        total = 0.0
        for res in results:
            if res.stats is not None:
                total += pipeline.decode_report(res.stats).seconds
            else:
                total += measured_s / max(len(results), 1)
        return total

    return model


class DetectionService:
    """Serving shell: registry spec + scheduler + channel blocks.

    Parameters
    ----------
    spec:
        Registry :class:`DetectorSpec`; one fresh detector is built and
        prepared per registered channel block (the amortised
        ``prepare`` of the two-phase protocol).
    config:
        Scheduler tuning (:class:`SchedulerConfig`).
    service_model:
        Optional ``model(batch, results, measured_s) -> seconds``
        deterministic service-time model; ``None`` uses the measured
        host wall time. Dynamic batch sizing always feeds on the
        *modelled* time when a model is present (it is the time the
        virtual server charges).
    """

    def __init__(
        self,
        spec: DetectorSpec,
        *,
        config: SchedulerConfig | None = None,
        service_model: Callable | None = None,
    ) -> None:
        self.spec = spec
        self.entry = detector_entry(spec.kind)
        self.scheduler = BatchScheduler(config)
        self.service_model = service_model
        self._detectors: dict[str, Detector] = {}
        self._channels: dict[str, tuple[np.ndarray, float]] = {}
        self._delivery: dict[str, _StreamDelivery] = {}

    # ------------------------------------------------------------------
    # Channel registration
    # ------------------------------------------------------------------

    def register_channel(
        self, channel_id: str, channel: np.ndarray, noise_var: float = 0.0
    ) -> None:
        """Register one channel block (prepared lazily on first use)."""
        self._channels[channel_id] = (np.asarray(channel), float(noise_var))
        self._detectors.pop(channel_id, None)

    def register_trace_channels(self, trace) -> None:
        """Register every channel block of a load trace."""
        for channel_id, (channel, noise_var) in trace.channels.items():
            self.register_channel(channel_id, channel, noise_var)

    def _detector(self, channel_id: str) -> Detector:
        detector = self._detectors.get(channel_id)
        if detector is None:
            try:
                channel, noise_var = self._channels[channel_id]
            except KeyError:
                raise KeyError(
                    f"unknown channel block {channel_id!r}; "
                    f"registered: {sorted(self._channels)}"
                ) from None
            detector = self.spec()
            detector.prepare(channel, noise_var=noise_var)
            self._detectors[channel_id] = detector
        return detector

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def submit(
        self,
        stream_id: str,
        received: np.ndarray,
        *,
        channel_id: str,
        now: float,
        payload: Any = None,
    ):
        """Admit one frame (propagates :class:`BackpressureError`)."""
        if channel_id not in self._channels:
            raise KeyError(
                f"unknown channel block {channel_id!r}; "
                f"registered: {sorted(self._channels)}"
            )
        try:
            return self.scheduler.submit(
                stream_id,
                received,
                channel_id=channel_id,
                now=now,
                payload=payload,
            )
        except BackpressureError:
            metrics = current_metrics()
            if metrics.enabled:
                metrics.counter("serve.rejected").inc(
                    1, detector=self.spec.kind
                )
            raise

    def process(self, batch: Batch) -> _Decoded:
        """Decode one batch (fused when the registry entry supports it).

        Returns the per-frame results in batch order plus the service
        time the driver should charge (modelled or measured).
        """
        detector = self._detector(batch.channel_id)
        tracer = current_tracer()
        timer = Timer()
        with tracer.span(
            "serve.batch",
            detector=self.spec.kind,
            frames=len(batch),
            reason=batch.reason,
        ):
            with timer:
                if len(batch) > 1 and self.entry.batch:
                    results = detector.decode_batch(batch.received_matrix)
                else:
                    results = [
                        detector.detect(frame.received)
                        for frame in batch.frames
                    ]
        measured_s = timer.elapsed
        service_s = (
            self.service_model(batch, results, measured_s)
            if self.service_model is not None
            else measured_s
        )
        self.scheduler.observe_service(len(batch), service_s)
        if tracer.enabled:
            tracer.count("serve.frames", len(batch))
            tracer.count("serve.batches", 1)
        metrics = current_metrics()
        if metrics.enabled:
            det = self.spec.kind
            metrics.counter("serve.frames").inc(len(batch), detector=det)
            metrics.counter("serve.batches").inc(
                1, detector=det, reason=batch.reason
            )
            metrics.histogram("serve.batch_fill", edges=FILL_BUCKETS).observe(
                len(batch), detector=det
            )
        return _Decoded(
            results=list(results), service_s=service_s, measured_s=measured_s
        )

    def finish(
        self, batch: Batch, decoded: _Decoded, completed_s: float
    ) -> list[FrameResult]:
        """Stamp completion and deliver in per-stream seq order.

        Returns the results *released* by the reorder buffers (possibly
        fewer or more than the batch's own frames, as earlier-seq
        stragglers unblock later-seq holds).
        """
        metrics = current_metrics()
        delivered: list[FrameResult] = []
        for frame, result in zip(batch.frames, decoded.results):
            fr = FrameResult(
                request=frame,
                result=result,
                batch_size=len(batch),
                reason=batch.reason,
                flushed_s=batch.created_s,
                completed_s=completed_s,
                service_s=decoded.service_s,
            )
            buffer = self._delivery.setdefault(
                frame.stream_id, _StreamDelivery()
            )
            delivered.extend(buffer.push(fr))
        if metrics.enabled:
            det = self.spec.kind
            latency = metrics.histogram(
                "serve.latency_seconds", edges=LATENCY_BUCKETS
            )
            wait = metrics.histogram(
                "serve.queue_wait_seconds", edges=LATENCY_BUCKETS
            )
            for fr in delivered:
                latency.observe(fr.latency_s, detector=det)
                wait.observe(fr.queue_wait_s, detector=det)
            metrics.gauge("serve.queue_depth").set(
                self.scheduler.pending, detector=det
            )
        return delivered

    def complete(self, batch: Batch, now: float) -> list[FrameResult]:
        """Synchronous decode + delivery (completion time = ``now``)."""
        return self.finish(batch, self.process(batch), now)

    def poll(self, now: float) -> list[FrameResult]:
        """Flush and synchronously serve everything due at ``now``."""
        delivered: list[FrameResult] = []
        for batch in self.scheduler.poll(now):
            delivered.extend(self.complete(batch, now))
        return delivered

    def drain(self, now: float) -> list[FrameResult]:
        """Flush and serve every pending frame (shutdown path)."""
        delivered: list[FrameResult] = []
        for batch in self.scheduler.drain(now):
            delivered.extend(self.complete(batch, now))
        return delivered

    @property
    def undelivered(self) -> int:
        """Results held by reorder buffers awaiting earlier sequences."""
        return sum(d.holding for d in self._delivery.values())


# ---------------------------------------------------------------------------
# Virtual-time driver
# ---------------------------------------------------------------------------


@dataclass
class ServeReport:
    """Outcome of serving one load trace.

    ``results`` is in delivery order (per-stream seq order is
    guaranteed within each stream). All times are in the driver's
    clock domain.
    """

    results: list[FrameResult]
    rejected: int
    n_batches: int
    start_s: float
    end_s: float
    slo_s: float | None = None

    @property
    def accepted(self) -> int:
        return len(self.results)

    @property
    def offered(self) -> int:
        return self.accepted + self.rejected

    @property
    def latencies_s(self) -> list[float]:
        return [fr.latency_s for fr in self.results]

    @property
    def queue_waits_s(self) -> list[float]:
        return [fr.queue_wait_s for fr in self.results]

    def latency_summary(self) -> TimingSummary:
        """p50/p95/p99 etc. over per-frame sojourn times."""
        return summarize(self.latencies_s)

    def slo_attainment(self, slo_s: float | None = None) -> float:
        """Fraction of accepted frames delivered within the SLO."""
        slo = self.slo_s if slo_s is None else slo_s
        if slo is None:
            raise ValueError("no SLO configured on this report")
        if not self.results:
            return 1.0
        met = sum(1 for fr in self.results if fr.latency_s <= slo)
        return met / len(self.results)

    @property
    def duration_s(self) -> float:
        """Makespan: first arrival to last completion."""
        return max(self.end_s - self.start_s, 0.0)

    @property
    def throughput_hz(self) -> float:
        """Accepted frames per second of makespan."""
        if self.duration_s <= 0:
            return 0.0
        return self.accepted / self.duration_s

    @property
    def mean_batch_fill(self) -> float:
        """Average frames per decoded batch."""
        if not self.n_batches:
            return 0.0
        return self.accepted / self.n_batches

    def symbol_errors(self) -> int:
        """Symbol errors vs the ground truth carried in payloads.

        Counts mismatched antenna decisions for every frame whose
        payload exposes ``sent_indices``; frames without ground truth
        contribute zero.
        """
        errors = 0
        for fr in self.results:
            truth = getattr(fr.request.payload, "sent_indices", None)
            if truth is not None:
                errors += int(np.sum(fr.result.indices != np.asarray(truth)))
        return errors


def serve_trace(
    service: DetectionService,
    trace,
    *,
    slo_s: float | None = None,
) -> ServeReport:
    """Serve a load trace in deterministic virtual time.

    A discrete-event loop over the trace's arrivals and the scheduler's
    deadlines, with one decode server: a flushed batch starts service
    at ``max(flush time, server free time)`` and completes after its
    service time (measured host decode, or the service's deterministic
    model). Per-frame sojourn = arrival to completion — queueing ahead
    of a busy server is what turns overload into latency, exactly the
    M/G/1 story of :mod:`repro.bench.realtime` made empirical.

    Every admitted frame is served: arrivals drive size triggers and
    the scheduler's ``next_deadline_s`` drives deadline flushes, so the
    loop terminates with an empty scheduler and no drain flush.
    """
    events = sorted(trace.events, key=lambda ev: ev.arrival_s)
    service.register_trace_channels(trace)
    metrics = current_metrics()
    results: list[FrameResult] = []
    rejected = 0
    n_batches = 0
    busy_until = 0.0
    end_s = 0.0
    start_s = events[0].arrival_s if events else 0.0
    tracer = current_tracer()

    def run(batches: Sequence[Batch], flush_t: float) -> None:
        nonlocal busy_until, n_batches, end_s
        for batch in batches:
            decoded = service.process(batch)
            begin = max(flush_t, busy_until)
            done = begin + decoded.service_s
            busy_until = done
            end_s = max(end_s, done)
            n_batches += 1
            results.extend(service.finish(batch, decoded, done))

    with tracer.span("serve.trace", events=len(events)):
        i = 0
        while i < len(events) or service.scheduler.pending:
            next_arrival = (
                events[i].arrival_s if i < len(events) else float("inf")
            )
            deadline = service.scheduler.next_deadline_s()
            next_deadline = deadline if deadline is not None else float("inf")
            if next_arrival <= next_deadline:
                event = events[i]
                i += 1
                now = event.arrival_s
                try:
                    service.submit(
                        event.stream_id,
                        event.received,
                        channel_id=event.channel_id,
                        now=now,
                        payload=event,
                    )
                except BackpressureError:
                    rejected += 1
            else:
                now = next_deadline
            run(service.scheduler.poll(now), now)
            if metrics.enabled:
                metrics.gauge("serve.queue_depth").set(
                    service.scheduler.pending, detector=service.spec.kind
                )
    if service.undelivered:
        raise AssertionError(
            f"{service.undelivered} result(s) stuck in reorder buffers"
        )
    return ServeReport(
        results=results,
        rejected=rejected,
        n_batches=n_batches,
        start_s=start_s,
        end_s=max(end_s, start_s),
        slo_s=slo_s,
    )


# ---------------------------------------------------------------------------
# Conformance against the direct per-frame path
# ---------------------------------------------------------------------------


def direct_results(
    spec: DetectorSpec, trace
) -> dict[tuple[str, int], DetectionResult]:
    """Decode every trace frame through the direct per-frame path.

    One fresh detector per channel block, ``detect`` per frame — the
    oracle the served results must match bit-for-bit. Keyed by the
    *trace* identity ``(stream_id, event seq)`` (not the scheduler's
    admission seq, which skips rejected frames).
    """
    detectors: dict[str, Detector] = {}
    out: dict[tuple[str, int], DetectionResult] = {}
    for event in trace.events:
        detector = detectors.get(event.channel_id)
        if detector is None:
            channel, noise_var = trace.channels[event.channel_id]
            detector = spec()
            detector.prepare(channel, noise_var=noise_var)
            detectors[event.channel_id] = detector
        out[(event.stream_id, event.seq)] = detector.detect(event.received)
    return out


def conformance_mismatches(
    report: ServeReport,
    oracle: Mapping[tuple[str, int], DetectionResult],
) -> list[str]:
    """Bit-identity check: served results vs the direct-decode oracle.

    Compares decided indices, hard bits and the exact float metric for
    every served frame whose payload is a trace event. Returns one
    human-readable line per mismatch (empty list = conformant).
    """
    mismatches: list[str] = []
    for fr in report.results:
        event = fr.request.payload
        key = (
            getattr(event, "stream_id", fr.stream_id),
            getattr(event, "seq", fr.seq),
        )
        direct = oracle.get(key)
        if direct is None:
            mismatches.append(f"{key}: no direct-decode oracle entry")
            continue
        if not np.array_equal(fr.result.indices, direct.indices):
            mismatches.append(
                f"{key}: indices {fr.result.indices.tolist()} != "
                f"{direct.indices.tolist()}"
            )
        elif not np.array_equal(fr.result.bits, direct.bits):
            mismatches.append(f"{key}: bit decisions differ")
        elif fr.result.metric != direct.metric:
            mismatches.append(
                f"{key}: metric {fr.result.metric!r} != {direct.metric!r}"
            )
    return mismatches


# ---------------------------------------------------------------------------
# Real-time (threaded) front end
# ---------------------------------------------------------------------------


class ThreadedDetectionService:
    """Always-on front end: deadline-honouring flusher thread + futures.

    ``submit`` returns a :class:`concurrent.futures.Future` resolving to
    a :class:`FrameResult`; per-stream futures resolve in submission
    order (the service's reorder buffer runs under the lock). When a
    stream's queue is full, ``submit`` *blocks* until the flusher frees
    space — bounded by ``submit_timeout_s``, after which
    :class:`BackpressureError` propagates to the caller. The flusher
    always wakes by the earliest pending deadline, so blocked producers
    are guaranteed progress: backpressure throttles, it cannot
    deadlock.

    Use as a context manager; exit drains pending frames.
    """

    def __init__(
        self,
        service: DetectionService,
        *,
        clock: WallClock | None = None,
        submit_timeout_s: float = 5.0,
    ) -> None:
        self.service = service
        self.clock = clock if clock is not None else WallClock()
        self.submit_timeout_s = submit_timeout_s
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._futures: dict[tuple[str, int], Future] = {}
        self._stopping = False
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-flusher", daemon=True
        )
        self._thread.start()

    def __enter__(self) -> "ThreadedDetectionService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def submit(
        self,
        stream_id: str,
        received: np.ndarray,
        *,
        channel_id: str,
        payload: Any = None,
    ) -> Future:
        """Admit one frame; blocks briefly under backpressure."""
        deadline = self.clock.now() + self.submit_timeout_s
        with self._wake:
            if self._stopping:
                raise RuntimeError("service is closed")
            while (
                self.service.scheduler.stream_depth(stream_id)
                >= self.service.scheduler.config.max_queue
            ):
                remaining = deadline - self.clock.now()
                if remaining <= 0:
                    raise BackpressureError(
                        f"stream {stream_id!r} full for "
                        f"{self.submit_timeout_s}s"
                    )
                self._space.wait(timeout=remaining)
            request = self.service.submit(
                stream_id,
                received,
                channel_id=channel_id,
                now=self.clock.now(),
                payload=payload,
            )
            future: Future = Future()
            self._futures[request.key] = future
            self._wake.notify()
        return future

    def close(self) -> None:
        """Stop the flusher, drain pending frames, resolve all futures."""
        with self._wake:
            if self._stopping:
                return
            self._stopping = True
            self._wake.notify()
        self._thread.join()
        with self._wake:
            self._deliver(self.service.drain(self.clock.now()))

    def _deliver(self, delivered: Sequence[FrameResult]) -> None:
        for fr in delivered:
            future = self._futures.pop((fr.stream_id, fr.seq), None)
            if future is not None:
                future.set_result(fr)
        if delivered:
            self._space.notify_all()

    def _run(self) -> None:
        while True:
            with self._wake:
                if self._stopping:
                    return
                deadline = self.service.scheduler.next_deadline_s()
                if deadline is None:
                    self._wake.wait()
                else:
                    self._wake.wait(
                        timeout=max(deadline - self.clock.now(), 0.0)
                    )
                if self._stopping:
                    return
                self._deliver(self.service.poll(self.clock.now()))
