"""Coalescing batch scheduler: the heart of the serving path.

The scheduler turns many per-stream frame arrivals into few fused
``decode_batch`` calls. It is a *pure*, clock-free state machine — every
mutation takes an explicit ``now`` timestamp — so the property suite can
drive it on a fake clock and assert its contracts exactly:

* **Conservation.** Every accepted frame appears in exactly one flushed
  batch; nothing is lost or duplicated.
* **Per-stream FIFO.** Within a stream (and its channel block), frames
  enter batches in submission order. Cross-channel delivery order is the
  service layer's reorder buffer's job (see :mod:`repro.serve.service`).
* **Flush on size-or-deadline.** A channel's queue flushes as soon as it
  reaches the (possibly dynamic) batch cap, and no frame waits past
  ``arrival + max_delay_s``: :meth:`next_deadline_s` tells the driver
  exactly when the next deadline-triggered :meth:`poll` is due.
* **Bounded queues / backpressure.** At most ``max_queue`` frames per
  stream may be pending; :meth:`submit` raises
  :class:`BackpressureError` beyond that instead of buffering without
  bound. A rejected frame consumes no sequence number, so delivery
  ordering never stalls on a frame that was never admitted.
* **Capped batches.** No batch ever exceeds ``max_batch`` frames, even
  with dynamic sizing enabled.

Coalescing is grouped by *channel block*: the fused GEMM path requires
every frame in a batch to share the prepared channel (block fading), so
frames from different streams on the same channel block fuse, while
different blocks form separate batches.

Dynamic batch sizing (``dynamic=True``) adapts the effective cap to the
measured decode cost: the service feeds per-batch wall time back via
:meth:`observe_service`, and the scheduler sizes batches so that one
batch's own decode time fits in a configured fraction of the deadline
budget — large batches under light load for GEMM efficiency, smaller
ones when each frame is expensive and the SLO is tight.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

__all__ = [
    "BackpressureError",
    "Batch",
    "BatchScheduler",
    "FrameRequest",
    "SchedulerConfig",
]


class BackpressureError(RuntimeError):
    """A stream's bounded queue is full; the frame was not admitted."""


@dataclass(frozen=True)
class FrameRequest:
    """One admitted frame awaiting (or undergoing) decoding.

    Attributes
    ----------
    stream_id:
        The submitting stream (user). Sequence numbers are per stream.
    seq:
        Admission order within the stream, assigned by the scheduler.
        Contiguous from 0 over *accepted* frames only.
    channel_id:
        Channel-block key; frames coalesce only within one block.
    received:
        The received vector to decode.
    arrival_s:
        Submission timestamp (scheduler clock domain).
    deadline_s:
        ``arrival_s + max_delay_s`` — the latest flush time.
    payload:
        Opaque caller data carried through to the result (e.g. the
        ground-truth indices a load generator attaches).
    """

    stream_id: str
    seq: int
    channel_id: str
    received: np.ndarray
    arrival_s: float
    deadline_s: float
    payload: Any = None

    @property
    def key(self) -> tuple[str, int]:
        """Unique identity of the frame: ``(stream_id, seq)``."""
        return (self.stream_id, self.seq)


@dataclass(frozen=True)
class Batch:
    """One flushed group of frames sharing a channel block.

    ``reason`` records what triggered the flush: ``"size"`` (the queue
    reached the batch cap), ``"deadline"`` (the head frame's deadline
    arrived) or ``"drain"`` (explicit shutdown flush).
    """

    channel_id: str
    frames: tuple[FrameRequest, ...]
    created_s: float
    reason: str

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def received_matrix(self) -> np.ndarray:
        """The frames' received vectors stacked ``(B, n_rx)``."""
        return np.stack([f.received for f in self.frames])


@dataclass(frozen=True)
class SchedulerConfig:
    """Tuning knobs for :class:`BatchScheduler`.

    Attributes
    ----------
    max_batch:
        Hard cap on frames per flushed batch (the GEMM width).
    max_delay_s:
        Deadline budget: no admitted frame waits in the scheduler
        longer than this before flushing.
    max_queue:
        Per-stream bound on pending frames (backpressure trigger).
    dynamic:
        Enable measured-cost dynamic batch sizing.
    min_batch:
        Floor for the dynamic cap (never sized below this).
    service_slack:
        With ``dynamic``: the fraction of ``max_delay_s`` one batch's
        own decode time may consume. ``0.5`` means a batch should
        decode in at most half the deadline budget, leaving the rest
        for queueing ahead of the server.
    ewma_alpha:
        Smoothing factor for the per-frame service-time estimate.
    """

    max_batch: int = 32
    max_delay_s: float = 2e-3
    max_queue: int = 64
    dynamic: bool = False
    min_batch: int = 1
    service_slack: float = 0.5
    ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_s <= 0:
            raise ValueError(
                f"max_delay_s must be positive, got {self.max_delay_s}"
            )
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if not 1 <= self.min_batch <= self.max_batch:
            raise ValueError(
                f"min_batch must lie in [1, max_batch], got {self.min_batch}"
            )
        if not 0 < self.service_slack <= 1:
            raise ValueError(
                f"service_slack must lie in (0, 1], got {self.service_slack}"
            )
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError(
                f"ewma_alpha must lie in (0, 1], got {self.ewma_alpha}"
            )


@dataclass
class SchedulerStats:
    """Cumulative accounting over one scheduler's lifetime."""

    submitted: int = 0
    rejected: int = 0
    flushed_frames: int = 0
    batches: dict[str, int] = field(
        default_factory=lambda: {"size": 0, "deadline": 0, "drain": 0}
    )
    peak_depth: int = 0
    peak_stream_depth: int = 0


class BatchScheduler:
    """Per-stream FIFO queues coalescing into capped, deadlined batches.

    Driving contract: call :meth:`submit` with non-decreasing ``now``
    timestamps, then :meth:`poll` whenever work may be due — after any
    submit (size triggers) and at :meth:`next_deadline_s` (deadline
    triggers). A driver that honours ``next_deadline_s`` never lets a
    frame wait past its deadline and never busy-waits.
    """

    def __init__(self, config: SchedulerConfig | None = None) -> None:
        self.config = config or SchedulerConfig()
        #: channel_id -> FIFO of pending frames (insertion == time order).
        self._channels: dict[str, deque[FrameRequest]] = {}
        #: stream_id -> frames currently pending in the scheduler.
        self._depth: dict[str, int] = {}
        #: stream_id -> next sequence number to assign.
        self._next_seq: dict[str, int] = {}
        self._last_now = float("-inf")
        self._est_frame_s: float | None = None
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def submit(
        self,
        stream_id: str,
        received: np.ndarray,
        *,
        channel_id: str,
        now: float,
        payload: Any = None,
    ) -> FrameRequest:
        """Admit one frame; raises :class:`BackpressureError` when full.

        Returns the admitted :class:`FrameRequest` (with its assigned
        per-stream sequence number). ``now`` must be non-decreasing
        across calls — the scheduler is a discrete-event machine, not a
        clock owner.
        """
        self._advance(now)
        depth = self._depth.get(stream_id, 0)
        if depth >= self.config.max_queue:
            self.stats.rejected += 1
            raise BackpressureError(
                f"stream {stream_id!r} queue full "
                f"({depth}/{self.config.max_queue} pending)"
            )
        seq = self._next_seq.get(stream_id, 0)
        request = FrameRequest(
            stream_id=stream_id,
            seq=seq,
            channel_id=channel_id,
            received=np.asarray(received),
            arrival_s=now,
            deadline_s=now + self.config.max_delay_s,
            payload=payload,
        )
        self._next_seq[stream_id] = seq + 1
        self._channels.setdefault(channel_id, deque()).append(request)
        self._depth[stream_id] = depth + 1
        self.stats.submitted += 1
        self.stats.peak_stream_depth = max(
            self.stats.peak_stream_depth, depth + 1
        )
        self.stats.peak_depth = max(self.stats.peak_depth, self.pending)
        return request

    # ------------------------------------------------------------------
    # Flush
    # ------------------------------------------------------------------

    def poll(self, now: float) -> list[Batch]:
        """Flush everything due at ``now``: size triggers first, then
        expired deadlines. Returns batches in deterministic order
        (oldest head frame first)."""
        self._advance(now)
        cap = self.effective_max_batch()
        batches: list[Batch] = []
        for channel_id in self._due_channels(now, cap):
            queue = self._channels.get(channel_id)
            while queue:
                if len(queue) >= cap:
                    reason = "size"
                elif queue[0].deadline_s <= now:
                    reason = "deadline"
                else:
                    break
                batches.append(self._flush(channel_id, cap, now, reason))
                queue = self._channels.get(channel_id)
        return batches

    def drain(self, now: float) -> list[Batch]:
        """Flush every pending frame regardless of triggers (shutdown)."""
        self._advance(now)
        cap = self.effective_max_batch()
        batches = []
        for channel_id in list(self._channels):
            while self._channels.get(channel_id):
                batches.append(self._flush(channel_id, cap, now, "drain"))
        return batches

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Total frames currently held by the scheduler."""
        return sum(len(q) for q in self._channels.values())

    def stream_depth(self, stream_id: str) -> int:
        """Pending frames of one stream (backpressure headroom probe)."""
        return self._depth.get(stream_id, 0)

    def next_deadline_s(self) -> float | None:
        """Earliest deadline among pending frames (None when empty).

        The driver must :meth:`poll` no later than this to uphold the
        flush-by-deadline guarantee.
        """
        heads = [q[0].deadline_s for q in self._channels.values() if q]
        return min(heads) if heads else None

    def effective_max_batch(self) -> int:
        """The batch cap currently in force (dynamic sizing applied)."""
        cfg = self.config
        if not cfg.dynamic or not self._est_frame_s:
            return cfg.max_batch
        budget = cfg.max_delay_s * cfg.service_slack
        sized = int(budget / self._est_frame_s)
        return min(cfg.max_batch, max(cfg.min_batch, sized))

    def observe_service(self, n_frames: int, seconds: float) -> None:
        """Feed back one batch's measured decode cost (dynamic sizing)."""
        if n_frames <= 0 or seconds < 0:
            return
        per_frame = seconds / n_frames
        if self._est_frame_s is None:
            self._est_frame_s = per_frame
        else:
            a = self.config.ewma_alpha
            self._est_frame_s = a * per_frame + (1 - a) * self._est_frame_s

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _advance(self, now: float) -> None:
        if now < self._last_now:
            raise ValueError(
                f"scheduler time must be non-decreasing: {now} < {self._last_now}"
            )
        self._last_now = now

    def _due_channels(self, now: float, cap: int) -> list[str]:
        """Channels with due work, oldest head frame first (stable)."""
        due = [
            (q[0].arrival_s, cid)
            for cid, q in self._channels.items()
            if q and (len(q) >= cap or q[0].deadline_s <= now)
        ]
        due.sort()
        return [cid for _arrival, cid in due]

    def _flush(
        self, channel_id: str, cap: int, now: float, reason: str
    ) -> Batch:
        queue = self._channels[channel_id]
        take = min(cap, len(queue))
        frames = tuple(queue.popleft() for _ in range(take))
        if not queue:
            del self._channels[channel_id]
        for frame in frames:
            self._depth[frame.stream_id] -= 1
        self.stats.flushed_frames += len(frames)
        self.stats.batches[reason] = self.stats.batches.get(reason, 0) + 1
        return Batch(
            channel_id=channel_id,
            frames=frames,
            created_s=now,
            reason=reason,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchScheduler(pending={self.pending}, "
            f"cap={self.effective_max_batch()}, "
            f"streams={len(self._depth)})"
        )


def conservation_check(
    admitted: Iterable[FrameRequest], batches: Iterable[Batch]
) -> None:
    """Assert the no-loss/no-duplication invariant (test helper).

    Raises :class:`AssertionError` naming the first violation: a frame
    flushed twice, flushed without admission, or admitted but never
    flushed.
    """
    expected = {frame.key for frame in admitted}
    seen: set[tuple[str, int]] = set()
    for batch in batches:
        for frame in batch.frames:
            if frame.key in seen:
                raise AssertionError(f"frame {frame.key} flushed twice")
            if frame.key not in expected:
                raise AssertionError(f"frame {frame.key} never admitted")
            seen.add(frame.key)
    missing = expected - seen
    if missing:
        raise AssertionError(f"{len(missing)} frame(s) lost: {sorted(missing)[:5]}")
