"""repro.serve — the streaming detection service.

The serving-side answer to the paper's batching-for-throughput
argument: an always-on front end that ingests frames from many
concurrent streams, coalesces them across streams and channel blocks
into the fused ``decode_batch`` GEMM path, and answers under a latency
SLO. Three layers (see ``docs/serving.md``):

:mod:`repro.serve.scheduler`
    :class:`BatchScheduler` — per-stream bounded FIFO queues coalescing
    into capped batches, flushed on size-or-deadline, with optional
    measured-cost dynamic batch sizing. A pure fake-clock state machine
    whose guarantees (conservation, FIFO, deadline, backpressure) are
    locked by the property suite in ``tests/test_serve_scheduler.py``.
:mod:`repro.serve.service`
    :class:`DetectionService` — registry spec + scheduler + channel
    blocks, delivering results in per-stream order through a reorder
    buffer; :func:`serve_trace` (deterministic virtual-time driver) and
    :class:`ThreadedDetectionService` (real-time futures front end).
    Served results are bit-identical to direct per-frame ``detect``
    (``tests/test_serve_conformance.py``).
:mod:`repro.serve.loadgen`
    :class:`LoadGenerator` — seeded multi-stream traces (Poisson /
    bursty / uniform arrival profiles) over one SeedSequence tree.

The capacity *experiments* built on top live one layer up, in
:mod:`repro.bench.serving` (``repro-sd serve``,
``benchmarks/bench_serve_capacity.py``).
"""

from repro.serve.loadgen import (
    ArrivalEvent,
    LoadGenerator,
    LoadTrace,
    arrival_times,
)
from repro.serve.scheduler import (
    BackpressureError,
    Batch,
    BatchScheduler,
    FrameRequest,
    SchedulerConfig,
    conservation_check,
)
from repro.serve.service import (
    DetectionService,
    FrameResult,
    ServeReport,
    ThreadedDetectionService,
    conformance_mismatches,
    direct_results,
    fixed_service_model,
    fpga_service_model,
    serve_trace,
)

__all__ = [
    "ArrivalEvent",
    "BackpressureError",
    "Batch",
    "BatchScheduler",
    "DetectionService",
    "FrameRequest",
    "FrameResult",
    "LoadGenerator",
    "LoadTrace",
    "SchedulerConfig",
    "ServeReport",
    "ThreadedDetectionService",
    "arrival_times",
    "conformance_mismatches",
    "conservation_check",
    "direct_results",
    "fixed_service_model",
    "fpga_service_model",
    "serve_trace",
]
