"""Shared experiment machinery: canonical configs, sweeps, table output.

The *canonical decoder* for all paper experiments is the configuration
Algorithm 1 describes: sorted-DFS traversal (the LIFO list of Fig. 3)
with the preset noise-scaled radius, GEMM-batched evaluation and radius
update on every improving leaf. The GPU baseline is the GEMM-BFS decoder
with a generously provisioned radius (alpha = 4), the way [1] must
configure it to protect BER at the low end of the SNR range.

Every experiment returns a :class:`SeriesResult` that can render itself
as an aligned text table (the benches print these, and EXPERIMENTS.md is
assembled from them).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.detectors.registry import DEFAULT_MAX_NODES, DetectorSpec, spec
from repro.fpga.pipeline import FPGAPipeline, PipelineConfig
from repro.mimo.constellation import Constellation
from repro.mimo.montecarlo import MonteCarloEngine, SweepResult
from repro.mimo.system import MIMOSystem
from repro.obs import (
    RunRegistry,
    Tracer,
    format_metrics,
    use_tracer,
    write_chrome_trace,
)
from repro.obs.log import get_logger
from repro.perfmodel import CPUCostModel
from repro.util.timing import summarize

_log = get_logger(__name__)

#: SNR grid used by every execution-time figure in the paper.
CANONICAL_SNRS: tuple[float, ...] = (4.0, 8.0, 12.0, 16.0, 20.0)

#: The paper's real-time constraint (section I).
REAL_TIME_MS = 10.0


def canonical_decoder_factory(
    constellation: Constellation,
    *,
    alpha: float = 2.0,
    max_nodes: int | None = DEFAULT_MAX_NODES,
) -> DetectorSpec:
    """Spec for the paper's Algorithm-1 decoder configuration.

    A :class:`DetectorSpec` is picklable, so Monte Carlo sweeps can ship
    it to process-pool workers; see :mod:`repro.mimo.parallel_mc`.
    """
    return spec("sd", constellation, alpha=alpha, max_nodes=max_nodes)


def bfs_gpu_decoder_factory(
    constellation: Constellation,
    *,
    alpha: float = 4.0,
    max_frontier: int = 2**19,
) -> DetectorSpec:
    """Spec for the GPU GEMM-BFS baseline of [1]."""
    return spec("bfs", constellation, alpha=alpha, max_frontier=max_frontier)


@dataclass
class SeriesResult:
    """A table of experiment rows plus provenance notes."""

    experiment: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}; have {self.columns}")
        return [row.get(name) for row in self.rows]

    def format(self) -> str:
        """Render as an aligned plain-text table."""

        def fmt(value: object) -> str:
            if value is None:
                return "-"
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) >= 1000 or abs(value) < 0.001:
                    return f"{value:.3g}"
                return f"{value:.3f}".rstrip("0").rstrip(".")
            return str(value)

        cells = [[fmt(row.get(col)) for col in self.columns] for row in self.rows]
        widths = [
            max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(
            "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        )
        lines.append("  ".join("-" * w for w in widths))
        for r in cells:
            lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(r))))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)


@dataclass
class WorkloadSweep:
    """Raw material for the execution-time figures: one MC sweep with
    traces, plus the platform models bound to the system's geometry."""

    system: MIMOSystem
    sweep: SweepResult
    cpu: CPUCostModel
    fpga_baseline: FPGAPipeline
    fpga_optimized: FPGAPipeline


def run_workload_sweep(
    n_antennas: int,
    modulation: str,
    *,
    snrs: Sequence[float] = CANONICAL_SNRS,
    channels: int = 3,
    frames_per_channel: int = 4,
    seed: int = 2023,
    alpha: float = 2.0,
    max_nodes: int | None = DEFAULT_MAX_NODES,
    workers: int = 1,
    batch_frames: bool = False,
) -> WorkloadSweep:
    """Run the canonical decoder over an SNR grid, keeping traces.

    ``workers > 1`` shards channel blocks over a process pool and
    ``batch_frames`` fuses each block's frames into one ``decode_batch``
    call — both bit-identical to the serial sweep for the same seed.
    """
    system = MIMOSystem(n_antennas, n_antennas, modulation)
    const = system.constellation
    engine = MonteCarloEngine(
        system,
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
        keep_traces=True,
        workers=workers,
        batch_frames=batch_frames,
    )
    sweep = engine.run(
        canonical_decoder_factory(const, alpha=alpha, max_nodes=max_nodes),
        snrs,
    )
    order = const.order
    return WorkloadSweep(
        system=system,
        sweep=sweep,
        cpu=CPUCostModel(n_rx=n_antennas),
        fpga_baseline=FPGAPipeline(
            PipelineConfig.baseline(order),
            n_tx=n_antennas,
            n_rx=n_antennas,
            order=order,
        ),
        fpga_optimized=FPGAPipeline(
            PipelineConfig.optimized(order),
            n_tx=n_antennas,
            n_rx=n_antennas,
            order=order,
        ),
    )


def sweep_metrics(sweep: SweepResult) -> SeriesResult:
    """Per-SNR distribution summary of the sweep's per-frame work.

    Reports host wall-time percentiles (p50/p95/p99, in ms) and node
    counts per frame — the observability layer's aligned-text metrics
    view (``repro-sd stats`` and the benches' ``--metrics`` flag print
    these).
    """
    rows = []
    for point in sweep.points:
        wall_ms = [st.wall_time_s * 1e3 for st in point.frame_stats]
        nodes = [float(st.nodes_expanded) for st in point.frame_stats]
        w = summarize(wall_ms)
        n = summarize(nodes)
        total_wall = sum(st.wall_time_s for st in point.frame_stats)
        total_gemm = sum(st.gemm_time_s for st in point.frame_stats)
        total_nodes = sum(st.nodes_expanded for st in point.frame_stats)
        rows.append(
            {
                "snr_db": point.snr_db,
                "frames": point.frames,
                "wall_p50_ms": w.p50,
                "wall_p95_ms": w.p95,
                "wall_p99_ms": w.p99,
                "wall_mean_ms": w.mean,
                "nodes_p50": n.p50,
                "nodes_p95": n.p95,
                "nodes_p99": n.p99,
                # Traversal throughput and compute-boundedness: once PD
                # evaluation is BLAS-3 the host should spend most of its
                # time inside the GEMM, not in search bookkeeping.
                "nodes_per_sec": (
                    total_nodes / total_wall if total_wall > 0 else 0.0
                ),
                "gemm_share": (
                    min(total_gemm / total_wall, 1.0) if total_wall > 0 else 0.0
                ),
                "ber": point.ber,
            }
        )
    return SeriesResult(
        experiment="metrics",
        title=f"per-frame metrics for {sweep.detector_name} ({sweep.system_label})",
        columns=[
            "snr_db",
            "frames",
            "wall_p50_ms",
            "wall_p95_ms",
            "wall_p99_ms",
            "wall_mean_ms",
            "nodes_p50",
            "nodes_p95",
            "nodes_p99",
            "nodes_per_sec",
            "gemm_share",
            "ber",
        ],
        rows=rows,
        notes="host wall time per frame; platform-model times are in the figure tables",
    )


def resolve_trace_path(base: str | Path, name: str) -> Path:
    """Where one named run's Chrome trace lands under ``--obs-trace BASE``.

    A ``BASE`` ending in ``.json`` is used verbatim (single-run case);
    anything else is treated as a directory receiving
    ``<name>.trace.json``.
    """
    base = Path(base)
    if base.suffix == ".json":
        return base
    return base / f"{name}.trace.json"


@contextmanager
def observe_bench(
    name: str,
    *,
    trace: str | Path | None = None,
    metrics: bool = False,
    runs_dir: str | Path | None = None,
    flame: str | Path | None = None,
    seed: int | None = None,
    config: dict | None = None,
) -> Iterator[Tracer | None]:
    """Scope one bench/experiment run under the observability layer.

    Installs an enabled :class:`~repro.obs.Tracer` as the ambient tracer
    when any output was requested (otherwise a no-op that yields
    ``None``). On exit writes the Chrome trace to
    :func:`resolve_trace_path`, prints the aligned metrics summary,
    writes flamegraph exports (``flame`` is a directory receiving
    ``<name>.collapsed.txt`` + ``<name>.speedscope.json``), and/or
    records a registry run (manifest + metrics + trace + span profile)
    under ``runs_dir``. ``benchmarks/conftest.py`` wires this behind
    every ``bench_*.py`` via the ``--obs-trace``/``--metrics``/
    ``--obs-runs``/``--obs-flame`` pytest options.
    """
    if trace is None and not metrics and runs_dir is None and flame is None:
        yield None
        return
    tracer = Tracer()
    recorder = RunRegistry(runs_dir).new_run(name, seed=seed, config=config)
    status = "complete"
    try:
        with use_tracer(tracer):
            yield tracer
    except BaseException:
        status = "failed"
        raise
    finally:
        export_observations(tracer, name, trace=trace, metrics=metrics)
        if flame is not None:
            from repro.obs.profile import (
                build_profile_tree,
                write_collapsed,
                write_speedscope,
            )

            tree = build_profile_tree(tracer.events)
            base = Path(flame)
            collapsed = write_collapsed(tree, base / f"{name}.collapsed.txt")
            speedscope = write_speedscope(
                tree, base / f"{name}.speedscope.json", name=name
            )
            print(f"[obs] flamegraphs written: {collapsed}, {speedscope}")
        if recorder.enabled:
            recorder.record_metrics(tracer)
            recorder.record_trace(tracer)
            recorder.record_profile(tracer)
            path = recorder.finalize(status)
            print(f"[obs] run recorded: {path}")


def export_observations(
    tracer: Tracer,
    name: str,
    *,
    trace: str | Path | None = None,
    metrics: bool = False,
) -> None:
    """Write/print one observed run's artifacts (trace file, metrics)."""
    if trace is not None:
        path = write_chrome_trace(tracer, resolve_trace_path(trace, name))
        _log.info("wrote Chrome trace for %s to %s", name, path)
        print(f"[obs] trace written: {path}")
    if metrics:
        print(format_metrics(tracer, title=f"metrics: {name}"))


def time_rows(workload: WorkloadSweep) -> list[dict]:
    """Per-SNR platform times (the rows of Figs. 6/8/9/10)."""
    rows = []
    for point in workload.sweep.points:
        stats = point.frame_stats
        cpu_ms = workload.cpu.mean_decode_seconds(stats) * 1e3
        base_ms = workload.fpga_baseline.mean_decode_seconds(stats) * 1e3
        opt_ms = workload.fpga_optimized.mean_decode_seconds(stats) * 1e3
        agg = point.aggregate_stats()
        rows.append(
            {
                "snr_db": point.snr_db,
                "cpu_ms": cpu_ms,
                "fpga_baseline_ms": base_ms,
                "fpga_optimized_ms": opt_ms,
                "speedup_vs_cpu": cpu_ms / opt_ms,
                "ber": point.ber,
                "mean_nodes": point.mean_nodes_expanded(),
                "truncated_frames": agg.truncated,
                "real_time_cpu": cpu_ms <= REAL_TIME_MS,
                "real_time_fpga": opt_ms <= REAL_TIME_MS,
            }
        )
    return rows
