"""One function per paper table/figure, plus the ablations DESIGN.md lists.

Every function takes ``channels`` / ``frames_per_channel`` so callers can
trade Monte Carlo depth for wall time (benchmarks use quick settings;
EXPERIMENTS.md was generated with deeper ones), and returns a
:class:`~repro.bench.harness.SeriesResult` with the measured series and
the paper's reference numbers where the text states them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.harness import (
    CANONICAL_SNRS,
    SeriesResult,
    bfs_gpu_decoder_factory,
    canonical_decoder_factory,
    run_workload_sweep,
    time_rows,
)
from repro.detectors.registry import detector_entry, spec
from repro.fpga.pipeline import FPGAPipeline, PipelineConfig
from repro.fpga.power import (
    cpu_power_w,
    energy_joules,
    energy_reduction_geomean,
    fpga_power_w,
)
from repro.fpga.resources import table1 as _resources_table1
from repro.mimo.montecarlo import MonteCarloEngine
from repro.mimo.preprocessing import effective_receive, qr_decompose
from repro.mimo.system import MIMOSystem
from repro.perfmodel import GPUCostModel, WARPCostModel
from repro.perfmodel.cpu import linear_detector_seconds

#: Anchors the paper states in the text (not digitised from plots).
PAPER_REFERENCE = {
    "fig6": {"cpu_ms@4": 7.0, "speedup@4": 5.0, "baseline_speedup@4": 1.4},
    "fig8": {"cpu_ms@4": 44.3, "speedup@4": 6.1, "fpga_ms@4": 5.0},
    "fig9": {"cpu_ms@8": 88.8, "fpga_ms@8": 9.9, "speedup@8": 9.0},
    "fig10": {"cpu_ms@4": 176.6, "speedup": 4.0},
    "fig11": {"gpu_ms@12": 6.0, "fpga_ms@4": 0.97, "avg_speedup": 57.0},
    "fig12": {"geosphere_ms@20": 11.0, "speedup_vs_geosphere": 11.0},
    "table2": {
        "energy_reduction": [35.8, 36.8, 38.4, 41.8],
        "geomean": 38.1,
    },
}


def _time_figure(
    experiment: str,
    title: str,
    n_antennas: int,
    modulation: str,
    *,
    snrs: Sequence[float],
    channels: int,
    frames_per_channel: int,
    seed: int,
    workers: int = 1,
    batch_frames: bool = False,
    notes: str = "",
) -> SeriesResult:
    workload = run_workload_sweep(
        n_antennas,
        modulation,
        snrs=snrs,
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
        workers=workers,
        batch_frames=batch_frames,
    )
    rows = time_rows(workload)
    return SeriesResult(
        experiment=experiment,
        title=title,
        columns=[
            "snr_db",
            "cpu_ms",
            "fpga_baseline_ms",
            "fpga_optimized_ms",
            "speedup_vs_cpu",
            "ber",
            "mean_nodes",
            "truncated_frames",
        ],
        rows=rows,
        notes=notes,
    )


def fig6_time_10x10_4qam(
    *,
    snrs: Sequence[float] = CANONICAL_SNRS,
    channels: int = 3,
    frames_per_channel: int = 4,
    seed: int = 2023,
    workers: int = 1,
    batch_frames: bool = False,
) -> SeriesResult:
    """Fig. 6: execution time vs SNR, 10x10 MIMO, 4-QAM."""
    return _time_figure(
        "fig6",
        "execution time, 10x10 4-QAM (paper: CPU 7 ms @ 4 dB, FPGA-opt 5x, baseline ~1.4x)",
        10,
        "4qam",
        snrs=snrs,
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
        workers=workers,
        batch_frames=batch_frames,
    )


def fig8_time_15x15_4qam(
    *,
    snrs: Sequence[float] = CANONICAL_SNRS,
    channels: int = 3,
    frames_per_channel: int = 3,
    seed: int = 2023,
    workers: int = 1,
    batch_frames: bool = False,
) -> SeriesResult:
    """Fig. 8: execution time vs SNR, 15x15 MIMO, 4-QAM."""
    return _time_figure(
        "fig8",
        "execution time, 15x15 4-QAM (paper: CPU >30 ms @ 4 dB, FPGA 6.1x -> 5 ms)",
        15,
        "4qam",
        snrs=snrs,
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
        workers=workers,
        batch_frames=batch_frames,
    )


def fig9_time_20x20_4qam(
    *,
    snrs: Sequence[float] = CANONICAL_SNRS,
    channels: int = 2,
    frames_per_channel: int = 2,
    seed: int = 2023,
    workers: int = 1,
    batch_frames: bool = False,
) -> SeriesResult:
    """Fig. 9: execution time vs SNR, 20x20 MIMO, 4-QAM."""
    return _time_figure(
        "fig9",
        "execution time, 20x20 4-QAM (paper: CPU 88.8 ms @ 8 dB, FPGA 9.9 ms: 9x)",
        20,
        "4qam",
        snrs=snrs,
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
        workers=workers,
        batch_frames=batch_frames,
        notes="low-SNR points may truncate at the node cap; counts reported",
    )


def fig10_time_10x10_16qam(
    *,
    snrs: Sequence[float] = CANONICAL_SNRS,
    channels: int = 3,
    frames_per_channel: int = 3,
    seed: int = 2023,
    workers: int = 1,
    batch_frames: bool = False,
) -> SeriesResult:
    """Fig. 10: execution time vs SNR, 10x10 MIMO, 16-QAM."""
    return _time_figure(
        "fig10",
        "execution time, 10x10 16-QAM (paper: CPU ~100 ms @ 4 dB, FPGA 4x faster)",
        10,
        "16qam",
        snrs=snrs,
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
        workers=workers,
        batch_frames=batch_frames,
    )


def fig7_ber_10x10_4qam(
    *,
    snrs: Sequence[float] = CANONICAL_SNRS,
    channels: int = 8,
    frames_per_channel: int = 25,
    seed: int = 2023,
) -> SeriesResult:
    """Fig. 7: BER vs SNR, 10x10 MIMO, 4-QAM.

    The sphere decoder's BER equals ML BER by construction (the search is
    exact); the interesting content is the curve itself plus the linear
    baselines for contrast.
    """
    system = MIMOSystem(10, 10, "4qam")
    const = system.constellation
    engine = MonteCarloEngine(
        system,
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
        keep_traces=False,
    )
    sd = engine.run(canonical_decoder_factory(const), snrs)
    zf = engine.run(spec("zf", const), snrs, detector_name="zf")
    mmse = engine.run(spec("mmse", const), snrs, detector_name="mmse")
    rows = []
    for p_sd, p_zf, p_mmse in zip(sd.points, zf.points, mmse.points):
        rows.append(
            {
                "snr_db": p_sd.snr_db,
                "sd_ber": p_sd.ber,
                "zf_ber": p_zf.ber,
                "mmse_ber": p_mmse.ber,
                "bits": p_sd.errors.bits,
            }
        )
    return SeriesResult(
        experiment="fig7",
        title="BER, 10x10 4-QAM (paper: SD below 1e-2 from 4 dB under its per-stream SNR axis)",
        columns=["snr_db", "sd_ber", "zf_ber", "mmse_ber", "bits"],
        rows=rows,
        notes=(
            "SNR here is aggregate receive SNR (per-antenna); the paper's "
            "axis hides the ~10 dB array gain — see EXPERIMENTS.md."
        ),
    )


def fig11_gpu_comparison(
    *,
    snrs: Sequence[float] = CANONICAL_SNRS,
    channels: int = 3,
    frames_per_channel: int = 3,
    seed: int = 2023,
) -> SeriesResult:
    """Fig. 11: FPGA-optimised (Best-FS) vs GPU GEMM-BFS of [1]."""
    system = MIMOSystem(10, 10, "4qam")
    const = system.constellation
    engine = MonteCarloEngine(
        system,
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
        keep_traces=True,
    )
    leaf_first = engine.run(canonical_decoder_factory(const), snrs)
    bfs = engine.run(bfs_gpu_decoder_factory(const), snrs)
    gpu = GPUCostModel()
    fpga = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
    rows = []
    for p_lf, p_bfs in zip(leaf_first.points, bfs.points):
        fpga_ms = fpga.mean_decode_seconds(p_lf.frame_stats) * 1e3
        gpu_ms = gpu.mean_decode_seconds(p_bfs.frame_stats) * 1e3
        nodes_lf = p_lf.mean_nodes_expanded()
        nodes_bfs = p_bfs.mean_nodes_expanded()
        rows.append(
            {
                "snr_db": p_lf.snr_db,
                "gpu_bfs_ms": gpu_ms,
                "fpga_opt_ms": fpga_ms,
                "speedup": gpu_ms / fpga_ms,
                "bestfs_nodes": nodes_lf,
                "bfs_nodes": nodes_bfs,
                "node_fraction": nodes_lf / nodes_bfs if nodes_bfs else None,
            }
        )
    speedups = [r["speedup"] for r in rows]
    return SeriesResult(
        experiment="fig11",
        title="FPGA Best-FS vs GPU GEMM-BFS, 10x10 4-QAM (paper: avg 57x)",
        columns=[
            "snr_db",
            "gpu_bfs_ms",
            "fpga_opt_ms",
            "speedup",
            "bestfs_nodes",
            "bfs_nodes",
            "node_fraction",
        ],
        rows=rows,
        notes=f"mean speedup {np.mean(speedups):.1f}x (paper: 57x average)",
    )


def fig12_detector_comparison(
    *,
    snrs: Sequence[float] = CANONICAL_SNRS,
    channels: int = 3,
    frames_per_channel: int = 5,
    seed: int = 2023,
) -> SeriesResult:
    """Fig. 12: decoding time, ZF vs MMSE vs Geosphere (WARP) vs this work."""
    system = MIMOSystem(10, 10, "4qam")
    const = system.constellation
    engine = MonteCarloEngine(
        system,
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
        keep_traces=True,
    )
    leaf_first = engine.run(canonical_decoder_factory(const), snrs)
    geo = engine.run(spec("geosphere", const), snrs, detector_name="geosphere")
    zf = engine.run(spec("zf", const), snrs, detector_name="zf")
    mmse = engine.run(spec("mmse", const), snrs, detector_name="mmse")
    warp = WARPCostModel()
    fpga = FPGAPipeline(PipelineConfig.optimized(4), n_tx=10, n_rx=10, order=4)
    linear_ms = linear_detector_seconds(10, 10, vectors_per_block=10) * 1e3
    rows = []
    for p_lf, p_geo, p_zf, p_mmse in zip(
        leaf_first.points, geo.points, zf.points, mmse.points
    ):
        rows.append(
            {
                "snr_db": p_lf.snr_db,
                "zf_ms": linear_ms,
                "mmse_ms": linear_ms,
                "geosphere_warp_ms": warp.mean_decode_seconds(p_geo.frame_stats)
                * 1e3,
                "fpga_opt_ms": fpga.mean_decode_seconds(p_lf.frame_stats) * 1e3,
                "zf_ber": p_zf.ber,
                "mmse_ber": p_mmse.ber,
                "sd_ber": p_lf.ber,
            }
        )
    return SeriesResult(
        experiment="fig12",
        title="decoder comparison, 10x10 4-QAM (paper: Geosphere 11 ms @ 20 dB, this work 11x faster)",
        columns=[
            "snr_db",
            "zf_ms",
            "mmse_ms",
            "geosphere_warp_ms",
            "fpga_opt_ms",
            "zf_ber",
            "mmse_ber",
            "sd_ber",
        ],
        rows=rows,
        notes="linear detectors are fast at every SNR but pay in BER",
    )


def table1_resources() -> SeriesResult:
    """Table I: FPGA resource utilisation, baseline vs optimised designs."""
    paper = {
        "baseline-4qam": {"freq": 253, "luts": 29, "ffs": 20, "dsps": 8, "brams": 11, "urams": 14},
        "baseline-16qam": {"freq": 253, "luts": 50, "ffs": 27, "dsps": 15, "brams": 14, "urams": 60},
        "optimized-4qam": {"freq": 300, "luts": 11, "ffs": 7, "dsps": 3, "brams": 8, "urams": 7},
        "optimized-16qam": {"freq": 300, "luts": 23, "ffs": 11, "dsps": 7, "brams": 10, "urams": 30},
    }
    rows = []
    for name, report in _resources_table1().items():
        util = report.utilization()
        ref = paper[name]
        rows.append(
            {
                "design": name,
                "freq_mhz": report.freq_mhz,
                "luts_pct": util["luts"] * 100,
                "luts_paper": ref["luts"],
                "ffs_pct": util["ffs"] * 100,
                "ffs_paper": ref["ffs"],
                "dsps_pct": util["dsps"] * 100,
                "dsps_paper": ref["dsps"],
                "brams_pct": util["brams"] * 100,
                "brams_paper": ref["brams"],
                "urams_pct": util["urams"] * 100,
                "urams_paper": ref["urams"],
            }
        )
    return SeriesResult(
        experiment="table1",
        title="FPGA resource utilisation (model vs paper, % of Alveo U280)",
        columns=[
            "design",
            "freq_mhz",
            "luts_pct",
            "luts_paper",
            "ffs_pct",
            "ffs_paper",
            "dsps_pct",
            "dsps_paper",
            "brams_pct",
            "brams_paper",
            "urams_pct",
            "urams_paper",
        ],
        rows=rows,
    )


def table2_power(
    *,
    snr_db: float = 4.0,
    channels: int = 2,
    frames_per_channel: int = 3,
    seed: int = 2023,
) -> SeriesResult:
    """Table II: power / execution time / energy, CPU vs FPGA."""
    configs = [(10, "4qam"), (15, "4qam"), (20, "4qam"), (10, "16qam")]
    paper_cpu_ms = {0: 7.0, 1: 44.3, 2: 350.6, 3: 176.6}
    paper_fpga_ms = {0: 2.0, 1: 9.4, 2: 102.5, 3: 46.88}
    paper_reduction = PAPER_REFERENCE["table2"]["energy_reduction"]
    rows = []
    reductions = []
    for i, (n, modulation) in enumerate(configs):
        workload = run_workload_sweep(
            n,
            modulation,
            snrs=[snr_db],
            channels=channels,
            frames_per_channel=frames_per_channel,
            seed=seed,
        )
        stats = workload.sweep.points[0].frame_stats
        cpu_s = workload.cpu.mean_decode_seconds(stats)
        fpga_s = workload.fpga_optimized.mean_decode_seconds(stats)
        order = workload.system.constellation.order
        p_cpu = cpu_power_w(n, order)
        p_fpga = fpga_power_w(n, order)
        e_cpu = energy_joules(p_cpu, cpu_s)
        e_fpga = energy_joules(p_fpga, fpga_s)
        reduction = e_cpu / e_fpga
        reductions.append(reduction)
        rows.append(
            {
                "config": f"{n}x{n} {modulation}",
                "cpu_power_w": p_cpu,
                "fpga_power_w": p_fpga,
                "cpu_ms": cpu_s * 1e3,
                "cpu_ms_paper": paper_cpu_ms[i],
                "fpga_ms": fpga_s * 1e3,
                "fpga_ms_paper": paper_fpga_ms[i],
                "cpu_energy_j": e_cpu,
                "fpga_energy_j": e_fpga,
                "energy_reduction": reduction,
                "reduction_paper": paper_reduction[i],
            }
        )
    geomean = energy_reduction_geomean(reductions)
    return SeriesResult(
        experiment="table2",
        title="power/energy profile CPU vs FPGA at SNR 4 dB",
        columns=[
            "config",
            "cpu_power_w",
            "fpga_power_w",
            "cpu_ms",
            "cpu_ms_paper",
            "fpga_ms",
            "fpga_ms_paper",
            "cpu_energy_j",
            "fpga_energy_j",
            "energy_reduction",
            "reduction_paper",
        ],
        rows=rows,
        notes=f"energy-reduction geomean {geomean:.1f}x (paper: 38.1x)",
    )


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------


def ablation_search_strategy(
    *,
    snrs: Sequence[float] = (4.0, 12.0, 20.0),
    channels: int = 3,
    frames_per_channel: int = 3,
    seed: int = 2023,
) -> SeriesResult:
    """Nodes explored: Best-FS pool vs sorted-DFS vs BFS vs Babai-seeded."""
    system = MIMOSystem(10, 10, "4qam")
    const = system.constellation
    engine = MonteCarloEngine(
        system,
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
        keep_traces=False,
    )
    variants = {
        "bestfs": spec("sd-bestfs", const),
        "dfs_sorted": spec("sd", const, max_nodes=None),
        "dfs_natural": spec("sd", const, max_nodes=None, child_ordering="natural"),
        "bfs": bfs_gpu_decoder_factory(const),
        "babai_seeded": spec("sd-dfs", const),
    }
    sweeps = {
        name: engine.run(factory, snrs, detector_name=name)
        for name, factory in variants.items()
    }
    rows = []
    for i, snr in enumerate(snrs):
        row: dict = {"snr_db": float(snr)}
        for name, sweep in sweeps.items():
            row[f"{name}_nodes"] = sweep.points[i].mean_nodes_expanded()
        row["bestfs_vs_bfs_pct"] = (
            100.0 * row["bestfs_nodes"] / row["bfs_nodes"]
            if row["bfs_nodes"]
            else None
        )
        rows.append(row)
    return SeriesResult(
        experiment="ablation-search",
        title="search-strategy ablation: nodes expanded per decode",
        columns=["snr_db"]
        + [f"{n}_nodes" for n in variants]
        + ["bestfs_vs_bfs_pct"],
        rows=rows,
        notes="paper section IV-F: leaf-first exploration visits <1% of BFS nodes at low SNR",
    )


def ablation_fpga_optimizations(
    *,
    snr_db: float = 8.0,
    channels: int = 3,
    frames_per_channel: int = 4,
    seed: int = 2023,
) -> SeriesResult:
    """Pipeline-feature ablation: toggle each III-C optimisation off."""
    from dataclasses import replace

    from repro.fpga.gemm_engine import SystolicGemmEngine
    from repro.fpga.prefetch import PrefetchUnit

    workload = run_workload_sweep(
        10,
        "4qam",
        snrs=[snr_db],
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
    )
    stats = workload.sweep.points[0].frame_stats
    opt = PipelineConfig.optimized(4)
    variants = {
        "optimized (all on)": opt,
        "no double buffering": replace(
            opt, prefetch=PrefetchUnit(double_buffered=False, hbm_channels=4)
        ),
        "gemm II=4": replace(
            opt,
            gemm=SystolicGemmEngine(
                rows=opt.gemm.rows,
                cols=opt.gemm.cols,
                pipeline_depth=opt.gemm.pipeline_depth,
                initiation_interval=4,
                dsps_per_mac=opt.gemm.dsps_per_mac,
            ),
        ),
        "no dataflow overlap": replace(opt, dataflow_overlap=False),
        "generic control": replace(opt, control_overhead_cycles=96),
        "baseline (all off)": PipelineConfig.baseline(4),
    }
    rows = []
    reference_ms = None
    for name, config in variants.items():
        pipe = FPGAPipeline(config, n_tx=10, n_rx=10, order=4)
        ms = pipe.mean_decode_seconds(stats) * 1e3
        if reference_ms is None:
            reference_ms = ms
        rows.append(
            {
                "variant": name,
                "decode_ms": ms,
                "slowdown_vs_optimized": ms / reference_ms,
            }
        )
    return SeriesResult(
        experiment="ablation-fpga",
        title=f"FPGA optimisation ablation at SNR {snr_db:g} dB (same trace)",
        columns=["variant", "decode_ms", "slowdown_vs_optimized"],
        rows=rows,
    )


def ablation_precision(
    *,
    snrs: Sequence[float] = (4.0, 12.0, 20.0),
    channels: int = 4,
    frames_per_channel: int = 10,
    seed: int = 2023,
) -> SeriesResult:
    """Paper section V future work: reduced-precision decoding impact.

    Quantises the triangularised system (R, ybar) to fp32/fp16 before
    the search and measures the BER penalty of each precision — the
    study the paper proposes for future work.
    """
    system = MIMOSystem(10, 10, "4qam")
    const = system.constellation
    rows = []
    for snr in snrs:
        counters = {"fp64": [0, 0], "fp32": [0, 0], "fp16": [0, 0]}
        rng = np.random.default_rng(seed)
        for _ in range(channels):
            frame0 = system.random_frame(snr, rng)
            qr = qr_decompose(frame0.channel)
            for _ in range(frames_per_channel):
                frame = system.random_frame(snr, rng, channel=frame0.channel)
                ybar = effective_receive(qr, frame.received)
                for prec, dtype in (
                    ("fp64", np.complex128),
                    ("fp32", np.complex64),
                    ("fp16", None),
                ):
                    if dtype is None:  # emulate fp16: round mantissas
                        r_q = (
                            frame.channel.real.astype(np.float16).astype(float)
                            + 1j
                            * frame.channel.imag.astype(np.float16).astype(float)
                        )
                        qr_q = qr_decompose(r_q)
                        ybar_q = effective_receive(qr_q, frame.received)
                        r_use, ybar_use = qr_q.r, ybar_q
                    else:
                        r_use = qr.r.astype(dtype).astype(np.complex128)
                        ybar_use = ybar.astype(dtype).astype(np.complex128)
                    decoder = spec(
                        "sd", const, max_nodes=None, record_trace=False
                    )()
                    best, _metric, _stats = decoder.solve(
                        r_use, ybar_use, frame.noise_var
                    )
                    decoded_bits = const.indices_to_bits(np.asarray(best))
                    errors = int(np.count_nonzero(decoded_bits != frame.bits))
                    counters[prec][0] += errors
                    counters[prec][1] += frame.bits.size
        row = {"snr_db": float(snr)}
        for prec, (err, total) in counters.items():
            row[f"{prec}_ber"] = err / total if total else None
        rows.append(row)
    return SeriesResult(
        experiment="ablation-precision",
        title="reduced-precision ablation (section V future work)",
        columns=["snr_db", "fp64_ber", "fp32_ber", "fp16_ber"],
        rows=rows,
        notes="fp32 is BER-neutral; fp16 channel quantisation costs accuracy at high SNR",
    )


def ablation_parallel_pes(
    *,
    snr_db: float = 4.0,
    pe_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    channels: int = 3,
    frames_per_channel: int = 3,
    seed: int = 2023,
) -> SeriesResult:
    """Paper section V future work: partitioned multi-PE tree search.

    Measures the makespan (busiest PE's expansions, i.e. the parallel
    latency bound) as PEs scale — the extension the paper proposes,
    benchmarked the way Nikitopoulos et al. [4] report theirs (latency
    reduction vs the sequential decoder; they reach 29x at 32 PEs).
    """
    system = MIMOSystem(10, 10, "4qam")
    const = system.constellation
    rng = np.random.default_rng(seed)
    frames = []
    for _ in range(channels):
        first = system.random_frame(snr_db, rng)
        frames.append(first)
        for _ in range(frames_per_channel - 1):
            frames.append(system.random_frame(snr_db, rng, channel=first.channel))
    rows = []
    sequential_makespan = None
    for n_pes in pe_counts:
        makespans = []
        totals = []
        syncs = []
        for frame in frames:
            decoder = spec("partitioned", const, n_pes=n_pes, alpha=2.0)()
            decoder.prepare(frame.channel, noise_var=frame.noise_var)
            result = decoder.detect(frame.received)
            makespans.append(decoder.makespan_expansions())
            totals.append(result.stats.nodes_expanded)
            syncs.append(decoder.last_sync_events)
        mean_makespan = float(np.mean(makespans))
        if sequential_makespan is None:
            sequential_makespan = mean_makespan
        rows.append(
            {
                "n_pes": n_pes,
                "mean_total_nodes": float(np.mean(totals)),
                "mean_makespan": mean_makespan,
                "latency_speedup": sequential_makespan / mean_makespan,
                "efficiency_pct": 100.0
                * sequential_makespan
                / (mean_makespan * n_pes),
                "mean_syncs": float(np.mean(syncs)),
            }
        )
    return SeriesResult(
        experiment="ablation-parallel",
        title=f"multi-PE partitioned search at {snr_db:g} dB (section V extension)",
        columns=[
            "n_pes",
            "mean_total_nodes",
            "mean_makespan",
            "latency_speedup",
            "efficiency_pct",
            "mean_syncs",
        ],
        rows=rows,
        notes="related work [4] reports 29x latency reduction at 32 PEs",
    )


def ablation_imperfect_csi(
    *,
    snr_db: float = 12.0,
    pilot_snrs_db: Sequence[float] = (0.0, 10.0, 20.0, 40.0),
    channels: int = 6,
    frames_per_channel: int = 8,
    seed: int = 2023,
) -> SeriesResult:
    """Detection with estimated CSI (Algorithm 1's "channel estimation H").

    Sweeps the pilot SNR: the channel estimate degrades, which both
    raises BER and inflates the sphere decoder's workload (estimation
    error behaves like extra noise, so partial distances separate later).
    """
    from repro.mimo.estimation import EstimatedChannelLink

    system = MIMOSystem(10, 10, "4qam")
    const = system.constellation
    rows = []
    for pilot_snr in pilot_snrs_db:
        rng = np.random.default_rng(seed)
        link = EstimatedChannelLink(system.channel_model, pilot_length=2 * system.n_tx)
        errors = 0
        bits = 0
        nodes = []
        mses = []
        for _ in range(channels):
            report = link.run_pilot_phase(pilot_snr, rng)
            mses.append(report.mse)
            decoder = spec("sd", const, max_nodes=50_000)()
            decoder.prepare(report.estimate, noise_var=system.noise_var(snr_db))
            for _ in range(frames_per_channel):
                frame = system.random_frame(
                    snr_db, rng, channel=report.true_channel
                )
                result = decoder.detect(frame.received)
                errors += int(np.count_nonzero(result.bits != frame.bits))
                bits += frame.bits.size
                nodes.append(result.stats.nodes_expanded)
        rows.append(
            {
                "pilot_snr_db": float(pilot_snr),
                "channel_mse": float(np.mean(mses)),
                "ber": errors / bits,
                "mean_nodes": float(np.mean(nodes)),
            }
        )
    return SeriesResult(
        experiment="ablation-csi",
        title=f"imperfect CSI at data SNR {snr_db:g} dB (10x10 4-QAM)",
        columns=["pilot_snr_db", "channel_mse", "ber", "mean_nodes"],
        rows=rows,
        notes="worse pilots -> worse BER and more tree exploration",
    )


def ablation_correlation(
    *,
    snr_db: float = 8.0,
    rhos: Sequence[float] = (0.0, 0.5, 0.9),
    channels: int = 6,
    frames_per_channel: int = 6,
    seed: int = 2023,
) -> SeriesResult:
    """Spatially correlated antennas (Kronecker model) vs the paper's
    i.i.d. assumption: BER and decode workload vs the correlation
    coefficient."""
    from repro.mimo.correlation import KroneckerChannelModel

    const = MIMOSystem(10, 10, "4qam").constellation
    rows = []
    for rho in rhos:
        rng = np.random.default_rng(seed)
        model = KroneckerChannelModel(n_tx=10, n_rx=10, rho_tx=rho, rho_rx=rho)
        errors = 0
        bits = 0
        nodes = []
        for _ in range(channels):
            h = model.draw_channel(rng)
            noise_var = model.noise_var(snr_db)
            decoder = spec("sd", const, max_nodes=100_000)()
            decoder.prepare(h, noise_var=noise_var)
            for _ in range(frames_per_channel):
                idx = rng.integers(0, const.order, 10)
                s = const.points[idx]
                sent_bits = const.indices_to_bits(idx)
                y = model.transmit(h, s, noise_var, rng)
                result = decoder.detect(y)
                errors += int(np.count_nonzero(result.bits != sent_bits))
                bits += sent_bits.size
                nodes.append(result.stats.nodes_expanded)
        rows.append(
            {
                "rho": float(rho),
                "ber": errors / bits,
                "mean_nodes": float(np.mean(nodes)),
            }
        )
    return SeriesResult(
        experiment="ablation-correlation",
        title=f"spatial correlation at {snr_db:g} dB (10x10 4-QAM, Kronecker)",
        columns=["rho", "ber", "mean_nodes"],
        rows=rows,
        notes="correlation degrades conditioning: higher BER and heavier search",
    )


def ablation_domain(
    *,
    snr_db: float = 10.0,
    modulations: Sequence[str] = ("4qam", "16qam"),
    channels: int = 3,
    frames_per_channel: int = 4,
    seed: int = 2023,
) -> SeriesResult:
    """Complex-domain vs real-decomposition search trees.

    Hardware sphere decoders often work on the 2M-level real lattice
    (sqrt(P) children per node) instead of the paper's M-level complex
    tree (P children). Both are exact; this ablation measures which
    evaluates fewer children per decode. The outcome is genuinely
    configuration-dependent: sqrt(P) branching cuts the per-expansion
    fan-out, but the doubled depth delays leaf (radius-update) events —
    so neither domain dominates universally.
    """
    rows = []
    for modulation in modulations:
        system = MIMOSystem(10, 10, modulation)
        const = system.constellation
        rng = np.random.default_rng(seed)
        children = {"complex": 0, "real": 0}
        expansions = {"complex": 0, "real": 0}
        frames = 0
        for _ in range(channels):
            first = system.random_frame(snr_db, rng)
            decoders = {
                "complex": spec("sd", const, max_nodes=100_000)(),
                "real": spec("sphere-real", const, max_nodes=100_000)(),
            }
            for det in decoders.values():
                det.prepare(first.channel, noise_var=first.noise_var)
            for i in range(frames_per_channel):
                frame = (
                    first
                    if i == 0
                    else system.random_frame(snr_db, rng, channel=first.channel)
                )
                for domain, det in decoders.items():
                    st = det.detect(frame.received).stats
                    children[domain] += st.nodes_generated
                    expansions[domain] += st.nodes_expanded
                frames += 1
        rows.append(
            {
                "modulation": modulation,
                "complex_children": children["complex"] / frames,
                "real_children": children["real"] / frames,
                "children_ratio": children["real"] / children["complex"],
                "complex_expansions": expansions["complex"] / frames,
                "real_expansions": expansions["real"] / frames,
            }
        )
    return SeriesResult(
        experiment="ablation-domain",
        title=f"complex vs real-decomposition trees at {snr_db:g} dB (10x10)",
        columns=[
            "modulation",
            "complex_children",
            "real_children",
            "children_ratio",
            "complex_expansions",
            "real_expansions",
        ],
        rows=rows,
        notes="both exact; sqrt(P) branching vs doubled depth — neither dominates universally",
    )


def ablation_metric(
    *,
    snr_db: float = 12.0,
    kinds: Sequence[str] = ("sd", "sd-linf", "sd-real-reordered"),
    n_antennas: int = 8,
    modulation: str = "16qam",
    channels: int = 3,
    frames_per_channel: int = 4,
    seed: int = 2023,
) -> SeriesResult:
    """Partial-distance metric / lattice representation ablation.

    Decodes the identical channel/frame instances with the registry's
    metric and lattice variants and reports the full trade surface:

    * ``sd`` — ℓ₂-squared on the complex lattice (exact ML reference);
    * ``sd-linf`` — the ℓ∞ metric of Seethaler & Bölcskei: a cheaper
      compare-tree NORM stage and (typically) fewer expanded nodes, at a
      bounded BER cost (``||e||_inf <= ||e||_2 <= sqrt(2M) ||e||_inf``,
      see ``docs/algorithms.md``);
    * ``sd-real-reordered`` — Azzam & Ayanoglu's interleaved real
      lattice: still exact ML, narrower branching on a deeper tree.

    Modelled FPGA cycles use the matching accelerator build per kind —
    ``norm_kind="compare"`` for ℓ∞ (:data:`~repro.fpga.pipeline.NORM_KINDS`)
    and the real-lattice tree geometry for the real kinds — so the
    ``norm_pct`` column (NORM busy cycles as a share of total decode
    cycles) shows the NORM stage shrinking under the compare tree, which
    is the hardware argument for ℓ∞.
    """
    system = MIMOSystem(n_antennas, n_antennas, modulation)
    const = system.constellation
    # Pre-draw every channel/frame pair once so each kind decodes the
    # identical instances — differences in the rows are purely the
    # metric/lattice axes, never Monte Carlo noise.
    rng = np.random.default_rng(seed)
    frame_sets = []
    for _ in range(channels):
        first = system.random_frame(snr_db, rng)
        frame_sets.append(
            [first]
            + [
                system.random_frame(snr_db, rng, channel=first.channel)
                for _ in range(frames_per_channel - 1)
            ]
        )
    side = int(round(np.sqrt(const.order)))
    rows = []
    for kind in kinds:
        entry = detector_entry(kind)
        if entry.lattice == "complex":
            levels, child_order = n_antennas, const.order
        else:
            # Real lattices search a 2M-level tree over the PAM alphabet.
            levels, child_order = 2 * n_antennas, side
        pipe = FPGAPipeline(
            PipelineConfig.optimized(
                child_order,
                norm_kind="compare" if entry.metric == "linf" else "mac",
            ),
            n_tx=levels,
            n_rx=levels,
            order=child_order,
        )
        errors = 0
        bits = 0
        nodes: list[int] = []
        host_s: list[float] = []
        cycles = 0
        norm_cycles = 0
        for frames in frame_sets:
            detector = spec(kind, const, max_nodes=100_000)()
            detector.prepare(frames[0].channel, noise_var=frames[0].noise_var)
            for frame in frames:
                result = detector.detect(frame.received)
                errors += int(np.count_nonzero(result.bits != frame.bits))
                bits += frame.bits.size
                nodes.append(result.stats.nodes_expanded)
                host_s.append(result.stats.wall_time_s)
                report = pipe.decode_report(result.stats)
                cycles += report.total_cycles
                # Busy cycles, not the exact attribution: under dataflow
                # overlap NORM hides behind the critical stage and its
                # attributed share is 0 by construction — the busy share
                # is the number the compare tree actually shrinks.
                norm_cycles += report.breakdown["norm"]
        n_frames = channels * frames_per_channel
        rows.append(
            {
                "kind": kind,
                "metric": entry.metric,
                "lattice": entry.lattice,
                "ber": errors / bits,
                "mean_nodes": float(np.mean(nodes)),
                "host_ms": float(np.mean(host_s)) * 1e3,
                "fpga_mcycles": cycles / n_frames / 1e6,
                "norm_pct": 100.0 * norm_cycles / cycles if cycles else 0.0,
            }
        )
    return SeriesResult(
        experiment="ablation-metric",
        title=(
            f"PD metric / lattice representation at {snr_db:g} dB "
            f"({n_antennas}x{n_antennas} {modulation})"
        ),
        columns=[
            "kind",
            "metric",
            "lattice",
            "ber",
            "mean_nodes",
            "host_ms",
            "fpga_mcycles",
            "norm_pct",
        ],
        rows=rows,
        notes=(
            "identical frames per kind; host_ms is measured wall time, the "
            "rest deterministic per seed; linf trades bounded BER for fewer "
            "nodes and a cheaper NORM stage"
        ),
    )


def profile_execution(
    *,
    snr_db: float = 8.0,
    channels: int = 3,
    frames_per_channel: int = 4,
    seed: int = 2023,
) -> SeriesResult:
    """SD execution profile (paper section III-A / III-C1 motivation).

    Breaks one workload's cycles down by pipeline module for the
    baseline and optimised designs. The compute stages (branch/GEMM/
    NORM/prune) pipeline away almost completely in the optimised design;
    what remains is the serial pop -> expand -> insert round trip
    (accounted under "control") plus the per-decode setup — which is
    precisely why the paper's roadmap continues with tree partitioning
    over multiple PEs (section V): the remaining cost is control flow,
    not arithmetic.
    """
    workload = run_workload_sweep(
        10,
        "4qam",
        snrs=[snr_db],
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
    )
    stats = workload.sweep.points[0].frame_stats
    rows = []
    modules = (
        "gemm",
        "prefetch",
        "branch",
        "norm",
        "prune",
        "fill",
        "control",
        "radius",
        "setup",
        "transfer",
    )
    for pipe, label in (
        (workload.fpga_baseline, "baseline"),
        (workload.fpga_optimized, "optimized"),
    ):
        totals: dict[str, float] = {}
        cycles_total = 0
        for st in stats:
            report = pipe.decode_report(st)
            cycles_total += report.total_cycles
            for module, cycles in report.stage_breakdown().items():
                totals[module] = totals.get(module, 0) + cycles
        row = {"design": label, "total_mcycles": cycles_total / 1e6}
        # stage_breakdown() is an exact attribution (each batch's wall
        # cycles charged to its critical stage), so the module shares
        # sum to 100% of the cycle total by construction.
        for module in modules:
            row[f"{module}_pct"] = 100.0 * totals.get(module, 0) / cycles_total
        rows.append(row)
    return SeriesResult(
        experiment="profile",
        title=f"pipeline execution profile at {snr_db:g} dB (10x10 4-QAM)",
        columns=["design", "total_mcycles"]
        + [f"{module}_pct" for module in modules],
        rows=rows,
        notes="compute pipelines away; the serial list/control round trip remains",
    )


def scaling_modulation(
    *,
    snr_db: float = 12.0,
    modulations: Sequence[str] = ("4qam", "16qam", "64qam"),
    channels: int = 2,
    frames_per_channel: int = 2,
    seed: int = 2023,
) -> SeriesResult:
    """Modulation-order scaling beyond the paper (64-QAM).

    Section IV-E explains the 16-QAM blow-up via the tree-state matrix
    growing with the modulation factor squared; 64-QAM continues the
    trend and is where the paper's future-work parallelism becomes
    unavoidable.
    """
    rows = []
    for modulation in modulations:
        workload = run_workload_sweep(
            10,
            modulation,
            snrs=[snr_db],
            channels=channels,
            frames_per_channel=frames_per_channel,
            seed=seed,
        )
        row = time_rows(workload)[0]
        rows.append(
            {
                "modulation": modulation,
                "cpu_ms": row["cpu_ms"],
                "fpga_optimized_ms": row["fpga_optimized_ms"],
                "mean_nodes": row["mean_nodes"],
                "ber": row["ber"],
                "truncated_frames": row["truncated_frames"],
            }
        )
    return SeriesResult(
        experiment="scaling-modulation",
        title=f"modulation scaling at {snr_db:g} dB (10x10)",
        columns=[
            "modulation",
            "cpu_ms",
            "fpga_optimized_ms",
            "mean_nodes",
            "ber",
            "truncated_frames",
        ],
        rows=rows,
        notes="section IV-E: the modulation factor dominates the complexity",
    )


def smoke_experiment(
    *,
    snrs: Sequence[float] = (8.0, 12.0),
    channels: int = 2,
    frames_per_channel: int = 3,
    seed: int = 2023,
    workers: int = 1,
    batch_frames: bool = False,
) -> SeriesResult:
    """Tiny deterministic sweep for CI and the benchmark-regression gate.

    Small enough to finish in seconds, yet it exercises the whole stack:
    Monte Carlo engine, canonical decoder, CPU model and FPGA pipeline.
    ``tools/check_regression.py`` compares this experiment's metrics
    against the committed ``BENCH_baseline.json``; everything except
    ``host_ms`` is bit-deterministic for a fixed seed — including under
    ``workers > 1`` process sharding and ``batch_frames`` fused
    decoding, which CI exercises to guard the equivalence.

    Besides the canonical ℓ₂/complex decoder the sweep also times the
    metric/lattice variants on their own deterministic frame set: the
    ``*_linf`` columns (``sd-linf``) and ``*_rr`` columns
    (``sd-real-reordered``), so the regression gate pins node counts and
    throughput for every metric x lattice combination the registry
    ships, not just the reference one. When the compiled traversal
    engine is usable (:func:`repro.core.compiled.compiled_available`)
    the sweep adds ``*_compiled`` columns — the canonical ``sd`` kind
    rerun with ``engine="compiled"`` on the same frames, pinning both
    its (bit-identical) node counts and its fused-kernel throughput.
    """
    workload = run_workload_sweep(
        6,
        "4qam",
        snrs=snrs,
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
        workers=workers,
        batch_frames=batch_frames,
    )
    rows = []
    for point, trow in zip(workload.sweep.points, time_rows(workload)):
        total_wall = sum(st.wall_time_s for st in point.frame_stats)
        total_nodes = sum(st.nodes_expanded for st in point.frame_stats)
        rows.append(
            {
                "snr_db": point.snr_db,
                "host_ms": point.mean_decode_time_s * 1e3,
                "cpu_model_ms": trow["cpu_ms"],
                "fpga_opt_ms": trow["fpga_optimized_ms"],
                "ber": point.ber,
                "mean_nodes": point.mean_nodes_expanded(),
                # Host traversal throughput — the regression gate treats
                # this as a rate metric (lower than baseline = regression).
                "mean_nodes_per_sec": (
                    total_nodes / total_wall if total_wall > 0 else 0.0
                ),
                "frames": point.frames,
            }
        )
    # Metric/lattice/engine variant series: decode a deterministic frame
    # set per SNR with the ℓ∞, reordered-real and (when available)
    # compiled-engine configurations so the regression gate also pins
    # their node counts (deterministic) and host throughput (rate-gated).
    from repro.core.compiled import compiled_available

    variants = [
        ("linf", "sd-linf", {}),
        ("rr", "sd-real-reordered", {}),
    ]
    if compiled_available():
        variants.append(("compiled", "sd", {"engine": "compiled"}))
    system = MIMOSystem(6, 6, "4qam")
    const = system.constellation
    for row in rows:
        rng = np.random.default_rng(seed)
        frame_sets = []
        for _ in range(channels):
            first = system.random_frame(row["snr_db"], rng)
            frame_sets.append(
                [first]
                + [
                    system.random_frame(row["snr_db"], rng, channel=first.channel)
                    for _ in range(frames_per_channel - 1)
                ]
            )
        for suffix, kind, params in variants:
            total_nodes = 0
            total_wall = 0.0
            for frames in frame_sets:
                detector = spec(kind, const, **params)()
                detector.prepare(
                    frames[0].channel, noise_var=frames[0].noise_var
                )
                for frame in frames:
                    st = detector.detect(frame.received).stats
                    total_nodes += st.nodes_expanded
                    total_wall += st.wall_time_s
            n_frames = channels * frames_per_channel
            row[f"mean_nodes_{suffix}"] = total_nodes / n_frames
            row[f"mean_nodes_per_sec_{suffix}"] = (
                total_nodes / total_wall if total_wall > 0 else 0.0
            )
    columns = [
        "snr_db",
        "host_ms",
        "cpu_model_ms",
        "fpga_opt_ms",
        "ber",
        "mean_nodes",
        "mean_nodes_per_sec",
        "mean_nodes_linf",
        "mean_nodes_per_sec_linf",
        "mean_nodes_rr",
        "mean_nodes_per_sec_rr",
    ]
    for suffix, _kind, _params in variants[2:]:
        columns += [f"mean_nodes_{suffix}", f"mean_nodes_per_sec_{suffix}"]
    columns.append("frames")
    return SeriesResult(
        experiment="smoke",
        title="smoke sweep, 6x6 4-QAM (regression-gate workload)",
        columns=columns,
        rows=rows,
        notes="host_ms is measured wall time; the rest is deterministic per seed",
    )


#: Registry used by the CLI: name -> (callable, description).
EXPERIMENTS = {
    "smoke": (smoke_experiment, "Smoke: tiny regression-gate sweep (6x6 4-QAM)"),
    "table1": (table1_resources, "Table I: FPGA resource utilisation"),
    "table2": (table2_power, "Table II: power / energy CPU vs FPGA"),
    "fig6": (fig6_time_10x10_4qam, "Fig. 6: time vs SNR, 10x10 4-QAM"),
    "fig7": (fig7_ber_10x10_4qam, "Fig. 7: BER vs SNR, 10x10 4-QAM"),
    "fig8": (fig8_time_15x15_4qam, "Fig. 8: time vs SNR, 15x15 4-QAM"),
    "fig9": (fig9_time_20x20_4qam, "Fig. 9: time vs SNR, 20x20 4-QAM"),
    "fig10": (fig10_time_10x10_16qam, "Fig. 10: time vs SNR, 10x10 16-QAM"),
    "fig11": (fig11_gpu_comparison, "Fig. 11: FPGA vs GPU GEMM-BFS"),
    "fig12": (fig12_detector_comparison, "Fig. 12: detector-class comparison"),
    "ablation-search": (
        ablation_search_strategy,
        "Ablation: search strategies (node counts)",
    ),
    "ablation-fpga": (
        ablation_fpga_optimizations,
        "Ablation: FPGA optimisations (same trace)",
    ),
    "ablation-precision": (
        ablation_precision,
        "Ablation: fp64/fp32/fp16 decoding (future work)",
    ),
    "ablation-parallel": (
        ablation_parallel_pes,
        "Ablation: multi-PE partitioned search (future work)",
    ),
    "ablation-csi": (
        ablation_imperfect_csi,
        "Ablation: pilot-estimated (imperfect) CSI",
    ),
    "ablation-correlation": (
        ablation_correlation,
        "Ablation: spatially correlated antennas",
    ),
    "ablation-domain": (
        ablation_domain,
        "Ablation: complex vs real-decomposition trees",
    ),
    "ablation-metric": (
        ablation_metric,
        "Ablation: PD metric (l2 vs linf) x lattice representation",
    ),
    "profile": (
        profile_execution,
        "Pipeline execution profile (section III-A motivation)",
    ),
    "scaling-modulation": (
        scaling_modulation,
        "Modulation scaling incl. 64-QAM (beyond the paper)",
    ),
}
