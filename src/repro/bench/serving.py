"""Serving capacity experiments: streams vs latency SLO attainment.

Builds on :mod:`repro.serve` to answer the deployment question the
paper's per-vector timing figures cannot: *how many concurrent streams
can one decode server sustain under a latency SLO?* Each capacity
point generates a seeded multi-stream trace, serves it through a
:class:`~repro.serve.service.DetectionService` in deterministic
virtual time, and records p50/p95/p99 sojourn, throughput, batch fill
and SLO attainment into one :class:`~repro.bench.harness.SeriesResult`
— recordable to the run registry and diffable with
``repro-sd runs diff`` like every other experiment.

Service-time models:

``measured``
    The real host decode wall time (honest, machine-dependent).
``fpga``
    The FPGA pipeline simulator's modelled seconds per frame —
    fully deterministic, so two runs of the same seed are
    bit-identical (what the CI serve gate diffs).
``fixed:<us>``
    A constant per-frame cost in microseconds (synthetic what-ifs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bench.harness import SeriesResult
from repro.detectors.registry import spec as detector_spec
from repro.mimo.system import MIMOSystem
from repro.obs.tracer import current_tracer
from repro.serve import (
    DetectionService,
    LoadGenerator,
    LoadTrace,
    SchedulerConfig,
    ServeReport,
    conformance_mismatches,
    direct_results,
    fixed_service_model,
    fpga_service_model,
    serve_trace,
)

__all__ = [
    "CapacityPoint",
    "CapacityResult",
    "capacity_sweep",
    "check_conformance",
    "resolve_service_model",
]

#: Default stream counts for the capacity curve.
DEFAULT_STREAMS = (2, 8, 32)


def resolve_service_model(
    name: str, system: MIMOSystem
) -> Callable | None:
    """Map a service-model name to a model callable (None = measured)."""
    if name == "measured":
        return None
    if name == "fpga":
        from repro.fpga.pipeline import FPGAPipeline, PipelineConfig

        order = system.constellation.order
        pipeline = FPGAPipeline(
            PipelineConfig.optimized(order),
            n_tx=system.n_tx,
            n_rx=system.n_rx,
            order=order,
        )
        return fpga_service_model(pipeline)
    if name.startswith("fixed:"):
        try:
            per_frame_us = float(name.split(":", 1)[1])
        except ValueError:
            raise ValueError(
                f"bad fixed service model {name!r}; expected fixed:<us>"
            ) from None
        return fixed_service_model(per_frame_us * 1e-6)
    raise ValueError(
        f"unknown service model {name!r}; "
        "expected measured, fpga or fixed:<us>"
    )


@dataclass
class CapacityPoint:
    """One operating point: a trace served at one stream count."""

    n_streams: int
    trace: LoadTrace
    report: ServeReport


@dataclass
class CapacityResult:
    """A full capacity sweep: the series table plus raw points."""

    series: SeriesResult
    points: list[CapacityPoint] = field(default_factory=list)
    system: MIMOSystem | None = None
    kind: str = "sd"

    def format(self) -> str:
        return self.series.format()


def capacity_sweep(
    *,
    n_antennas: int = 6,
    n_rx: int | None = None,
    modulation: str = "4qam",
    snr_db: float = 8.0,
    stream_counts: Sequence[int] = DEFAULT_STREAMS,
    rate_hz: float = 200.0,
    duration_s: float = 0.25,
    slo_ms: float = 10.0,
    kind: str = "sd",
    seed: int = 2023,
    profile: str = "poisson",
    streams_per_block: int = 4,
    max_batch: int = 32,
    max_delay_ms: float = 2.0,
    max_queue: int = 64,
    dynamic: bool = False,
    service: str = "measured",
) -> CapacityResult:
    """Serve seeded load traces at increasing stream counts.

    Streams share channel blocks (``streams_per_block`` per block) so
    the scheduler actually coalesces across streams. Every point reuses
    the same seed: adding streams extends the SeedSequence tree without
    perturbing existing streams' arrivals or channels, which keeps the
    low-load points comparable across sweeps.
    """
    if not stream_counts:
        raise ValueError("stream_counts must not be empty")
    if slo_ms <= 0:
        raise ValueError(f"slo_ms must be positive, got {slo_ms}")
    system = MIMOSystem(
        n_antennas, n_antennas if n_rx is None else n_rx, modulation
    )
    slo_s = slo_ms * 1e-3
    config = SchedulerConfig(
        max_batch=max_batch,
        max_delay_s=max_delay_ms * 1e-3,
        max_queue=max_queue,
        dynamic=dynamic,
    )
    tracer = current_tracer()
    result = CapacityResult(
        system=system,
        kind=kind,
        series=SeriesResult(
            experiment="serve-capacity",
            title=(
                f"{system!r} @ {snr_db:g} dB, {kind}, {profile} arrivals "
                f"{rate_hz:g} Hz/stream, SLO {slo_ms:g} ms, "
                f"service={service}"
            ),
            columns=[
                "streams",
                "offered",
                "accepted",
                "rejected",
                "offered_hz",
                "throughput_hz",
                "p50_ms",
                "p95_ms",
                "p99_ms",
                "slo_attained",
                "mean_fill",
                "batches",
                "peak_depth",
                "symbol_errors",
            ],
            notes=(
                "Virtual-time single-server simulation; latency = "
                "arrival-to-delivery sojourn. slo_attained is the "
                f"fraction of frames within {slo_ms:g} ms."
            ),
        )
    )
    for n_streams in stream_counts:
        blocks = max(1, -(-n_streams // streams_per_block))
        generator = LoadGenerator(
            system,
            n_streams=n_streams,
            rate_hz=rate_hz,
            duration_s=duration_s,
            snr_db=snr_db,
            profile=profile,
            seed=seed,
            channel_blocks=blocks,
        )
        trace = generator.trace()
        service_obj = DetectionService(
            detector_spec(kind, system.constellation),
            config=config,
            service_model=resolve_service_model(service, system),
        )
        with tracer.span("serve.point", streams=n_streams):
            report = serve_trace(service_obj, trace, slo_s=slo_s)
        summary = report.latency_summary()
        result.points.append(
            CapacityPoint(n_streams=n_streams, trace=trace, report=report)
        )
        result.series.rows.append(
            {
                "streams": n_streams,
                "offered": report.offered,
                "accepted": report.accepted,
                "rejected": report.rejected,
                "offered_hz": trace.offered_rate_hz,
                "throughput_hz": report.throughput_hz,
                "p50_ms": summary.p50 * 1e3,
                "p95_ms": summary.p95 * 1e3,
                "p99_ms": summary.p99 * 1e3,
                "slo_attained": report.slo_attainment(),
                "mean_fill": report.mean_batch_fill,
                "batches": report.n_batches,
                "peak_depth": service_obj.scheduler.stats.peak_depth,
                "symbol_errors": report.symbol_errors(),
            }
        )
    return result


def check_conformance(
    point: CapacityPoint, kind: str, system: MIMOSystem
) -> list[str]:
    """Served-vs-direct bit-identity for one capacity point.

    Rebuilds the registry spec, decodes the point's trace through the
    direct per-frame path and returns the mismatch lines (empty =
    conformant). Used by ``repro-sd serve --check``.
    """
    oracle = direct_results(
        detector_spec(kind, system.constellation), point.trace
    )
    return conformance_mismatches(point.report, oracle)
