"""Real-time latency analysis under load (M/G/1 queueing).

The paper's real-time constraint is "decode within 10 ms" (section I),
stated for a single vector. A deployed base station decodes a *stream*
of vectors, so what actually matters is the latency *distribution under
load*: decode times vary wildly with the channel (the SNR figures show
100x spreads), and a platform whose mean decode time looks fine can
still blow the deadline once queueing kicks in.

This module turns a set of measured decode times (or per-frame traces
run through a platform model) into the standard M/G/1 quantities:

* utilisation ``rho = lambda * E[S]``;
* mean waiting time via Pollaczek–Khinchine,
  ``W = lambda * E[S^2] / (2 (1 - rho))``;
* mean sojourn (queue + service) ``T = W + E[S]``;
* a sojourn-tail bound via Markov's inequality,
  ``P(T > d) <= T_mean / d`` (distribution-free, hence honest);
* the maximum sustainable arrival rate for a latency budget.

These are exact/valid for Poisson arrivals and i.i.d. service — a fair
first-order model of uplink vector arrivals within a coherence block.

:func:`empirical_report` closes the loop on the analytics: it replays a
seeded arrival process (any :data:`repro.serve.loadgen.ARRIVAL_PROFILES`
profile, synthesised by :func:`repro.serve.loadgen.arrival_times`)
through a single-server FIFO queue via the Lindley recursion and
measures the sojourn distribution directly — exact percentiles and miss
fractions where Pollaczek–Khinchine only gives the mean and Markov only
a bound. For ``poisson`` arrivals the empirical mean sojourn converges
on the P–K prediction (a cross-check the tier-1 suite asserts); for
``bursty`` arrivals it quantifies how much the analytics understate the
tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_vector


@dataclass(frozen=True)
class QueueReport:
    """M/G/1 predictions for one platform at one arrival rate."""

    arrival_rate_hz: float
    mean_service_s: float
    service_scv: float  # squared coefficient of variation of S
    utilization: float
    mean_wait_s: float
    mean_sojourn_s: float

    def deadline_miss_bound(self, deadline_s: float) -> float:
        """Markov bound on P(sojourn > deadline); 1.0 when saturated."""
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        if self.utilization >= 1.0:
            return 1.0
        return min(self.mean_sojourn_s / deadline_s, 1.0)

    @property
    def stable(self) -> bool:
        """Whether the queue is stable (utilisation < 1)."""
        return self.utilization < 1.0


def mg1_report(service_times_s: np.ndarray, arrival_rate_hz: float) -> QueueReport:
    """M/G/1 analysis from an empirical service-time sample."""
    service = check_vector(np.asarray(service_times_s, dtype=float), "service_times_s")
    if service.size == 0 or np.any(service <= 0):
        raise ValueError("service times must be positive and non-empty")
    if arrival_rate_hz <= 0:
        raise ValueError(f"arrival_rate_hz must be positive, got {arrival_rate_hz}")
    mean_s = float(np.mean(service))
    second_moment = float(np.mean(service**2))
    scv = second_moment / mean_s**2 - 1.0
    rho = arrival_rate_hz * mean_s
    if rho >= 1.0:
        wait = float("inf")
        sojourn = float("inf")
    else:
        wait = arrival_rate_hz * second_moment / (2.0 * (1.0 - rho))
        sojourn = wait + mean_s
    return QueueReport(
        arrival_rate_hz=arrival_rate_hz,
        mean_service_s=mean_s,
        service_scv=max(scv, 0.0),
        utilization=rho,
        mean_wait_s=wait,
        mean_sojourn_s=sojourn,
    )


def max_sustainable_rate(
    service_times_s: np.ndarray,
    *,
    deadline_s: float = 10e-3,
    miss_bound: float = 0.1,
) -> float:
    """Largest Poisson arrival rate whose Markov miss-bound stays under
    ``miss_bound`` for the given deadline.

    Solved by bisection on the (monotone in lambda) sojourn time. Returns
    0.0 when even an idle system cannot meet the deadline bound
    (``E[S] / deadline > miss_bound``).
    """
    service = np.asarray(service_times_s, dtype=float)
    if deadline_s <= 0:
        raise ValueError("deadline_s must be positive")
    if not 0 < miss_bound <= 1:
        raise ValueError("miss_bound must lie in (0, 1]")
    mean_s = float(np.mean(service))
    if mean_s / deadline_s > miss_bound:
        return 0.0
    lo, hi = 0.0, 1.0 / mean_s  # stability limit
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if mid == 0.0:
            break
        report = mg1_report(service, mid)
        if report.stable and report.deadline_miss_bound(deadline_s) <= miss_bound:
            lo = mid
        else:
            hi = mid
    return lo


@dataclass(frozen=True)
class EmpiricalQueueReport:
    """Measured sojourn distribution from a Lindley-recursion replay."""

    arrival_rate_hz: float
    profile: str
    n_arrivals: int
    utilization: float
    mean_wait_s: float
    mean_sojourn_s: float
    p50_sojourn_s: float
    p95_sojourn_s: float
    p99_sojourn_s: float
    deadline_s: float
    miss_fraction: float

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0


def lindley_waits(arrivals_s: np.ndarray, service_s: np.ndarray) -> np.ndarray:
    """Per-customer waiting times of a FIFO single-server queue.

    The Lindley recursion ``W[n+1] = max(0, W[n] + S[n] - A[n])`` with
    ``A[n]`` the n-th inter-arrival gap — the exact sample-path answer
    the M/G/1 formulas approximate in expectation.
    """
    arrivals = check_vector(np.asarray(arrivals_s, dtype=float), "arrivals_s")
    service = check_vector(np.asarray(service_s, dtype=float), "service_s")
    if arrivals.size != service.size:
        raise ValueError(
            f"arrivals and service times must align, got "
            f"{arrivals.size} vs {service.size}"
        )
    if np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival times must be non-decreasing")
    waits = np.zeros(arrivals.size)
    for n in range(arrivals.size - 1):
        gap = arrivals[n + 1] - arrivals[n]
        waits[n + 1] = max(0.0, waits[n] + service[n] - gap)
    return waits


def empirical_report(
    service_times_s: np.ndarray,
    arrival_rate_hz: float,
    *,
    duration_s: float = 10.0,
    profile: str = "poisson",
    deadline_s: float = 10e-3,
    seed: int = 0,
) -> EmpiricalQueueReport:
    """Measure the sojourn distribution by replaying a seeded arrival
    process against the empirical service-time sample.

    Arrivals come from :func:`repro.serve.loadgen.arrival_times` (so the
    same profiles drive the analytics, the serving capacity sweeps and
    the examples); each arrival draws its service time uniformly from
    the measured sample. Deterministic for a given seed.
    """
    from repro.serve.loadgen import arrival_times

    service = check_vector(
        np.asarray(service_times_s, dtype=float), "service_times_s"
    )
    if service.size == 0 or np.any(service <= 0):
        raise ValueError("service times must be positive and non-empty")
    rng = np.random.default_rng(seed)
    arrivals = arrival_times(profile, arrival_rate_hz, duration_s, rng)
    if arrivals.size < 2:
        raise ValueError(
            f"too few arrivals ({arrivals.size}) for an empirical queue "
            f"replay; raise rate_hz or duration_s"
        )
    drawn = rng.choice(service, size=arrivals.size, replace=True)
    waits = lindley_waits(arrivals, drawn)
    sojourns = waits + drawn
    rho = arrival_rate_hz * float(np.mean(service))
    return EmpiricalQueueReport(
        arrival_rate_hz=arrival_rate_hz,
        profile=profile,
        n_arrivals=int(arrivals.size),
        utilization=rho,
        mean_wait_s=float(np.mean(waits)),
        mean_sojourn_s=float(np.mean(sojourns)),
        p50_sojourn_s=float(np.percentile(sojourns, 50)),
        p95_sojourn_s=float(np.percentile(sojourns, 95)),
        p99_sojourn_s=float(np.percentile(sojourns, 99)),
        deadline_s=deadline_s,
        miss_fraction=float(np.mean(sojourns > deadline_s)),
    )
