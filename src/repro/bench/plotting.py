"""Terminal plotting for experiment series (no plotting deps needed).

The paper's figures are log-y line charts of decode time / BER vs SNR;
this module renders the same series as ASCII charts so
``repro-sd experiment fig6 --plot`` can show the *shape* directly in a
terminal. Pure text, deterministic, unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_positive_int

#: Marker characters cycled across series.
MARKERS = "ox*+#@%&"


@dataclass
class AsciiChart:
    """A log-y (or linear) scatter/line chart rendered to text.

    Parameters
    ----------
    width, height:
        Plot-area size in character cells (axes add a margin).
    log_y:
        Use a logarithmic y axis (the paper's time/BER figures do).
    """

    width: int = 60
    height: int = 18
    log_y: bool = True
    title: str = ""
    x_label: str = "x"
    y_label: str = "y"
    _series: list[tuple[str, np.ndarray, np.ndarray]] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive_int(self.width, "width")
        check_positive_int(self.height, "height")
        if self.width < 10 or self.height < 4:
            raise ValueError("chart must be at least 10x4 cells")

    def add_series(self, name: str, x: np.ndarray, y: np.ndarray) -> None:
        """Register one named series (points with non-finite y are skipped)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError("x and y must be 1-D arrays of equal length")
        keep = np.isfinite(y) & np.isfinite(x)
        if self.log_y:
            keep &= y > 0
        if not np.any(keep):
            raise ValueError(f"series {name!r} has no plottable points")
        self._series.append((str(name), x[keep], y[keep]))

    # ------------------------------------------------------------------

    def _transform_y(self, y: np.ndarray) -> np.ndarray:
        return np.log10(y) if self.log_y else y

    def render(self) -> str:
        """Render all series to a multi-line string."""
        if not self._series:
            raise ValueError("no series added")
        all_x = np.concatenate([s[1] for s in self._series])
        all_y = self._transform_y(
            np.concatenate([s[2] for s in self._series])
        )
        x_lo, x_hi = float(all_x.min()), float(all_x.max())
        y_lo, y_hi = float(all_y.min()), float(all_y.max())
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        grid = [[" "] * self.width for _ in range(self.height)]
        for si, (_name, x, y) in enumerate(self._series):
            marker = MARKERS[si % len(MARKERS)]
            ty = self._transform_y(y)
            cols = np.rint(
                (x - x_lo) / (x_hi - x_lo) * (self.width - 1)
            ).astype(int)
            rows = np.rint(
                (ty - y_lo) / (y_hi - y_lo) * (self.height - 1)
            ).astype(int)
            # Connect consecutive points with interpolated cells.
            for i in range(len(x)):
                grid[self.height - 1 - rows[i]][cols[i]] = marker
                if i:
                    steps = max(abs(int(cols[i]) - int(cols[i - 1])), 1)
                    for t in range(1, steps):
                        c = round(cols[i - 1] + (cols[i] - cols[i - 1]) * t / steps)
                        r = round(rows[i - 1] + (rows[i] - rows[i - 1]) * t / steps)
                        cell = grid[self.height - 1 - r][c]
                        if cell == " ":
                            grid[self.height - 1 - r][c] = "."
        # Axis labels: top/bottom of the y range, left/right of x.
        def fmt_y(value: float) -> str:
            raw = 10**value if self.log_y else value
            return f"{raw:.3g}"

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        label_width = max(len(fmt_y(y_hi)), len(fmt_y(y_lo)))
        for r, row in enumerate(grid):
            if r == 0:
                label = fmt_y(y_hi).rjust(label_width)
            elif r == self.height - 1:
                label = fmt_y(y_lo).rjust(label_width)
            else:
                label = " " * label_width
            lines.append(f"{label} |{''.join(row)}|")
        x_axis = f"{x_lo:g}".ljust(self.width // 2) + f"{x_hi:g}".rjust(
            self.width - self.width // 2
        )
        lines.append(" " * (label_width + 2) + x_axis)
        lines.append(
            " " * (label_width + 2)
            + f"{self.x_label}   [{self.y_label}"
            + (", log scale]" if self.log_y else "]")
        )
        legend = "   ".join(
            f"{MARKERS[i % len(MARKERS)]} {name}"
            for i, (name, _x, _y) in enumerate(self._series)
        )
        lines.append(" " * (label_width + 2) + legend)
        return "\n".join(lines)


def plot_series_result(
    result, x_column: str, y_columns: list[str], *, log_y: bool = True
) -> str:
    """Chart selected columns of a :class:`SeriesResult`."""
    chart = AsciiChart(
        title=f"{result.experiment}: {result.title}",
        x_label=x_column,
        y_label=", ".join(y_columns),
        log_y=log_y,
    )
    x = np.asarray(result.column(x_column), dtype=float)
    for col in y_columns:
        y = np.asarray(
            [v if v is not None else np.nan for v in result.column(col)],
            dtype=float,
        )
        chart.add_series(col, x, y)
    return chart.render()
