"""Child enumeration orders (paper section II-B / Fig. 3).

When a node is expanded, its ``P`` children can be visited in the
constellation's natural order or sorted by partial distance. Sorted
insertion is the essence of the Best-FS strategy the paper adopts from
Geosphere: the LIFO list then always pops the locally most promising
child first, so good leaves — and hence tight radii — are found early.
The sorting cost depends only on ``P`` and "is dominated by the GEMM
complexity" (paper), which is why the FPGA design can afford a full sort
network in the pruning module.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_in

#: Available orders: "natural" (constellation index order) and "sorted"
#: (ascending PD, the Geosphere/Best-FS order).
CHILD_ORDERS = ("natural", "sorted")


def child_order(child_pds: np.ndarray, order: str = "sorted") -> np.ndarray:
    """Visit order for one node's children.

    Parameters
    ----------
    child_pds:
        ``(P,)`` partial distances of the children.
    order:
        ``"sorted"`` for ascending-PD order, ``"natural"`` to keep the
        constellation order.

    Returns
    -------
    ``(P,)`` integer permutation; ``child_pds[result]`` is the visit
    sequence.
    """
    check_in(order, "order", CHILD_ORDERS)
    child_pds = np.asarray(child_pds)
    if child_pds.ndim != 1:
        raise ValueError(f"child_pds must be 1-D, got shape {child_pds.shape}")
    if order == "natural":
        return np.arange(child_pds.size)
    # Stable sort => deterministic on PD ties.
    return np.argsort(child_pds, kind="stable")
