"""Structure-of-arrays frontier storage for the tree-search policies.

The pre-refactor traversal loops kept one Python object per live tree
node (:class:`~repro.core.tree.SearchNode`: a NamedTuple holding a
``tuple`` path), so every expansion paid per-node allocation, per-child
tuple concatenation and an ``np.fromiter`` rebuild of the ``(B, d)``
parent-index matrix before each GEMM. That bookkeeping — not the GEMM —
dominated host wall time, defeating the paper's point that batched PD
evaluation is compute-bound.

:class:`NodePool` replaces the object model with parallel preallocated
arrays (*structure of arrays*): one ``float64`` PD vector, ``int64``
sequence/level vectors, and a single ``(capacity, M)`` ``int64`` path
matrix whose row ``i`` holds node ``i``'s root-first index path. A node
is just a row number. Consequences:

* admitting the surviving children of a whole pool is **one** bulk
  write (:meth:`append_children`) instead of a per-child Python loop;
* the ``(B, d)`` parent-index operand of a GEMM is a row selection of
  the path matrix (:meth:`path_block`) — a zero-copy view when the rows
  are contiguous (always true for DFS single-node expansion), one
  vectorised gather otherwise;
* growth doubles the arrays and preserves live rows, so pool identity
  (row numbers) is stable for the lifetime of a search.

The layout deliberately mirrors the FPGA's memory subsystem (paper
§III): the Matrix-Storage-Tree keeps per-level node records in flat
BRAM banks indexed by slot, not as linked structures, precisely so the
systolic GEMM array can stream a pool's symbols without pointer
chasing. ``docs/architecture.md`` discusses the correspondence.

Sequence numbers reproduce the old tie-breaking exactly: rows are
numbered in admission order starting from the root's 0, matching the
``seq`` the per-node implementation assigned at each ``heappush``. In
fact ``seq[i] == i`` is an invariant — every admission extends both the
row range and the sequence range by the same count — so the row number
*is* the tie-breaker, a heap of ``(pd, row)`` pairs pops in the
identical order, and every decode stays bit-identical
(``tests/test_nodepool.py`` locks this against recorded pre-refactor
outputs).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["NodePool", "extend_paths"]


class NodePool:
    """Growable structure-of-arrays store of live search-tree nodes.

    Parameters
    ----------
    n_tx:
        Tree depth ``M`` (one level per transmit symbol); fixes the path
        matrix width.
    capacity:
        Initial number of preallocated rows; the pool doubles as needed
        and never shrinks.

    Attributes
    ----------
    pd:
        ``(capacity,) float64`` accumulated partial distances.
    seq:
        ``(capacity,) int64`` admission sequence numbers (tie-breakers).
        ``seq[i] == i`` by construction; the array exists so traces and
        tests can assert the invariant, not because lookups need it.
    level:
        ``(capacity,) int64`` — the level each node's *children* assign.
    path:
        ``(capacity, M) int64`` root-first index paths; row ``i`` column
        ``j`` is the constellation index node ``i`` assigned at level
        ``M-1-j``. Only the first ``M-1-level`` columns of a row are
        meaningful.
    size:
        Number of admitted rows (live prefix of every array).

    .. warning::
       Growth replaces the underlying arrays — never cache ``pool.pd``
       (etc.) across an :meth:`append_children` call.
    """

    __slots__ = ("n_tx", "pd", "seq", "level", "path", "size", "next_seq")

    def __init__(self, n_tx: int, capacity: int = 256) -> None:
        self.n_tx = check_positive_int(n_tx, "n_tx")
        capacity = check_positive_int(capacity, "capacity")
        self.pd = np.empty(capacity, dtype=np.float64)
        self.seq = np.empty(capacity, dtype=np.int64)
        self.level = np.empty(capacity, dtype=np.int64)
        self.path = np.empty((capacity, self.n_tx), dtype=np.int64)
        self.size = 0
        self.next_seq = 0

    @property
    def capacity(self) -> int:
        """Currently allocated rows."""
        return self.pd.shape[0]

    def _ensure(self, extra: int) -> None:
        """Grow (doubling) until ``extra`` more rows fit; keeps live rows."""
        need = self.size + extra
        cap = self.pd.shape[0]
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for name in ("pd", "seq", "level"):
            old = getattr(self, name)
            grown = np.empty(cap, dtype=old.dtype)
            grown[: self.size] = old[: self.size]
            setattr(self, name, grown)
        grown_path = np.empty((cap, self.n_tx), dtype=np.int64)
        grown_path[: self.size] = self.path[: self.size]
        self.path = grown_path

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def append_root(self) -> int:
        """Admit the search root (zero PD, empty path); returns its row."""
        self._ensure(1)
        row = self.size
        self.pd[row] = 0.0
        self.seq[row] = self.next_seq
        self.level[row] = self.n_tx - 1
        self.next_seq += 1
        self.size += 1
        return row

    def append_children(
        self,
        parent_rows: np.ndarray | int,
        child_cols: np.ndarray,
        child_pds: np.ndarray,
        level: int,
    ) -> np.ndarray:
        """Bulk-admit surviving children; returns their new row numbers.

        Parameters
        ----------
        parent_rows:
            ``(K,)`` parent row per child (repeats allowed), or one
            scalar row shared by every child (DFS single-node pools).
        child_cols:
            ``(K,)`` constellation index each child assigns.
        child_pds:
            ``(K,)`` total PDs of the children.
        level:
            The *children's* level (parent level minus one).

        Children are numbered (``seq``) in input order, so callers that
        present survivors in the legacy push order reproduce the
        per-node implementation's tie-breaking exactly.
        """
        k = child_cols.shape[0]
        lo = self.size
        hi = lo + k
        if hi > self.pd.shape[0]:
            self._ensure(k)
        depth = self.n_tx - 1 - level  # symbols assigned including the new one
        if depth > 1:
            self.path[lo:hi, : depth - 1] = self.path[parent_rows, : depth - 1]
        self.path[lo:hi, depth - 1] = child_cols
        self.pd[lo:hi] = child_pds
        rows = np.arange(lo, hi, dtype=np.int64)
        # seq[i] == i invariant: admission order numbers rows densely
        # starting at the root's 0, so the same arange serves both.
        self.seq[lo:hi] = rows
        self.level[lo:hi] = level
        self.next_seq += k
        self.size = hi
        return rows

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    def path_block(self, rows: np.ndarray, depth: int) -> np.ndarray:
        """``(B, depth)`` root-first paths of ``rows``.

        A zero-copy view when the rows are a contiguous ascending run
        (single-node pools, freshly admitted sibling blocks); one
        vectorised gather otherwise. Callers must treat the result as
        read-only.
        """
        b = rows.shape[0]
        lo = int(rows[0])
        if b == 1:
            return self.path[lo : lo + 1, :depth]
        if int(rows[b - 1]) - lo + 1 == b and np.all(np.diff(rows) == 1):
            return self.path[lo : lo + b, :depth]
        return self.path[rows, :depth]

    def pd_block(self, rows: np.ndarray) -> np.ndarray:
        """``(B,)`` PDs of ``rows`` (view when contiguous, gather else)."""
        b = rows.shape[0]
        lo = int(rows[0])
        if b == 1:
            return self.pd[lo : lo + 1]
        if int(rows[b - 1]) - lo + 1 == b and np.all(np.diff(rows) == 1):
            return self.pd[lo : lo + b]
        return self.pd[rows]

    def leaf_indices(self, row: int, child_col: int) -> np.ndarray:
        """Ascending-level indices of the leaf below ``row`` via ``child_col``.

        ``row`` must be a level-0 node (its children are leaves); the
        result matches :func:`repro.core.tree.path_to_level_indices` of
        the equivalent tuple path.
        """
        out = np.empty(self.n_tx, dtype=np.int64)
        # Root-first path reversed == ascending level; the new leaf
        # symbol (level 0) lands in out[0].
        out[0] = child_col
        out[1:] = self.path[row, self.n_tx - 2 :: -1] if self.n_tx > 1 else 0
        return out

    def __len__(self) -> int:
        return self.size


def extend_paths(
    paths: np.ndarray, keep_n: np.ndarray, keep_c: np.ndarray
) -> np.ndarray:
    """Survivor paths of the next sweep level: ``paths[keep_n] + keep_c``.

    Shared by the frontier-sweep policies (BFS / K-best / FSD): one
    preallocated write instead of ``np.concatenate`` plus an ``astype``
    copy per level. ``paths`` is ``(F, d)`` root-first, ``keep_n`` the
    surviving parent rows, ``keep_c`` the appended child indices; the
    result is ``(K, d+1)`` ``int64`` with identical values to the old
    concatenation (bit-identity preserved).
    """
    depth = paths.shape[1]
    out = np.empty((keep_n.shape[0], depth + 1), dtype=np.int64)
    if depth:
        np.take(paths, keep_n, axis=0, out=out[:, :depth])
    out[:, depth] = keep_c
    return out
