"""Deprecated shim — moved to :mod:`repro.detectors.partitioned`.

The multi-PE partitioned decoder is a detector, not a core search
kernel; it now lives with the rest of the zoo. This module re-exports
the old name with a :class:`DeprecationWarning`::

    from repro.core.parallel import PartitionedSphereDecoder  # still works

Imports happen lazily inside :func:`__getattr__` (PEP 562) so this
module has no module-level dependency on the detector layer (see
``tools/check_layering.py``).
"""

from __future__ import annotations

import warnings

_MOVED = {
    "PartitionedSphereDecoder": (
        "repro.detectors.partitioned",
        "PartitionedSphereDecoder",
    ),
}


def __getattr__(name: str):
    try:
        module_name, attr = _MOVED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"repro.core.parallel.{name} moved to {module_name}.{attr}; "
        "update the import (this shim will be removed)",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(_MOVED)
