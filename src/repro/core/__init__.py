"""The paper's core contribution: the GEMM-based Best-FS sphere decoder."""

from repro.core.gemm import GemmEvaluator
from repro.core.tree import SearchNode, path_symbols
from repro.core.radius import (
    RadiusPolicy,
    InfiniteRadius,
    NoiseScaledRadius,
    FixedRadius,
    BabaiRadius,
    babai_point,
)
from repro.core.enumeration import child_order
from repro.core.sphere_decoder import SphereDecoder
from repro.core.parallel import PartitionedSphereDecoder
from repro.core.lattice import lll_reduce, LLLResult, orthogonality_defect

__all__ = [
    "GemmEvaluator",
    "SearchNode",
    "path_symbols",
    "RadiusPolicy",
    "InfiniteRadius",
    "NoiseScaledRadius",
    "FixedRadius",
    "BabaiRadius",
    "babai_point",
    "child_order",
    "SphereDecoder",
    "PartitionedSphereDecoder",
    "lll_reduce",
    "LLLResult",
    "orthogonality_defect",
]
