"""The paper's core contribution: GEMM evaluation + traversal policies.

Since the policy/backend split, ``repro.core`` holds the search
machinery only — traversal policies, evaluators, radius schedules,
lattice tools. The detector classes built on top of them live in
:mod:`repro.detectors`; ``SphereDecoder`` and
``PartitionedSphereDecoder`` are still importable from here through a
deprecation shim.
"""

import warnings

from repro.core.gemm import ChannelKernel, GemmEvaluator
from repro.core.nodepool import NodePool, extend_paths
from repro.core.stats import BatchEvent, DecodeStats
from repro.core.tree import SearchNode, path_symbols
from repro.core.radius import (
    RadiusPolicy,
    InfiniteRadius,
    NoiseScaledRadius,
    FixedRadius,
    BabaiRadius,
    babai_point,
)
from repro.core.enumeration import child_order
from repro.core.traversal import (
    TraversalPolicy,
    BestFirstPolicy,
    DfsPolicy,
    BfsPolicy,
    KBestPolicy,
    FsdPolicy,
    ScalarGemvBackend,
    FusedGemmBackend,
    TraversalEngine,
)
from repro.core.lattice import lll_reduce, LLLResult, orthogonality_defect

#: Detector classes that used to live here; resolved lazily with a
#: DeprecationWarning so ``from repro.core import SphereDecoder`` keeps
#: working without making core import the detector layer eagerly.
_MOVED_DETECTORS = {
    "SphereDecoder": ("repro.detectors.sphere", "SphereDecoder"),
    "PartitionedSphereDecoder": (
        "repro.detectors.partitioned",
        "PartitionedSphereDecoder",
    ),
}

__all__ = [
    "GemmEvaluator",
    "ChannelKernel",
    "NodePool",
    "extend_paths",
    "BatchEvent",
    "DecodeStats",
    "SearchNode",
    "path_symbols",
    "RadiusPolicy",
    "InfiniteRadius",
    "NoiseScaledRadius",
    "FixedRadius",
    "BabaiRadius",
    "babai_point",
    "child_order",
    "TraversalPolicy",
    "BestFirstPolicy",
    "DfsPolicy",
    "BfsPolicy",
    "KBestPolicy",
    "FsdPolicy",
    "ScalarGemvBackend",
    "FusedGemmBackend",
    "TraversalEngine",
    "SphereDecoder",
    "PartitionedSphereDecoder",
    "lll_reduce",
    "LLLResult",
    "orthogonality_defect",
]


def __getattr__(name: str):
    try:
        module_name, attr = _MOVED_DETECTORS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"repro.core.{name} moved to {module_name}.{attr}; "
        "update the import (this shim will be removed)",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attr)
