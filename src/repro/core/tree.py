"""Search-tree node representation.

The tree has ``M`` levels (one per transmit symbol, paper section III-A).
A node is identified by its *path*: the tuple of constellation point
indices assigned so far, root-first — ``path[i]`` is the index chosen at
level ``M-1-i``. The root has the empty path; a leaf has ``len(path) == M``.

Nodes are plain tuples ordered by partial distance so they can live
directly in a ``heapq`` (Best-FS) or a list used as a LIFO stack
(sorted-DFS, Fig. 3). A monotonically increasing sequence number breaks
PD ties, which keeps ordering deterministic and avoids comparing paths.

The traversal policies in :mod:`repro.core.traversal` no longer store
their frontiers as ``SearchNode`` objects — they keep nodes as rows of
a :class:`repro.core.nodepool.NodePool` (structure-of-arrays, bulk
admission) and reproduce the same ``(pd, seq)`` ordering with scalar
heap/stack entries. ``SearchNode`` remains the node representation for
code that walks trees explicitly (the partitioned decoder's
fixed-levels enumeration, tests, teaching examples).
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.mimo.constellation import Constellation


class SearchNode(NamedTuple):
    """A tree node as stored in the exploration list.

    Field order matters: tuples compare lexicographically, so a heap of
    ``SearchNode`` pops the smallest PD first (ties broken by ``seq``).
    """

    pd: float
    seq: int
    level: int  # the level this node's *children* will assign
    path: tuple[int, ...]

    @property
    def depth(self) -> int:
        """Number of symbols already assigned."""
        return len(self.path)

    def is_leaf_parent(self) -> bool:
        """True when expanding this node produces leaves (level 0)."""
        return self.level == 0


def root_node(n_tx: int) -> SearchNode:
    """The search root: nothing assigned, zero PD."""
    if n_tx <= 0:
        raise ValueError(f"n_tx must be positive, got {n_tx}")
    return SearchNode(pd=0.0, seq=0, level=n_tx - 1, path=())


def path_symbols(
    path: tuple[int, ...], constellation: Constellation
) -> np.ndarray:
    """Complex symbols of a path, root-first (level M-1 downwards)."""
    if not path:
        return np.empty(0, dtype=np.complex128)
    return constellation.points[np.asarray(path, dtype=np.int64)]


def path_to_level_indices(path: tuple[int, ...], n_tx: int) -> np.ndarray:
    """Convert a full root-first path to ascending-level index order.

    ``out[k]`` is the point index assigned at level ``k``; requires a
    complete path (``len(path) == n_tx``).
    """
    if len(path) != n_tx:
        raise ValueError(
            f"need a complete path of length {n_tx}, got {len(path)}"
        )
    return np.asarray(path[::-1], dtype=np.int64)
