"""Batched (GEMM-based) partial-distance evaluation — the paper's refactor.

Classic sphere decoders evaluate one node at a time with a dot product
(BLAS-2-ish, memory-bound). Arfaoui et al. [1] — adopted by this paper —
refactor the evaluation so a *pool* of nodes at the same tree level is
evaluated with one matrix-matrix product (BLAS-3, compute-bound):

For a pool of ``B`` nodes at level ``k`` with known symbols
``s_{k+1} .. s_{M-1}`` stacked as columns of ``S`` (shape ``m x B`` with
``m = M-1-k``), the shared interference terms are one GEMM::

    b = R[k, k+1:] @ S                      # (1 x m) @ (m x B)

and the PD increment of child ``c`` (constellation point ``omega_c``) of
pool node ``n`` is a rank-1 broadcast followed by the NORM step::

    inc[n, c] = | ybar_k - b[n] - R[k, k] * omega_c |^2

On the FPGA the GEMM maps to the systolic array and the broadcast/norm to
the NORM module (Fig. 4); here both are single vectorised NumPy
expressions. The evaluator counts real FLOPs so platform cost models can
translate work into time.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.metric import PartialDistanceMetric, resolve_metric
from repro.mimo.constellation import Constellation
from repro.util.validation import check_matrix, check_vector

#: Real FLOPs per complex multiply-accumulate (4 mults + 4 adds).
FLOPS_PER_CMAC = 8
#: Real FLOPs per child for the ℓ₂ NORM step: complex subtract (2),
#: complex multiply by R_kk (6 for the product with a precomputed point
#: table is folded into the table), |.|^2 (3). Other metrics carry their
#: own per-child cost (``PartialDistanceMetric.flops_per_norm``).
FLOPS_PER_NORM = 8


def _check_metric_match(
    kernel: "ChannelKernel", metric
) -> PartialDistanceMetric:
    """Resolve the evaluator metric against a prebuilt kernel's.

    A kernel's per-level tables are metric-independent, but the PDs an
    evaluator produces are not — silently mixing an ℓ∞ traversal with an
    ℓ₂-precomputed kernel (or vice versa) would corrupt radius state, so
    an explicit mismatch is an error rather than a best-effort override.
    """
    if metric is None:
        return kernel.metric
    metric = resolve_metric(metric)
    if metric is not kernel.metric and metric.name != kernel.metric.name:
        raise ValueError(
            f"metric mismatch: evaluator requested {metric.name!r} but the "
            f"prebuilt ChannelKernel was prepared for {kernel.metric.name!r}"
        )
    return metric


def _stacked_gemv(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """``(B, m) @ (m,)`` with a row-count-independent summation order.

    ``np.matmul`` dispatches tall and single-row operands to different
    BLAS kernels, so slicing rows out of a taller product is not
    bit-identical to evaluating them alone. Non-optimised ``einsum``
    reduces every output row in the same fixed order regardless of ``B``,
    which is what lets :class:`BatchedGemmEvaluator` (stacking pools of
    many frames) reproduce :class:`GemmEvaluator` results exactly.
    """
    return np.einsum("bm,m->b", matrix, vector)


class ChannelKernel:
    """Per-channel precompute shared by every frame of a fading block.

    Validates the triangular factor once and owns the per-level tables
    both evaluators need: ``diag_points[k] = R[k, k] * points`` (the
    "branching" enumeration as a lookup) and ``rows[k] = R[k, k+1:]``
    (the interference operand of the level-``k`` GEMM).

    R is constant across all frames of a block-fading channel, so the
    detector shell builds one kernel at ``prepare`` time and every
    subsequent ``detect`` / ``decode_batch`` call reuses it — previously
    the O(M·P) table build, the ``astype`` copies and the
    ``np.allclose(triu)`` scan ran again for every frame.

    The kernel also pins the partial-distance ``metric`` the channel was
    prepared for (default ℓ₂): evaluators built on the kernel inherit
    it, and requesting a different metric from the same kernel raises.
    """

    __slots__ = ("n_tx", "r", "constellation", "diag_points", "rows", "metric")

    def __init__(
        self,
        r: np.ndarray,
        constellation: Constellation,
        *,
        metric: PartialDistanceMetric | str | None = None,
    ) -> None:
        r = check_matrix(r, "r")
        if r.shape[0] != r.shape[1]:
            raise ValueError(f"r must be square, got {r.shape}")
        if not np.allclose(r, np.triu(r)):
            raise ValueError("r must be upper triangular")
        self.n_tx = r.shape[0]
        self.r = r.astype(np.complex128)
        self.constellation = constellation
        self.metric = resolve_metric(metric)
        points = constellation.points
        self.diag_points = np.asarray(
            [self.r[k, k] * points for k in range(self.n_tx)]
        )  # (M, P)
        self.rows = [self.r[k, k + 1 :] for k in range(self.n_tx)]


class GemmEvaluator:
    """Evaluates PD increments for pools of same-level nodes via GEMM.

    Parameters
    ----------
    r:
        ``(M, M)`` upper-triangular factor of the channel.
    ybar:
        ``(M,)`` rotated receive vector ``Q^H y``.
    constellation:
        The symbol alphabet (defines ``P`` children per node).
    kernel:
        Optional prebuilt :class:`ChannelKernel` for this channel; when
        given, ``r``/``constellation`` are taken from it and the
        per-frame validation and per-level precompute are skipped
        entirely (the block-fading fast path).
    metric:
        Partial-distance metric (name or instance); defaults to the
        kernel's metric (ℓ₂ for a fresh kernel). Must agree with a
        prebuilt kernel's metric.
    """

    def __init__(
        self,
        r: np.ndarray,
        ybar: np.ndarray,
        constellation: Constellation,
        *,
        kernel: ChannelKernel | None = None,
        metric: PartialDistanceMetric | str | None = None,
    ) -> None:
        if kernel is None:
            kernel = ChannelKernel(r, constellation, metric=metric)
        self.kernel = kernel
        self.metric = _check_metric_match(kernel, metric)
        self.n_tx = kernel.n_tx
        self.ybar = check_vector(ybar, "ybar", length=self.n_tx).astype(
            np.complex128
        )
        self.r = kernel.r
        self.constellation = kernel.constellation
        # Per-level precomputation: diag term times each constellation
        # point — the "branching" enumeration is a table lookup.
        self._diag_points = kernel.diag_points
        self._rows = kernel.rows
        # Bound-method-free locals for the hot path (a property lookup
        # per expansion is measurable at single-node pools).
        self._points = kernel.constellation.points
        self._order = kernel.constellation.order
        self._increments = self.metric.increments
        self._accumulate = self.metric.accumulate
        self._flops_per_norm = self.metric.flops_per_norm
        self.gemm_calls = 0
        self.gemm_flops = 0
        self.norm_flops = 0
        #: Seconds spent inside :meth:`expand_unchecked` (the GEMM +
        #: NORM arithmetic) — the denominator of the host-overhead
        #: ratio in :class:`~repro.core.stats.DecodeStats`.
        self.gemm_time_s = 0.0

    @property
    def order(self) -> int:
        """Children per expansion (the paper's modulation factor P)."""
        return self.constellation.order

    def expand(
        self,
        level: int,
        parent_indices: np.ndarray,
        parent_pds: np.ndarray,
    ) -> np.ndarray:
        """Child PDs for a pool of nodes at ``level``.

        Parameters
        ----------
        level:
            The tree level ``k`` being assigned (``M-1`` at the root's
            children, ``0`` at leaves).
        parent_indices:
            ``(B, d)`` integer array, ``d = M-1-level``; column ``i``
            holds the point index assigned at level ``M-1-i`` (i.e. the
            root-first path). ``d == 0`` expands the root.
        parent_pds:
            ``(B,)`` accumulated PDs of the pool nodes.

        Returns
        -------
        ``(B, P)`` array: total PD of every child of every pool node.
        """
        if not 0 <= level < self.n_tx:
            raise ValueError(f"level must be in [0, {self.n_tx - 1}], got {level}")
        parent_indices = np.asarray(parent_indices, dtype=np.int64)
        parent_pds = np.asarray(parent_pds, dtype=float)
        depth = self.n_tx - 1 - level
        if parent_indices.ndim != 2 or parent_indices.shape[1] != depth:
            raise ValueError(
                f"parent_indices must have shape (B, {depth}), "
                f"got {parent_indices.shape}"
            )
        pool = parent_indices.shape[0]
        if parent_pds.shape != (pool,):
            raise ValueError(
                f"parent_pds must have shape ({pool},), got {parent_pds.shape}"
            )
        return self.expand_unchecked(level, parent_indices, parent_pds)

    def expand_unchecked(
        self,
        level: int,
        parent_indices: np.ndarray,
        parent_pds: np.ndarray,
    ) -> np.ndarray:
        """:meth:`expand` without argument validation — the engine path.

        Trusts the caller completely: ``parent_indices`` must be a
        ``(B, M-1-level)`` ``int64`` array of in-range point indices and
        ``parent_pds`` a ``(B,)`` ``float64`` array. The traversal
        policies construct exactly that from their
        :class:`~repro.core.nodepool.NodePool`, so the lockstep drivers
        call this directly; external callers should stay on
        :meth:`expand` (``tests/test_gemm_evaluator.py`` proves both
        paths agree bit-for-bit on valid input).
        """
        t0 = perf_counter()
        depth = self.n_tx - 1 - level
        pool = parent_indices.shape[0]
        if depth:
            # Path position i holds level M-1-i; row index j-(k+1) needs
            # level j ascending -> reverse the path columns.
            symbols = self._points[parent_indices[:, ::-1]]  # (B, m)
            # (B, m) @ (m,) -> (B,); rows[level] holds levels k+1 .. M-1.
            shared = _stacked_gemv(symbols, self._rows[level])
            self.gemm_flops += FLOPS_PER_CMAC * pool * depth
            # NORM step: broadcast over the P children.
            error = (
                self.ybar[level]
                - shared[:, None]
                - self._diag_points[level][None, :]
            )
        else:
            # Root expansion: the shared term is exactly zero and
            # ``x - (+0.0)`` is the identity bit-for-bit, so skip the
            # zero vector and its broadcast subtraction entirely.
            error = np.broadcast_to(
                self.ybar[level] - self._diag_points[level], (pool, self._order)
            )
        self.gemm_calls += 1
        increments = self._increments(error)
        self.norm_flops += self._flops_per_norm * pool * self._order
        result = self._accumulate(parent_pds, increments)
        self.gemm_time_s += perf_counter() - t0
        return result

    def leaf_metric(self, indices_by_level: np.ndarray) -> float:
        """Full reduced-domain metric of one leaf (``||ybar - R s||²``
        under ℓ₂, the max per-dimension error under ℓ∞).

        ``indices_by_level[k]`` is the point index assigned at level ``k``
        (ascending level order).
        """
        indices_by_level = np.asarray(indices_by_level)
        if indices_by_level.shape != (self.n_tx,):
            raise ValueError(
                f"indices_by_level must have shape ({self.n_tx},), "
                f"got {indices_by_level.shape}"
            )
        s = self.constellation.points[indices_by_level]
        residual = self.ybar - self.r @ s
        return self.metric.residual_metric(residual)


class BatchedGemmEvaluator:
    """PD evaluation for node pools drawn from ``F`` concurrent frames.

    The paper's BLAS-2 -> BLAS-3 refactor applied *across frames*, not
    just within one tree level: all frames of a block-fading channel
    share the triangular factor ``R``, so same-level pools from several
    concurrent decodes stack into one taller GEMM operand. Only the
    rotated receive vector differs per frame, and it enters in the
    element-wise NORM step — so each output row of the fused product is
    the same independent dot product :class:`GemmEvaluator` would have
    computed for that row alone, and batched decoding is bit-identical
    to per-frame decoding (``tests/test_parallel_mc.py`` enforces this).

    Parameters
    ----------
    r:
        ``(M, M)`` upper-triangular factor shared by every frame.
    ybars:
        ``(F, M)`` rotated receive vectors, one row per frame.
    constellation:
        The symbol alphabet.
    kernel:
        Optional prebuilt :class:`ChannelKernel`, as in
        :class:`GemmEvaluator`.
    metric:
        Partial-distance metric, as in :class:`GemmEvaluator`.
    """

    def __init__(
        self,
        r: np.ndarray,
        ybars: np.ndarray,
        constellation: Constellation,
        *,
        kernel: ChannelKernel | None = None,
        metric: PartialDistanceMetric | str | None = None,
    ) -> None:
        if kernel is None:
            kernel = ChannelKernel(r, constellation, metric=metric)
        self.kernel = kernel
        self.metric = _check_metric_match(kernel, metric)
        self.n_tx = kernel.n_tx
        ybars = np.asarray(ybars)
        if ybars.ndim != 2 or ybars.shape[1] != self.n_tx:
            raise ValueError(
                f"ybars must have shape (F, {self.n_tx}), got {ybars.shape}"
            )
        self.n_frames = ybars.shape[0]
        self.ybars = ybars.astype(np.complex128)
        self.r = kernel.r
        self.constellation = kernel.constellation
        self._diag_points = kernel.diag_points
        self._rows = kernel.rows
        self._points = kernel.constellation.points
        self._order = kernel.constellation.order
        self._increments = self.metric.increments
        self._accumulate = self.metric.accumulate
        self._flops_per_norm = self.metric.flops_per_norm
        #: Fused cross-frame GEMM calls actually issued (the batching
        #: win: compare against the sum of per-frame ``gemm_calls``).
        self.fused_gemm_calls = 0
        #: Pool rows evaluated across all fused calls.
        self.rows_evaluated = 0
        self.gemm_flops = 0
        self.norm_flops = 0
        #: Seconds spent inside :meth:`expand_unchecked` (fused GEMM +
        #: NORM arithmetic across all frames).
        self.gemm_time_s = 0.0

    @property
    def order(self) -> int:
        """Children per expansion (the paper's modulation factor P)."""
        return self.constellation.order

    def expand(
        self,
        level: int,
        parent_indices: np.ndarray,
        parent_pds: np.ndarray,
        frame_rows: np.ndarray,
    ) -> np.ndarray:
        """Child PDs for a cross-frame pool of same-level nodes.

        ``parent_indices``/``parent_pds`` are laid out exactly as in
        :meth:`GemmEvaluator.expand`; ``frame_rows`` is the ``(B,)``
        integer map from pool row to frame (row of ``ybars``).
        """
        if not 0 <= level < self.n_tx:
            raise ValueError(f"level must be in [0, {self.n_tx - 1}], got {level}")
        parent_indices = np.asarray(parent_indices, dtype=np.int64)
        parent_pds = np.asarray(parent_pds, dtype=float)
        frame_rows = np.asarray(frame_rows, dtype=np.int64)
        depth = self.n_tx - 1 - level
        if parent_indices.ndim != 2 or parent_indices.shape[1] != depth:
            raise ValueError(
                f"parent_indices must have shape (B, {depth}), "
                f"got {parent_indices.shape}"
            )
        pool = parent_indices.shape[0]
        if parent_pds.shape != (pool,) or frame_rows.shape != (pool,):
            raise ValueError(
                f"parent_pds and frame_rows must have shape ({pool},), "
                f"got {parent_pds.shape} and {frame_rows.shape}"
            )
        if frame_rows.size and not (
            0 <= frame_rows.min() and frame_rows.max() < self.n_frames
        ):
            raise ValueError(
                f"frame_rows must index into {self.n_frames} frames"
            )
        return self.expand_unchecked(level, parent_indices, parent_pds, frame_rows)

    def expand_unchecked(
        self,
        level: int,
        parent_indices: np.ndarray,
        parent_pds: np.ndarray,
        frame_rows: np.ndarray,
    ) -> np.ndarray:
        """:meth:`expand` without argument validation — the engine path.

        Same contract as :meth:`GemmEvaluator.expand_unchecked`, plus
        ``frame_rows`` must be a ``(B,)`` ``int64`` array of valid frame
        indices (the lockstep driver constructs it).
        """
        t0 = perf_counter()
        depth = self.n_tx - 1 - level
        pool = parent_indices.shape[0]
        ybar_rows = self.ybars[frame_rows, level]  # (B,)
        if depth:
            symbols = self._points[parent_indices[:, ::-1]]
            # One fused (B_total, m) @ (m,) product over all frames.
            shared = _stacked_gemv(symbols, self._rows[level])
            self.gemm_flops += FLOPS_PER_CMAC * pool * depth
            error = (
                ybar_rows[:, None]
                - shared[:, None]
                - self._diag_points[level][None, :]
            )
        else:
            # Root expansion: subtracting the exactly-zero shared term
            # is a bit-for-bit identity, so skip it.
            error = ybar_rows[:, None] - self._diag_points[level][None, :]
        self.fused_gemm_calls += 1
        self.rows_evaluated += pool
        increments = self._increments(error)
        self.norm_flops += self._flops_per_norm * pool * self._order
        result = self._accumulate(parent_pds, increments)
        self.gemm_time_s += perf_counter() - t0
        return result
