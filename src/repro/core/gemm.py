"""Batched (GEMM-based) partial-distance evaluation — the paper's refactor.

Classic sphere decoders evaluate one node at a time with a dot product
(BLAS-2-ish, memory-bound). Arfaoui et al. [1] — adopted by this paper —
refactor the evaluation so a *pool* of nodes at the same tree level is
evaluated with one matrix-matrix product (BLAS-3, compute-bound):

For a pool of ``B`` nodes at level ``k`` with known symbols
``s_{k+1} .. s_{M-1}`` stacked as columns of ``S`` (shape ``m x B`` with
``m = M-1-k``), the shared interference terms are one GEMM::

    b = R[k, k+1:] @ S                      # (1 x m) @ (m x B)

and the PD increment of child ``c`` (constellation point ``omega_c``) of
pool node ``n`` is a rank-1 broadcast followed by the NORM step::

    inc[n, c] = | ybar_k - b[n] - R[k, k] * omega_c |^2

On the FPGA the GEMM maps to the systolic array and the broadcast/norm to
the NORM module (Fig. 4); here both are single vectorised NumPy
expressions. The evaluator counts real FLOPs so platform cost models can
translate work into time.
"""

from __future__ import annotations

import numpy as np

from repro.mimo.constellation import Constellation
from repro.util.validation import check_matrix, check_vector

#: Real FLOPs per complex multiply-accumulate (4 mults + 4 adds).
FLOPS_PER_CMAC = 8
#: Real FLOPs per child for the NORM step: complex subtract (2), complex
#: multiply by R_kk (6 for the product with a precomputed point table is
#: folded into the table), |.|^2 (3).
FLOPS_PER_NORM = 8


class GemmEvaluator:
    """Evaluates PD increments for pools of same-level nodes via GEMM.

    Parameters
    ----------
    r:
        ``(M, M)`` upper-triangular factor of the channel.
    ybar:
        ``(M,)`` rotated receive vector ``Q^H y``.
    constellation:
        The symbol alphabet (defines ``P`` children per node).
    """

    def __init__(
        self,
        r: np.ndarray,
        ybar: np.ndarray,
        constellation: Constellation,
    ) -> None:
        r = check_matrix(r, "r")
        if r.shape[0] != r.shape[1]:
            raise ValueError(f"r must be square, got {r.shape}")
        if not np.allclose(r, np.triu(r)):
            raise ValueError("r must be upper triangular")
        self.n_tx = r.shape[0]
        self.ybar = check_vector(ybar, "ybar", length=self.n_tx).astype(
            np.complex128
        )
        self.r = r.astype(np.complex128)
        self.constellation = constellation
        # Per-level precomputation: diag term times each constellation
        # point — the "branching" enumeration is a table lookup.
        points = constellation.points
        self._diag_points = np.asarray(
            [self.r[k, k] * points for k in range(self.n_tx)]
        )  # (M, P)
        self._rows = [self.r[k, k + 1 :] for k in range(self.n_tx)]
        self.gemm_calls = 0
        self.gemm_flops = 0
        self.norm_flops = 0

    @property
    def order(self) -> int:
        """Children per expansion (the paper's modulation factor P)."""
        return self.constellation.order

    def expand(
        self,
        level: int,
        parent_indices: np.ndarray,
        parent_pds: np.ndarray,
    ) -> np.ndarray:
        """Child PDs for a pool of nodes at ``level``.

        Parameters
        ----------
        level:
            The tree level ``k`` being assigned (``M-1`` at the root's
            children, ``0`` at leaves).
        parent_indices:
            ``(B, d)`` integer array, ``d = M-1-level``; column ``i``
            holds the point index assigned at level ``M-1-i`` (i.e. the
            root-first path). ``d == 0`` expands the root.
        parent_pds:
            ``(B,)`` accumulated PDs of the pool nodes.

        Returns
        -------
        ``(B, P)`` array: total PD of every child of every pool node.
        """
        if not 0 <= level < self.n_tx:
            raise ValueError(f"level must be in [0, {self.n_tx - 1}], got {level}")
        parent_indices = np.asarray(parent_indices, dtype=np.int64)
        parent_pds = np.asarray(parent_pds, dtype=float)
        depth = self.n_tx - 1 - level
        if parent_indices.ndim != 2 or parent_indices.shape[1] != depth:
            raise ValueError(
                f"parent_indices must have shape (B, {depth}), "
                f"got {parent_indices.shape}"
            )
        pool = parent_indices.shape[0]
        if parent_pds.shape != (pool,):
            raise ValueError(
                f"parent_pds must have shape ({pool},), got {parent_pds.shape}"
            )
        row = self._rows[level]  # levels k+1 .. M-1 (ascending j)
        if depth:
            # Path position i holds level M-1-i; row index j-(k+1) needs
            # level j ascending -> reverse the path columns.
            symbols = self.constellation.points[parent_indices[:, ::-1]]  # (B, m)
            shared = symbols @ row  # GEMM: (B, m) @ (m,) per pool -> (B,)
            self.gemm_flops += FLOPS_PER_CMAC * pool * depth
        else:
            shared = np.zeros(pool, dtype=np.complex128)
        self.gemm_calls += 1
        # NORM step: broadcast over the P children.
        error = self.ybar[level] - shared[:, None] - self._diag_points[level][None, :]
        increments = error.real**2 + error.imag**2
        self.norm_flops += FLOPS_PER_NORM * pool * self.order
        return parent_pds[:, None] + increments

    def leaf_metric(self, indices_by_level: np.ndarray) -> float:
        """Full reduced-domain metric ``||ybar - R s||^2`` of one leaf.

        ``indices_by_level[k]`` is the point index assigned at level ``k``
        (ascending level order).
        """
        indices_by_level = np.asarray(indices_by_level)
        if indices_by_level.shape != (self.n_tx,):
            raise ValueError(
                f"indices_by_level must have shape ({self.n_tx},), "
                f"got {indices_by_level.shape}"
            )
        s = self.constellation.points[indices_by_level]
        residual = self.ybar - self.r @ s
        return float(np.real(np.vdot(residual, residual)))
