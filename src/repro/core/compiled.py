"""Compiled traversal engine: the pop/expand/prune loop as nopython kernels.

The NumPy :class:`~repro.core.traversal.TraversalEngine` spends most of
its wall time in Python bookkeeping between GEMMs — ``repro-sd profile``
attributes the bulk of self-time to the expand loop, not the arithmetic.
This module moves the whole per-search loop (heap/stack scheduling,
child PD evaluation, radius pruning, bulk admission, leaf acceptance)
into two fused Numba ``nopython`` kernels operating directly on flat
structure-of-arrays state mirroring the
:class:`~repro.core.nodepool.NodePool` layout (``pd``/``level``/``path``
row arrays) plus the :class:`~repro.core.gemm.ChannelKernel` per-level
``diag_points``/``rows`` tables:

:func:`_best_first_kernel`
    Best-first heap pop with same-level pooling (Alg. 1), exactly the
    schedule of :class:`~repro.core.traversal.BestFirstPolicy`.
:func:`_dfs_kernel`
    LIFO stack with PD-sorted (or natural) child insertion, exactly the
    schedule of :class:`~repro.core.traversal.DfsPolicy`.

Both kernels cover the ℓ₂ (add-accumulate) and ℓ∞ (max-accumulate)
partial-distance metrics and run one *search* (one radius attempt); the
radius-escalation schedule, Babai fallback and all tracer spans stay in
Python in :class:`CompiledTraversalEngine`, mirroring
``_PooledTreePolicy.solve_gen`` statement for statement.

Bit-identity contract
---------------------
Every arithmetic expression reproduces the NumPy engine's operations in
the same order (the golden-decode suite replays both engines against
the same recorded outputs):

* The interference accumulation matches ``np.einsum("bm,m->b", ...)``:
  a zero-initialised complex accumulator summed in ascending row order.
* The error term uses the same two sequential subtractions
  (``(ybar_k - shared) - diag_point``) for ``depth > 0`` and the single
  subtraction for root expansions, exactly as
  :meth:`~repro.core.gemm.GemmEvaluator.expand_unchecked`.
* The heap orders entries by ``(pd, row)`` with unique rows — a strict
  total order — so any correct binary min-heap pops in the identical
  sequence regardless of internal layout.
* ``"sorted"`` child ordering is a stable insertion sort, the same
  permutation as ``np.argsort(kind="stable")``.

Counter reconstruction
----------------------
The kernels do not touch :class:`~repro.core.stats.DecodeStats` (a
Python object) on the hot path. Instead they return flat recordings —
per-expansion ``(level, pool)`` pairs, radius improvements, per-level
prune counts — from which :meth:`CompiledTraversalEngine` rebuilds all
nine counters, the :class:`~repro.core.stats.BatchEvent` trace, the
radius trace and the :class:`~repro.core.traversal.LevelAccumulator`
rows *exactly* (same totals, same event order). The only telemetry the
compiled engine does not produce is the sampled ``sd.batch`` tracer
*marks* (timeline samples, not counters); all counters and metrics stay
exact.

Timing semantics (``DecodeStats.gemm_time_s``)
----------------------------------------------
Under the compiled engine the GEMM and the search bookkeeping are fused
into one kernel, so ``gemm_time_s`` times the whole jitted region (the
kernel call), excluding first-call compilation (:func:`warmup_kernels`
runs before any timed region). ``host_overhead_s`` is then the Python
shell around the kernels — radius scheduling, counter reconstruction —
which keeps ``repro-sd profile diff`` attribution meaningful across
engines: the compiled engine's win shows up precisely as host overhead
collapsing.

Numba is optional (``pip install .[compiled]``). When it is absent the
kernels remain plain Python functions; :func:`compiled_available`
reports whether the compiled engine may be selected, and
:func:`resolve_engine` degrades ``"compiled"`` to ``"numpy"`` with a
single :class:`RuntimeWarning`. Setting the environment variable
``REPRO_COMPILED_INTERPRET=1`` opts in to running the kernels *without*
Numba (pure-Python execution of the same code) — far slower than the
NumPy engine, but bit-identical to the jitted path, which is how the
test suite exercises the compiled code on hosts without Numba.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from time import perf_counter

import numpy as np

from repro.core.gemm import FLOPS_PER_CMAC, ChannelKernel
from repro.core.radius import babai_point
from repro.core.stats import BatchEvent
from repro.core.traversal import BestFirstPolicy, DfsPolicy, TraversalEngine
from repro.obs.tracer import NULL_TRACER
from repro.util.validation import check_in, check_vector

__all__ = [
    "ENGINES",
    "INTERPRET_ENV",
    "NUMBA_AVAILABLE",
    "CompiledTraversalEngine",
    "compiled_available",
    "default_engine",
    "interpreted_kernels_requested",
    "jit_active",
    "require_compiled",
    "reset_fallback_warning",
    "resolve_engine",
    "use_engine",
    "warmup_kernels",
]

#: Selectable traversal engines (the ``engine`` axis).
ENGINES = ("numpy", "compiled")

#: Environment variable opting in to interpreted kernel execution when
#: Numba is absent (test/debug aid; see module docstring).
INTERPRET_ENV = "REPRO_COMPILED_INTERPRET"

try:  # pragma: no cover - exercised via both CI legs
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the no-numba leg
    _njit = None
    NUMBA_AVAILABLE = False


def _jit(func):
    """``numba.njit(cache=True)`` when available, identity otherwise.

    The kernels below are written in the nopython subset, so the exact
    same code runs jitted (Numba installed) or interpreted (the
    ``REPRO_COMPILED_INTERPRET`` opt-in) — one implementation, one
    bit-identity proof.
    """
    if NUMBA_AVAILABLE:
        return _njit(cache=True)(func)
    return func


def interpreted_kernels_requested() -> bool:
    """Whether ``REPRO_COMPILED_INTERPRET`` opts in to interpreted kernels."""
    return os.environ.get(INTERPRET_ENV, "") not in ("", "0")


def compiled_available() -> bool:
    """Whether the ``"compiled"`` engine may be selected on this host."""
    return NUMBA_AVAILABLE or interpreted_kernels_requested()


def jit_active() -> bool:
    """True when kernels actually run jitted (not interpreted)."""
    return NUMBA_AVAILABLE


def require_compiled() -> None:
    """Raise :class:`ValueError` unless the compiled engine is usable.

    The CLI maps this to its uniform exit-2 one-line error when
    ``--engine compiled`` is requested on a host without Numba.
    """
    if not compiled_available():
        raise ValueError(
            "engine 'compiled' requires Numba, which is not installed "
            "(pip install '.[compiled]'); the 'numpy' engine is always "
            "available"
        )


# ----------------------------------------------------------------------
# Engine selection: ambient default + per-call resolution
# ----------------------------------------------------------------------

_DEFAULT_ENGINE = "numpy"
_fallback_warned = False


def default_engine() -> str:
    """The ambient engine used when a detector does not name one."""
    return _DEFAULT_ENGINE


@contextmanager
def use_engine(name: str):
    """Temporarily set the ambient default engine (CLI ``--engine``).

    Detectors constructed with ``engine=None`` resolve the ambient
    default at :meth:`~repro.detectors.engine.EngineDetector.prepare` /
    solve time, so wrapping an experiment in ``use_engine("compiled")``
    switches every stock-configured detector inside it.
    """
    global _DEFAULT_ENGINE
    check_in(name, "engine", ENGINES)
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = name
    try:
        yield
    finally:
        _DEFAULT_ENGINE = previous


def reset_fallback_warning() -> None:
    """Re-arm the once-per-process compiled-unavailable warning (tests)."""
    global _fallback_warned
    _fallback_warned = False


def resolve_engine(name: str | None = None) -> str:
    """Resolve a requested engine name to the one that will actually run.

    ``None`` resolves to the ambient default (see :func:`use_engine`).
    Requesting ``"compiled"`` on a host where it is unavailable degrades
    gracefully to ``"numpy"`` with a single :class:`RuntimeWarning` per
    process — the NumPy engine is the reference, so results are
    identical, only slower. An unknown name raises.
    """
    global _fallback_warned
    if name is None:
        name = _DEFAULT_ENGINE
    check_in(name, "engine", ENGINES)
    if name == "compiled" and not compiled_available():
        if not _fallback_warned:
            _fallback_warned = True
            warnings.warn(
                "engine 'compiled' requested but Numba is not installed; "
                "falling back to the 'numpy' reference engine "
                "(pip install '.[compiled]')",
                RuntimeWarning,
                stacklevel=2,
            )
        return "numpy"
    return name


# ----------------------------------------------------------------------
# nopython helpers: growable arrays + array binary heap
# ----------------------------------------------------------------------


@_jit
def _grow_f64(arr, used, needed):
    cap = arr.shape[0]
    if needed <= cap:
        return arr
    while cap < needed:
        cap *= 2
    out = np.empty(cap, np.float64)
    out[:used] = arr[:used]
    return out


@_jit
def _grow_i64(arr, used, needed):
    cap = arr.shape[0]
    if needed <= cap:
        return arr
    while cap < needed:
        cap *= 2
    out = np.empty(cap, np.int64)
    out[:used] = arr[:used]
    return out


@_jit
def _grow_path(path, used, needed):
    cap = path.shape[0]
    if needed <= cap:
        return path
    while cap < needed:
        cap *= 2
    out = np.empty((cap, path.shape[1]), np.int64)
    out[:used] = path[:used]
    return out


@_jit
def _heap_push(heap_pd, heap_row, n, pd, row):
    """Sift a new ``(pd, row)`` entry up; caller increments the size."""
    i = n
    heap_pd[i] = pd
    heap_row[i] = row
    while i > 0:
        parent = (i - 1) >> 1
        ppd = heap_pd[parent]
        if pd < ppd or (pd == ppd and row < heap_row[parent]):
            heap_pd[i] = ppd
            heap_row[i] = heap_row[parent]
            heap_pd[parent] = pd
            heap_row[parent] = row
            i = parent
        else:
            break


@_jit
def _heap_remove_top(heap_pd, heap_row, n):
    """Remove the root of an ``n``-entry heap; caller decrements the size.

    ``(pd, row)`` keys are unique (rows are admission-ordered), so the
    pop sequence is the sorted order — identical to ``heapq`` on the
    equivalent tuples no matter the internal array layout.
    """
    last = n - 1
    pd = heap_pd[last]
    row = heap_row[last]
    i = 0
    while True:
        left = 2 * i + 1
        if left >= last:
            break
        child = left
        right = left + 1
        if right < last:
            lpd = heap_pd[left]
            rpd = heap_pd[right]
            if rpd < lpd or (rpd == lpd and heap_row[right] < heap_row[left]):
                child = right
        cpd = heap_pd[child]
        if cpd < pd or (cpd == pd and heap_row[child] < row):
            heap_pd[i] = cpd
            heap_row[i] = heap_row[child]
            i = child
        else:
            break
    heap_pd[i] = pd
    heap_row[i] = row


# ----------------------------------------------------------------------
# Fused search kernels
# ----------------------------------------------------------------------


@_jit
def _best_first_kernel(
    points, diag, rmat, ybar, pool_size, bound0, use_linf, max_nodes,
    expanded_start,
):
    """One best-first search (one radius attempt), fully fused.

    Mirrors :meth:`BestFirstPolicy._search` + the evaluator's
    ``expand_unchecked`` + ``_accept_leaves`` bit for bit. Returns flat
    recordings for post-hoc counter reconstruction::

        (found, bound, best_leaf, batch_levels, batch_pools,
         radius_vals, nodes_pruned, leaves, max_list, trunc, acc_pruned)

    ``max_nodes < 0`` disables the node cap; ``expanded_start`` is the
    cumulative expansion count of earlier escalation rounds (the cap
    spans rounds).
    """
    n_tx = ybar.shape[0]
    order = points.shape[0]
    # SoA node pool (pd/level/path rows), exactly the NodePool layout.
    pool_pd = np.empty(256, np.float64)
    pool_level = np.empty(256, np.int64)
    pool_path = np.empty((256, n_tx), np.int64)
    pool_pd[0] = 0.0
    pool_level[0] = n_tx - 1
    pool_n = 1
    # Array binary heap of (pd, row) scalar pairs.
    heap_pd = np.empty(256, np.float64)
    heap_row = np.empty(256, np.int64)
    heap_pd[0] = 0.0
    heap_row[0] = 0
    heap_n = 1
    # Flat recordings for counter reconstruction.
    batch_levels = np.empty(256, np.int64)
    batch_pools = np.empty(256, np.int64)
    n_batches = 0
    radius_vals = np.empty(16, np.float64)
    n_radius = 0
    acc_pruned = np.zeros(n_tx, np.int64)
    rows_buf = np.empty(pool_size, np.int64)
    child_buf = np.empty((pool_size, order), np.float64)
    best_leaf = np.zeros(n_tx, np.int64)
    found = 0
    bound = bound0
    nodes_pruned = 0
    leaves = 0
    max_list = 0
    trunc = 0
    expanded = expanded_start
    while heap_n > 0:
        if heap_pd[0] >= bound:
            break  # heap is PD-ordered: nothing left can improve
        rows_buf[0] = heap_row[0]
        _heap_remove_top(heap_pd, heap_row, heap_n)
        heap_n -= 1
        level = pool_level[rows_buf[0]]
        b = 1
        while (
            b < pool_size
            and heap_n > 0
            and pool_level[heap_row[0]] == level
            and heap_pd[0] < bound
        ):
            rows_buf[b] = heap_row[0]
            _heap_remove_top(heap_pd, heap_row, heap_n)
            heap_n -= 1
            b += 1
        depth = n_tx - 1 - level
        for i in range(b):
            row = rows_buf[i]
            parent_pd = pool_pd[row]
            if depth > 0:
                # einsum-order interference sum: zero start, ascending m.
                acc = 0.0 + 0.0j
                for j in range(depth):
                    acc = acc + (
                        points[pool_path[row, depth - 1 - j]]
                        * rmat[level, level + 1 + j]
                    )
                u = ybar[level] - acc
            else:
                u = ybar[level]
            if use_linf != 0:
                for c in range(order):
                    e = u - diag[level, c]
                    re = abs(e.real)
                    im = abs(e.imag)
                    inc = re if re > im else im
                    child_buf[i, c] = parent_pd if parent_pd > inc else inc
            else:
                for c in range(order):
                    e = u - diag[level, c]
                    er = e.real
                    ei = e.imag
                    child_buf[i, c] = parent_pd + (er * er + ei * ei)
        batch_levels = _grow_i64(batch_levels, n_batches, n_batches + 1)
        batch_pools = _grow_i64(batch_pools, n_batches, n_batches + 1)
        batch_levels[n_batches] = level
        batch_pools[n_batches] = b
        n_batches += 1
        expanded += b
        if level == 0:
            n_in = 0
            for i in range(b):
                for c in range(order):
                    if child_buf[i, c] < bound:
                        n_in += 1
            leaves += n_in
            nodes_pruned += b * order - n_in
            acc_pruned[0] += b * order - n_in
            # Row-major strict-< scan == np.argmin first occurrence.
            best_v = child_buf[0, 0]
            best_i = 0
            best_c = 0
            for i in range(b):
                for c in range(order):
                    if child_buf[i, c] < best_v:
                        best_v = child_buf[i, c]
                        best_i = i
                        best_c = c
            if best_v < bound:
                bound = best_v
                rr = rows_buf[best_i]
                best_leaf[0] = best_c
                for j in range(1, n_tx):
                    best_leaf[j] = pool_path[rr, n_tx - 1 - j]
                found = 1
                radius_vals = _grow_f64(radius_vals, n_radius, n_radius + 1)
                radius_vals[n_radius] = bound
                n_radius += 1
        else:
            admitted = 0
            for i in range(b):
                row = rows_buf[i]
                for c in range(order):
                    v = child_buf[i, c]
                    if v < bound:
                        pool_pd = _grow_f64(pool_pd, pool_n, pool_n + 1)
                        pool_level = _grow_i64(pool_level, pool_n, pool_n + 1)
                        pool_path = _grow_path(pool_path, pool_n, pool_n + 1)
                        new_row = pool_n
                        for j in range(depth):
                            pool_path[new_row, j] = pool_path[row, j]
                        pool_path[new_row, depth] = c
                        pool_pd[new_row] = v
                        pool_level[new_row] = level - 1
                        pool_n += 1
                        heap_pd = _grow_f64(heap_pd, heap_n, heap_n + 1)
                        heap_row = _grow_i64(heap_row, heap_n, heap_n + 1)
                        _heap_push(heap_pd, heap_row, heap_n, v, new_row)
                        heap_n += 1
                        admitted += 1
            nodes_pruned += b * order - admitted
            acc_pruned[level] += b * order - admitted
            if heap_n > max_list:
                max_list = heap_n
        if max_nodes >= 0 and expanded >= max_nodes:
            trunc = 1
            break
    return (
        found,
        bound,
        best_leaf,
        batch_levels[:n_batches].copy(),
        batch_pools[:n_batches].copy(),
        radius_vals[:n_radius].copy(),
        nodes_pruned,
        leaves,
        max_list,
        trunc,
        acc_pruned,
    )


@_jit
def _dfs_kernel(
    points, diag, rmat, ybar, natural_order, bound0, use_linf, max_nodes,
    expanded_start,
):
    """One DFS search (one radius attempt), fully fused.

    Mirrors :meth:`DfsPolicy._search`: LIFO pops with pop-time pruning,
    stable-sorted (or natural) child enumeration, worst-first pushes so
    the best child tops the stack. Same return layout as
    :func:`_best_first_kernel`; per-level prune attribution follows the
    conventions ``DfsPolicy._fold_levels`` reconstructs (admission
    prunes at the expanding level, pop prunes at the popped node's own
    level, leaf prunes at level 0).
    """
    n_tx = ybar.shape[0]
    order = points.shape[0]
    pool_pd = np.empty(256, np.float64)
    pool_level = np.empty(256, np.int64)
    pool_path = np.empty((256, n_tx), np.int64)
    pool_pd[0] = 0.0
    pool_level[0] = n_tx - 1
    pool_n = 1
    stack_pd = np.empty(256, np.float64)
    stack_row = np.empty(256, np.int64)
    stack_pd[0] = 0.0
    stack_row[0] = 0
    stack_n = 1
    batch_levels = np.empty(256, np.int64)
    batch_pools = np.empty(256, np.int64)
    n_batches = 0
    radius_vals = np.empty(16, np.float64)
    n_radius = 0
    acc_pruned = np.zeros(n_tx, np.int64)
    child = np.empty(order, np.float64)
    order_buf = np.empty(order, np.int64)
    best_leaf = np.zeros(n_tx, np.int64)
    found = 0
    bound = bound0
    nodes_pruned = 0
    leaves = 0
    max_list = 0
    trunc = 0
    expanded = expanded_start
    while stack_n > 0:
        stack_n -= 1
        node_pd = stack_pd[stack_n]
        row = stack_row[stack_n]
        if node_pd >= bound:
            # Admitted inside an older, looser sphere — prune on pop.
            nodes_pruned += 1
            acc_pruned[pool_level[row]] += 1
            continue
        level = pool_level[row]
        depth = n_tx - 1 - level
        parent_pd = pool_pd[row]
        if depth > 0:
            acc = 0.0 + 0.0j
            for j in range(depth):
                acc = acc + (
                    points[pool_path[row, depth - 1 - j]]
                    * rmat[level, level + 1 + j]
                )
            u = ybar[level] - acc
        else:
            u = ybar[level]
        if use_linf != 0:
            for c in range(order):
                e = u - diag[level, c]
                re = abs(e.real)
                im = abs(e.imag)
                inc = re if re > im else im
                child[c] = parent_pd if parent_pd > inc else inc
        else:
            for c in range(order):
                e = u - diag[level, c]
                er = e.real
                ei = e.imag
                child[c] = parent_pd + (er * er + ei * ei)
        batch_levels = _grow_i64(batch_levels, n_batches, n_batches + 1)
        batch_pools = _grow_i64(batch_pools, n_batches, n_batches + 1)
        batch_levels[n_batches] = level
        batch_pools[n_batches] = 1
        n_batches += 1
        expanded += 1
        if level == 0:
            n_in = 0
            for c in range(order):
                if child[c] < bound:
                    n_in += 1
            leaves += n_in
            nodes_pruned += order - n_in
            acc_pruned[0] += order - n_in
            best_v = child[0]
            best_c = 0
            for c in range(order):
                if child[c] < best_v:
                    best_v = child[c]
                    best_c = c
            if best_v < bound:
                bound = best_v
                best_leaf[0] = best_c
                for j in range(1, n_tx):
                    best_leaf[j] = pool_path[row, n_tx - 1 - j]
                found = 1
                radius_vals = _grow_f64(radius_vals, n_radius, n_radius + 1)
                radius_vals[n_radius] = bound
                n_radius += 1
        else:
            if natural_order != 0:
                for t in range(order):
                    order_buf[t] = t
            else:
                # Stable insertion sort (strict-> shift) == the
                # np.argsort(kind="stable") permutation.
                for t in range(order):
                    order_buf[t] = t
                for t in range(1, order):
                    key_i = order_buf[t]
                    key_v = child[key_i]
                    s = t - 1
                    while s >= 0 and child[order_buf[s]] > key_v:
                        order_buf[s + 1] = order_buf[s]
                        s -= 1
                    order_buf[s + 1] = key_i
            # Push worst-first (reversed enumeration order, admission-
            # filtered) so the best child tops the LIFO.
            admitted = 0
            for t in range(order - 1, -1, -1):
                c = order_buf[t]
                v = child[c]
                if v < bound:
                    pool_pd = _grow_f64(pool_pd, pool_n, pool_n + 1)
                    pool_level = _grow_i64(pool_level, pool_n, pool_n + 1)
                    pool_path = _grow_path(pool_path, pool_n, pool_n + 1)
                    new_row = pool_n
                    for j in range(depth):
                        pool_path[new_row, j] = pool_path[row, j]
                    pool_path[new_row, depth] = c
                    pool_pd[new_row] = v
                    pool_level[new_row] = level - 1
                    pool_n += 1
                    stack_pd = _grow_f64(stack_pd, stack_n, stack_n + 1)
                    stack_row = _grow_i64(stack_row, stack_n, stack_n + 1)
                    stack_pd[stack_n] = v
                    stack_row[stack_n] = new_row
                    stack_n += 1
                    admitted += 1
            nodes_pruned += order - admitted
            acc_pruned[level] += order - admitted
            if stack_n > max_list:
                max_list = stack_n
        if max_nodes >= 0 and expanded >= max_nodes:
            trunc = 1
            break
    return (
        found,
        bound,
        best_leaf,
        batch_levels[:n_batches].copy(),
        batch_pools[:n_batches].copy(),
        radius_vals[:n_radius].copy(),
        nodes_pruned,
        leaves,
        max_list,
        trunc,
        acc_pruned,
    )


# ----------------------------------------------------------------------
# Warmup (first-call compilation, excluded from timed regions)
# ----------------------------------------------------------------------

_warmed = False


def warmup_kernels() -> None:
    """Compile both search kernels on a tiny problem (idempotent).

    Called from :meth:`EngineDetector.prepare` and before the first
    timed kernel invocation so JIT compilation never lands inside
    ``gemm_time_s`` or a benchmark measurement. A no-op without Numba
    (nothing to compile) beyond a single flag check.
    """
    global _warmed
    if _warmed:
        return
    _warmed = True
    if not NUMBA_AVAILABLE:
        return
    points = np.array([-1.0 + 0.0j, 1.0 + 0.0j])
    rmat = np.eye(2, dtype=np.complex128)
    diag = np.empty((2, 2), dtype=np.complex128)
    for k in range(2):
        diag[k] = rmat[k, k] * points
    ybar = np.zeros(2, dtype=np.complex128)
    for linf in (0, 1):
        _best_first_kernel(points, diag, rmat, ybar, 8, np.inf, linf, -1, 0)
        _dfs_kernel(points, diag, rmat, ybar, 0, np.inf, linf, -1, 0)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


class _CompiledBatchBackend:
    """Backend facade returned by the compiled ``solve_batch``.

    The compiled engine decodes batch frames sequentially (each frame's
    whole search is one fused kernel; there is no cross-frame GEMM to
    fuse), so ``fused_gemm_calls`` reports the summed per-frame kernel
    batch count — the per-frame ``DecodeStats`` stay bit-identical to
    per-frame :meth:`solve`.
    """

    def __init__(self, fused_gemm_calls: int) -> None:
        self.fused_gemm_calls = fused_gemm_calls


class CompiledTraversalEngine(TraversalEngine):
    """Drop-in :class:`TraversalEngine` running fused nopython searches.

    The pooled policies (:class:`BestFirstPolicy`, :class:`DfsPolicy`)
    under the ℓ₂/ℓ∞ metrics run through :func:`_best_first_kernel` /
    :func:`_dfs_kernel`; everything else — the level-synchronous sweep
    policies (BFS/K-best/FSD), custom metrics, explicit backends —
    delegates to the inherited NumPy path, whose per-level frontier
    sweeps are already vectorised GEMMs with negligible per-node Python
    work (the honest JIT boundary: only the interpreter-bound loop is
    compiled). Selection flows through
    :func:`repro.core.traversal.build_engine`; detectors never
    instantiate this class directly.
    """

    def _fused_policy(self):
        """The policy when this solve can run fused, else ``None``.

        Exact-type checks: a subclass overriding ``_search`` must fall
        back to the reference generator it customised.
        """
        policy = self.policy
        if type(policy) is not BestFirstPolicy and type(policy) is not DfsPolicy:
            return None
        if self.metric.name not in ("l2", "linf"):
            return None
        return policy

    def solve(self, r, ybar, noise_var, stats, tracer, backend=None, *, kernel=None):
        policy = self._fused_policy()
        if policy is None or backend is not None:
            return super().solve(
                r, ybar, noise_var, stats, tracer, backend, kernel=kernel
            )
        return self._solve_fused(policy, r, ybar, noise_var, stats, tracer, kernel)

    def solve_batch(self, r, ybars, noise_var, stats_list, backend=None, *, kernel=None):
        policy = self._fused_policy()
        if policy is None or backend is not None:
            return super().solve_batch(
                r, ybars, noise_var, stats_list, backend, kernel=kernel
            )
        # Sequential per-frame fused solves: bit-identical to per-frame
        # ``solve`` (the documented decode_batch contract), each frame's
        # kernel time attributed to its own stats (no even split needed).
        outcomes = [
            self._solve_fused(
                policy, r, ybars[f], noise_var, stats_list[f], NULL_TRACER,
                kernel,
            )
            for f in range(ybars.shape[0])
        ]
        backend = _CompiledBatchBackend(
            sum(st.gemm_calls for st in stats_list)
        )
        return outcomes, backend

    # ------------------------------------------------------------------

    def _solve_fused(self, policy, r, ybar, noise_var, stats, tracer, kernel):
        """The radius-escalation shell around one frame's fused searches.

        Mirrors ``_PooledTreePolicy.solve_gen`` statement for statement
        (same spans, same escalation/truncation/Babai-fallback logic),
        with each ``sd.search`` round executed by one kernel call.
        """
        if kernel is None:
            kernel = ChannelKernel(r, self.constellation, metric=self.metric)
        n_tx = kernel.n_tx
        ybar_c = check_vector(ybar, "ybar", length=n_tx).astype(np.complex128)
        points = kernel.constellation.points
        diag = kernel.diag_points
        rmat = kernel.r
        order = kernel.constellation.order
        use_linf = 1 if self.metric.name == "linf" else 0
        max_nodes = -1 if policy.max_nodes is None else int(policy.max_nodes)
        is_bf = type(policy) is BestFirstPolicy
        pool_size = policy.pool_size if is_bf else 1
        natural = 0 if is_bf or policy.child_ordering == "sorted" else 1
        acc = self.level_acc
        if acc is not None:
            acc.ensure(n_tx)
        self.expand_hook = None
        warmup_kernels()
        with tracer.span("sd.solve", strategy=policy.strategy, n_tx=n_tx):
            init = self.radius_policy.initial(
                r, ybar, self.constellation, float(noise_var),
                metric=self.metric,
            )
            bound = float(init.radius_sq)
            incumbent = init.incumbent_indices
            stats.radius_trace.append(bound)
            while True:
                with tracer.span("sd.search", bound=bound):
                    t0 = perf_counter()
                    if is_bf:
                        out = _best_first_kernel(
                            points, diag, rmat, ybar_c, pool_size, bound,
                            use_linf, max_nodes, stats.nodes_expanded,
                        )
                    else:
                        out = _dfs_kernel(
                            points, diag, rmat, ybar_c, natural, bound,
                            use_linf, max_nodes, stats.nodes_expanded,
                        )
                    stats.gemm_time_s += perf_counter() - t0
                    found, bound, incumbent = self._fold_kernel_stats(
                        out, stats, acc, n_tx, order, incumbent
                    )
                if incumbent is not None or not self.radius_policy.can_escalate():
                    break
                if stats.truncated:
                    break
                bound *= self.radius_policy.escalation_factor
                stats.radius_trace.append(bound)
            if incumbent is None:
                incumbent, bound = babai_point(
                    r, ybar, self.constellation, metric=self.metric
                )
                stats.truncated = max(stats.truncated, 1)
        return np.asarray(incumbent), float(bound)

    def _fold_kernel_stats(self, out, stats, acc, n_tx, order, incumbent):
        """Reconstruct counters/trace/accumulator from kernel recordings.

        Applies the exact per-expansion formulas of
        ``_PooledTreePolicy._account_expansion`` vectorised over the
        recorded ``(level, pool)`` pairs, so every ``DecodeStats`` field
        and ``LevelAccumulator`` row matches the NumPy engine bit for
        bit.
        """
        (
            found, bound, best_leaf, b_levels, b_pools, r_vals,
            n_pruned, n_leaves, max_list, trunc, acc_pruned,
        ) = out
        n_exp = int(b_pools.sum()) if b_pools.size else 0
        stats.nodes_expanded += n_exp
        stats.nodes_generated += n_exp * order
        stats.gemm_calls += int(b_pools.size)
        if b_pools.size:
            depths = (n_tx - 1) - b_levels
            stats.gemm_flops += FLOPS_PER_CMAC * int((b_pools * depths).sum())
        stats.gemm_flops += self.metric.flops_per_norm * n_exp * order
        stats.nodes_pruned += int(n_pruned)
        stats.leaves_reached += int(n_leaves)
        stats.radius_updates += int(r_vals.size)
        if r_vals.size:
            stats.radius_trace.extend(float(v) for v in r_vals)
        stats.max_list_size = max(stats.max_list_size, int(max_list))
        stats.truncated += int(trunc)
        if self.record_trace and b_pools.size:
            stats.batches.extend(
                BatchEvent(level=lv, pool_size=b)
                for lv, b in zip(b_levels.tolist(), b_pools.tolist())
            )
        if acc is not None:
            exps_lv = np.bincount(b_levels, minlength=n_tx)
            nodes_lv = np.bincount(b_levels, weights=b_pools, minlength=n_tx)
            a_nodes, a_exps, a_pruned = acc.nodes, acc.exps, acc.pruned
            for lv in range(n_tx):
                if exps_lv[lv]:
                    a_nodes[lv] += int(nodes_lv[lv])
                    a_exps[lv] += int(exps_lv[lv])
                if acc_pruned[lv]:
                    a_pruned[lv] += int(acc_pruned[lv])
        if found:
            incumbent = np.asarray(best_leaf).copy()
        return bool(found), float(bound), incumbent
