"""GEMM-based sphere decoder with Best-First / sorted-DFS traversal.

This is the algorithm of the paper (Alg. 1 + section III): the SD search
tree is explored leaf-first — either globally best-first (a priority
queue on partial distance, the Geosphere-inspired strategy the paper
adopts) or depth-first with per-level PD-sorted child insertion (the LIFO
list of Fig. 3) — while node evaluation is batched into matrix-matrix
products (:class:`~repro.core.gemm.GemmEvaluator`, the compute-bound
refactor of Arfaoui et al.).

Exactness
---------
Partial distances are sums of non-negative terms, so PD never decreases
along a path. With an infinite initial radius (or a Babai-seeded
incumbent) the search is exact maximum likelihood:

* Best-FS pops nodes in ascending PD; once the best frontier PD reaches
  the incumbent metric no unexplored leaf can beat it — terminate.
* Sorted-DFS only discards nodes whose PD already meets/exceeds the
  incumbent metric, which no descendant leaf can undercut.

Both facts are property-tested against brute force in
``tests/test_sphere_decoder_exactness.py``.

Instrumentation
---------------
Every expansion appends a :class:`~repro.detectors.base.BatchEvent` to
the decode's :class:`~repro.detectors.base.DecodeStats`. The FPGA
pipeline simulator replays those events through its module cycle models;
the CPU/GPU models consume the aggregate counters.

When an ambient :class:`repro.obs.Tracer` is installed
(:func:`repro.obs.use_tracer`), each decode additionally emits nested
spans (``sd.detect`` > ``sd.solve`` > ``sd.search``), one ``sd.batch``
instant per GEMM-batched expansion and node/GEMM counters. With no
tracer installed the hot path pays one attribute read and a boolean
check per batch — see ``docs/observability.md``.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.enumeration import CHILD_ORDERS, child_order
from repro.core.gemm import (
    FLOPS_PER_CMAC,
    FLOPS_PER_NORM,
    BatchedGemmEvaluator,
    GemmEvaluator,
)
from repro.core.lockstep import ExpandRequest, drive_lockstep, drive_serial
from repro.core.radius import BabaiRadius, RadiusPolicy, babai_point
from repro.core.tree import SearchNode, path_to_level_indices, root_node
from repro.detectors.base import BatchEvent, DecodeStats, DetectionResult, Detector
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import (
    QRResult,
    effective_receive,
    qr_decompose,
    sorted_qr,
)
from repro.obs.log import get_logger
from repro.obs.tracer import NULL_TRACER, current_tracer
from repro.util.timing import Timer
from repro.util.validation import check_in, check_matrix, check_positive_int, check_vector

STRATEGIES = ("best-first", "dfs")
ORDERINGS = ("natural", "sqrd")

_log = get_logger(__name__)


class SphereDecoder(Detector):
    """The paper's GEMM-based leaf-first sphere decoder.

    Parameters
    ----------
    constellation:
        Symbol alphabet (4-QAM / 16-QAM in the paper's evaluation).
    strategy:
        ``"best-first"`` (global priority queue; default) or ``"dfs"``
        (LIFO with PD-sorted child insertion, Fig. 3). Both are exact.
    radius_policy:
        Initial-radius strategy; defaults to :class:`BabaiRadius`
        (exact, never erases, tight pruning).
    ordering:
        Column ordering for the QR step: ``"natural"`` (plain QR, as the
        paper) or ``"sqrd"`` (sorted QR, an ablation that tightens
        pruning further).
    pool_size:
        Best-FS only: up to this many same-level frontier nodes are
        popped together and evaluated in one GEMM batch. 1 recovers pure
        best-first; larger pools trade a little search discipline for
        bigger (more FPGA/GPU-friendly) GEMMs. Never affects exactness —
        only nodes already inside the sphere are pooled.
    child_ordering:
        ``"sorted"`` (Best-FS/Geosphere behaviour) or ``"natural"``; only
        observable under ``"dfs"``, where it fixes the stack push order.
    max_nodes:
        Optional safety cap on expanded nodes; when hit, the best
        incumbent so far is returned and ``stats.truncated`` is set.
    record_trace:
        Keep the per-expansion :class:`BatchEvent` list in the stats.
    """

    name = "sphere-gemm"

    def __init__(
        self,
        constellation: Constellation,
        *,
        strategy: str = "best-first",
        radius_policy: RadiusPolicy | None = None,
        ordering: str = "natural",
        pool_size: int = 8,
        child_ordering: str = "sorted",
        max_nodes: int | None = None,
        record_trace: bool = True,
    ) -> None:
        self.constellation = constellation
        self.strategy = check_in(strategy, "strategy", STRATEGIES)
        self.radius_policy = radius_policy or BabaiRadius()
        self.ordering = check_in(ordering, "ordering", ORDERINGS)
        self.pool_size = check_positive_int(pool_size, "pool_size")
        self.child_ordering = check_in(
            child_ordering, "child_ordering", CHILD_ORDERS
        )
        self.max_nodes = (
            None if max_nodes is None else check_positive_int(max_nodes, "max_nodes")
        )
        self.record_trace = record_trace
        self._qr: QRResult | None = None
        self._channel: np.ndarray | None = None
        self._noise_var = 0.0
        self._prepared = False
        # Ambient tracer snapshot for the decode in flight; refreshed by
        # solve() so the per-batch hot path pays only an attribute read.
        self._tracer = NULL_TRACER

    # ------------------------------------------------------------------
    # Detector protocol
    # ------------------------------------------------------------------

    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        channel = check_matrix(channel, "channel")
        if noise_var < 0:
            raise ValueError(f"noise_var must be non-negative, got {noise_var}")
        self._channel = channel
        self._qr = sorted_qr(channel) if self.ordering == "sqrd" else qr_decompose(channel)
        self._noise_var = float(noise_var)
        self._prepared = True

    def detect(self, received: np.ndarray) -> DetectionResult:
        self._require_prepared()
        received = check_vector(
            received, "received", length=self._channel.shape[0]
        )
        tracer = current_tracer()
        timer = Timer()
        with tracer.span("sd.detect", detector=self.name, strategy=self.strategy):
            with timer:
                ybar = effective_receive(self._qr, received)
                incumbent, _bound, stats = self.solve(
                    self._qr.r, ybar, self._noise_var
                )
        stats.wall_time_s = timer.elapsed
        # ``incumbent`` is indexed by tree level == factorised column;
        # map back to the original antenna order.
        indices = self._qr.unpermute(incumbent)
        symbols = self.constellation.map_indices(indices)
        bits = self.constellation.indices_to_bits(indices)
        residual = received - self._channel @ symbols
        metric = float(np.real(np.vdot(residual, residual)))
        return DetectionResult(
            indices=indices,
            symbols=symbols,
            bits=bits,
            metric=metric,
            stats=stats,
        )

    def solve(
        self,
        r: np.ndarray,
        ybar: np.ndarray,
        noise_var: float = 0.0,
    ) -> tuple[np.ndarray, float, DecodeStats]:
        """Decode a pre-triangularised system ``min ||ybar - R s||^2``.

        Lower-level entry point than :meth:`detect`: no QR, no
        permutation handling — useful when the caller owns the
        preprocessing (e.g. the reduced-precision ablation quantises R
        and ybar itself).

        Returns ``(indices_by_level, reduced_metric, stats)`` where
        ``indices_by_level[k]`` is the constellation index of level ``k``.
        """
        stats = DecodeStats()
        tracer = self._tracer = current_tracer()
        evaluator = GemmEvaluator(r, ybar, self.constellation)
        incumbent, bound = drive_serial(
            self._solve_gen(r, ybar, noise_var, stats, tracer), evaluator
        )
        if tracer.enabled:
            tracer.count("sd.nodes_expanded", stats.nodes_expanded)
            tracer.count("sd.nodes_generated", stats.nodes_generated)
            tracer.count("sd.nodes_pruned", stats.nodes_pruned)
            tracer.count("sd.leaves_reached", stats.leaves_reached)
            tracer.count("sd.gemm_calls", stats.gemm_calls)
            tracer.count("sd.gemm_flops", stats.gemm_flops)
        return incumbent, bound, stats

    def decode_batch(self, received: np.ndarray) -> list[DetectionResult]:
        """Decode ``B`` received vectors with cross-frame fused GEMMs.

        All rows are decoded against the *prepared* channel (the
        block-fading assumption), so every frame shares the triangular
        factor and their same-level node pools stack into single
        :class:`~repro.core.gemm.BatchedGemmEvaluator` calls — the
        paper's BLAS-2 -> BLAS-3 refactor applied across frames. Each
        frame's search runs its own unmodified schedule in lockstep
        (:func:`~repro.core.lockstep.drive_lockstep`), so the returned
        decisions, metrics and per-frame search statistics are
        **bit-identical** to calling :meth:`detect` per row; only
        ``wall_time_s`` differs (the batch's wall time split evenly, as
        per-frame timing is not separable inside a fused GEMM).
        """
        self._require_prepared()
        received = np.asarray(received)
        if received.ndim != 2 or received.shape[1] != self._channel.shape[0]:
            raise ValueError(
                f"received must have shape (B, {self._channel.shape[0]}), "
                f"got {received.shape}"
            )
        if received.shape[0] == 0:
            return []
        n_frames = received.shape[0]
        tracer = current_tracer()
        timer = Timer()
        stats_list = [DecodeStats() for _ in range(n_frames)]
        with tracer.span(
            "sd.decode_batch", detector=self.name, frames=n_frames
        ):
            with timer:
                ybars = np.stack(
                    [effective_receive(self._qr, row) for row in received]
                )
                evaluator = BatchedGemmEvaluator(
                    self._qr.r, ybars, self.constellation
                )
                # Interleaved generators must not open nested spans (the
                # span stack is per-context, not per-frame) — run quiet.
                self._tracer = NULL_TRACER
                searches = [
                    self._solve_gen(
                        self._qr.r,
                        ybars[f],
                        self._noise_var,
                        stats_list[f],
                        NULL_TRACER,
                    )
                    for f in range(n_frames)
                ]
                outcomes = drive_lockstep(searches, evaluator)
        if tracer.enabled:
            tracer.count("sd.batch.frames", n_frames)
            tracer.count("sd.batch.fused_gemm_calls", evaluator.fused_gemm_calls)
            tracer.count(
                "sd.batch.frame_gemm_calls",
                sum(st.gemm_calls for st in stats_list),
            )
        results: list[DetectionResult] = []
        per_frame_s = timer.elapsed / n_frames
        for f in range(n_frames):
            incumbent, _bound = outcomes[f]
            stats = stats_list[f]
            stats.wall_time_s = per_frame_s
            indices = self._qr.unpermute(incumbent)
            symbols = self.constellation.map_indices(indices)
            bits = self.constellation.indices_to_bits(indices)
            residual = received[f] - self._channel @ symbols
            metric = float(np.real(np.vdot(residual, residual)))
            results.append(
                DetectionResult(
                    indices=indices,
                    symbols=symbols,
                    bits=bits,
                    metric=metric,
                    stats=stats,
                )
            )
        return results

    # ------------------------------------------------------------------
    # Search internals (generators — see repro.core.lockstep)
    # ------------------------------------------------------------------

    def _solve_gen(self, r, ybar, noise_var, stats, tracer):
        """Search generator for one frame's full solve.

        Yields :class:`~repro.core.lockstep.ExpandRequest`s and returns
        ``(indices_by_level, reduced_metric)``; the caller chooses the
        evaluator (serial or cross-frame fused). ``tracer`` scopes the
        ``sd.solve``/``sd.search`` spans — pass ``NULL_TRACER`` when
        several generators run interleaved (lockstep batching), where
        spans opened across yields of different frames would corrupt
        the nesting stack.
        """
        n_tx = int(r.shape[1])
        with tracer.span("sd.solve", strategy=self.strategy, n_tx=n_tx):
            init = self.radius_policy.initial(
                r, ybar, self.constellation, float(noise_var)
            )
            bound = float(init.radius_sq)
            incumbent = init.incumbent_indices
            stats.radius_trace.append(bound)
            while True:
                with tracer.span("sd.search", bound=bound):
                    incumbent, bound = yield from self._search(
                        n_tx, bound, incumbent, stats
                    )
                if incumbent is not None or not self.radius_policy.can_escalate():
                    break
                if stats.truncated:
                    # The search hit the node cap before finding any leaf —
                    # a larger radius can only make that worse; give up and
                    # fall back to the Babai point below.
                    break
                bound *= self.radius_policy.escalation_factor
                stats.radius_trace.append(bound)
            if incumbent is None:
                incumbent, bound = babai_point(r, ybar, self.constellation)
                stats.truncated = max(stats.truncated, 1)
                _log.debug(
                    "sphere empty after escalation; falling back to Babai "
                    "point (metric %.4g)",
                    bound,
                )
        return np.asarray(incumbent), float(bound)

    def _search(
        self,
        n_tx: int,
        bound: float,
        incumbent: np.ndarray | None,
        stats: DecodeStats,
    ):
        """One full tree exploration under the given initial bound.

        Generator (driven via ``yield from``); returns the best complete
        solution found (ascending-level indices) and its metric — or
        ``(incumbent, bound)`` unchanged when the sphere is empty.
        """
        if self.strategy == "best-first":
            return (
                yield from self._search_best_first(n_tx, bound, incumbent, stats)
            )
        return (yield from self._search_dfs(n_tx, bound, incumbent, stats))

    def _expand_pool(
        self,
        pool: list[SearchNode],
        n_tx: int,
        stats: DecodeStats,
    ):
        """Request evaluation of a same-level node pool (one GEMM).

        Generator: yields the :class:`ExpandRequest`, receives the
        ``(B, P)`` child PDs, accounts the work in ``stats`` with the
        exact FLOP formulas of :class:`GemmEvaluator`, and returns the
        child PDs — so per-frame counters match the serial evaluator's
        no matter which driver ran the GEMM.
        """
        level = pool[0].level
        depth = n_tx - 1 - level
        order = self.constellation.order
        parent_idx = np.fromiter(
            (i for node in pool for i in node.path),
            dtype=np.int64,
            count=len(pool) * depth,
        ).reshape(len(pool), depth)
        parent_pds = np.fromiter(
            (node.pd for node in pool), dtype=float, count=len(pool)
        )
        child_pds = yield ExpandRequest(level, parent_idx, parent_pds)
        stats.nodes_expanded += len(pool)
        stats.nodes_generated += len(pool) * order
        stats.gemm_calls += 1
        if depth:
            stats.gemm_flops += FLOPS_PER_CMAC * len(pool) * depth
        stats.gemm_flops += FLOPS_PER_NORM * len(pool) * order
        if self.record_trace:
            stats.batches.append(BatchEvent(level=level, pool_size=len(pool)))
        if self._tracer.enabled:
            self._tracer.instant("sd.batch", level=level, pool=len(pool))
        return child_pds

    def _accept_leaves(
        self,
        pool: list[SearchNode],
        child_pds: np.ndarray,
        bound: float,
        incumbent: np.ndarray | None,
        stats: DecodeStats,
        n_tx: int,
    ) -> tuple[np.ndarray | None, float]:
        """Fold a batch of leaf evaluations into the incumbent/bound."""
        in_sphere = child_pds < bound
        stats.leaves_reached += int(np.count_nonzero(in_sphere))
        stats.nodes_pruned += int(in_sphere.size - np.count_nonzero(in_sphere))
        flat = int(np.argmin(child_pds))
        n, c = divmod(flat, child_pds.shape[1])
        if child_pds[n, c] < bound:
            bound = float(child_pds[n, c])
            path = pool[n].path + (c,)
            incumbent = path_to_level_indices(path, n_tx)
            stats.radius_updates += 1
            stats.radius_trace.append(bound)
        return incumbent, bound

    def _search_best_first(
        self,
        n_tx: int,
        bound: float,
        incumbent: np.ndarray | None,
        stats: DecodeStats,
    ):
        seq = 1
        heap: list[SearchNode] = [root_node(n_tx)]
        while heap:
            if heap[0].pd >= bound:
                break  # heap is PD-ordered: nothing left can improve
            first = heapq.heappop(heap)
            pool = [first]
            while (
                len(pool) < self.pool_size
                and heap
                and heap[0].level == first.level
                and heap[0].pd < bound
            ):
                pool.append(heapq.heappop(heap))
            child_pds = yield from self._expand_pool(pool, n_tx, stats)
            if first.level == 0:
                incumbent, bound = self._accept_leaves(
                    pool, child_pds, bound, incumbent, stats, n_tx
                )
            else:
                mask = child_pds < bound
                stats.nodes_pruned += int(mask.size - np.count_nonzero(mask))
                next_level = first.level - 1
                for i, node in enumerate(pool):
                    for c in np.nonzero(mask[i])[0]:
                        heapq.heappush(
                            heap,
                            SearchNode(
                                pd=float(child_pds[i, c]),
                                seq=seq,
                                level=next_level,
                                path=node.path + (int(c),),
                            ),
                        )
                        seq += 1
                stats.max_list_size = max(stats.max_list_size, len(heap))
            if self.max_nodes is not None and stats.nodes_expanded >= self.max_nodes:
                stats.truncated += 1
                break
        return incumbent, bound

    def _search_dfs(
        self,
        n_tx: int,
        bound: float,
        incumbent: np.ndarray | None,
        stats: DecodeStats,
    ):
        seq = 1
        stack: list[SearchNode] = [root_node(n_tx)]
        while stack:
            node = stack.pop()
            if node.pd >= bound:
                # Generated inside an older, looser sphere; the radius has
                # shrunk since — prune on pop.
                stats.nodes_pruned += 1
                continue
            child_pds = yield from self._expand_pool([node], n_tx, stats)
            if node.level == 0:
                incumbent, bound = self._accept_leaves(
                    [node], child_pds, bound, incumbent, stats, n_tx
                )
            else:
                pds = child_pds[0]
                order = child_order(pds, self.child_ordering)
                mask = pds < bound
                stats.nodes_pruned += int(mask.size - np.count_nonzero(mask))
                next_level = node.level - 1
                # Push worst-first so the best child is on top of the LIFO
                # (the sorted insertion of Fig. 3).
                for c in order[::-1]:
                    if mask[c]:
                        stack.append(
                            SearchNode(
                                pd=float(pds[c]),
                                seq=seq,
                                level=next_level,
                                path=node.path + (int(c),),
                            )
                        )
                        seq += 1
                stats.max_list_size = max(stats.max_list_size, len(stack))
            if self.max_nodes is not None and stats.nodes_expanded >= self.max_nodes:
                stats.truncated += 1
                break
        return incumbent, bound
