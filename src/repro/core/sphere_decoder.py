"""Deprecated shim — the decoder moved to :mod:`repro.detectors.sphere`.

The search loops now live in :mod:`repro.core.traversal` (policy
objects) and the detector shell in :mod:`repro.detectors.sphere`; this
module re-exports the old names with a :class:`DeprecationWarning` so
pre-refactor imports keep working::

    from repro.core.sphere_decoder import SphereDecoder   # still works

Imports happen lazily inside :func:`__getattr__` (PEP 562) so this
module has no module-level dependency on the detector layer — the
``core`` package must not import ``detectors`` (see
``tools/check_layering.py``).
"""

from __future__ import annotations

import warnings

#: Old name -> (new module, attribute) for every symbol that moved.
_MOVED = {
    "SphereDecoder": ("repro.detectors.sphere", "SphereDecoder"),
    "STRATEGIES": ("repro.detectors.sphere", "STRATEGIES"),
    "ORDERINGS": ("repro.detectors.sphere", "ORDERINGS"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _MOVED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"repro.core.sphere_decoder.{name} moved to {module_name}.{attr}; "
        "update the import (this shim will be removed)",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(_MOVED)
