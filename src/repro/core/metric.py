"""Partial-distance metrics — the node-cost axis of the evaluation layer.

The paper's GEMM engine accumulates squared-ℓ₂ partial distances: every
child costs one complex MAC (GEMM stage) plus one ``|e|²`` accumulate
(NORM stage). Seethaler & Bölcskei observed that the NORM stage itself
is a design axis: replacing the squared Euclidean increment with the
ℓ∞ norm of the error's real decomposition,

    inc_k = max(|Re e_k|, |Im e_k|),   pd = max(pd_parent, inc_k)

keeps partial distances monotone non-decreasing along every root→leaf
path (so all sphere pruning logic remains valid) while turning the
hardware NORM stage from a multiply-accumulate chain into a compare
tree — no DSP multipliers, shorter latency. The price is that the
detector is exact with respect to the ℓ∞ metric but only approximate
with respect to the ML (ℓ₂) decision; the BER loss is bounded by the
norm-equivalence factor (see ``docs/algorithms.md``).

This module makes the metric a first-class object threaded through
:class:`~repro.core.gemm.ChannelKernel`, both evaluators, and the
traversal backends, so every policy (best-first/DFS/BFS/K-best/FSD)
composes with every metric. Bit-identity discipline: the ℓ₂ singleton
implements exactly the expressions the evaluators used before this
abstraction existed — same NumPy ops in the same order — so the golden
decode suite replays unchanged.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PartialDistanceMetric",
    "L2SquaredMetric",
    "LInfinityMetric",
    "L2",
    "LINF",
    "METRICS",
    "resolve_metric",
]


class PartialDistanceMetric:
    """Strategy object defining how partial distances grow per level.

    Subclasses must keep two invariants the traversal layer relies on:

    - ``accumulate`` is monotone non-decreasing in the parent PD (so a
      node outside the sphere can never have an in-sphere descendant);
    - ``residual_metric`` of a full leaf equals the PD the incremental
      recursion produces for that leaf (so Babai seeding and leaf
      acceptance agree with the tree search).

    Attributes
    ----------
    name:
        Registry key (``"l2"``, ``"linf"``).
    exact_ml:
        True when minimising this metric recovers the ML (ℓ₂) decision.
    flops_per_norm:
        Flop-equivalent cost charged per child in the NORM stage; the
        ℓ₂ value matches the historical ``FLOPS_PER_NORM`` constant so
        recorded ``norm_flops`` counters stay bit-identical.
    norm_kind:
        FPGA NORM-stage implementation this metric maps to
        (``"mac"`` multiply-accumulate vs ``"compare"`` compare tree);
        consumed by :mod:`repro.fpga`.
    """

    name = "abstract"
    exact_ml = False
    flops_per_norm = 0
    norm_kind = "mac"

    def increments(self, error: np.ndarray) -> np.ndarray:
        """Per-child distance increments from complex errors."""
        raise NotImplementedError

    def accumulate(self, parent_pds: np.ndarray, increments: np.ndarray) -> np.ndarray:
        """Combine ``(pool,)`` parent PDs with ``(pool, order)`` increments."""
        raise NotImplementedError

    def scalar_accumulate(self, total: float, err: complex) -> float:
        """Scalar recursion used by Babai seeding (one level at a time)."""
        raise NotImplementedError

    def residual_metric(self, residual: np.ndarray) -> float:
        """Full-vector metric of a leaf residual ``ybar - R s``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class L2SquaredMetric(PartialDistanceMetric):
    """Squared Euclidean distance — the exact-ML reference metric.

    The method bodies are verbatim the expressions the evaluators and
    ``babai_point`` used before the metric axis existed; do not
    "simplify" them, the golden decode suite pins their bit patterns.
    """

    name = "l2"
    exact_ml = True
    flops_per_norm = 8
    norm_kind = "mac"

    def increments(self, error: np.ndarray) -> np.ndarray:
        return error.real**2 + error.imag**2

    def accumulate(self, parent_pds: np.ndarray, increments: np.ndarray) -> np.ndarray:
        return parent_pds[:, None] + increments

    def scalar_accumulate(self, total: float, err: complex) -> float:
        return total + float(err.real**2 + err.imag**2)

    def residual_metric(self, residual: np.ndarray) -> float:
        return float(np.real(np.vdot(residual, residual)))


class LInfinityMetric(PartialDistanceMetric):
    """ℓ∞ partial distances (Seethaler & Bölcskei).

    The increment is the ℓ∞ norm of the error's real decomposition and
    accumulation is ``max`` instead of ``+``: the PD of a node is the
    largest per-dimension error magnitude seen on its path. Monotone by
    construction, so pruning stays valid; cheap in hardware because
    ``|Re|/|Im|`` + compares replace the MAC chain.
    """

    name = "linf"
    exact_ml = False
    flops_per_norm = 4
    norm_kind = "compare"

    def increments(self, error: np.ndarray) -> np.ndarray:
        return np.maximum(np.abs(error.real), np.abs(error.imag))

    def accumulate(self, parent_pds: np.ndarray, increments: np.ndarray) -> np.ndarray:
        return np.maximum(parent_pds[:, None], increments)

    def scalar_accumulate(self, total: float, err: complex) -> float:
        return max(total, float(max(abs(err.real), abs(err.imag))))

    def residual_metric(self, residual: np.ndarray) -> float:
        if residual.size == 0:
            return 0.0
        flat = np.asarray(residual)
        return float(
            max(np.max(np.abs(flat.real)), np.max(np.abs(flat.imag)))
        )


#: Module-level singletons — identity comparisons (``metric is L2``) are
#: the sanctioned fast check in hot paths.
L2 = L2SquaredMetric()
LINF = LInfinityMetric()

METRICS = {L2.name: L2, LINF.name: LINF}


def resolve_metric(metric) -> PartialDistanceMetric:
    """Coerce a metric name or instance to a singleton-or-instance.

    ``None`` resolves to the ℓ₂ reference so every existing call site
    keeps its historical behaviour without naming a metric.
    """
    if metric is None:
        return L2
    if isinstance(metric, PartialDistanceMetric):
        return metric
    try:
        return METRICS[metric]
    except (KeyError, TypeError):
        known = ", ".join(sorted(METRICS))
        raise ValueError(
            f"unknown partial-distance metric {metric!r} (known: {known})"
        ) from None
