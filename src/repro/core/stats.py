"""Search instrumentation records shared by every tree-search detector.

These types live in :mod:`repro.core` because the traversal engine
(:mod:`repro.core.traversal`) produces them and the platform models
(:mod:`repro.fpga`, :mod:`repro.perfmodel`) consume them; the detector
layer re-exports them from :mod:`repro.detectors.base` for backward
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable, NamedTuple


class BatchEvent(NamedTuple):
    """One batched node-expansion step.

    Attributes
    ----------
    level:
        Tree level being expanded; level ``k`` assigns transmit symbol
        ``s_k`` (``k = n_tx - 1`` is the root's children, ``k = 0`` the
        leaves).
    pool_size:
        Number of tree nodes expanded together in this batch (1 for pure
        best-first pops; the whole frontier for BFS levels).
    """

    level: int
    pool_size: int


@dataclass
class DecodeStats:
    """Work performed by one ``detect`` call of a tree-search detector.

    Aggregation across frames goes through :meth:`merge`, which derives
    the per-field rule from the dataclass definition itself: numeric
    fields sum and list fields concatenate unless the field declares a
    ``merge`` metadata override (``max_list_size`` keeps the maximum).
    Adding a field therefore never silently drops it from aggregates —
    ``tests/test_detector_base.py`` asserts every field round-trips.

    Merging is **order-independent** for every scalar field (sums and
    maxima commute and associate), so cross-process aggregation needs no
    global frame order: ``a.merge(b)`` equals ``b.merge(a)`` field-wise
    except for the list fields (``batches``, ``radius_trace``), which
    concatenate left-to-right. Callers that shard frames across workers
    therefore merge worker results in deterministic shard order (see
    :mod:`repro.mimo.parallel_mc`) so the concatenated traces reproduce
    the serial order exactly.
    """

    nodes_expanded: int = 0
    nodes_generated: int = 0
    nodes_pruned: int = 0
    leaves_reached: int = 0
    radius_updates: int = 0
    gemm_calls: int = 0
    gemm_flops: int = 0
    max_list_size: int = field(default=0, metadata={"merge": "max"})
    wall_time_s: float = 0.0
    #: Seconds spent inside the evaluator's GEMM + NORM arithmetic
    #: (:meth:`repro.core.gemm.GemmEvaluator.expand_unchecked`); the
    #: rest of ``wall_time_s`` is host-side search bookkeeping. Under
    #: fused batch decoding the shared GEMM time is split evenly across
    #: the batch's frames, mirroring ``wall_time_s``. Under the compiled
    #: engine (:class:`repro.core.compiled.CompiledTraversalEngine`)
    #: the pop/expand/prune loop is fused into one kernel, so this field
    #: times each *whole kernel invocation* — arithmetic and traversal
    #: bookkeeping together — and ``host_overhead_s`` shrinks to the
    #: Python-side escalation shell. Kernels are warmed at ``prepare``
    #: time, so first-call JIT compilation never lands here.
    gemm_time_s: float = 0.0
    truncated: int = 0
    batches: list[BatchEvent] = field(default_factory=list)
    radius_trace: list[float] = field(default_factory=list)

    @property
    def nodes_per_sec(self) -> float:
        """Traversal throughput: expanded nodes per wall-clock second.

        The paper's host-efficiency figure of merit — once PD evaluation
        is BLAS-3, this is bounded by search bookkeeping, not FLOPs.
        Zero when no wall time was recorded.
        """
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.nodes_expanded / self.wall_time_s

    @property
    def host_overhead_s(self) -> float:
        """Wall time spent outside the GEMM/NORM arithmetic.

        Under the compiled engine the fused kernel subsumes the search
        bookkeeping, so this measures only the Python escalation shell
        (radius policy, stat folding) around the kernel calls.
        """
        return max(self.wall_time_s - self.gemm_time_s, 0.0)

    @property
    def gemm_fraction(self) -> float:
        """Share of wall time inside the evaluator (1.0 = compute-bound).

        For the compiled engine this is the share of wall time inside
        the fused jitted kernel (compilation excluded via warm-up) —
        values near 1.0 mean the decode is kernel-bound, the goal state.
        """
        if self.wall_time_s <= 0.0:
            return 0.0
        return min(self.gemm_time_s / self.wall_time_s, 1.0)

    def merge(self, other: "DecodeStats") -> "DecodeStats":
        """Aggregate two stats records (e.g. across Monte Carlo frames)."""
        merged: dict[str, object] = {}
        for f in fields(self):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            rule = f.metadata.get("merge")
            if rule is None:
                if isinstance(mine, (int, float)) or isinstance(mine, list):
                    rule = "sum"  # numeric add / list concatenation
                else:
                    raise TypeError(
                        f"DecodeStats.{f.name}: no default merge rule for "
                        f"{type(mine).__name__}; declare one via "
                        "field(metadata={'merge': ...})"
                    )
            if rule == "sum":
                merged[f.name] = mine + theirs
            elif rule == "max":
                merged[f.name] = max(mine, theirs)
            else:
                raise TypeError(
                    f"DecodeStats.{f.name}: unknown merge rule {rule!r}"
                )
        return type(self)(**merged)

    @classmethod
    def merge_all(cls, stats: Iterable["DecodeStats"]) -> "DecodeStats":
        """Fold many stats records into one in linear time.

        Equivalent to chaining :meth:`merge` pairwise left-to-right but
        without the quadratic list re-concatenation — the form the
        Monte Carlo engine and the process-sharded sweep runner use to
        aggregate thousands of per-frame records.
        """
        merged = cls()
        total: dict[str, object] = {
            f.name: getattr(merged, f.name) for f in fields(cls)
        }
        for st in stats:
            for f in fields(cls):
                value = getattr(st, f.name)
                rule = f.metadata.get("merge")
                if rule == "max":
                    total[f.name] = max(total[f.name], value)
                elif isinstance(value, list):
                    total[f.name].extend(value)
                else:
                    total[f.name] += value
        return cls(**total)
